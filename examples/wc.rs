//! The paper's running example (§2): `wc`, compiled and executed on the
//! verified stack, checked against its specification at the ISA *and*
//! circuit level.
//!
//! ```sh
//! cargo run --example wc
//! ```

use silver_stack::{apps, check_end_to_end, CheckOptions, Stack};

fn main() -> Result<(), String> {
    let input = b"verified compilation on a verified processor\n\
                  silver runs cakeml\n";
    let stack = Stack::new();
    let report = check_end_to_end(&stack, apps::WC, &["wc"], input, &CheckOptions::default())?;

    println!("input        : {:?}", String::from_utf8_lossy(input));
    println!("wc output    : {}", report.stdout.trim_end());
    println!("isa instrs   : {}", report.isa_instructions);
    println!("rtl cycles   : {}", report.rtl_cycles);
    println!("agreement    : source semantics == ISA == circuit-level CPU");

    // wc_spec input output — the §2.1 specification, checked in Rust.
    let words =
        input.split(|b: &u8| b" \n\t".contains(b)).filter(|w| !w.is_empty()).count();
    assert!(report.stdout.contains(&format!(" {words} ")));
    println!("wc_spec      : satisfied ({words} words)");
    Ok(())
}
