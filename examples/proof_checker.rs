//! The proof-checker application (the paper runs an OpenTheory checker
//! on Silver; ours checks Hilbert-style proofs in minimal implicational
//! logic). The proof of `a -> a` from axioms K and S is checked by a
//! program running on the verified stack.
//!
//! ```sh
//! cargo run --example proof_checker
//! ```

use silver_stack::{apps, Backend, RunConfig, Stack};

fn main() -> Result<(), silver_stack::StackError> {
    let proof = "\
S a iaa a
K a iaa
MP 0 1
K a a
MP 2 3
";
    println!("checking this proof of |- a -> a on the verified stack:\n{proof}");
    let stack = Stack::new();
    let result = stack.run_source(
        apps::PROOF_CHECKER,
        &["check"],
        proof.as_bytes(),
        Backend::Isa,
        &RunConfig::default(),
    )?;
    print!("{}", result.stdout_utf8());
    println!("exit code: {:?} (0 = proof accepted)", result.exit_code());
    Ok(())
}
