//! §7's headline result in miniature: a compiler *running on the
//! verified processor*. The mini compiler — written in the source
//! language, compiled by the real compiler — executes on the simulated
//! Silver CPU and emits Silver-flavoured assembly for the arithmetic
//! program it reads from standard input.
//!
//! ```sh
//! cargo run --example compiler_on_silver
//! ```

use silver_stack::{apps, Backend, RunConfig, Stack};

fn main() -> Result<(), silver_stack::StackError> {
    let program = b"(10 - 3) * (2 + 4)\n";
    println!("source program fed to the on-Silver compiler: {}", String::from_utf8_lossy(program).trim());
    let stack = Stack::new();
    let result = stack.run_source(
        apps::MINI_COMPILER,
        &["minicc"],
        program,
        Backend::Isa,
        &RunConfig::default(),
    )?;
    println!("\n--- output of the compiler running on Silver ---");
    print!("{}", result.stdout_utf8());
    println!("--- {} Silver instructions to compile it ---", result.instructions);
    Ok(())
}
