//! Quickstart: compile an ML program, load the Figure-2 memory image,
//! and run it on the Silver ISA — the paper's workflow in five lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use silver_stack::{apps, Backend, RunConfig, Stack};

fn main() -> Result<(), silver_stack::StackError> {
    let stack = Stack::new();
    let result =
        stack.run_source(apps::HELLO, &["hello"], b"", Backend::Isa, &RunConfig::default())?;
    print!("{}", result.stdout_utf8());
    println!("exit code    : {:?}", result.exit_code());
    println!("instructions : {}", result.instructions);
    Ok(())
}
