//! §7's timing example: sort on a 1000-line file. Runs the real
//! workload at the ISA level and projects the board wall-clock the paper
//! reports as "a few seconds".
//!
//! ```sh
//! cargo run --release --example sort
//! ```

use silver_stack::{apps, Backend, RunConfig, Stack};

fn random_lines(n: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    let mut out = Vec::new();
    for _ in 0..n {
        let len = 8 + (state % 24) as usize;
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.push(b'a' + ((state >> 33) % 26) as u8);
        }
        out.push(b'\n');
    }
    out
}

fn main() -> Result<(), silver_stack::StackError> {
    let input = random_lines(1000, 2024);
    let stack = Stack::new();
    let result =
        stack.run_source(apps::SORT, &["sort"], &input, Backend::Isa, &RunConfig::default())?;

    let stdout = result.stdout_utf8();
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines.windows(2).all(|w| w[0] <= w[1]), "output is sorted");
    println!("sorted {} lines ({} bytes)", lines.len(), input.len());
    println!("silver instructions : {}", result.instructions);
    // Unpipelined Silver at ~40 MHz; CPI ≈ 1.23 measured on the
    // circuit-level simulator with zero-latency DRAM (see EXPERIMENTS.md —
    // `benches/sort_1000.rs` measures the CPI instead of assuming it).
    let projected = result.instructions as f64 * 1.23 / 40.0e6;
    println!("projected board time: {projected:.2} s  (paper: \"a few seconds\")");
    Ok(())
}
