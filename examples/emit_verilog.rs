//! Emits the synthesisable Verilog for the Silver CPU — the artefact at
//! the layer-4 → layer-5 boundary of Figure 1, i.e. the file the paper
//! hands to Xilinx Vivado for the PYNQ-Z1 bitstream.
//!
//! ```sh
//! cargo run --example emit_verilog > silver_cpu.sv
//! ```

fn main() {
    let circuit = silver::silver_cpu();
    // The generator re-checks well-formedness (the paper's generator
    // only succeeds on circuits it can prove correspondence for).
    let module = rtl::generate(&circuit).expect("silver_cpu is well-formed");
    print!("{}", verilog::pretty::print_module(&module));
    eprintln!(
        "// silver_cpu: {} processes, {} signals",
        circuit.processes.len(),
        circuit.inputs.len() + circuit.regs.len(),
    );
}
