//! B3 (ablation): what the compiler's optimisations buy, measured in
//! retired Silver instructions on fixed workloads.
//!
//! * `direct_calls` — saturated known calls vs generic curried applies
//!   (the CakeML-style known-function optimisation),
//! * `tail_calls` — constant-stack loops vs stack frames per iteration.

use silver_stack::{Backend, RunConfig, Stack};
use testkit::bench::Bench;

const WORKLOAD: &str = r#"
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2);
fun sum_to n acc = if n = 0 then acc else sum_to (n - 1) (acc + n);
val xs = merge_sort (fn a => fn b => a < b) [9,3,7,1,8,2,6,4,5,0,19,13,17,11];
val _ = exit ((fib 15 + sum_to 500 0 + nth xs 3) mod 97);
"#;

fn instructions_with_cfg(direct_calls: bool, tail_calls: bool, gc: bool) -> u64 {
    instructions_full(direct_calls, tail_calls, gc, true)
}

fn instructions_full(direct_calls: bool, tail_calls: bool, gc: bool, const_fold: bool) -> u64 {
    let mut stack = Stack::new();
    stack.compiler.direct_calls = direct_calls;
    stack.compiler.tail_calls = tail_calls;
    stack.compiler.gc = gc;
    stack.compiler.const_fold = const_fold;
    let r = stack
        .run_source(WORKLOAD, &["abl"], b"", Backend::Isa, &RunConfig::default())
        .expect("runs");
    let code = r.exit_code().expect("exits");
    assert_eq!(code, ((610u64 + 125_250 + 3) % 97) as u8, "all configs agree on the answer");
    r.instructions
}

fn instructions_with(direct_calls: bool, tail_calls: bool) -> u64 {
    instructions_with_cfg(direct_calls, tail_calls, false)
}

fn main() {
    let full = instructions_with(true, true);
    let no_direct = instructions_with(false, true);
    let no_tail = instructions_with(true, false);
    let neither = instructions_with(false, false);
    let with_gc = instructions_with_cfg(true, true, true);
    let no_fold = instructions_full(true, true, false, false);
    eprintln!("--- B3: optimisation ablation (retired instructions) ---");
    eprintln!("direct+tail     : {full}");
    eprintln!("no direct calls : {no_direct}  (+{:.1}%)", excess(no_direct, full));
    eprintln!("no tail calls   : {no_tail}  (+{:.1}%)", excess(no_tail, full));
    eprintln!("neither         : {neither}  (+{:.1}%)", excess(neither, full));
    eprintln!("no const fold   : {no_fold}  (+{:.1}%)", excess(no_fold, full));
    eprintln!("gc runtime      : {with_gc}  (+{:.1}% — frame zeroing + allocator calls)", excess(with_gc, full));
    assert!(no_direct > full, "direct calls must help");

    let mut b = Bench::new("opt_ablation").sample_size(10);
    b.bench("ablation_full_opt_sim", || instructions_with(true, true));
    b.finish();
}

fn excess(x: u64, base: u64) -> f64 {
    (x as f64 / base as f64 - 1.0) * 100.0
}
