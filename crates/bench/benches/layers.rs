//! B1 (ablation): simulator throughput at each layer of Figure 1 —
//! ISA (`Next`), circuit-level CPU, and deep-embedded Verilog. The cost
//! of each abstraction level is the practical reason the paper's lab
//! setup synthesises a bitstream instead of simulating.

use ag32::asm::Assembler;
use ag32::{Func, Reg, Ri, State};
use silver::env::MemEnvConfig;
use silver::lockstep::{env_from_isa, init_rtl_from_isa};
use silver::silver_cpu;
use testkit::bench::Bench;

/// A tight counted loop: 3 instructions per iteration plus setup.
fn loop_program(iterations: u32) -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), iterations);
    a.label("loop");
    a.normal(Func::Add, r(2), Ri::Reg(r(2)), Ri::Imm(1));
    a.normal(Func::Dec, r(1), Ri::Imm(0), Ri::Reg(r(1)));
    a.branch_nonzero_sub(Ri::Reg(r(1)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("assembles"));
    s
}

fn main() {
    let mut b = Bench::new("layers").sample_size(10);

    // ISA: instructions per second.
    b.bench("layer2_isa_10k_instructions", || {
        let mut s = loop_program(2000);
        let n = s.run(100_000);
        assert!(s.is_halted());
        n
    });

    // Circuit level: clock cycles per second.
    let circuit = silver_cpu();
    b.bench("layer3_rtl_loop_2000", || {
        let s = loop_program(2000);
        let mut env = env_from_isa(&s, MemEnvConfig::default());
        let mut st = init_rtl_from_isa(&circuit, &s);
        let mut cycles = 0u64;
        while st.get_scalar("retired").unwrap() < 6004 {
            rtl::interp::step(&circuit, &mut env, &mut st, cycles).unwrap();
            cycles += 1;
        }
        cycles
    });

    // Verilog level: same machine, bit-vector semantics (much smaller
    // workload — this is the slowest layer).
    let module = rtl::generate(&circuit).expect("codegen");
    b.bench("layer4_verilog_loop_50", || {
        let s = loop_program(50);
        let mut env = env_from_isa(&s, MemEnvConfig::default());
        let mut rtl_st = init_rtl_from_isa(&circuit, &s);
        let mut v_st = module.initial_state().unwrap();
        for (name, value) in rtl_st.iter() {
            match rtl::equiv::to_verilog_value(value) {
                verilog::ast::ValueOrArray::Value(v) => {
                    v_st.set(name, v).unwrap();
                }
                verilog::ast::ValueOrArray::Unpacked(es) => {
                    for (i, e) in es.into_iter().enumerate() {
                        v_st.set_index(name, i as u64, e).unwrap();
                    }
                }
            }
        }
        let mut cycles = 0u64;
        while rtl_st.get_scalar("retired").unwrap() < 154 {
            use rtl::interp::RtlEnv as _;
            let driven = env.drive(cycles, &rtl_st);
            for (name, value) in &driven {
                rtl_st.set(name, value.clone()).unwrap();
                if let verilog::ast::ValueOrArray::Value(v) = rtl::equiv::to_verilog_value(value) {
                    v_st.set(name, v).unwrap();
                }
            }
            rtl::interp::cycle(&circuit, &mut rtl_st).unwrap();
            verilog::eval::cycle(&module, &mut v_st).unwrap();
            cycles += 1;
        }
        cycles
    });

    b.finish();
}
