//! Execution engines: the reference interpreter vs the jet
//! translation-cache engine on the paper's two heaviest ISA workloads
//! (§7's R2 sort and R3 compile-gap shapes).
//!
//! Both engines implement the same `Next` semantics (theorem J, checked
//! continuously by `crates/jet`'s shadow mode and the `t-jet` campaign
//! target); this bench regenerates the *performance* claim: the jet
//! engine must retire at least 10× the reference interpreter's
//! instructions per second with byte-identical observable behaviour.
//! Shadow mode stays OFF on the timed path — it is a checking tool, not
//! a production configuration (`rc_jet` below carries `shadow: None`
//! via `RunConfig::default`).
//!
//! Emits `BENCH_engines.json` (suite `engines`, one JSON line per
//! timed entry — see `EXPERIMENTS.md` for the line schema).

use bench::random_lines;
use silver_stack::{apps, Backend, Engine, RunConfig, Stack, StackResult};
use testkit::bench::Bench;

/// A sizeable arithmetic program for the mini compiler (the same shape
/// `compile_gap.rs` uses) so the workload dominates constant overheads.
fn big_expression() -> Vec<u8> {
    let mut e = String::from("1");
    for i in 2..400 {
        e.push_str(&format!(" + {} * ({} - 2)", i % 97, i % 13));
    }
    e.push('\n');
    e.into_bytes()
}

/// Asserts the two engines' runs are observationally identical.
fn assert_identical(name: &str, reference: &StackResult, jet: &StackResult) {
    assert_eq!(jet.exit_code(), reference.exit_code(), "{name}: exit status");
    assert_eq!(jet.stdout, reference.stdout, "{name}: stdout bytes");
    assert_eq!(jet.stderr, reference.stderr, "{name}: stderr bytes");
    assert_eq!(jet.instructions, reference.instructions, "{name}: retire count");
    assert_eq!(jet.stats, reference.stats, "{name}: per-opcode retire counters");
}

fn main() {
    let stack = Stack::new();
    let rc_ref = RunConfig::default();
    let rc_jet = RunConfig { engine: Engine::Jet, ..RunConfig::default() };

    let sort_input = random_lines(1000, 42);
    let gap_input = big_expression();
    let workloads: [(&str, &str, Vec<&str>, &[u8]); 2] = [
        ("sort_1000", apps::SORT, vec!["sort"], &sort_input),
        ("compile_gap", apps::MINI_COMPILER, vec!["minicc"], &gap_input),
    ];

    let mut b = Bench::new("engines").sample_size(5).warmup(1);
    eprintln!("--- execution engines: reference Next vs jet translation cache ---");
    for (name, src, args, stdin) in workloads {
        let compiled = stack.compile(src).expect("compiles");
        let image = stack.load(&compiled, &args, stdin).expect("image");

        // Correctness gate first: byte-identical observable behaviour.
        let r_ref = stack.run_image(image.clone(), Backend::Isa, &rc_ref).expect("ref runs");
        let r_jet = stack.run_image(image.clone(), Backend::Isa, &rc_jet).expect("jet runs");
        assert!(r_ref.exit_code().is_some(), "{name} must exit cleanly: {:?}", r_ref.exit);
        assert_identical(name, &r_ref, &r_jet);
        let instructions = r_ref.instructions;

        // Timed: full image-in, result-out runs on each engine.
        let ref_ns = b
            .bench(&format!("{name}_ref"), || {
                stack.run_image(image.clone(), Backend::Isa, &rc_ref).expect("ref").instructions
            })
            .median_ns;
        let jet_ns = b
            .bench(&format!("{name}_jet"), || {
                stack.run_image(image.clone(), Backend::Isa, &rc_jet).expect("jet").instructions
            })
            .median_ns;

        let ref_ips = instructions as f64 / (ref_ns / 1e9);
        let jet_ips = instructions as f64 / (jet_ns / 1e9);
        let speedup = ref_ns / jet_ns;
        eprintln!("{name}: {instructions} instructions");
        eprintln!("  ref engine : {ref_ips:>12.0} instructions/s");
        eprintln!("  jet engine : {jet_ips:>12.0} instructions/s");
        eprintln!("  speedup    : {speedup:.1}x");
        assert!(
            speedup >= 10.0,
            "{name}: jet must be >=10x the reference engine, got {speedup:.1}x"
        );
    }
    b.finish();
}
