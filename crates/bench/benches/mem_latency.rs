//! B2 (ablation): sensitivity to memory latency — the wait states of
//! §4.2. The implementation stalls on every fetch, load and store, so
//! clock-cycles-per-instruction grows linearly with the DRAM response
//! latency; this bench prints the measured curve and times one point.

use ag32::asm::Assembler;
use ag32::{Func, Instr, Reg, Ri, State};
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::run_lockstep;
use testkit::bench::Bench;

/// A memory-heavy loop: word store + load per iteration.
fn memory_program() -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 200); // iterations
    a.li(r(2), 0x2000); // buffer
    a.label("loop");
    a.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
    a.instr(Instr::LoadMem { w: r(3), a: Ri::Reg(r(2)) });
    a.normal(Func::Dec, r(1), Ri::Imm(0), Ri::Reg(r(1)));
    a.branch_nonzero_sub(Ri::Reg(r(1)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("assembles"));
    s
}

fn main() {
    eprintln!("--- B2: clock cycles vs memory latency (same program) ---");
    eprintln!("latency  cycles  instructions  CPI");
    for lat in [0u32, 1, 2, 4, 8] {
        let cfg = MemEnvConfig { mem_latency: Latency::Fixed(lat), ..MemEnvConfig::default() };
        let rep = run_lockstep(&memory_program(), 100_000, cfg, 50_000_000)
            .expect("lockstep also re-verifies theorem 9 per latency");
        eprintln!(
            "{lat:>7}  {:>6}  {:>12}  {:.2}",
            rep.cycles,
            rep.instructions,
            rep.cycles as f64 / rep.instructions as f64
        );
    }

    let mut b = Bench::new("mem_latency").sample_size(10);
    b.bench("rtl_mem_program_latency2", || {
        let cfg = MemEnvConfig { mem_latency: Latency::Fixed(2), ..MemEnvConfig::default() };
        run_lockstep(&memory_program(), 100_000, cfg, 50_000_000).unwrap().cycles
    });
    b.finish();
}
