//! R3 (§7): "compiling a one-line hello world program on a modern Intel
//! processor takes around two to three seconds, whereas compiling the
//! same program on Silver takes around four hours."
//!
//! The paper compares the *same compiler* running on an Intel host and
//! on Silver. We regenerate that shape exactly: the mini compiler
//! (written in the source language) compiles the same input once on the
//! host (under the source interpreter, the fastest host execution of the
//! same algorithm we have) and once on the simulated Silver processor
//! (projected to board wall-clock). For context we also time the real
//! Rust compiler on hello world.

use bench::{measure_cpi, project_seconds, run_isa};
use basis::{BasisHost, FsState};
use cakeml::{compile_source, frontend, run_program, CompilerConfig, TargetLayout};
use silver_stack::apps;
use testkit::bench::Bench;

/// A sizeable expression so the workload dominates constant overheads.
fn big_expression() -> Vec<u8> {
    let mut e = String::from("1");
    for i in 2..400 {
        e.push_str(&format!(" + {} * ({} - 2)", i % 97, i % 13));
    }
    e.push('\n');
    e.into_bytes()
}

fn main() {
    let program = big_expression();
    let cpi = measure_cpi();

    // The mini compiler on the host (source interpreter).
    let cfg = CompilerConfig::default();
    let (ast, _) = frontend(apps::MINI_COMPILER, &cfg).expect("frontend");
    // "The same compiler on a modern Intel processor": a native Rust
    // implementation of the identical lex/parse/emit/eval algorithm.
    fn native_minicc(input: &[u8]) -> String {
        #[derive(Clone, Copy, PartialEq)]
        enum T {
            Num(i64),
            Plus,
            Minus,
            Times,
            Lp,
            Rp,
        }
        let mut toks = Vec::new();
        let b = input;
        let mut i = 0;
        while i < b.len() {
            match b[i] {
                b' ' | b'\n' => i += 1,
                b'+' => {
                    toks.push(T::Plus);
                    i += 1;
                }
                b'-' => {
                    toks.push(T::Minus);
                    i += 1;
                }
                b'*' => {
                    toks.push(T::Times);
                    i += 1;
                }
                b'(' => {
                    toks.push(T::Lp);
                    i += 1;
                }
                b')' => {
                    toks.push(T::Rp);
                    i += 1;
                }
                _ => {
                    let mut v = 0i64;
                    while i < b.len() && b[i].is_ascii_digit() {
                        v = v * 10 + i64::from(b[i] - b'0');
                        i += 1;
                    }
                    toks.push(T::Num(v));
                }
            }
        }
        enum E {
            Lit(i64),
            Add(Box<E>, Box<E>),
            Sub(Box<E>, Box<E>),
            Mul(Box<E>, Box<E>),
        }
        fn atom(t: &[T], p: &mut usize) -> E {
            match t[*p] {
                T::Num(v) => {
                    *p += 1;
                    E::Lit(v)
                }
                T::Lp => {
                    *p += 1;
                    let e = expr(t, p);
                    *p += 1; // Rp
                    e
                }
                _ => panic!("parse"),
            }
        }
        fn term(t: &[T], p: &mut usize) -> E {
            let mut e = atom(t, p);
            while *p < t.len() && t[*p] == T::Times {
                *p += 1;
                e = E::Mul(Box::new(e), Box::new(atom(t, p)));
            }
            e
        }
        fn expr(t: &[T], p: &mut usize) -> E {
            let mut e = term(t, p);
            while *p < t.len() && (t[*p] == T::Plus || t[*p] == T::Minus) {
                let op = t[*p];
                *p += 1;
                let rhs = term(t, p);
                e = if op == T::Plus {
                    E::Add(Box::new(e), Box::new(rhs))
                } else {
                    E::Sub(Box::new(e), Box::new(rhs))
                };
            }
            e
        }
        fn emit(e: &E, out: &mut String) -> i64 {
            match e {
                E::Lit(v) => {
                    out.push_str(&format!("  LoadConstant r1, {v}\n  Push r1\n"));
                    *v
                }
                E::Add(a, b2) | E::Sub(a, b2) | E::Mul(a, b2) => {
                    let x = emit(a, out);
                    let y = emit(b2, out);
                    let (name, v) = match e {
                        E::Add(..) => ("fAdd", x.wrapping_add(y)),
                        E::Sub(..) => ("fSub", x.wrapping_sub(y)),
                        _ => ("fMul", x.wrapping_mul(y)),
                    };
                    out.push_str(&format!(
                        "  Pop r2\n  Pop r1\n  Normal {name} r1, r1, r2\n  Push r1\n"
                    ));
                    v
                }
            }
        }
        let mut p = 0;
        let e = expr(&toks, &mut p);
        let mut out = String::from("; silver-stack mini compiler output\n");
        let v = emit(&e, &mut out);
        out.push_str(&format!("  Out r1 ; = {v}\n"));
        out
    }
    let native_start = std::time::Instant::now();
    let mut native_out = String::new();
    for _ in 0..20 {
        native_out = native_minicc(&program);
    }
    let native_secs = native_start.elapsed().as_secs_f64() / 20.0;

    // The interpreter recurses on the Rust stack; give it room.
    let (host_secs, host) = {
        let ast = ast.clone();
        let program = program.clone();
        std::thread::Builder::new()
            .stack_size(512 * 1024 * 1024)
            .spawn(move || {
                let host_start = std::time::Instant::now();
                let mut host = BasisHost::new(FsState::stdin_only(&["minicc"], &program));
                run_program(&ast, &mut host, 4_000_000_000).expect("interprets");
                (host_start.elapsed().as_secs_f64(), host)
            })
            .expect("spawn")
            .join()
            .expect("join")
    };

    // The same compiler on Silver (projected).
    let r = run_isa(apps::MINI_COMPILER, &["minicc"], &program);
    assert_eq!(r.stdout, host.fs.stdout, "same compiler output on both hosts");
    let projected = project_seconds(r.instructions, cpi);

    // Context: the real (Rust) compiler on hello world.
    let rust_start = std::time::Instant::now();
    let compiled = compile_source(apps::HELLO, TargetLayout::default(), &cfg).expect("compiles");
    let rust_secs = rust_start.elapsed().as_secs_f64();

    assert_eq!(
        String::from_utf8_lossy(&r.stdout).replace("~", "-"),
        native_out,
        "silver and native agree on the output (modulo ML negative-literal syntax)"
    );
    eprintln!("--- R3: the same compiler on an Intel host vs on Silver ---");
    eprintln!(
        "native (rust) mini compiler  : {native_secs:.6} s ({} bytes of assembly)",
        native_out.len()
    );
    eprintln!("interpreted ML mini compiler : {host_secs:.4} s");
    eprintln!("mini compiler on Silver      : {} instructions", r.instructions);
    eprintln!("projected board time         : {projected:.3} s");
    eprintln!(
        "slowdown vs native           : {:.0}x (paper: ~2-3 s vs ~4 h ≈ 5000x)",
        projected / native_secs.max(1e-9)
    );
    eprintln!("(context: rust compiler on hello world: {rust_secs:.4} s, {} bytes out)", compiled.code.len());

    let mut b = Bench::new("compile_gap").sample_size(10);
    b.bench("host_compile_hello", || {
        compile_source(apps::HELLO, TargetLayout::default(), &CompilerConfig::default())
            .expect("compiles")
            .code
            .len()
    });
    b.bench("mini_compiler_on_silver_sim", || {
        run_isa(apps::MINI_COMPILER, &["minicc"], b"1 + 2 * 3\n").instructions
    });
    b.finish();
}
