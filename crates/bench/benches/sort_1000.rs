//! R2 (§7): "Running sort on a 1000-line file takes a few seconds."
//!
//! Regenerates the claim: sorts 1000 random lines on the stack, counts
//! Silver instructions, projects board wall-clock from the measured
//! circuit-level CPI, and compares against a host-native sort of the
//! same data. The *shape* to reproduce: seconds on Silver, microseconds
//! natively.

use bench::{measure_cpi, project_seconds, random_lines, run_isa};
use silver_stack::apps;
use testkit::bench::Bench;

fn main() {
    let input = random_lines(1000, 42);
    let cpi = measure_cpi();

    // The paper's headline numbers, printed once.
    let r = run_isa(apps::SORT, &["sort"], &input);
    let projected = project_seconds(r.instructions, cpi);
    let mut host_lines: Vec<&[u8]> = input.split(|&b| b == b'\n').collect();
    let host_start = std::time::Instant::now();
    host_lines.sort();
    let host_secs = host_start.elapsed().as_secs_f64();
    eprintln!("--- R2: sort on a 1000-line file ---");
    eprintln!("silver instructions : {}", r.instructions);
    eprintln!("measured CPI        : {cpi:.2}");
    eprintln!("projected on board  : {projected:.2} s (paper: \"a few seconds\")");
    eprintln!("host-native sort    : {host_secs:.6} s");
    eprintln!("slowdown vs native  : {:.0}x", projected / host_secs.max(1e-9));
    assert!(!r.stdout.is_empty());

    // Timed: the simulator cost of the run (smaller input so iterations
    // stay reasonable).
    let small = random_lines(200, 7);
    let mut b = Bench::new("sort_1000").sample_size(10);
    b.bench("sort_200_lines_isa_sim", || run_isa(apps::SORT, &["sort"], &small).instructions);
    b.finish();
}
