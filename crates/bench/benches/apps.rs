//! R1 (§7): the application suite runs on the stack. Reports per-app
//! instruction counts and projected board times for fixed inputs — the
//! table behind "we have successfully run all of the programs mentioned
//! in the introduction".

use bench::{measure_cpi, project_seconds, random_lines, run_isa};
use silver_stack::apps;
use testkit::bench::Bench;

fn main() {
    let cpi = measure_cpi();
    let sort_input = random_lines(100, 3);
    let proof = b"S a iaa a\nK a iaa\nMP 0 1\nK a a\nMP 2 3\n".to_vec();
    let cases: Vec<(&str, &str, Vec<u8>)> = vec![
        ("hello", apps::HELLO, b"".to_vec()),
        ("wc", apps::WC, b"the quick brown fox jumps over the lazy dog\n".repeat(20)),
        ("cat", apps::CAT, random_lines(50, 1)),
        ("sort", apps::SORT, sort_input),
        ("proof_checker", apps::PROOF_CHECKER, proof),
        ("mini_compiler", apps::MINI_COMPILER, b"(1+2)*(3+4)\n".to_vec()),
    ];

    eprintln!("--- R1: application suite on the verified stack ---");
    eprintln!("{:<14} {:>12} {:>10} {:>12}", "app", "instructions", "stdout", "projected");
    for (name, src, stdin) in &cases {
        let r = run_isa(src, &[name], stdin);
        eprintln!(
            "{name:<14} {:>12} {:>10} {:>10.3} s",
            r.instructions,
            r.stdout.len(),
            project_seconds(r.instructions, cpi)
        );
    }

    let mut b = Bench::new("apps").sample_size(10);
    let input = b"words words words\n".repeat(50);
    b.bench("wc_isa_sim", || run_isa(apps::WC, &["wc"], &input).instructions);
    b.finish();
}
