//! Observability overhead: tracing must cost nothing unless asked for.
//!
//! The acceptance bar for the observability subsystem is that the
//! *untraced* ISA execution path regresses by less than 2% — the
//! `Tracer` sink is monomorphised with `const ACTIVE: bool`, so
//! `run_traced(.., &mut NoTrace)` must compile to the same loop as the
//! plain `run`. This bench measures:
//!
//! * `isa_untraced` — the plain `State::run` baseline;
//! * `isa_notrace_sink` — `run_traced` with the [`ag32::NoTrace`] sink
//!   (must be within noise of the baseline: the <2% claim);
//! * `isa_retire_ring_32` — the last-32 retire ring switched on;
//! * `isa_profiler` — per-symbol retire attribution switched on.
//!
//! The ring and profiler rows document the *opt-in* cost, not a
//! regression: they run only under `silverc --trace`/`--profile`.

use ag32::asm::Assembler;
use ag32::{Func, NoCoverage, NoTrace, Reg, Ri, RetireRing, State};
use obs::CycleProfiler;
use testkit::bench::Bench;

/// A tight counted loop: 3 instructions per iteration plus setup.
fn loop_program(iterations: u32) -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), iterations);
    a.label("loop");
    a.normal(Func::Add, r(2), Ri::Reg(r(2)), Ri::Imm(1));
    a.normal(Func::Dec, r(1), Ri::Imm(0), Ri::Reg(r(1)));
    a.branch_nonzero_sub(Ri::Reg(r(1)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("assembles"));
    s
}

const ITERS: u32 = 30_000;
const FUEL: u64 = 1_000_000;

fn main() {
    let mut b = Bench::new("trace_overhead").sample_size(10);

    b.bench("isa_untraced", || {
        let mut s = loop_program(ITERS);
        let n = s.run(FUEL);
        assert!(s.is_halted());
        n
    });

    b.bench("isa_notrace_sink", || {
        let mut s = loop_program(ITERS);
        let n = s.run_traced(FUEL, &mut NoCoverage, &mut NoTrace);
        assert!(s.is_halted());
        n
    });

    b.bench("isa_retire_ring_32", || {
        let mut s = loop_program(ITERS);
        let mut ring = RetireRing::new(32);
        let n = s.run_traced(FUEL, &mut NoCoverage, &mut ring);
        assert!(s.is_halted());
        assert_eq!(ring.total(), n);
        n
    });

    b.bench("isa_profiler", || {
        let mut s = loop_program(ITERS);
        let mut prof = CycleProfiler::new(vec![(0, "loop".to_string())]);
        let n = s.run_traced(FUEL, &mut NoCoverage, &mut prof);
        assert!(s.is_halted());
        assert_eq!(prof.total(), n);
        n
    });

    b.finish();
}
