//! Shared helpers for the benchmark harness.
//!
//! The paper's evaluation (§7) reports wall-clock times on a PYNQ-Z1
//! board; we cannot synthesise a bitstream, so hardware time is
//! *projected*: ISA-level instruction counts are combined with the
//! cycles-per-instruction ratio measured on the circuit-level simulator
//! and an assumed board clock. The projection method and its constants
//! are documented in `EXPERIMENTS.md`.

use silver_stack::{Backend, RunConfig, Stack, StackResult};

/// Assumed board clock for projections. Silver is unpipelined; tens of
/// MHz is the plausible range for such a design on the PYNQ-Z1's Artix-7
/// fabric (the paper does not state its clock).
pub const BOARD_HZ: f64 = 40_000_000.0;

/// Runs an application on the ISA backend and returns the result.
///
/// # Panics
///
/// Panics when compilation or execution fails — benchmarks require
/// working programs.
#[must_use]
pub fn run_isa(src: &str, args: &[&str], stdin: &[u8]) -> StackResult {
    let stack = Stack::new();
    let r = stack
        .run_source(src, args, stdin, Backend::Isa, &RunConfig::default())
        .expect("program runs");
    assert!(r.exit_code().is_some(), "program must exit cleanly: {:?}", r.exit);
    r
}

/// Runs an application on the circuit-level backend.
///
/// # Panics
///
/// Panics when compilation or execution fails.
#[must_use]
pub fn run_rtl(src: &str, args: &[&str], stdin: &[u8]) -> StackResult {
    let stack = Stack::new();
    let r = stack
        .run_source(src, args, stdin, Backend::Rtl, &RunConfig::default())
        .expect("program runs");
    assert!(r.exit_code().is_some(), "program must exit cleanly: {:?}", r.exit);
    r
}

/// Measures the clock-cycles-per-instruction ratio of the Silver
/// implementation on a small calibration program.
#[must_use]
pub fn measure_cpi() -> f64 {
    let src = "fun loop i acc = if i = 0 then acc else loop (i - 1) (acc + i);
               val _ = exit (loop 200 0 mod 91);";
    let r = run_rtl(src, &["cal"], b"");
    r.cycles.expect("cycles") as f64 / r.instructions as f64
}

/// Projects wall-clock seconds on the board from an ISA instruction
/// count and a measured CPI.
#[must_use]
pub fn project_seconds(instructions: u64, cpi: f64) -> f64 {
    instructions as f64 * cpi / BOARD_HZ
}

/// Deterministic pseudo-random lines for the sort workload.
#[must_use]
pub fn random_lines(n: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    let mut out = Vec::new();
    for _ in 0..n {
        let len = 8 + (state % 24) as usize;
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.push(b'a' + ((state >> 33) % 26) as u8);
        }
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_program_runs() {
        let cpi = measure_cpi();
        assert!(cpi > 1.0 && cpi < 20.0, "plausible CPI, got {cpi}");
    }

    #[test]
    fn random_lines_deterministic() {
        assert_eq!(random_lines(10, 7), random_lines(10, 7));
        assert_eq!(random_lines(5, 1).iter().filter(|&&b| b == b'\n').count(), 5);
    }
}
