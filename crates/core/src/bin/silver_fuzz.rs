//! `silver-fuzz` — coverage-guided differential-testing campaigns over
//! the verified stack.
//!
//! ```sh
//! silver-fuzz [--target NAME] [--shards N] [--budget N|Ns] [--seed N]
//!             [--replay SPEC] [--triage|--no-triage] [--corpus DIR]
//!             [--report FILE] [--regressions FILE] [--progress]
//!             [--metrics FILE] [--no-metrics]
//! ```
//!
//! Targets are the repo's theorem-analog relations (see
//! `campaign::registry` and `silver_stack::full_registry`): `t2`,
//! `t2-gc`, `t2-noopt`, `t9`, `t10`, `syscall`, `t-jet`, `t-snap`,
//! `e2e`, or the
//! selections `t2` (all three compiler configurations), `t2@jet` (the
//! same matrix with the verdict run on the jet engine under full
//! shadow), `t2@both` (both families — the engine-throughput
//! comparison) and `all` (everything). `--budget` accepts a case count
//! (`--budget 2000`, deterministic reports) or a wall-clock duration
//! (`--budget 60s`).
//! The JSON-lines report is written to `BENCH_campaign.json` (override
//! with `--report`); the human summary goes to stderr. `--replay`
//! accepts either `<target>:<hex,hex,...>` (as printed in repro lines)
//! or the path of a corpus seed file, and re-runs that single case.
//!
//! `--progress` prints one line per round to stderr (cases, rate,
//! corpus size, failures); it does not change `BENCH_campaign.json`,
//! which stays deterministic for a case-count budget. Campaign metrics
//! — per-target case-latency histograms, cases/sec, per-shard
//! utilization — are appended to `BENCH_metrics.json` (override with
//! `--metrics FILE`, disable with `--no-metrics`); these are wall-clock
//! observations, deliberately kept out of the deterministic report.
//! When an engine-comparison family ran (target names containing `@`),
//! per-target `cases_per_sec` lines are additionally appended to the
//! report file after its deterministic body — the campaign-throughput
//! experiment's artifact.
//!
//! Exit code: 0 when every case passed, 1 when any failed, 2 on usage
//! or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use campaign::{parse_replay, replay_case, run_campaign_metered, Budget, CampaignConfig, Verdict};
use obs::Registry;
use silver_stack::full_registry;

struct Options {
    target: String,
    replay: Option<String>,
    report: PathBuf,
    metrics: Option<PathBuf>,
    cfg: CampaignConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: silver-fuzz [--target t2|t2@jet|t2@both|t2-gc|t2-noopt|t9|t10|syscall|t-jet|t-snap|e2e|all]\n\
         \x20                 [--shards N] [--budget N|Ns] [--seed N]\n\
         \x20                 [--replay TARGET:HEX,HEX,...|SEEDFILE] [--triage|--no-triage]\n\
         \x20                 [--corpus DIR] [--report FILE] [--regressions FILE]\n\
         \x20                 [--progress] [--metrics FILE] [--no-metrics]"
    );
    std::process::exit(2)
}

/// `"60s"` → wall-clock, `"2000"` → exact case count.
fn parse_budget(spec: &str) -> Option<Budget> {
    if let Some(secs) = spec.strip_suffix('s') {
        return secs.parse::<u64>().ok().map(|s| Budget::Wall(Duration::from_secs(s)));
    }
    spec.parse::<u64>().ok().map(Budget::Cases)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        target: "all".to_string(),
        replay: None,
        report: PathBuf::from("BENCH_campaign.json"),
        metrics: Some(PathBuf::from("BENCH_metrics.json")),
        cfg: CampaignConfig::default(),
    };
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--target" => opts.target = need(args.next()),
            "--shards" => {
                opts.cfg.shards = need(args.next()).parse().unwrap_or_else(|_| usage());
                if opts.cfg.shards == 0 {
                    usage();
                }
            }
            "--budget" => {
                opts.cfg.budget = parse_budget(&need(args.next())).unwrap_or_else(|| usage());
            }
            "--seed" => opts.cfg.seed = need(args.next()).parse().unwrap_or_else(|_| usage()),
            "--replay" => opts.replay = Some(need(args.next())),
            "--triage" => opts.cfg.triage = true,
            "--no-triage" => opts.cfg.triage = false,
            "--corpus" => opts.cfg.corpus_dir = Some(PathBuf::from(need(args.next()))),
            "--report" => opts.report = PathBuf::from(need(args.next())),
            "--regressions" => {
                opts.cfg.regressions_path = Some(PathBuf::from(need(args.next())));
            }
            "--progress" => opts.cfg.progress = true,
            "--metrics" => opts.metrics = Some(PathBuf::from(need(args.next()))),
            "--no-metrics" => opts.metrics = None,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();

    if let Some(spec) = &opts.replay {
        let (target, choices) = match parse_replay(spec) {
            Ok(tc) => tc,
            Err(e) => {
                eprintln!("silver-fuzz: {e}");
                return ExitCode::from(2);
            }
        };
        let targets = match full_registry("all") {
            Ok(t) => t,
            Err(e) => {
                eprintln!("silver-fuzz: {e}");
                return ExitCode::from(2);
            }
        };
        return match replay_case(&targets, &target, &choices) {
            Ok(out) => match out.verdict {
                Verdict::Pass => {
                    eprintln!("silver-fuzz: replay of {target} case passed");
                    ExitCode::SUCCESS
                }
                Verdict::Fail { layer, message } => {
                    eprintln!("silver-fuzz: replay FAILED [{layer}]\n{message}");
                    ExitCode::from(1)
                }
            },
            Err(e) => {
                eprintln!("silver-fuzz: {e}");
                ExitCode::from(2)
            }
        };
    }

    let targets = match full_registry(&opts.target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("silver-fuzz: unknown --target {:?}; known: {e}", opts.target);
            return ExitCode::from(2);
        }
    };
    let registry = Registry::new();
    let report = run_campaign_metered(&targets, &opts.cfg, &registry);
    if let Err(e) = report.write_json(&opts.report) {
        eprintln!("silver-fuzz: cannot write {}: {e}", opts.report.display());
        return ExitCode::from(2);
    }
    eprint!("{}", report.summary());
    eprintln!("silver-fuzz: report written to {}", opts.report.display());
    // Engine-throughput lines: when an engine-comparison family ran,
    // derive cases/sec per target from the case-latency histograms and
    // append them to the report file. Wall-clock observations — kept
    // out of the deterministic report body, appended after it.
    if targets.iter().any(|t| t.name().contains('@')) {
        let mut lines = String::new();
        let mut agg = std::collections::BTreeMap::new();
        for t in &targets {
            let h = registry.histogram(&format!("campaign.case_us.{}", t.name()));
            if h.count() == 0 {
                continue;
            }
            let engine = if t.name().ends_with("@jet") { "jet" } else { "ref" };
            let rate = 1e6 * h.count() as f64 / h.sum().max(1) as f64;
            lines.push_str(&format!(
                "{{\"suite\":\"campaign\",\"engine\":\"{engine}\",\"target\":\"{}\",\"cases\":{},\"cases_per_sec\":{rate:.2}}}\n",
                t.name(),
                h.count(),
            ));
            let (cases, us) = agg.entry(engine).or_insert((0u64, 0u64));
            *cases += h.count();
            *us += h.sum();
        }
        for (engine, (cases, us)) in &agg {
            lines.push_str(&format!(
                "{{\"suite\":\"campaign\",\"engine\":\"{engine}\",\"target\":\"*\",\"cases\":{cases},\"cases_per_sec\":{:.2}}}\n",
                1e6 * *cases as f64 / (*us).max(1) as f64,
            ));
        }
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .open(&opts.report)
            .and_then(|mut f| std::io::Write::write_all(&mut f, lines.as_bytes()));
        match appended {
            Ok(()) => eprintln!(
                "silver-fuzz: engine-rate lines appended to {}",
                opts.report.display()
            ),
            Err(e) => {
                eprintln!("silver-fuzz: cannot append to {}: {e}", opts.report.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &opts.metrics {
        if let Err(e) = registry.append_to(path) {
            eprintln!("silver-fuzz: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("silver-fuzz: metrics appended to {}", path.display());
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
