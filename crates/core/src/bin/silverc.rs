//! `silverc` — compile and run programs on the verified stack from the
//! command line.
//!
//! ```sh
//! silverc prog.cml [--backend isa|rtl|verilog] [--engine ref|jet]
//!         [--shadow] [--shadow-every N] [--arg ARG]...
//!         [--stdin FILE] [--gc] [--no-tail-calls] [--no-direct-calls]
//!         [--stats] [--trace] [--trace-syscalls] [--vcd FILE]
//!         [--profile FILE]
//!         [--checkpoint FILE [--checkpoint-every N]]
//! silverc --resume SNAP [--engine ref|jet] [--shadow] [--stats]
//!         [--checkpoint FILE [--checkpoint-every N]]
//! ```
//!
//! The program's standard output/error are forwarded; the process exits
//! with the program's exit code. `--backend rtl` runs on the circuit-
//! level Silver CPU, `verilog` under the Verilog semantics (slow; small
//! programs only).
//!
//! `--engine jet` (ISA backend only) executes on the translation-cache
//! engine instead of the step-at-a-time reference interpreter — same
//! `Next` semantics, roughly an order of magnitude faster. `--shadow`
//! additionally runs the reference interpreter in lockstep and aborts
//! with a forensics report on the first divergence (theorem J as a
//! runtime check); `--shadow-every N` compares the full register file
//! only every N retires (the PC still every retire) for a cheaper
//! check.
//!
//! `--stats` prints the retired-instruction count, the clock-cycle
//! count (circuit backends), and — on the ISA backend — a per-opcode
//! retire histogram, most-frequent class first.
//!
//! Observability (everything off by default; see `EXPERIMENTS.md`):
//!
//! * `--trace` keeps the last N retired instructions (ISA backend) and
//!   prints them to stderr after the run; N comes from `SILVER_TRACE_CAP`
//!   (default 32). Setting `SILVER_TRACE=1` in the environment enables
//!   this without the flag.
//! * `--trace-syscalls` records every system call — name, configuration,
//!   byte-array size, status byte, descriptor state — and prints the
//!   trace to stderr (ISA backend).
//! * `--vcd FILE` dumps a GTKWave-viewable waveform of every CPU signal
//!   (hardware backends only).
//! * `--profile FILE` attributes execution to source functions — retired
//!   instructions on the ISA backend, true clock cycles on the hardware
//!   backends — and writes flamegraph folded stacks to FILE (`-` for
//!   stderr).
//!
//! Snapshot/replay (ISA backend only; see the "Snapshot/replay" section
//! of `EXPERIMENTS.md`):
//!
//! * `--checkpoint FILE` rewrites FILE with a rolling snapshot of the
//!   run every `--checkpoint-every N` retires (default 1 000 000),
//!   atomically — a killed run loses at most one interval of progress.
//! * `--resume SNAP` resumes a snapshot instead of compiling a source
//!   file; the program, its arguments and its consumed stdin all live
//!   inside the snapshot. Either engine can resume a snapshot written
//!   under the other — theorem J over serialised state. Output streams
//!   are replayed in full (the snapshot carries the prefix's I/O
//!   events), so resumed stdout is byte-identical to an uninterrupted
//!   run's.
//! * with `--shadow`, a configured checkpoint cadence also anchors the
//!   divergence forensics: a theorem-J violation replays from the last
//!   good checkpoint instead of from boot, and the anchor state is
//!   written to the `--checkpoint` file for `--resume`-based triage.

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

use silver_stack::{Backend, Engine, ExitStatus, Observations, Observe, RunConfig, Stack};

struct Options {
    file: String,
    backend: Backend,
    engine: Engine,
    shadow: Option<u64>,
    args: Vec<String>,
    stdin: Vec<u8>,
    stats: bool,
    trace: bool,
    trace_syscalls: bool,
    vcd: Option<PathBuf>,
    profile: Option<String>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: Option<PathBuf>,
    stack: Stack,
}

fn usage() -> ! {
    eprintln!(
        "usage: silverc FILE [--backend isa|rtl|verilog] [--engine ref|jet] \
         [--shadow] [--shadow-every N] [--arg ARG]... \
         [--stdin FILE|-] [--gc] [--no-tail-calls] [--no-direct-calls] [--no-const-fold] \
         [--stats] [--trace] [--trace-syscalls] [--vcd FILE] [--profile FILE|-] \
         [--checkpoint FILE] [--checkpoint-every N]\n\
         \x20      silverc --resume SNAP [--engine ref|jet] [--shadow] [--stats] \
         [--checkpoint FILE] [--checkpoint-every N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        backend: Backend::Isa,
        engine: Engine::Ref,
        shadow: None,
        args: Vec::new(),
        stdin: Vec::new(),
        stats: false,
        trace: std::env::var("SILVER_TRACE").is_ok_and(|v| v == "1"),
        trace_syscalls: false,
        vcd: None,
        profile: None,
        checkpoint: None,
        checkpoint_every: None,
        resume: None,
        stack: Stack::new(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--backend" => {
                opts.backend = match args.next().as_deref() {
                    Some("isa") => Backend::Isa,
                    Some("rtl") => Backend::Rtl,
                    Some("verilog") => Backend::Verilog,
                    _ => usage(),
                }
            }
            "--engine" => {
                opts.engine = match args.next().as_deref() {
                    Some("ref") => Engine::Ref,
                    Some("jet") => Engine::Jet,
                    _ => usage(),
                }
            }
            "--shadow" => opts.shadow = Some(1),
            "--shadow-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => opts.shadow = Some(n),
                _ => usage(),
            },
            "--arg" => match args.next() {
                Some(v) => opts.args.push(v),
                None => usage(),
            },
            "--stdin" => match args.next().as_deref() {
                Some("-") => {
                    std::io::stdin().read_to_end(&mut opts.stdin).expect("read stdin");
                }
                Some(path) => {
                    opts.stdin = std::fs::read(path).unwrap_or_else(|e| {
                        eprintln!("silverc: cannot read stdin file `{path}`: {e}");
                        std::process::exit(2);
                    });
                }
                None => usage(),
            },
            "--gc" => opts.stack.compiler.gc = true,
            "--no-tail-calls" => opts.stack.compiler.tail_calls = false,
            "--no-direct-calls" => opts.stack.compiler.direct_calls = false,
            "--no-const-fold" => opts.stack.compiler.const_fold = false,
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--trace-syscalls" => opts.trace_syscalls = true,
            "--vcd" => match args.next() {
                Some(v) => opts.vcd = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--profile" => match args.next() {
                Some(v) => opts.profile = Some(v),
                None => usage(),
            },
            "--checkpoint" => match args.next() {
                Some(v) => opts.checkpoint = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--checkpoint-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => opts.checkpoint_every = Some(n),
                _ => usage(),
            },
            "--resume" => match args.next() {
                Some(v) => opts.resume = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') && opts.file.is_empty() => opts.file = f.to_string(),
            _ => usage(),
        }
    }
    if opts.file.is_empty() && opts.resume.is_none() {
        usage();
    }
    if opts.resume.is_some() {
        if !opts.file.is_empty() || !opts.args.is_empty() || !opts.stdin.is_empty() {
            eprintln!(
                "silverc: --resume takes no source file, --arg or --stdin — \
                 program, arguments and consumed input live inside the snapshot"
            );
            std::process::exit(2);
        }
        if opts.trace || opts.trace_syscalls || opts.profile.is_some() || opts.vcd.is_some() {
            eprintln!(
                "silverc: --trace/--trace-syscalls/--profile/--vcd require a fresh run, \
                 not --resume (the observers replay from boot)"
            );
            std::process::exit(2);
        }
        if opts.backend != Backend::Isa {
            eprintln!("silverc: --resume requires --backend isa");
            std::process::exit(2);
        }
    }
    if opts.checkpoint.is_some() && opts.backend != Backend::Isa {
        eprintln!("silverc: --checkpoint requires --backend isa");
        std::process::exit(2);
    }
    if opts.checkpoint_every.is_some() && opts.checkpoint.is_none() && opts.shadow.is_none() {
        eprintln!("silverc: --checkpoint-every requires --checkpoint or --shadow");
        std::process::exit(2);
    }
    if opts.vcd.is_some() && opts.backend == Backend::Isa {
        eprintln!("silverc: --vcd requires --backend rtl or --backend verilog");
        std::process::exit(2);
    }
    if opts.trace && opts.backend != Backend::Isa {
        eprintln!("silverc: --trace requires --backend isa");
        std::process::exit(2);
    }
    if opts.trace_syscalls && opts.backend != Backend::Isa {
        eprintln!("silverc: --trace-syscalls requires --backend isa");
        std::process::exit(2);
    }
    if opts.engine == Engine::Jet && opts.backend != Backend::Isa {
        eprintln!("silverc: --engine jet requires --backend isa");
        std::process::exit(2);
    }
    if opts.shadow.is_some() && opts.engine != Engine::Jet {
        eprintln!("silverc: --shadow/--shadow-every require --engine jet");
        std::process::exit(2);
    }
    opts
}

fn trace_cap() -> usize {
    std::env::var("SILVER_TRACE_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let rc = RunConfig {
        engine: opts.engine,
        shadow: opts.shadow,
        checkpoint: opts.checkpoint.clone(),
        checkpoint_interval: opts.checkpoint_every,
        ..RunConfig::default()
    };

    let (result, obs) = if let Some(snap) = &opts.resume {
        match opts.stack.resume_file(snap, &rc) {
            Ok(r) => (r, Observations::default()),
            Err(e) => {
                eprintln!("silverc: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let src = match std::fs::read_to_string(&opts.file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("silverc: cannot read `{}`: {e}", opts.file);
                return ExitCode::from(2);
            }
        };
        let mut argv: Vec<&str> = vec![opts.file.as_str()];
        argv.extend(opts.args.iter().map(String::as_str));

        let ocfg = Observe {
            retire_log: if opts.trace { trace_cap() } else { 0 },
            profile: opts.profile.is_some(),
            syscalls: opts.trace_syscalls,
            vcd: opts.vcd.clone(),
        };
        match opts.stack.run_source_observed(&src, &argv, &opts.stdin, opts.backend, &rc, &ocfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("silverc: {e}");
                return ExitCode::from(2);
            }
        }
    };
    std::io::stdout().write_all(&result.stdout).expect("stdout");
    std::io::stderr().write_all(&result.stderr).expect("stderr");
    if let Some(trace) = &obs.syscalls {
        eprintln!("silverc: syscall trace ({} calls):", trace.len());
        for line in trace.render().lines() {
            eprintln!("silverc:   {line}");
        }
    }
    if let Some(ring) = &obs.retire_log {
        let lines = ring.render();
        eprintln!(
            "silverc: retire log (last {} of {} retired):",
            lines.len(),
            ring.total()
        );
        for line in &lines {
            eprintln!("silverc:   {line}");
        }
    }
    if let Some(prof) = &obs.profile {
        let folded = prof.folded();
        match opts.profile.as_deref() {
            Some("-") => eprint!("{folded}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, &folded) {
                    eprintln!("silverc: cannot write profile `{path}`: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("silverc: profile written to {path}");
            }
            None => {}
        }
    }
    if let Some(path) = &obs.vcd {
        eprintln!("silverc: vcd written to {}", path.display());
    }
    if opts.stats {
        eprintln!("silverc: instructions = {}", result.instructions);
        if let Some(c) = result.cycles {
            eprintln!("silverc: clock cycles = {c}");
        }
        if let Some(stats) = &result.stats {
            eprintln!(
                "silverc: opcode histogram ({}/{} classes exercised):",
                stats.opcodes_exercised(),
                ag32::Opcode::COUNT,
            );
            for (op, count) in stats.histogram() {
                eprintln!("silverc:   {:<18} {count}", op.name());
            }
        }
    }
    match result.exit {
        ExitStatus::Exited(c) => ExitCode::from(c),
        other => {
            eprintln!("silverc: abnormal termination: {other:?}");
            ExitCode::from(2)
        }
    }
}
