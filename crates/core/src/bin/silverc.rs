//! `silverc` — compile and run programs on the verified stack from the
//! command line.
//!
//! ```sh
//! silverc prog.cml [--backend isa|rtl|verilog] [--arg ARG]...
//!         [--stdin FILE] [--gc] [--no-tail-calls] [--no-direct-calls]
//!         [--stats]
//! ```
//!
//! The program's standard output/error are forwarded; the process exits
//! with the program's exit code. `--backend rtl` runs on the circuit-
//! level Silver CPU, `verilog` under the Verilog semantics (slow; small
//! programs only).
//!
//! `--stats` prints the retired-instruction count, the clock-cycle
//! count (circuit backends), and — on the ISA backend — a per-opcode
//! retire histogram, most-frequent class first.

use std::io::{Read as _, Write as _};
use std::process::ExitCode;

use silver_stack::{Backend, ExitStatus, RunConfig, Stack};

struct Options {
    file: String,
    backend: Backend,
    args: Vec<String>,
    stdin: Vec<u8>,
    stats: bool,
    stack: Stack,
}

fn usage() -> ! {
    eprintln!(
        "usage: silverc FILE [--backend isa|rtl|verilog] [--arg ARG]... \
         [--stdin FILE|-] [--gc] [--no-tail-calls] [--no-direct-calls] [--no-const-fold] [--stats]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        backend: Backend::Isa,
        args: Vec::new(),
        stdin: Vec::new(),
        stats: false,
        stack: Stack::new(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--backend" => {
                opts.backend = match args.next().as_deref() {
                    Some("isa") => Backend::Isa,
                    Some("rtl") => Backend::Rtl,
                    Some("verilog") => Backend::Verilog,
                    _ => usage(),
                }
            }
            "--arg" => match args.next() {
                Some(v) => opts.args.push(v),
                None => usage(),
            },
            "--stdin" => match args.next().as_deref() {
                Some("-") => {
                    std::io::stdin().read_to_end(&mut opts.stdin).expect("read stdin");
                }
                Some(path) => {
                    opts.stdin = std::fs::read(path).unwrap_or_else(|e| {
                        eprintln!("silverc: cannot read stdin file `{path}`: {e}");
                        std::process::exit(2);
                    });
                }
                None => usage(),
            },
            "--gc" => opts.stack.compiler.gc = true,
            "--no-tail-calls" => opts.stack.compiler.tail_calls = false,
            "--no-direct-calls" => opts.stack.compiler.direct_calls = false,
            "--no-const-fold" => opts.stack.compiler.const_fold = false,
            "--stats" => opts.stats = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') && opts.file.is_empty() => opts.file = f.to_string(),
            _ => usage(),
        }
    }
    if opts.file.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("silverc: cannot read `{}`: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let mut argv: Vec<&str> = vec![opts.file.as_str()];
    argv.extend(opts.args.iter().map(String::as_str));

    let result = match opts.stack.run_source(
        &src,
        &argv,
        &opts.stdin,
        opts.backend,
        &RunConfig::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("silverc: {e}");
            return ExitCode::from(2);
        }
    };
    std::io::stdout().write_all(&result.stdout).expect("stdout");
    std::io::stderr().write_all(&result.stderr).expect("stderr");
    if opts.stats {
        eprintln!("silverc: instructions = {}", result.instructions);
        if let Some(c) = result.cycles {
            eprintln!("silverc: clock cycles = {c}");
        }
        if let Some(stats) = &result.stats {
            eprintln!(
                "silverc: opcode histogram ({}/{} classes exercised):",
                stats.opcodes_exercised(),
                ag32::Opcode::COUNT,
            );
            for (op, count) in stats.histogram() {
                eprintln!("silverc:   {:<18} {count}", op.name());
            }
        }
    }
    match result.exit {
        ExitStatus::Exited(c) => ExitCode::from(c),
        other => {
            eprintln!("silverc: abnormal termination: {other:?}");
            ExitCode::from(2)
        }
    }
}
