//! `silver-client` — talk to a `silver-serve` instance.
//!
//! ```sh
//! silver-client (--unix PATH | --tcp ADDR) submit (--app NAME | --source FILE)
//!               [--tenant NAME] [--arg ARG]... [--stdin FILE|-]
//!               [--fuel N] [--engine auto|ref|jet] [--shadow] [--meta]
//! silver-client (--unix PATH | --tcp ADDR) stats
//! silver-client (--unix PATH | --tcp ADDR) ping
//! silver-client (--unix PATH | --tcp ADDR) shutdown
//! silver-client (--unix PATH | --tcp ADDR) loadgen [--tenants N] [--jobs N]
//!               [--distinct N] [--conns N] [--seed N] [--fuel N]
//! silver-client (--unix PATH | --tcp ADDR) trace JOB_ID [--json | --canonical]
//! silver-client (--unix PATH | --tcp ADDR) top [--every MS] [--count N]
//! ```
//!
//! `submit` forwards the job's stdout/stderr and exits with its exit
//! code (2 for any abnormal status); `--meta` additionally prints
//! `job=`/`cached=`/`engine=`/`shadowed=`/`instructions=` to stderr.
//! `--app` picks a program from the built-in corpus (`hello`, `wc`,
//! `cat`, `sort`, …). `loadgen` replays the seeded mixed workload from
//! `service::loadgen` — N tenants × M jobs over the app corpus with
//! deliberate duplicates — and prints a `service-loadgen` JSON summary
//! line to stdout.
//!
//! `trace JOB_ID` fetches a completed job's span tree (the id a
//! `--meta` submit printed) and renders it as an indented tree —
//! `--json` emits Chrome trace-event JSON for Perfetto, `--canonical`
//! the byte-stable logical-clock form the determinism test diffs.
//! `top` polls the server's stats and prints one live line per poll:
//! interval QPS, cache hit rate, in-flight jobs, and per-shard
//! utilization.

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

use service::wire::Response;
use service::{
    loadgen, parse_stats, Client, Endpoint, EnginePref, JobSpec, JobStatus, LoadgenConfig,
    ShadowPref, StatsSnapshot,
};
use silver_stack::apps;

fn usage() -> ! {
    eprintln!(
        "usage: silver-client (--unix PATH | --tcp ADDR) COMMAND\n\
         commands:\n\
         \x20 submit (--app NAME | --source FILE) [--tenant NAME] [--arg ARG]...\n\
         \x20        [--stdin FILE|-] [--fuel N] [--engine auto|ref|jet] [--shadow] [--meta]\n\
         \x20 stats | ping | shutdown\n\
         \x20 loadgen [--tenants N] [--jobs N] [--distinct N] [--conns N] [--seed N] [--fuel N]\n\
         \x20 trace JOB_ID [--json | --canonical]\n\
         \x20 top [--every MS] [--count N]"
    );
    std::process::exit(2)
}

fn app_source(name: &str) -> String {
    match apps::ALL.iter().find(|(n, _)| *n == name) {
        Some((_, src)) => (*src).to_string(),
        None => {
            let known: Vec<&str> = apps::ALL.iter().map(|(n, _)| *n).collect();
            eprintln!("silver-client: unknown --app `{name}`; known: {}", known.join(", "));
            std::process::exit(2);
        }
    }
}

struct Submit {
    spec: JobSpec,
    meta: bool,
}

fn parse_submit(args: &mut impl Iterator<Item = String>) -> Submit {
    let mut spec = JobSpec::new("default", "");
    let mut meta = false;
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--app" => spec.source = app_source(&need(args.next())),
            "--source" => {
                let path = need(args.next());
                spec.source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("silver-client: cannot read `{path}`: {e}");
                    std::process::exit(2);
                });
            }
            "--tenant" => spec.tenant = need(args.next()),
            "--arg" => spec.args.push(need(args.next())),
            "--stdin" => match need(args.next()).as_str() {
                "-" => {
                    std::io::stdin().read_to_end(&mut spec.stdin).expect("read stdin");
                }
                path => {
                    spec.stdin = std::fs::read(path).unwrap_or_else(|e| {
                        eprintln!("silver-client: cannot read stdin file `{path}`: {e}");
                        std::process::exit(2);
                    });
                }
            },
            "--fuel" => {
                spec.fuel = need(args.next()).parse().unwrap_or_else(|_| usage());
            }
            "--engine" => {
                spec.engine = match need(args.next()).as_str() {
                    "auto" => EnginePref::Auto,
                    "ref" => EnginePref::Ref,
                    "jet" => EnginePref::Jet,
                    _ => usage(),
                }
            }
            "--shadow" => spec.shadow = ShadowPref::Always,
            "--meta" => meta = true,
            _ => usage(),
        }
    }
    if spec.source.is_empty() {
        eprintln!("silver-client: submit needs --app NAME or --source FILE");
        std::process::exit(2);
    }
    Submit { spec, meta }
}

fn parse_loadgen(args: &mut impl Iterator<Item = String>) -> LoadgenConfig {
    let mut cfg = LoadgenConfig::default();
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    let num = |v: Option<String>| need(v).parse::<u64>().unwrap_or_else(|_| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => cfg.tenants = num(args.next()).max(1) as usize,
            "--jobs" => cfg.jobs = num(args.next()) as usize,
            "--distinct" => cfg.distinct = num(args.next()).max(1) as usize,
            "--conns" => cfg.conns = num(args.next()).max(1) as usize,
            "--seed" => cfg.seed = num(args.next()),
            "--fuel" => cfg.fuel = num(args.next()).max(1),
            _ => usage(),
        }
    }
    cfg
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect(endpoint).unwrap_or_else(|e| {
        eprintln!("silver-client: cannot connect to {endpoint}: {e}");
        std::process::exit(2);
    })
}

fn run_submit(endpoint: &Endpoint, sub: &Submit) -> ExitCode {
    let mut client = connect(endpoint);
    match client.submit(&sub.spec) {
        Ok(Response::Done(out)) => {
            std::io::stdout().write_all(&out.stdout).expect("stdout");
            std::io::stderr().write_all(&out.stderr).expect("stderr");
            if sub.meta {
                eprintln!(
                    "silver-client: job={} cached={} engine={} shadowed={} migrations={} instructions={}",
                    out.job_id,
                    out.cached,
                    out.engine.name(),
                    out.shadowed,
                    out.migrations,
                    out.instructions,
                );
            }
            match out.status {
                JobStatus::Exited(c) => ExitCode::from(c),
                other => {
                    eprintln!("silver-client: abnormal termination: {other}");
                    if !out.message.is_empty() {
                        eprintln!("silver-client: {}", out.message);
                    }
                    ExitCode::from(2)
                }
            }
        }
        Ok(Response::Rejected { code, reason }) => {
            eprintln!("silver-client: rejected (code {code}): {reason}");
            ExitCode::from(2)
        }
        Ok(other) => {
            eprintln!("silver-client: unexpected response: {other:?}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("silver-client: {e}");
            ExitCode::from(2)
        }
    }
}

/// Per-shard utilization gauges (`service.shard_util.N`) out of the
/// stats text's registry lines, in shard order.
fn shard_utils(text: &str) -> Vec<f64> {
    let mut utils: Vec<(usize, f64)> = Vec::new();
    for line in text.lines() {
        let Some(at) = line.find("\"name\":\"service.shard_util.") else { continue };
        let rest = &line[at + "\"name\":\"service.shard_util.".len()..];
        let Some(q) = rest.find('"') else { continue };
        let Ok(shard) = rest[..q].parse::<usize>() else { continue };
        let Some(vat) = line.find("\"value\":") else { continue };
        let vrest = &line[vat + 8..];
        let vend = vrest.find('}').unwrap_or(vrest.len());
        let Ok(v) = vrest[..vend].parse::<f64>() else { continue };
        utils.push((shard, v));
    }
    utils.sort_by_key(|&(s, _)| s);
    utils.into_iter().map(|(_, v)| v).collect()
}

/// Live-stats mode: poll `stats`, diff consecutive snapshots, print one
/// line per poll. `count == 0` polls until the connection drops.
fn run_top(endpoint: &Endpoint, every_ms: u64, count: u64) -> ExitCode {
    let mut client = connect(endpoint);
    let mut prev: Option<StatsSnapshot> = None;
    let mut polls: u64 = 0;
    loop {
        let text = match client.stats() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("silver-client: top: {e}");
                // A dropped connection after at least one poll is a
                // normal way for a watched server to go away.
                return if polls > 0 { ExitCode::SUCCESS } else { ExitCode::from(2) };
            }
        };
        let Some(snap) = parse_stats(&text) else {
            eprintln!("silver-client: top: stats text carries no service summary line");
            return ExitCode::from(2);
        };
        // Interval QPS from the delta against the previous poll; first
        // poll falls back to the lifetime average.
        let qps = match prev {
            Some(p) if snap.uptime_us > p.uptime_us => {
                (snap.jobs - p.jobs) as f64 / ((snap.uptime_us - p.uptime_us) as f64 / 1e6)
            }
            _ => snap.qps,
        };
        let utils = shard_utils(&text);
        let util_txt = if utils.is_empty() {
            String::from("-")
        } else {
            utils.iter().map(|u| format!("{:.0}%", u * 100.0)).collect::<Vec<_>>().join(" ")
        };
        println!(
            "seq={} up={:.1}s jobs={} inflight={} qps={:.1} hit={:.1}% p50={}us p99={}us div={} mig={} shards[{}]",
            snap.seq,
            snap.uptime_us as f64 / 1e6,
            snap.jobs,
            snap.inflight,
            qps,
            snap.cache_hit_rate * 100.0,
            snap.p50_us,
            snap.p99_us,
            snap.divergences,
            snap.migrations,
            util_txt,
        );
        prev = Some(snap);
        polls += 1;
        if count != 0 && polls >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(every_ms));
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut endpoint = None;
    let mut command = None;
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--unix" => endpoint = Some(Endpoint::Unix(PathBuf::from(need(args.next())))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(need(args.next()))),
            "--help" | "-h" => usage(),
            cmd => {
                command = Some(cmd.to_string());
                break;
            }
        }
    }
    let Some(endpoint) = endpoint else { usage() };
    let Some(command) = command else { usage() };

    match command.as_str() {
        "submit" => {
            let sub = parse_submit(&mut args);
            run_submit(&endpoint, &sub)
        }
        "stats" => match connect(&endpoint).stats() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("silver-client: {e}");
                ExitCode::from(2)
            }
        },
        "ping" => match connect(&endpoint).ping() {
            Ok(()) => {
                eprintln!("silver-client: pong");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("silver-client: {e}");
                ExitCode::from(2)
            }
        },
        "shutdown" => match connect(&endpoint).shutdown() {
            Ok(()) => {
                eprintln!("silver-client: server acknowledged shutdown");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("silver-client: {e}");
                ExitCode::from(2)
            }
        },
        "trace" => {
            let job_id: u64 = need(args.next()).parse().unwrap_or_else(|_| usage());
            let mut mode = "text";
            for a in args.by_ref() {
                match a.as_str() {
                    "--json" => mode = "json",
                    "--canonical" => mode = "canonical",
                    _ => usage(),
                }
            }
            match connect(&endpoint).trace(job_id) {
                Ok(Some(t)) => {
                    match mode {
                        "json" => println!("{}", obs::trace::chrome_trace_json(&[t], &[])),
                        "canonical" => print!("{}", t.canonical_text()),
                        _ => print!("{}", t.render_text()),
                    }
                    ExitCode::SUCCESS
                }
                Ok(None) => {
                    eprintln!(
                        "silver-client: job {job_id} has no stored trace (unknown id, or \
                         evicted from the server's bounded trace store)"
                    );
                    ExitCode::from(1)
                }
                Err(e) => {
                    eprintln!("silver-client: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "top" => {
            let mut every_ms: u64 = 1000;
            let mut count: u64 = 0; // 0 = poll forever
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--every" => {
                        every_ms = need(args.next()).parse().unwrap_or_else(|_| usage());
                    }
                    "--count" => {
                        count = need(args.next()).parse().unwrap_or_else(|_| usage());
                    }
                    _ => usage(),
                }
            }
            run_top(&endpoint, every_ms.max(1), count)
        }
        "loadgen" => {
            let cfg = parse_loadgen(&mut args);
            match loadgen(&endpoint, &cfg, apps::ALL) {
                Ok(summary) => {
                    println!("{}", summary.json_line());
                    if summary.divergences > 0 {
                        eprintln!(
                            "silver-client: {} shadow divergences — engine bug!",
                            summary.divergences
                        );
                        return ExitCode::from(1);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("silver-client: loadgen: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
