//! `silver-client` — talk to a `silver-serve` instance.
//!
//! ```sh
//! silver-client (--unix PATH | --tcp ADDR) submit (--app NAME | --source FILE)
//!               [--tenant NAME] [--arg ARG]... [--stdin FILE|-]
//!               [--fuel N] [--engine auto|ref|jet] [--shadow] [--meta]
//! silver-client (--unix PATH | --tcp ADDR) stats
//! silver-client (--unix PATH | --tcp ADDR) ping
//! silver-client (--unix PATH | --tcp ADDR) shutdown
//! silver-client (--unix PATH | --tcp ADDR) loadgen [--tenants N] [--jobs N]
//!               [--distinct N] [--conns N] [--seed N] [--fuel N]
//! ```
//!
//! `submit` forwards the job's stdout/stderr and exits with its exit
//! code (2 for any abnormal status); `--meta` additionally prints
//! `cached=`/`engine=`/`shadowed=`/`instructions=` to stderr. `--app`
//! picks a program from the built-in corpus (`hello`, `wc`, `cat`,
//! `sort`, …). `loadgen` replays the seeded mixed workload from
//! `service::loadgen` — N tenants × M jobs over the app corpus with
//! deliberate duplicates — and prints a `service-loadgen` JSON summary
//! line to stdout.

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

use service::wire::Response;
use service::{
    loadgen, Client, Endpoint, EnginePref, JobSpec, JobStatus, LoadgenConfig, ShadowPref,
};
use silver_stack::apps;

fn usage() -> ! {
    eprintln!(
        "usage: silver-client (--unix PATH | --tcp ADDR) COMMAND\n\
         commands:\n\
         \x20 submit (--app NAME | --source FILE) [--tenant NAME] [--arg ARG]...\n\
         \x20        [--stdin FILE|-] [--fuel N] [--engine auto|ref|jet] [--shadow] [--meta]\n\
         \x20 stats | ping | shutdown\n\
         \x20 loadgen [--tenants N] [--jobs N] [--distinct N] [--conns N] [--seed N] [--fuel N]"
    );
    std::process::exit(2)
}

fn app_source(name: &str) -> String {
    match apps::ALL.iter().find(|(n, _)| *n == name) {
        Some((_, src)) => (*src).to_string(),
        None => {
            let known: Vec<&str> = apps::ALL.iter().map(|(n, _)| *n).collect();
            eprintln!("silver-client: unknown --app `{name}`; known: {}", known.join(", "));
            std::process::exit(2);
        }
    }
}

struct Submit {
    spec: JobSpec,
    meta: bool,
}

fn parse_submit(args: &mut impl Iterator<Item = String>) -> Submit {
    let mut spec = JobSpec::new("default", "");
    let mut meta = false;
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--app" => spec.source = app_source(&need(args.next())),
            "--source" => {
                let path = need(args.next());
                spec.source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("silver-client: cannot read `{path}`: {e}");
                    std::process::exit(2);
                });
            }
            "--tenant" => spec.tenant = need(args.next()),
            "--arg" => spec.args.push(need(args.next())),
            "--stdin" => match need(args.next()).as_str() {
                "-" => {
                    std::io::stdin().read_to_end(&mut spec.stdin).expect("read stdin");
                }
                path => {
                    spec.stdin = std::fs::read(path).unwrap_or_else(|e| {
                        eprintln!("silver-client: cannot read stdin file `{path}`: {e}");
                        std::process::exit(2);
                    });
                }
            },
            "--fuel" => {
                spec.fuel = need(args.next()).parse().unwrap_or_else(|_| usage());
            }
            "--engine" => {
                spec.engine = match need(args.next()).as_str() {
                    "auto" => EnginePref::Auto,
                    "ref" => EnginePref::Ref,
                    "jet" => EnginePref::Jet,
                    _ => usage(),
                }
            }
            "--shadow" => spec.shadow = ShadowPref::Always,
            "--meta" => meta = true,
            _ => usage(),
        }
    }
    if spec.source.is_empty() {
        eprintln!("silver-client: submit needs --app NAME or --source FILE");
        std::process::exit(2);
    }
    Submit { spec, meta }
}

fn parse_loadgen(args: &mut impl Iterator<Item = String>) -> LoadgenConfig {
    let mut cfg = LoadgenConfig::default();
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    let num = |v: Option<String>| need(v).parse::<u64>().unwrap_or_else(|_| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => cfg.tenants = num(args.next()).max(1) as usize,
            "--jobs" => cfg.jobs = num(args.next()) as usize,
            "--distinct" => cfg.distinct = num(args.next()).max(1) as usize,
            "--conns" => cfg.conns = num(args.next()).max(1) as usize,
            "--seed" => cfg.seed = num(args.next()),
            "--fuel" => cfg.fuel = num(args.next()).max(1),
            _ => usage(),
        }
    }
    cfg
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect(endpoint).unwrap_or_else(|e| {
        eprintln!("silver-client: cannot connect to {endpoint}: {e}");
        std::process::exit(2);
    })
}

fn run_submit(endpoint: &Endpoint, sub: &Submit) -> ExitCode {
    let mut client = connect(endpoint);
    match client.submit(&sub.spec) {
        Ok(Response::Done(out)) => {
            std::io::stdout().write_all(&out.stdout).expect("stdout");
            std::io::stderr().write_all(&out.stderr).expect("stderr");
            if sub.meta {
                eprintln!(
                    "silver-client: cached={} engine={} shadowed={} migrations={} instructions={}",
                    out.cached,
                    out.engine.name(),
                    out.shadowed,
                    out.migrations,
                    out.instructions,
                );
            }
            match out.status {
                JobStatus::Exited(c) => ExitCode::from(c),
                other => {
                    eprintln!("silver-client: abnormal termination: {other}");
                    if !out.message.is_empty() {
                        eprintln!("silver-client: {}", out.message);
                    }
                    ExitCode::from(2)
                }
            }
        }
        Ok(Response::Rejected { code, reason }) => {
            eprintln!("silver-client: rejected (code {code}): {reason}");
            ExitCode::from(2)
        }
        Ok(other) => {
            eprintln!("silver-client: unexpected response: {other:?}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("silver-client: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut endpoint = None;
    let mut command = None;
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--unix" => endpoint = Some(Endpoint::Unix(PathBuf::from(need(args.next())))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(need(args.next()))),
            "--help" | "-h" => usage(),
            cmd => {
                command = Some(cmd.to_string());
                break;
            }
        }
    }
    let Some(endpoint) = endpoint else { usage() };
    let Some(command) = command else { usage() };

    match command.as_str() {
        "submit" => {
            let sub = parse_submit(&mut args);
            run_submit(&endpoint, &sub)
        }
        "stats" => match connect(&endpoint).stats() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("silver-client: {e}");
                ExitCode::from(2)
            }
        },
        "ping" => match connect(&endpoint).ping() {
            Ok(()) => {
                eprintln!("silver-client: pong");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("silver-client: {e}");
                ExitCode::from(2)
            }
        },
        "shutdown" => match connect(&endpoint).shutdown() {
            Ok(()) => {
                eprintln!("silver-client: server acknowledged shutdown");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("silver-client: {e}");
                ExitCode::from(2)
            }
        },
        "loadgen" => {
            let cfg = parse_loadgen(&mut args);
            match loadgen(&endpoint, &cfg, apps::ALL) {
                Ok(summary) => {
                    println!("{}", summary.json_line());
                    if summary.divergences > 0 {
                        eprintln!(
                            "silver-client: {} shadow divergences — engine bug!",
                            summary.divergences
                        );
                        return ExitCode::from(1);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("silver-client: loadgen: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
