//! `silver-serve` — the multi-tenant execution server.
//!
//! ```sh
//! silver-serve (--unix PATH | --tcp ADDR) [--shards N] [--queue N]
//!              [--cache N] [--shadow-every N] [--shadow-sample N]
//!              [--checkpoint-every N] [--engine ref|jet]
//!              [--tenant-fuel N] [--tenant-depth N] [--max-job-fuel N]
//!              [--bench FILE] [--stats-every MS] [--trace-dir DIR]
//!              [--trace-cap N] [--flight-cap N] [--fault-xor HEX]
//! ```
//!
//! Accepts compile+run jobs over the length-prefixed wire protocol
//! (see `EXPERIMENTS.md`, "Silver as a service"), executes them on a
//! sharded worker pool, and serves until a client sends `shutdown` (or
//! the process receives SIGINT/SIGTERM — the bench artifact and trace
//! dumps are flushed either way). With `--bench`, one time-series
//! stats line is appended every `--stats-every` milliseconds and the
//! full registry follows on shutdown. With `--trace-dir`, the
//! per-shard flight recorder dumps Chrome trace-event JSON
//! (Perfetto-loadable) on shadow divergence, worker death and
//! shutdown; individual span trees are available live via the client's
//! `trace` command.
//!
//! Safety defaults: jobs run on the jet engine with shadow sampling
//! **on** (every 8th job is checked in full lockstep against the
//! reference interpreter). `--shadow-every 0` turns sampling off;
//! individual jobs may still force a check but can never opt out of a
//! sampled one.

use std::path::PathBuf;
use std::process::ExitCode;

use service::{serve, Endpoint, ServeEngine, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: silver-serve (--unix PATH | --tcp ADDR) [--shards N] [--queue N] [--cache N]\n\
         \x20                  [--shadow-every N] [--shadow-sample N] [--checkpoint-every N]\n\
         \x20                  [--engine ref|jet] [--tenant-fuel N] [--tenant-depth N]\n\
         \x20                  [--max-job-fuel N] [--bench FILE] [--stats-every MS]\n\
         \x20                  [--trace-dir DIR] [--trace-cap N] [--flight-cap N]\n\
         \x20                  [--fault-xor HEX]"
    );
    std::process::exit(2)
}

struct Options {
    endpoint: Option<Endpoint>,
    bench: Option<PathBuf>,
    cfg: ServiceConfig,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options { endpoint: None, bench: None, cfg: ServiceConfig::default() };
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    let num = |v: Option<String>| need(v).parse::<u64>().unwrap_or_else(|_| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--unix" => opts.endpoint = Some(Endpoint::Unix(PathBuf::from(need(args.next())))),
            "--tcp" => opts.endpoint = Some(Endpoint::Tcp(need(args.next()))),
            "--shards" => opts.cfg.shards = num(args.next()).max(1) as usize,
            "--queue" => opts.cfg.queue_depth = num(args.next()).max(1) as usize,
            "--cache" => opts.cfg.cache_capacity = num(args.next()) as usize,
            "--shadow-every" => opts.cfg.shadow.every_jobs = num(args.next()),
            "--shadow-sample" => opts.cfg.shadow.sample = num(args.next()).max(1),
            "--checkpoint-every" => opts.cfg.checkpoint_every = num(args.next()).max(1),
            "--engine" => {
                opts.cfg.default_engine = match need(args.next()).as_str() {
                    "ref" => ServeEngine::Ref,
                    "jet" => ServeEngine::Jet,
                    _ => usage(),
                }
            }
            "--tenant-fuel" => opts.cfg.tenant.fuel_budget = num(args.next()),
            "--tenant-depth" => opts.cfg.tenant.max_in_flight = num(args.next()) as usize,
            "--max-job-fuel" => opts.cfg.tenant.max_job_fuel = num(args.next()),
            "--bench" => opts.bench = Some(PathBuf::from(need(args.next()))),
            "--stats-every" => opts.cfg.stats_every_ms = num(args.next()),
            "--trace-dir" => opts.cfg.trace_dir = Some(PathBuf::from(need(args.next()))),
            "--trace-cap" => opts.cfg.trace_capacity = num(args.next()) as usize,
            "--flight-cap" => opts.cfg.flight_capacity = num(args.next()).max(1) as usize,
            // Fault injection for divergence drills (tests/CI only):
            // XORed into one ALU result inside sampled shadow checks.
            "--fault-xor" => {
                opts.cfg.fault_xor =
                    u32::from_str_radix(need(args.next()).trim_start_matches("0x"), 16)
                        .unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let Some(endpoint) = opts.endpoint else { usage() };

    if let Some(dir) = &opts.cfg.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("silver-serve: cannot create trace dir {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    let svc = std::sync::Arc::new(Service::start(opts.cfg.clone()));
    eprintln!(
        "silver-serve: listening on {endpoint} ({} shards, engine {}, shadow every {} jobs)",
        opts.cfg.shards,
        opts.cfg.default_engine.name(),
        opts.cfg.shadow.every_jobs,
    );
    match serve(&svc, &endpoint, opts.bench.as_deref()) {
        Ok(()) => {
            if let Some(path) = &opts.bench {
                eprintln!("silver-serve: bench written to {}", path.display());
            }
            eprintln!("silver-serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("silver-serve: {e}");
            ExitCode::from(2)
        }
    }
}
