//! `silver-serve` — the multi-tenant execution server.
//!
//! ```sh
//! silver-serve (--unix PATH | --tcp ADDR) [--shards N] [--queue N]
//!              [--cache N] [--shadow-every N] [--shadow-sample N]
//!              [--checkpoint-every N] [--engine ref|jet]
//!              [--tenant-fuel N] [--tenant-depth N] [--max-job-fuel N]
//!              [--bench FILE]
//! ```
//!
//! Accepts compile+run jobs over the length-prefixed wire protocol
//! (see `EXPERIMENTS.md`, "Silver as a service"), executes them on a
//! sharded worker pool, and serves until a client sends `shutdown`.
//! On shutdown the queue drains, workers join, and — with `--bench` —
//! the metrics registry is written as `BENCH_service.json`.
//!
//! Safety defaults: jobs run on the jet engine with shadow sampling
//! **on** (every 8th job is checked in full lockstep against the
//! reference interpreter). `--shadow-every 0` turns sampling off;
//! individual jobs may still force a check but can never opt out of a
//! sampled one.

use std::path::PathBuf;
use std::process::ExitCode;

use service::{serve, Endpoint, ServeEngine, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: silver-serve (--unix PATH | --tcp ADDR) [--shards N] [--queue N] [--cache N]\n\
         \x20                  [--shadow-every N] [--shadow-sample N] [--checkpoint-every N]\n\
         \x20                  [--engine ref|jet] [--tenant-fuel N] [--tenant-depth N]\n\
         \x20                  [--max-job-fuel N] [--bench FILE]"
    );
    std::process::exit(2)
}

struct Options {
    endpoint: Option<Endpoint>,
    bench: Option<PathBuf>,
    cfg: ServiceConfig,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options { endpoint: None, bench: None, cfg: ServiceConfig::default() };
    let need = |v: Option<String>| v.unwrap_or_else(|| usage());
    let num = |v: Option<String>| need(v).parse::<u64>().unwrap_or_else(|_| usage());
    while let Some(a) = args.next() {
        match a.as_str() {
            "--unix" => opts.endpoint = Some(Endpoint::Unix(PathBuf::from(need(args.next())))),
            "--tcp" => opts.endpoint = Some(Endpoint::Tcp(need(args.next()))),
            "--shards" => opts.cfg.shards = num(args.next()).max(1) as usize,
            "--queue" => opts.cfg.queue_depth = num(args.next()).max(1) as usize,
            "--cache" => opts.cfg.cache_capacity = num(args.next()) as usize,
            "--shadow-every" => opts.cfg.shadow.every_jobs = num(args.next()),
            "--shadow-sample" => opts.cfg.shadow.sample = num(args.next()).max(1),
            "--checkpoint-every" => opts.cfg.checkpoint_every = num(args.next()).max(1),
            "--engine" => {
                opts.cfg.default_engine = match need(args.next()).as_str() {
                    "ref" => ServeEngine::Ref,
                    "jet" => ServeEngine::Jet,
                    _ => usage(),
                }
            }
            "--tenant-fuel" => opts.cfg.tenant.fuel_budget = num(args.next()),
            "--tenant-depth" => opts.cfg.tenant.max_in_flight = num(args.next()) as usize,
            "--max-job-fuel" => opts.cfg.tenant.max_job_fuel = num(args.next()),
            "--bench" => opts.bench = Some(PathBuf::from(need(args.next()))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let Some(endpoint) = opts.endpoint else { usage() };

    let svc = std::sync::Arc::new(Service::start(opts.cfg.clone()));
    eprintln!(
        "silver-serve: listening on {endpoint} ({} shards, engine {}, shadow every {} jobs)",
        opts.cfg.shards,
        opts.cfg.default_engine.name(),
        opts.cfg.shadow.every_jobs,
    );
    match serve(&svc, &endpoint, opts.bench.as_deref()) {
        Ok(()) => {
            if let Some(path) = &opts.bench {
                eprintln!("silver-serve: bench written to {}", path.display());
            }
            eprintln!("silver-serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("silver-serve: {e}");
            ExitCode::from(2)
        }
    }
}
