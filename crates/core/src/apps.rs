//! The application suite of §1/§7: "word-count, sort, a proof-checker
//! ... and the CakeML compiler itself", as source programs for the stack.
//!
//! Each constant is a complete program (the prelude is added by the
//! compiler). They are shared by the examples, the end-to-end tests and
//! the benchmark harness.

/// Quickstart: hello world.
pub const HELLO: &str = r#"
val _ = print "Hello from the verified stack!\n";
"#;

/// `wc` — the paper's running example (§2): counts the words on standard
/// input (`wc_spec input output` with `|tokens is_space input|`), and
/// also reports lines and bytes like the Unix tool.
pub const WC: &str = r#"
fun is_space c = c = #" " orelse c = #"\n" orelse c = #"\t" orelse c = #"\r";

val input = read_all ();
val len = String.size input;

fun scan i in_word words lines =
  if i >= len then (words, lines)
  else
    let val c = String.sub input i
        val nl = if c = #"\n" then lines + 1 else lines
    in
      if is_space c then scan (i + 1) false words nl
      else scan (i + 1) true (if in_word then words else words + 1) nl
    end;

val counts = scan 0 false 0 0;
val _ = print (int_to_string (snd counts) ^ " " ^
               int_to_string (fst counts) ^ " " ^
               int_to_string len ^ "\n");
"#;

/// `cat` — copies standard input to standard output.
pub const CAT: &str = r#"
val _ = print (read_all ());
"#;

/// `sort` — reads lines from standard input, sorts them
/// lexicographically with merge sort, writes them back (§7: "Running
/// sort on a 1000-line file takes a few seconds").
pub const SORT: &str = r#"
val input = read_all ();
val lines = split_lines input;
val sorted = merge_sort string_lt lines;
val _ = print (join_lines sorted);
"#;

/// A proof checker for minimal implicational logic — the stand-in for
/// the paper's OpenTheory proof checker. It checks Hilbert-style proofs
/// using axiom schemes K and S and modus ponens.
///
/// Input: one command per line.
///
/// * `K <f> <g>` — adds the theorem `f -> (g -> f)`,
/// * `S <f> <g> <h>` — adds `(f->(g->h)) -> ((f->g) -> (f->h))`,
/// * `MP <i> <j>` — if theorem `i` is `A -> B` and theorem `j` is `A`,
///   adds `B` (indices are 0-based, decimal).
///
/// Formulas are written in prefix form: `i<f><g>` is an implication,
/// a lowercase letter is an atom; e.g. `iab` is `a -> b`.
///
/// Output: each derived theorem is printed; a bad proof step prints
/// `invalid step` and exits with code 1.
pub const PROOF_CHECKER: &str = r#"
datatype form = Atom of int | Imp of form * form;

(* prefix-form parser: returns (formula, rest-index) *)
fun parse_form s i =
  if i >= String.size s then (Atom 0, i)
  else
    let val c = String.sub s i in
      if c = #"i" then
        let val fr = parse_form s (i + 1) in
          case fr of (f, j) =>
            (case parse_form s j of (g, k) => (Imp (f, g), k))
        end
      else (Atom (Char.ord c), i + 1)
    end;

fun eq_form a b =
  case (a, b) of
    (Atom x, Atom y) => x = y
  | (Imp (f1, g1), Imp (f2, g2)) => eq_form f1 f2 andalso eq_form g1 g2
  | _ => false;

fun show_form f =
  case f of
    Atom n => char_to_string (Char.chr n)
  | Imp (a, b) => "(" ^ show_form a ^ " -> " ^ show_form b ^ ")";

fun split_words s =
  let val n = String.size s
      fun go start i acc =
        if i >= n then rev (if i > start then String.substring s start (i - start) :: acc else acc)
        else if String.sub s i = #" " then
          go (i + 1) (i + 1) (if i > start then String.substring s start (i - start) :: acc else acc)
        else go start (i + 1) acc
  in go 0 0 [] end;

fun parse_nat s =
  let val n = String.size s
      fun go i acc = if i >= n then acc else go (i + 1) (acc * 10 + (Char.ord (String.sub s i) - 48))
  in go 0 0 end;

fun form_of w = fst (parse_form w 0);

fun fail u = (print "invalid step\n"; exit 1);

fun step thms words =
  case words of
    "K" :: fw :: gw :: [] =>
      let val f = form_of fw val g = form_of gw
      in Imp (f, Imp (g, f)) end
  | "S" :: fw :: gw :: hw :: [] =>
      let val f = form_of fw val g = form_of gw val h = form_of hw
      in Imp (Imp (f, Imp (g, h)), Imp (Imp (f, g), Imp (f, h))) end
  | "MP" :: iw :: jw :: [] =>
      let val ti = nth thms (parse_nat iw)
          val tj = nth thms (parse_nat jw)
      in case ti of
           Imp (a, b) => if eq_form a tj then b else fail ()
         | _ => fail ()
      end
  | _ => fail ();

fun check thms lines =
  case lines of
    [] => ()
  | line :: rest =>
      if String.size line = 0 then check thms rest
      else
        let val t = step thms (split_words line)
        in (print ("|- " ^ show_form t ^ "\n");
            check (append thms [t]) rest) end;

val _ = check [] (split_lines (read_all ()));
"#;

/// `grep` — prints the lines of standard input containing the literal
/// pattern given as the first command-line argument (naive substring
/// search). Exits 0 if anything matched, 1 otherwise, like the Unix tool.
pub const GREP: &str = r#"
fun contains_at s p i =
  let val lp = String.size p
      fun go j =
        if j >= lp then true
        else if Char.ord (String.sub s (i + j)) = Char.ord (String.sub p j) then go (j + 1)
        else false
  in go 0 end;

fun contains s p =
  let val n = String.size s
      val lp = String.size p
      fun go i =
        if i + lp > n then false
        else if contains_at s p i then true
        else go (i + 1)
  in go 0 end;

val args = arguments ();
val pattern = case args of _ :: p :: _ => p | _ => (print_err "usage: grep PATTERN\n"; exit 2);
val matches = filter (fn l => contains l pattern) (split_lines (read_all ()));
val _ = print (join_lines matches);
val _ = exit (case matches of [] => 1 | _ => 0);
"#;

/// The compiler-on-the-verified-stack demonstration (§7: running the
/// compiler itself on Silver). A compiler for arithmetic expressions —
/// written in the source language, compiled by the real compiler, and
/// run *on the Silver processor* — that reads an expression from
/// standard input and emits Silver-style assembly for a stack machine.
pub const MINI_COMPILER: &str = r#"
datatype tok = Num of int | Plus | Minus | Times | LP | RP;
datatype exp = Lit of int | Add of exp * exp | Sub of exp * exp | Mul of exp * exp;

fun lex s =
  let val n = String.size s
      fun go i =
        if i >= n then []
        else
          let val c = String.sub s i in
            if c = #" " orelse c = #"\n" then go (i + 1)
            else if c = #"+" then Plus :: go (i + 1)
            else if c = #"-" then Minus :: go (i + 1)
            else if c = #"*" then Times :: go (i + 1)
            else if c = #"(" then LP :: go (i + 1)
            else if c = #")" then RP :: go (i + 1)
            else
              let fun num j acc =
                    if j >= n then (acc, j)
                    else
                      let val d = Char.ord (String.sub s j)
                      in if d >= 48 andalso d <= 57 then num (j + 1) (acc * 10 + (d - 48))
                         else (acc, j) end
              in case num i 0 of (v, j) =>
                   if j = i then (print_err "lex error\n"; exit 1)
                   else Num v :: go j
              end
          end
  in go 0 end;

(* expr := term (("+"|"-") term)* ;  term := atom ("*" atom)* *)
fun parse_atom toks =
  case toks of
    Num v :: rest => (Lit v, rest)
  | LP :: rest =>
      (case parse_expr rest of
         (e, RP :: rest2) => (e, rest2)
       | _ => (print_err "expected )\n"; exit 1))
  | _ => (print_err "parse error\n"; exit 1)
and parse_term toks =
  let val first = parse_atom toks
      fun more acc rest =
        case rest of
          Times :: r2 => (case parse_atom r2 of (e, r3) => more (Mul (acc, e)) r3)
        | _ => (acc, rest)
  in case first of (e, rest) => more e rest end
and parse_expr toks =
  let val first = parse_term toks
      fun more acc rest =
        case rest of
          Plus :: r2 => (case parse_term r2 of (e, r3) => more (Add (acc, e)) r3)
        | Minus :: r2 => (case parse_term r2 of (e, r3) => more (Sub (acc, e)) r3)
        | _ => (acc, rest)
  in case first of (e, rest) => more e rest end;

(* stack-machine code generation, printed as Silver-flavoured assembly *)
fun emit e =
  case e of
    Lit v => print ("  LoadConstant r1, " ^ int_to_string v ^ "\n  Push r1\n")
  | Add (a, b) => (emit a; emit b; print "  Pop r2\n  Pop r1\n  Normal fAdd r1, r1, r2\n  Push r1\n")
  | Sub (a, b) => (emit a; emit b; print "  Pop r2\n  Pop r1\n  Normal fSub r1, r1, r2\n  Push r1\n")
  | Mul (a, b) => (emit a; emit b; print "  Pop r2\n  Pop r1\n  Normal fMul r1, r1, r2\n  Push r1\n");

(* a reference evaluator, to print the expected result alongside *)
fun eval e =
  case e of
    Lit v => v
  | Add (a, b) => eval a + eval b
  | Sub (a, b) => eval a - eval b
  | Mul (a, b) => eval a * eval b;

val input = read_all ();
val toks = lex input;
val parsed = parse_expr toks;
val e = fst parsed;
val _ = print "; silver-stack mini compiler output\n";
val _ = emit e;
val _ = print ("  Out r1 ; = " ^ int_to_string (eval e) ^ "\n");
"#;

/// All applications with stable names, for the harnesses.
pub const ALL: &[(&str, &str)] = &[
    ("hello", HELLO),
    ("wc", WC),
    ("cat", CAT),
    ("sort", SORT),
    ("grep", GREP),
    ("proof_checker", PROOF_CHECKER),
    ("mini_compiler", MINI_COMPILER),
];
