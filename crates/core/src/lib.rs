//! # silver-stack — verified compilation on a verified processor,
//! # reproduced as an executable system
//!
//! This crate is the top of the stack from *Verified Compilation on a
//! Verified Processor* (PLDI 2019): it composes the CakeML-style
//! compiler ([`cakeml`]), the bare-metal execution environment
//! ([`basis`]), the Silver ISA ([`ag32`]) and the Silver processor at
//! circuit and Verilog level ([`silver`], [`rtl`], [`verilog`]) into a
//! single API, mirroring the paper's workflow (§2):
//!
//! 1. write the application in the source language,
//! 2. [`Stack::compile`] it to Silver machine code (theorem (3)),
//! 3. [`Stack::load`] the Figure-2 memory image (`initAg`),
//! 4. [`Stack::run_image`] on any layer of Figure 1 — the ISA, the
//!    circuit-level CPU, or the generated Verilog,
//! 5. [`check::check_end_to_end`] asserts all layers exhibit the
//!    behaviour of the source semantics — the executable analogue of the
//!    paper's end-to-end theorem (8).
//!
//! The [`apps`] module carries the paper's application suite (§1, §7):
//! `wc`, `sort`, `cat`, a proof checker, and a compiler that itself runs
//! on the verified processor.
//!
//! # Example
//!
//! ```
//! use silver_stack::{apps, Backend, RunConfig, Stack};
//!
//! let stack = Stack::new();
//! let result = stack.run_source(
//!     apps::WC,
//!     &["wc"],
//!     b"hello brave new world\n",
//!     Backend::Isa,
//!     &RunConfig::default(),
//! )?;
//! assert_eq!(result.stdout_utf8(), "1 4 22\n");
//! # Ok::<(), silver_stack::StackError>(())
//! ```

pub mod apps;
pub mod check;
pub mod fuzz;
pub mod stack;

pub use basis::ExitStatus;
pub use check::{
    batch_reports, check_end_to_end, check_end_to_end_batch, CheckFailure, CheckOptions,
    EndToEndReport, Layer, Workload,
};
pub use fuzz::{full_registry, EndToEndTarget};
pub use silver::snapshot::{SnapEngine, Snapshot, SnapshotError};
pub use stack::{
    Backend, Engine, Observations, Observe, RunConfig, Stack, StackError, StackResult,
    DEFAULT_CHECKPOINT_EVERY,
};
