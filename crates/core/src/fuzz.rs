//! The end-to-end fuzz target (theorem (8)) for the campaign engine.
//!
//! `campaign` sits below this crate, so its registry cannot reach the
//! stack composition; this module supplies the missing target — every
//! layer at once via [`check_end_to_end`] — and a wrapper around the
//! campaign registry that includes it.

use campaign::coverage::CovSnap;
use campaign::targets::{CaseOutcome, Target, Verdict};
use campaign::{gen, registry};
use cakeml::program_features;
use testkit::prop::Ctx;

use crate::check::{check_end_to_end, CheckFailure, CheckOptions};
use crate::stack::Stack;

/// Theorem (8) as a fuzz target: source semantics == ISA == circuit
/// (Verilog and lockstep are left to their dedicated targets — the
/// end-to-end case is already the most expensive in the registry).
pub struct EndToEndTarget {
    stack: Stack,
    opts: CheckOptions,
}

impl Default for EndToEndTarget {
    fn default() -> Self {
        EndToEndTarget::new()
    }
}

impl EndToEndTarget {
    /// A target over the default stack, without the slow Verilog and
    /// lockstep extras.
    #[must_use]
    pub fn new() -> Self {
        EndToEndTarget {
            stack: Stack::new(),
            opts: CheckOptions { verilog: false, lockstep_instructions: 0, ..Default::default() },
        }
    }
}

impl Target for EndToEndTarget {
    fn name(&self) -> &'static str {
        "e2e"
    }

    fn weight(&self) -> u32 {
        1 // each case runs the circuit simulator: keep it rare.
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        // Small prelude-free exit-code programs: the RTL side runs at
        // circuit speed, so the generated cases must stay tiny.
        let src = gen::source_program(ctx);
        let mut cov = CovSnap::new();
        if let Ok((prog, _)) = cakeml::frontend(&src, &self.stack.compiler) {
            cov.features = program_features(&prog);
        }
        match check_end_to_end(&self.stack, &src, &["fuzz"], b"", &self.opts) {
            Ok(report) => {
                if let Some(stats) = report.isa_stats {
                    cov.stats = stats;
                }
                CaseOutcome { cov, verdict: Verdict::Pass, fuel_saved: None }
            }
            Err(failure) => {
                let layer = match &failure {
                    CheckFailure::Error { layer, .. } => layer.name().to_string(),
                    CheckFailure::Disagreement { spec, impl_, .. } => {
                        format!("{impl_} vs {spec}")
                    }
                };
                CaseOutcome {
                    cov,
                    verdict: Verdict::Fail { layer, message: format!("{failure}\n{src}") },
                    fuel_saved: None,
                }
            }
        }
    }
}

/// The full registry: everything `campaign::registry` knows, plus the
/// stack-level selections `e2e` and `all`.
///
/// # Errors
///
/// An unknown selection name.
pub fn full_registry(selection: &str) -> Result<Vec<Box<dyn Target>>, String> {
    match selection {
        "e2e" | "t8" => Ok(vec![Box::new(EndToEndTarget::new())]),
        "all" => {
            let mut targets = registry("all")?;
            targets.push(Box::new(EndToEndTarget::new()));
            Ok(targets)
        }
        other => registry(other).map_err(|e| {
            format!("{e}, e2e")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::rng::TestRng;

    #[test]
    fn full_registry_adds_the_stack_target() {
        assert_eq!(full_registry("all").expect("all").len(), 9);
        assert_eq!(full_registry("e2e").expect("e2e").len(), 1);
        assert_eq!(full_registry("t2").expect("t2").len(), 3);
        let err = match full_registry("bogus") {
            Err(e) => e,
            Ok(_) => panic!("bogus selection accepted"),
        };
        assert!(err.contains("e2e"));
    }

    #[test]
    fn end_to_end_target_passes_and_replays() {
        let t = EndToEndTarget::new();
        let mut rng = TestRng::seed_from_u64(0xE2E);
        let mut ctx = Ctx::recording(&mut rng);
        let out = t.run_case(&mut ctx);
        assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
        assert!(out.cov.stats.total() > 0);
        let choices = ctx.recorded_choices().to_vec();
        let again = t.run_case(&mut Ctx::replaying(&choices));
        assert_eq!(again.verdict, Verdict::Pass);
    }
}
