//! The verified stack, assembled: compile → load → run at any level.

use std::fmt;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use ag32::State;
use basis::{build_image, extract_streams, run_to_halt, ExitStatus, ImageError};
use cakeml::{CompileError, CompiledProgram, CompilerConfig, TargetLayout};
use obs::CycleProfiler;
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::LockstepError;
use silver::trace::{PcSampler, RtlVcd, VerilogVcd};

/// Which layer of Figure 1 executes the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Silver ISA (`Next`), layer 2.
    Isa,
    /// The circuit-level CPU implementation, layer 3.
    Rtl,
    /// The generated deep-embedded Verilog, layer 4.
    Verilog,
}

/// Which *implementation* of the ISA layer executes the program when
/// [`Backend::Isa`] is selected. Both implement the same `Next`
/// semantics; [`Engine::Jet`] trades the step-at-a-time reference
/// interpreter for a predecoded translation cache (theorem J: jet ≡
/// Next, checkable at runtime via [`RunConfig::shadow`]). The hardware
/// backends ignore this field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The reference interpreter (`ag32::State::next`), one decoded
    /// instruction at a time. The specification-side engine.
    #[default]
    Ref,
    /// The [`jet`] translation-cache engine: decode once per basic
    /// block, execute lowered ops, invalidate on self-modifying stores.
    Jet,
}

impl Engine {
    /// Stable lower-case name used by `silverc --engine` and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ref => "ref",
            Engine::Jet => "jet",
        }
    }
}

/// Execution limits and environment behaviour.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Maximum ISA instructions (ISA backend).
    pub fuel: u64,
    /// Maximum clock cycles (circuit/Verilog backends).
    pub max_cycles: u64,
    /// Lab-environment behaviour for the hardware backends.
    pub env: MemEnvConfig,
    /// ISA-layer implementation ([`Backend::Isa`] only).
    pub engine: Engine,
    /// Shadow-mode differential checking for [`Engine::Jet`]:
    /// `Some(1)` runs the reference interpreter in lockstep and
    /// compares the full architectural state after every retire,
    /// `Some(n)` compares every `n` retires (the PC still every
    /// retire), `None` (default) runs the jet engine alone. A
    /// divergence surfaces as [`StackError::Divergence`] carrying the
    /// forensics report. Ignored for [`Engine::Ref`].
    pub shadow: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            fuel: 4_000_000_000,
            max_cycles: 4_000_000_000,
            env: MemEnvConfig { mem_latency: Latency::Fixed(0), ..MemEnvConfig::default() },
            engine: Engine::Ref,
            shadow: None,
        }
    }
}

/// The outcome of running a program on the stack.
#[derive(Clone, Debug)]
pub struct StackResult {
    /// Exit classification.
    pub exit: ExitStatus,
    /// Standard output bytes.
    pub stdout: Vec<u8>,
    /// Standard error bytes.
    pub stderr: Vec<u8>,
    /// Instructions retired (ISA/RTL backends; RTL reports its retired
    /// counter).
    pub instructions: u64,
    /// Clock cycles (hardware backends only).
    pub cycles: Option<u64>,
    /// Per-opcode retire counters (ISA backend only; the hardware
    /// simulators do not decode what they retire).
    pub stats: Option<ag32::ExecStats>,
}

impl StackResult {
    /// Standard output as a string (lossy).
    #[must_use]
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Standard error as a string (lossy).
    #[must_use]
    pub fn stderr_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }

    /// The exit code, if the program exited.
    #[must_use]
    pub fn exit_code(&self) -> Option<u8> {
        match self.exit {
            ExitStatus::Exited(c) => Some(c),
            _ => None,
        }
    }
}

/// Stack-level errors.
#[derive(Debug)]
pub enum StackError {
    /// Compilation failed.
    Compile(CompileError),
    /// Image construction failed (`initAg` assumption violated).
    Image(ImageError),
    /// A hardware backend failed or timed out.
    Hardware(LockstepError),
    /// An observability sink (VCD/profile file) failed.
    Io(std::io::Error),
    /// Shadow mode caught the jet engine diverging from the reference
    /// interpreter — theorem J violated. Carries the full forensics
    /// report (divergent retire index, differing fields, retire tails).
    Divergence(Box<obs::Forensics>),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Compile(e) => write!(f, "compile: {e}"),
            StackError::Image(e) => write!(f, "image: {e}"),
            StackError::Hardware(e) => write!(f, "hardware: {e}"),
            StackError::Io(e) => write!(f, "io: {e}"),
            StackError::Divergence(fx) => write!(f, "shadow divergence:\n{}", fx.render()),
        }
    }
}

impl std::error::Error for StackError {}

impl From<CompileError> for StackError {
    fn from(e: CompileError) -> Self {
        StackError::Compile(e)
    }
}

impl From<ImageError> for StackError {
    fn from(e: ImageError) -> Self {
        StackError::Image(e)
    }
}

impl From<LockstepError> for StackError {
    fn from(e: LockstepError) -> Self {
        StackError::Hardware(e)
    }
}

impl From<std::io::Error> for StackError {
    fn from(e: std::io::Error) -> Self {
        StackError::Io(e)
    }
}

/// What to observe during a run. Everything is off by default, and the
/// observed entry points degrade to the plain ones when nothing is
/// requested — observability costs nothing unless asked for.
#[derive(Debug, Default)]
pub struct Observe {
    /// Keep the last N retired instructions in a ring (ISA backend).
    /// `0` disables the retire log.
    pub retire_log: usize,
    /// Attribute execution to source functions (retires on the ISA
    /// backend, true clock cycles on the hardware backends) and report
    /// flamegraph folded stacks.
    pub profile: bool,
    /// Record every system call: name, arguments, result, descriptor
    /// state (ISA backend).
    pub syscalls: bool,
    /// Dump a GTKWave-viewable VCD waveform of every CPU signal to this
    /// file (hardware backends).
    pub vcd: Option<PathBuf>,
}

impl Observe {
    fn is_off(&self) -> bool {
        self.retire_log == 0 && !self.profile && !self.syscalls && self.vcd.is_none()
    }
}

/// What a run observed (fields mirror [`Observe`]).
#[derive(Debug, Default)]
pub struct Observations {
    /// The retire log, oldest first.
    pub retire_log: Option<ag32::RetireRing>,
    /// The cycle/retire profiler, ready for
    /// [`folded`](obs::CycleProfiler::folded) output.
    pub profile: Option<CycleProfiler>,
    /// The system-call trace.
    pub syscalls: Option<basis::SyscallTrace>,
    /// Where the VCD waveform was written.
    pub vcd: Option<PathBuf>,
}

/// The stack: a compiler configuration plus a memory layout.
#[derive(Clone, Debug, Default)]
pub struct Stack {
    /// Compiler options.
    pub compiler: CompilerConfig,
    /// Memory layout.
    pub layout: TargetLayout,
}

impl Stack {
    /// A stack with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Stack::default()
    }

    /// Compiles a program (theorem (3): `compile confAg prog = Some ...`).
    ///
    /// # Errors
    ///
    /// Parse, type or code-generation errors.
    pub fn compile(&self, src: &str) -> Result<CompiledProgram, StackError> {
        Ok(cakeml::compile_source(src, self.layout, &self.compiler)?)
    }

    /// Builds the Figure-2 initial machine state for a compiled program.
    ///
    /// # Errors
    ///
    /// [`ImageError`] when stdin or the command line exceed their devices.
    pub fn load(
        &self,
        compiled: &CompiledProgram,
        args: &[&str],
        stdin: &[u8],
    ) -> Result<State, StackError> {
        Ok(build_image(compiled, args, stdin)?)
    }

    /// Compiles, loads and runs in one step.
    ///
    /// # Errors
    ///
    /// Any [`StackError`].
    pub fn run_source(
        &self,
        src: &str,
        args: &[&str],
        stdin: &[u8],
        backend: Backend,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        let compiled = self.compile(src)?;
        let image = self.load(&compiled, args, stdin)?;
        self.run_image(image, backend, rc)
    }

    /// Runs a loaded image on the chosen backend.
    ///
    /// # Errors
    ///
    /// Hardware-backend simulation failures or timeouts.
    pub fn run_image(
        &self,
        image: State,
        backend: Backend,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        match backend {
            Backend::Isa => match rc.engine {
                Engine::Ref => {
                    let r = run_to_halt(image, &self.layout, rc.fuel);
                    Ok(isa_result(r))
                }
                Engine::Jet => self.jet_result(image, rc),
            },
            Backend::Rtl => {
                let (rtl_state, env, cycles) =
                    silver::run_rtl_program(&image, rc.env.clone(), rc.max_cycles)?;
                self.rtl_result(&rtl_state, &env, cycles)
            }
            Backend::Verilog => {
                let (fin, env, cycles) =
                    silver::run_verilog_program(&image, rc.env.clone(), rc.max_cycles)?;
                Ok(self.verilog_result(&fin, &env, cycles))
            }
        }
    }

    /// [`run_source`](Stack::run_source) with observability: compiles,
    /// loads, runs, and returns whatever `ocfg` asked to observe. With
    /// the default (all-off) [`Observe`] this is exactly `run_source` —
    /// the observed entry points construct nothing unless asked.
    ///
    /// # Errors
    ///
    /// Any [`StackError`]; I/O failures writing a requested VCD file
    /// surface as [`StackError::Io`].
    pub fn run_source_observed(
        &self,
        src: &str,
        args: &[&str],
        stdin: &[u8],
        backend: Backend,
        rc: &RunConfig,
        ocfg: &Observe,
    ) -> Result<(StackResult, Observations), StackError> {
        let compiled = self.compile(src)?;
        let image = self.load(&compiled, args, stdin)?;
        self.run_image_observed(&compiled, image, backend, rc, ocfg)
    }

    /// [`run_image`](Stack::run_image) with observability. The compiled
    /// program is needed for its symbol table (profiling) and FFI names
    /// (syscall tracing). Fields of `ocfg` that do not apply to the
    /// chosen backend are ignored (e.g. `vcd` on the ISA backend).
    ///
    /// # Errors
    ///
    /// Any [`StackError`].
    pub fn run_image_observed(
        &self,
        compiled: &CompiledProgram,
        image: State,
        backend: Backend,
        rc: &RunConfig,
        ocfg: &Observe,
    ) -> Result<(StackResult, Observations), StackError> {
        if ocfg.is_off() {
            return Ok((self.run_image(image, backend, rc)?, Observations::default()));
        }
        let mut obs = Observations::default();
        let result = match backend {
            Backend::Isa => {
                // The observers below hook the reference interpreter.
                // Under the jet engine the observations still come from
                // a reference pass (execution is deterministic and
                // theorem-J-equivalent) but the *result* comes from the
                // selected engine, so `--stats` etc. reflect it.
                let jet_image = (rc.engine == Engine::Jet).then(|| image.clone());
                // The syscall trace needs its own pure-`Next` pass (it
                // watches FFI entry PCs); execution is deterministic, so
                // a clone of the image observes the same run.
                if ocfg.syscalls {
                    let mut trace = basis::SyscallTrace::new();
                    let _ = basis::run_to_halt_traced(
                        image.clone(),
                        &self.layout,
                        &compiled.ffi_names,
                        rc.fuel,
                        &mut trace,
                    );
                    obs.syscalls = Some(trace);
                }
                let r = match (ocfg.retire_log > 0, ocfg.profile) {
                    (true, true) => {
                        let mut ring = ag32::RetireRing::new(ocfg.retire_log);
                        let mut prof = CycleProfiler::new(compiled.symbols.to_ranges());
                        let r = basis::run_to_halt_observed(
                            image,
                            &self.layout,
                            rc.fuel,
                            &mut ag32::NoCoverage,
                            &mut (&mut ring, &mut prof),
                        );
                        obs.retire_log = Some(ring);
                        obs.profile = Some(prof);
                        r
                    }
                    (true, false) => {
                        let mut ring = ag32::RetireRing::new(ocfg.retire_log);
                        let r = basis::run_to_halt_observed(
                            image,
                            &self.layout,
                            rc.fuel,
                            &mut ag32::NoCoverage,
                            &mut ring,
                        );
                        obs.retire_log = Some(ring);
                        r
                    }
                    (false, true) => {
                        let mut prof = CycleProfiler::new(compiled.symbols.to_ranges());
                        let r = basis::run_to_halt_observed(
                            image,
                            &self.layout,
                            rc.fuel,
                            &mut ag32::NoCoverage,
                            &mut prof,
                        );
                        obs.profile = Some(prof);
                        r
                    }
                    (false, false) => run_to_halt(image, &self.layout, rc.fuel),
                };
                match jet_image {
                    Some(img) => self.jet_result(img, rc)?,
                    None => isa_result(r),
                }
            }
            Backend::Rtl => {
                let circuit = silver::silver_cpu();
                let (rtl_state, env, cycles) = match (&ocfg.vcd, ocfg.profile) {
                    (Some(path), true) => {
                        let vcd = RtlVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let mut pair = (vcd, sampler);
                        let out = silver::run_rtl_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut pair,
                        )?;
                        pair.0.finish()?;
                        obs.vcd = Some(path.clone());
                        obs.profile = Some(pair.1.profiler);
                        out
                    }
                    (Some(path), false) => {
                        let mut vcd = RtlVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let out = silver::run_rtl_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut vcd,
                        )?;
                        vcd.finish()?;
                        obs.vcd = Some(path.clone());
                        out
                    }
                    (None, true) => {
                        let mut sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let out = silver::run_rtl_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut sampler,
                        )?;
                        obs.profile = Some(sampler.profiler);
                        out
                    }
                    (None, false) => {
                        silver::run_rtl_program(&image, rc.env.clone(), rc.max_cycles)?
                    }
                };
                self.rtl_result(&rtl_state, &env, cycles)?
            }
            Backend::Verilog => {
                let circuit = silver::silver_cpu();
                let (fin, env, cycles) = match (&ocfg.vcd, ocfg.profile) {
                    (Some(path), true) => {
                        let vcd = VerilogVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let mut pair = (vcd, sampler);
                        let out = silver::run_verilog_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut pair,
                        )?;
                        pair.0.finish()?;
                        obs.vcd = Some(path.clone());
                        obs.profile = Some(pair.1.profiler);
                        out
                    }
                    (Some(path), false) => {
                        let mut vcd = VerilogVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let out = silver::run_verilog_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut vcd,
                        )?;
                        vcd.finish()?;
                        obs.vcd = Some(path.clone());
                        out
                    }
                    (None, true) => {
                        let mut sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let out = silver::run_verilog_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut sampler,
                        )?;
                        obs.profile = Some(sampler.profiler);
                        out
                    }
                    (None, false) => {
                        silver::run_verilog_program(&image, rc.env.clone(), rc.max_cycles)?
                    }
                };
                self.verilog_result(&fin, &env, cycles)
            }
        };
        Ok((result, obs))
    }

    /// Runs a loaded image on the [`jet`] translation-cache engine,
    /// classifying the end state exactly like the reference machine
    /// runner does. When [`RunConfig::shadow`] is set, a lockstep
    /// shadow run against `ag32::State::next` happens first and any
    /// divergence aborts with the forensics report — the plain run only
    /// proceeds once theorem J held over the whole execution.
    fn jet_result(&self, image: State, rc: &RunConfig) -> Result<StackResult, StackError> {
        if let Some(sample) = rc.shadow {
            jet::run_shadow(&image, rc.fuel, sample, 0).map_err(StackError::Divergence)?;
        }
        let mut j = jet::Jet::from_state(&image);
        let retired = j.run(rc.fuel);
        // Classify straight off the engine: everything the verdict needs
        // (halt probe, exit-code word, PC, streams, stats) is readable
        // without the full `into_state` memory write-back, which would
        // cost more than the run itself on short workloads.
        let (stdout, stderr) = extract_streams(&j.io_events);
        let exit = if retired == rc.fuel && !j.is_halted() {
            ExitStatus::OutOfFuel
        } else {
            let code = j.mem().read_word(self.layout.exit_code_addr);
            if j.pc == self.layout.halt_addr && code != basis::image::EXIT_UNSET {
                ExitStatus::Exited(code as u8)
            } else {
                ExitStatus::Wedged
            }
        };
        Ok(StackResult {
            exit,
            stdout,
            stderr,
            instructions: retired,
            cycles: None,
            stats: Some(j.stats),
        })
    }

    fn rtl_result(
        &self,
        rtl_state: &rtl::RtlState,
        env: &silver::env::MemEnv,
        cycles: u64,
    ) -> Result<StackResult, StackError> {
        let (stdout, stderr) = extract_streams(&env.io_events);
        let instructions = rtl_state
            .get_scalar("retired")
            .map_err(|e| StackError::Hardware(LockstepError::Rtl(e)))?;
        let exit = classify_hw(&env.mem, &self.layout, rtl_state)?;
        Ok(StackResult { exit, stdout, stderr, instructions, cycles: Some(cycles), stats: None })
    }

    fn verilog_result(
        &self,
        fin: &verilog::eval::VarState,
        env: &silver::env::MemEnv,
        cycles: u64,
    ) -> StackResult {
        let (stdout, stderr) = extract_streams(&env.io_events);
        let code = env.mem.read_word(self.layout.exit_code_addr);
        let pc = fin.get("pc").map(|v| v.as_u64() as u32).unwrap_or(0);
        let exit = if pc == self.layout.halt_addr && code != basis::image::EXIT_UNSET {
            ExitStatus::Exited(code as u8)
        } else {
            ExitStatus::Wedged
        };
        StackResult { exit, stdout, stderr, instructions: 0, cycles: Some(cycles), stats: None }
    }
}

fn isa_result(r: basis::MachineResult) -> StackResult {
    StackResult {
        exit: r.exit,
        stdout: r.stdout,
        stderr: r.stderr,
        instructions: r.instructions,
        cycles: None,
        stats: Some(r.state.stats.clone()),
    }
}

fn classify_hw(
    mem: &ag32::Memory,
    layout: &TargetLayout,
    rtl_state: &rtl::RtlState,
) -> Result<ExitStatus, StackError> {
    let code = mem.read_word(layout.exit_code_addr);
    let pc = rtl_state
        .get_scalar("pc")
        .map_err(|e| StackError::Hardware(LockstepError::Rtl(e)))? as u32;
    Ok(if pc == layout.halt_addr && code != basis::image::EXIT_UNSET {
        ExitStatus::Exited(code as u8)
    } else {
        ExitStatus::Wedged
    })
}
