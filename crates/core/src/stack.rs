//! The verified stack, assembled: compile → load → run at any level.

use std::fmt;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use std::path::Path;

use ag32::State;
use basis::{build_image, classify_exit, extract_streams, run_to_halt, ExitStatus, ImageError};
use cakeml::{CompileError, CompiledProgram, CompilerConfig, TargetLayout};
use obs::CycleProfiler;
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::LockstepError;
use silver::snapshot::{Snapshot, SnapshotError};
use silver::trace::{PcSampler, RtlVcd, VerilogVcd};

/// Checkpoint cadence used when [`RunConfig::checkpoint`] names a file
/// but no interval was chosen.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1_000_000;

/// Which layer of Figure 1 executes the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Silver ISA (`Next`), layer 2.
    Isa,
    /// The circuit-level CPU implementation, layer 3.
    Rtl,
    /// The generated deep-embedded Verilog, layer 4.
    Verilog,
}

/// Which *implementation* of the ISA layer executes the program when
/// [`Backend::Isa`] is selected. Both implement the same `Next`
/// semantics; [`Engine::Jet`] trades the step-at-a-time reference
/// interpreter for a predecoded translation cache (theorem J: jet ≡
/// Next, checkable at runtime via [`RunConfig::shadow`]). The hardware
/// backends ignore this field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The reference interpreter (`ag32::State::next`), one decoded
    /// instruction at a time. The specification-side engine.
    #[default]
    Ref,
    /// The [`jet`] translation-cache engine: decode once per basic
    /// block, execute lowered ops, invalidate on self-modifying stores.
    Jet,
}

impl Engine {
    /// Stable lower-case name used by `silverc --engine` and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ref => "ref",
            Engine::Jet => "jet",
        }
    }
}

/// Execution limits and environment behaviour.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Maximum ISA instructions (ISA backend).
    pub fuel: u64,
    /// Maximum clock cycles (circuit/Verilog backends).
    pub max_cycles: u64,
    /// Lab-environment behaviour for the hardware backends.
    pub env: MemEnvConfig,
    /// ISA-layer implementation ([`Backend::Isa`] only).
    pub engine: Engine,
    /// Shadow-mode differential checking for [`Engine::Jet`]:
    /// `Some(1)` runs the reference interpreter in lockstep and
    /// compares the full architectural state after every retire,
    /// `Some(n)` compares every `n` retires (the PC still every
    /// retire), `None` (default) runs the jet engine alone. A
    /// divergence surfaces as [`StackError::Divergence`] carrying the
    /// forensics report. Ignored for [`Engine::Ref`].
    pub shadow: Option<u64>,
    /// Rolling-checkpoint file for [`Backend::Isa`] runs: every
    /// [`RunConfig::checkpoint_interval`] retires the run's snapshot is
    /// rewritten here (atomically, via a temp sibling + rename), so a
    /// killed run resumes from its last checkpoint via
    /// [`Stack::resume_snapshot`]. `None` (default) writes nothing.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in retires. Also drives *checkpoint-anchored
    /// shadow mode*: with [`RunConfig::shadow`] set, a divergence
    /// replays from the last in-memory anchor instead of from boot,
    /// even when no checkpoint file was requested. `None` falls back to
    /// [`DEFAULT_CHECKPOINT_EVERY`] when `checkpoint` names a file.
    pub checkpoint_interval: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            fuel: 4_000_000_000,
            max_cycles: 4_000_000_000,
            env: MemEnvConfig { mem_latency: Latency::Fixed(0), ..MemEnvConfig::default() },
            engine: Engine::Ref,
            shadow: None,
            checkpoint: None,
            checkpoint_interval: None,
        }
    }
}

impl RunConfig {
    /// Sets the checkpoint cadence (builder style): `n` retires between
    /// rolling checkpoints / shadow anchors.
    #[must_use]
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_interval = Some(n.max(1));
        self
    }

    /// Sets the rolling-checkpoint file (builder style).
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// The `(file, cadence)` pair when checkpointing to disk is on.
    fn checkpoint_plan(&self) -> Option<(&Path, u64)> {
        self.checkpoint
            .as_deref()
            .map(|p| (p, self.checkpoint_interval.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1)))
    }
}

/// The outcome of running a program on the stack.
#[derive(Clone, Debug)]
pub struct StackResult {
    /// Exit classification.
    pub exit: ExitStatus,
    /// Standard output bytes.
    pub stdout: Vec<u8>,
    /// Standard error bytes.
    pub stderr: Vec<u8>,
    /// Instructions retired (ISA/RTL backends; RTL reports its retired
    /// counter).
    pub instructions: u64,
    /// Clock cycles (hardware backends only).
    pub cycles: Option<u64>,
    /// Per-opcode retire counters (ISA backend only; the hardware
    /// simulators do not decode what they retire).
    pub stats: Option<ag32::ExecStats>,
}

impl StackResult {
    /// Standard output as a string (lossy).
    #[must_use]
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Standard error as a string (lossy).
    #[must_use]
    pub fn stderr_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }

    /// The exit code, if the program exited.
    #[must_use]
    pub fn exit_code(&self) -> Option<u8> {
        match self.exit {
            ExitStatus::Exited(c) => Some(c),
            _ => None,
        }
    }
}

/// Stack-level errors.
#[derive(Debug)]
pub enum StackError {
    /// Compilation failed.
    Compile(CompileError),
    /// Image construction failed (`initAg` assumption violated).
    Image(ImageError),
    /// A hardware backend failed or timed out.
    Hardware(LockstepError),
    /// An observability sink (VCD/profile file) failed.
    Io(std::io::Error),
    /// Shadow mode caught the jet engine diverging from the reference
    /// interpreter — theorem J violated. Carries the full forensics
    /// report (divergent retire index, differing fields, retire tails).
    Divergence(Box<obs::Forensics>),
    /// Writing a rolling checkpoint or loading a snapshot to resume
    /// failed (I/O, or a corrupt/incompatible snapshot file).
    Snapshot(SnapshotError),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Compile(e) => write!(f, "compile: {e}"),
            StackError::Image(e) => write!(f, "image: {e}"),
            StackError::Hardware(e) => write!(f, "hardware: {e}"),
            StackError::Io(e) => write!(f, "io: {e}"),
            StackError::Divergence(fx) => write!(f, "shadow divergence:\n{}", fx.render()),
            StackError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for StackError {}

impl From<CompileError> for StackError {
    fn from(e: CompileError) -> Self {
        StackError::Compile(e)
    }
}

impl From<ImageError> for StackError {
    fn from(e: ImageError) -> Self {
        StackError::Image(e)
    }
}

impl From<LockstepError> for StackError {
    fn from(e: LockstepError) -> Self {
        StackError::Hardware(e)
    }
}

impl From<std::io::Error> for StackError {
    fn from(e: std::io::Error) -> Self {
        StackError::Io(e)
    }
}

impl From<SnapshotError> for StackError {
    fn from(e: SnapshotError) -> Self {
        StackError::Snapshot(e)
    }
}

/// What to observe during a run. Everything is off by default, and the
/// observed entry points degrade to the plain ones when nothing is
/// requested — observability costs nothing unless asked for.
#[derive(Debug, Default)]
pub struct Observe {
    /// Keep the last N retired instructions in a ring (ISA backend).
    /// `0` disables the retire log.
    pub retire_log: usize,
    /// Attribute execution to source functions (retires on the ISA
    /// backend, true clock cycles on the hardware backends) and report
    /// flamegraph folded stacks.
    pub profile: bool,
    /// Record every system call: name, arguments, result, descriptor
    /// state (ISA backend).
    pub syscalls: bool,
    /// Dump a GTKWave-viewable VCD waveform of every CPU signal to this
    /// file (hardware backends).
    pub vcd: Option<PathBuf>,
}

impl Observe {
    fn is_off(&self) -> bool {
        self.retire_log == 0 && !self.profile && !self.syscalls && self.vcd.is_none()
    }
}

/// What a run observed (fields mirror [`Observe`]).
#[derive(Debug, Default)]
pub struct Observations {
    /// The retire log, oldest first.
    pub retire_log: Option<ag32::RetireRing>,
    /// The cycle/retire profiler, ready for
    /// [`folded`](obs::CycleProfiler::folded) output.
    pub profile: Option<CycleProfiler>,
    /// The system-call trace.
    pub syscalls: Option<basis::SyscallTrace>,
    /// Where the VCD waveform was written.
    pub vcd: Option<PathBuf>,
}

/// The stack: a compiler configuration plus a memory layout.
#[derive(Clone, Debug, Default)]
pub struct Stack {
    /// Compiler options.
    pub compiler: CompilerConfig,
    /// Memory layout.
    pub layout: TargetLayout,
}

impl Stack {
    /// A stack with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Stack::default()
    }

    /// Compiles a program (theorem (3): `compile confAg prog = Some ...`).
    ///
    /// # Errors
    ///
    /// Parse, type or code-generation errors.
    pub fn compile(&self, src: &str) -> Result<CompiledProgram, StackError> {
        Ok(cakeml::compile_source(src, self.layout, &self.compiler)?)
    }

    /// Builds the Figure-2 initial machine state for a compiled program.
    ///
    /// # Errors
    ///
    /// [`ImageError`] when stdin or the command line exceed their devices.
    pub fn load(
        &self,
        compiled: &CompiledProgram,
        args: &[&str],
        stdin: &[u8],
    ) -> Result<State, StackError> {
        Ok(build_image(compiled, args, stdin)?)
    }

    /// Compiles, loads and runs in one step.
    ///
    /// # Errors
    ///
    /// Any [`StackError`].
    pub fn run_source(
        &self,
        src: &str,
        args: &[&str],
        stdin: &[u8],
        backend: Backend,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        let compiled = self.compile(src)?;
        let image = self.load(&compiled, args, stdin)?;
        self.run_image(image, backend, rc)
    }

    /// Runs a loaded image on the chosen backend.
    ///
    /// # Errors
    ///
    /// Hardware-backend simulation failures or timeouts.
    pub fn run_image(
        &self,
        image: State,
        backend: Backend,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        match backend {
            Backend::Isa => match rc.engine {
                Engine::Ref => match rc.checkpoint_plan() {
                    Some((path, every)) => self.run_ref_checkpointed(image, rc.fuel, every, path),
                    None => {
                        let r = run_to_halt(image, &self.layout, rc.fuel);
                        Ok(isa_result(r))
                    }
                },
                Engine::Jet => self.jet_result(image, rc),
            },
            Backend::Rtl => {
                let (rtl_state, env, cycles) =
                    silver::run_rtl_program(&image, rc.env.clone(), rc.max_cycles)?;
                self.rtl_result(&rtl_state, &env, cycles)
            }
            Backend::Verilog => {
                let (fin, env, cycles) =
                    silver::run_verilog_program(&image, rc.env.clone(), rc.max_cycles)?;
                Ok(self.verilog_result(&fin, &env, cycles))
            }
        }
    }

    /// [`run_source`](Stack::run_source) with observability: compiles,
    /// loads, runs, and returns whatever `ocfg` asked to observe. With
    /// the default (all-off) [`Observe`] this is exactly `run_source` —
    /// the observed entry points construct nothing unless asked.
    ///
    /// # Errors
    ///
    /// Any [`StackError`]; I/O failures writing a requested VCD file
    /// surface as [`StackError::Io`].
    pub fn run_source_observed(
        &self,
        src: &str,
        args: &[&str],
        stdin: &[u8],
        backend: Backend,
        rc: &RunConfig,
        ocfg: &Observe,
    ) -> Result<(StackResult, Observations), StackError> {
        let compiled = self.compile(src)?;
        let image = self.load(&compiled, args, stdin)?;
        self.run_image_observed(&compiled, image, backend, rc, ocfg)
    }

    /// [`run_image`](Stack::run_image) with observability. The compiled
    /// program is needed for its symbol table (profiling) and FFI names
    /// (syscall tracing). Fields of `ocfg` that do not apply to the
    /// chosen backend are ignored (e.g. `vcd` on the ISA backend).
    ///
    /// # Errors
    ///
    /// Any [`StackError`].
    pub fn run_image_observed(
        &self,
        compiled: &CompiledProgram,
        image: State,
        backend: Backend,
        rc: &RunConfig,
        ocfg: &Observe,
    ) -> Result<(StackResult, Observations), StackError> {
        if ocfg.is_off() {
            return Ok((self.run_image(image, backend, rc)?, Observations::default()));
        }
        let mut obs = Observations::default();
        let result = match backend {
            Backend::Isa => {
                // The observers below hook the reference interpreter.
                // Under the jet engine the observations still come from
                // a reference pass (execution is deterministic and
                // theorem-J-equivalent) but the *result* comes from the
                // selected engine, so `--stats` etc. reflect it.
                let jet_image = (rc.engine == Engine::Jet).then(|| image.clone());
                // The syscall trace needs its own pure-`Next` pass (it
                // watches FFI entry PCs); execution is deterministic, so
                // a clone of the image observes the same run.
                if ocfg.syscalls {
                    let mut trace = basis::SyscallTrace::new();
                    let _ = basis::run_to_halt_traced(
                        image.clone(),
                        &self.layout,
                        &compiled.ffi_names,
                        rc.fuel,
                        &mut trace,
                    );
                    obs.syscalls = Some(trace);
                }
                let r = match (ocfg.retire_log > 0, ocfg.profile) {
                    (true, true) => {
                        let mut ring = ag32::RetireRing::new(ocfg.retire_log);
                        let mut prof = CycleProfiler::new(compiled.symbols.to_ranges());
                        let r = basis::run_to_halt_observed(
                            image,
                            &self.layout,
                            rc.fuel,
                            &mut ag32::NoCoverage,
                            &mut (&mut ring, &mut prof),
                        );
                        obs.retire_log = Some(ring);
                        obs.profile = Some(prof);
                        r
                    }
                    (true, false) => {
                        let mut ring = ag32::RetireRing::new(ocfg.retire_log);
                        let r = basis::run_to_halt_observed(
                            image,
                            &self.layout,
                            rc.fuel,
                            &mut ag32::NoCoverage,
                            &mut ring,
                        );
                        obs.retire_log = Some(ring);
                        r
                    }
                    (false, true) => {
                        let mut prof = CycleProfiler::new(compiled.symbols.to_ranges());
                        let r = basis::run_to_halt_observed(
                            image,
                            &self.layout,
                            rc.fuel,
                            &mut ag32::NoCoverage,
                            &mut prof,
                        );
                        obs.profile = Some(prof);
                        r
                    }
                    (false, false) => run_to_halt(image, &self.layout, rc.fuel),
                };
                match jet_image {
                    Some(img) => self.jet_result(img, rc)?,
                    None => isa_result(r),
                }
            }
            Backend::Rtl => {
                let circuit = silver::silver_cpu();
                let (rtl_state, env, cycles) = match (&ocfg.vcd, ocfg.profile) {
                    (Some(path), true) => {
                        let vcd = RtlVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let mut pair = (vcd, sampler);
                        let out = silver::run_rtl_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut pair,
                        )?;
                        pair.0.finish()?;
                        obs.vcd = Some(path.clone());
                        obs.profile = Some(pair.1.profiler);
                        out
                    }
                    (Some(path), false) => {
                        let mut vcd = RtlVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let out = silver::run_rtl_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut vcd,
                        )?;
                        vcd.finish()?;
                        obs.vcd = Some(path.clone());
                        out
                    }
                    (None, true) => {
                        let mut sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let out = silver::run_rtl_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut sampler,
                        )?;
                        obs.profile = Some(sampler.profiler);
                        out
                    }
                    (None, false) => {
                        silver::run_rtl_program(&image, rc.env.clone(), rc.max_cycles)?
                    }
                };
                self.rtl_result(&rtl_state, &env, cycles)?
            }
            Backend::Verilog => {
                let circuit = silver::silver_cpu();
                let (fin, env, cycles) = match (&ocfg.vcd, ocfg.profile) {
                    (Some(path), true) => {
                        let vcd = VerilogVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let mut pair = (vcd, sampler);
                        let out = silver::run_verilog_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut pair,
                        )?;
                        pair.0.finish()?;
                        obs.vcd = Some(path.clone());
                        obs.profile = Some(pair.1.profiler);
                        out
                    }
                    (Some(path), false) => {
                        let mut vcd = VerilogVcd::new(
                            BufWriter::new(File::create(path)?),
                            &circuit,
                            "silver_cpu",
                        )?;
                        let out = silver::run_verilog_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut vcd,
                        )?;
                        vcd.finish()?;
                        obs.vcd = Some(path.clone());
                        out
                    }
                    (None, true) => {
                        let mut sampler = PcSampler::new(CycleProfiler::new(
                            compiled.symbols.to_ranges(),
                        ));
                        let out = silver::run_verilog_program_observed(
                            &image,
                            rc.env.clone(),
                            rc.max_cycles,
                            &mut sampler,
                        )?;
                        obs.profile = Some(sampler.profiler);
                        out
                    }
                    (None, false) => {
                        silver::run_verilog_program(&image, rc.env.clone(), rc.max_cycles)?
                    }
                };
                self.verilog_result(&fin, &env, cycles)
            }
        };
        Ok((result, obs))
    }

    /// Resumes a checkpoint on the configured engine — including
    /// cross-engine resume (a `ref` checkpoint under [`Engine::Jet`]
    /// and vice versa), which is theorem J restated over serialised
    /// state. `rc.fuel` is the *total* fuel of the logical run: a
    /// snapshot taken at retire `C` under fuel `F` resumes with `F − C`
    /// remaining, so exit classification (`OutOfFuel` in particular)
    /// matches the uninterrupted run exactly. The result's
    /// `instructions` count is likewise the total including the
    /// pre-checkpoint prefix. Rolling checkpoints and shadow mode
    /// compose with resume.
    ///
    /// # Errors
    ///
    /// Any [`StackError`]; shadow divergence over the resumed segment
    /// surfaces as [`StackError::Divergence`].
    pub fn resume_snapshot(
        &self,
        snap: &Snapshot,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        let remaining = rc.fuel.saturating_sub(snap.retired());
        match rc.engine {
            Engine::Ref => match rc.checkpoint_plan() {
                Some((path, every)) => {
                    self.run_ref_checkpointed(snap.restore(), remaining, every, path)
                }
                None => {
                    let mut state = snap.restore();
                    let n = state.run(remaining);
                    Ok(self.finish_ref(&state, n < remaining))
                }
            },
            Engine::Jet => {
                if let Some(sample) = rc.shadow {
                    self.shadow_check(&snap.restore(), remaining, sample, rc)?;
                }
                let mut j = snap.restore_jet();
                match rc.checkpoint_plan() {
                    Some((path, every)) => self.run_jet_checkpointed(j, remaining, every, path),
                    None => {
                        let n = j.run(remaining);
                        Ok(self.classify_jet(&j, n < remaining))
                    }
                }
            }
        }
    }

    /// [`resume_snapshot`](Stack::resume_snapshot) straight from a
    /// `.snap` file — the `silverc --resume` entry point.
    ///
    /// # Errors
    ///
    /// [`StackError::Snapshot`] when the file is unreadable or corrupt,
    /// otherwise any [`StackError`].
    pub fn resume_file(&self, path: &Path, rc: &RunConfig) -> Result<StackResult, StackError> {
        self.resume_snapshot(&Snapshot::read_from(path)?, rc)
    }

    /// Reference-interpreter run in checkpoint-sized slices, rewriting
    /// the rolling snapshot after each full slice. Slicing cannot
    /// change behaviour: `State::run` is deterministic and stops
    /// pre-step on halt, so N slices of M retires classify exactly like
    /// one run of N·M — `tests/checkpoint.rs` holds it to that.
    fn run_ref_checkpointed(
        &self,
        mut state: State,
        fuel: u64,
        every: u64,
        path: &Path,
    ) -> Result<StackResult, StackError> {
        let mut done = 0u64;
        while done < fuel {
            let chunk = every.min(fuel - done);
            let n = state.run(chunk);
            done += n;
            if n < chunk {
                break;
            }
            Snapshot::capture(&state).write_rolling(path)?;
        }
        Ok(self.finish_ref(&state, done < fuel))
    }

    /// Classification + stream extraction off a reference state, shared
    /// by the chunked and resumed run paths. Delegates the exit verdict
    /// to [`basis::classify_exit`] — the same function `run_to_halt`
    /// uses — so every path agrees on `Exited`/`Wedged`/`OutOfFuel`.
    fn finish_ref(&self, state: &State, fuel_left: bool) -> StackResult {
        let (stdout, stderr) = extract_streams(&state.io_events);
        StackResult {
            exit: classify_exit(state, &self.layout, fuel_left),
            stdout,
            stderr,
            instructions: state.instructions_retired,
            cycles: None,
            stats: Some(state.stats.clone()),
        }
    }

    /// Runs a loaded image on the [`jet`] translation-cache engine,
    /// classifying the end state exactly like the reference machine
    /// runner does. When [`RunConfig::shadow`] is set, a lockstep
    /// shadow run against `ag32::State::next` happens first and any
    /// divergence aborts with the forensics report — the plain run only
    /// proceeds once theorem J held over the whole execution.
    fn jet_result(&self, image: State, rc: &RunConfig) -> Result<StackResult, StackError> {
        if let Some(sample) = rc.shadow {
            self.shadow_check(&image, rc.fuel, sample, rc)?;
        }
        let mut j = jet::Jet::from_state(&image);
        match rc.checkpoint_plan() {
            Some((path, every)) => self.run_jet_checkpointed(j, rc.fuel, every, path),
            None => {
                let retired = j.run(rc.fuel);
                Ok(self.classify_jet(&j, retired < rc.fuel))
            }
        }
    }

    /// The lockstep shadow oracle, checkpoint-anchored when a cadence
    /// is configured: on a divergence the last good anchor (a verified
    /// reference state) is replayed to confirm the bug reproduces from
    /// the checkpoint — replaying `divergent − anchor` retires instead
    /// of `divergent` from boot — and, when a checkpoint file is
    /// configured, the anchor is written there so `silverc --resume`
    /// can re-enter the failure neighbourhood directly.
    fn shadow_check(
        &self,
        image: &State,
        fuel: u64,
        sample: u64,
        rc: &RunConfig,
    ) -> Result<(), StackError> {
        let every = match (rc.checkpoint_interval, &rc.checkpoint) {
            (Some(n), _) => n.max(1),
            (None, Some(_)) => DEFAULT_CHECKPOINT_EVERY,
            (None, None) => {
                // No anchoring configured: plain whole-run shadow.
                return jet::run_shadow(image, fuel, sample, 0)
                    .map(|_| ())
                    .map_err(StackError::Divergence);
            }
        };
        match jet::run_shadow_anchored(image, fuel, sample, 0, every) {
            Ok(_) => Ok(()),
            Err(div) => {
                let mut fx = div.forensics;
                if let Some(anchor) = div.anchor.as_deref() {
                    let step = fx.divergent_step.unwrap_or(div.anchor_retired);
                    let replay_fuel = step.saturating_sub(div.anchor_retired).saturating_add(8);
                    let reproduced = jet::run_shadow(anchor, replay_fuel, sample, 0).is_err();
                    fx.notes.push(format!(
                        "checkpoint-anchored replay from retire {}: {} within {} retires (saved {} boot retires)",
                        div.anchor_retired,
                        if reproduced {
                            "divergence reproduced"
                        } else {
                            "not reproduced (translation-cache history dependent; replay from boot)"
                        },
                        replay_fuel,
                        div.anchor_retired,
                    ));
                    if let Some(path) = rc.checkpoint.as_deref() {
                        Snapshot::capture(anchor).write_rolling(path)?;
                        fx.notes.push(format!(
                            "anchor checkpoint written to {} (resume with --resume to replay)",
                            path.display()
                        ));
                    }
                }
                Err(StackError::Divergence(fx))
            }
        }
    }

    /// Jet-engine run in checkpoint-sized slices; see
    /// [`run_ref_checkpointed`](Stack::run_ref_checkpointed). Each
    /// snapshot goes through [`Snapshot::capture_jet`], whose
    /// memory write-back makes the bytes identical to a reference
    /// checkpoint of the same logical state.
    fn run_jet_checkpointed(
        &self,
        mut j: jet::Jet,
        fuel: u64,
        every: u64,
        path: &Path,
    ) -> Result<StackResult, StackError> {
        let mut done = 0u64;
        while done < fuel {
            let chunk = every.min(fuel - done);
            let n = j.run(chunk);
            done += n;
            if n < chunk {
                break;
            }
            Snapshot::capture_jet(&j).write_rolling(path)?;
        }
        Ok(self.classify_jet(&j, done < fuel))
    }

    /// Classifies the jet engine's end state. Reads straight off the
    /// engine: everything the verdict needs (halt probe, exit-code
    /// word, PC, streams, stats) is readable without the full
    /// `into_state` memory write-back, which would cost more than the
    /// run itself on short workloads.
    fn classify_jet(&self, j: &jet::Jet, fuel_left: bool) -> StackResult {
        let (stdout, stderr) = extract_streams(&j.io_events);
        let exit = if !fuel_left && !j.is_halted() {
            ExitStatus::OutOfFuel
        } else {
            let code = j.mem().read_word(self.layout.exit_code_addr);
            if j.pc == self.layout.halt_addr && code != basis::image::EXIT_UNSET {
                ExitStatus::Exited(code as u8)
            } else {
                ExitStatus::Wedged
            }
        };
        StackResult {
            exit,
            stdout,
            stderr,
            instructions: j.instructions_retired,
            cycles: None,
            stats: Some(j.stats.clone()),
        }
    }

    fn rtl_result(
        &self,
        rtl_state: &rtl::RtlState,
        env: &silver::env::MemEnv,
        cycles: u64,
    ) -> Result<StackResult, StackError> {
        let (stdout, stderr) = extract_streams(&env.io_events);
        let instructions = rtl_state
            .get_scalar("retired")
            .map_err(|e| StackError::Hardware(LockstepError::Rtl(e)))?;
        let exit = classify_hw(&env.mem, &self.layout, rtl_state)?;
        Ok(StackResult { exit, stdout, stderr, instructions, cycles: Some(cycles), stats: None })
    }

    fn verilog_result(
        &self,
        fin: &verilog::eval::VarState,
        env: &silver::env::MemEnv,
        cycles: u64,
    ) -> StackResult {
        let (stdout, stderr) = extract_streams(&env.io_events);
        let code = env.mem.read_word(self.layout.exit_code_addr);
        let pc = fin.get("pc").map(|v| v.as_u64() as u32).unwrap_or(0);
        let exit = if pc == self.layout.halt_addr && code != basis::image::EXIT_UNSET {
            ExitStatus::Exited(code as u8)
        } else {
            ExitStatus::Wedged
        };
        StackResult { exit, stdout, stderr, instructions: 0, cycles: Some(cycles), stats: None }
    }
}

fn isa_result(r: basis::MachineResult) -> StackResult {
    StackResult {
        exit: r.exit,
        stdout: r.stdout,
        stderr: r.stderr,
        instructions: r.instructions,
        cycles: None,
        stats: Some(r.state.stats.clone()),
    }
}

fn classify_hw(
    mem: &ag32::Memory,
    layout: &TargetLayout,
    rtl_state: &rtl::RtlState,
) -> Result<ExitStatus, StackError> {
    let code = mem.read_word(layout.exit_code_addr);
    let pc = rtl_state
        .get_scalar("pc")
        .map_err(|e| StackError::Hardware(LockstepError::Rtl(e)))? as u32;
    Ok(if pc == layout.halt_addr && code != basis::image::EXIT_UNSET {
        ExitStatus::Exited(code as u8)
    } else {
        ExitStatus::Wedged
    })
}
