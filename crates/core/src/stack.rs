//! The verified stack, assembled: compile → load → run at any level.

use std::fmt;

use ag32::State;
use basis::{build_image, extract_streams, run_to_halt, ExitStatus, ImageError};
use cakeml::{CompileError, CompiledProgram, CompilerConfig, TargetLayout};
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::LockstepError;

/// Which layer of Figure 1 executes the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Silver ISA (`Next`), layer 2.
    Isa,
    /// The circuit-level CPU implementation, layer 3.
    Rtl,
    /// The generated deep-embedded Verilog, layer 4.
    Verilog,
}

/// Execution limits and environment behaviour.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Maximum ISA instructions (ISA backend).
    pub fuel: u64,
    /// Maximum clock cycles (circuit/Verilog backends).
    pub max_cycles: u64,
    /// Lab-environment behaviour for the hardware backends.
    pub env: MemEnvConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            fuel: 4_000_000_000,
            max_cycles: 4_000_000_000,
            env: MemEnvConfig { mem_latency: Latency::Fixed(0), ..MemEnvConfig::default() },
        }
    }
}

/// The outcome of running a program on the stack.
#[derive(Clone, Debug)]
pub struct StackResult {
    /// Exit classification.
    pub exit: ExitStatus,
    /// Standard output bytes.
    pub stdout: Vec<u8>,
    /// Standard error bytes.
    pub stderr: Vec<u8>,
    /// Instructions retired (ISA/RTL backends; RTL reports its retired
    /// counter).
    pub instructions: u64,
    /// Clock cycles (hardware backends only).
    pub cycles: Option<u64>,
    /// Per-opcode retire counters (ISA backend only; the hardware
    /// simulators do not decode what they retire).
    pub stats: Option<ag32::ExecStats>,
}

impl StackResult {
    /// Standard output as a string (lossy).
    #[must_use]
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Standard error as a string (lossy).
    #[must_use]
    pub fn stderr_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }

    /// The exit code, if the program exited.
    #[must_use]
    pub fn exit_code(&self) -> Option<u8> {
        match self.exit {
            ExitStatus::Exited(c) => Some(c),
            _ => None,
        }
    }
}

/// Stack-level errors.
#[derive(Debug)]
pub enum StackError {
    /// Compilation failed.
    Compile(CompileError),
    /// Image construction failed (`initAg` assumption violated).
    Image(ImageError),
    /// A hardware backend failed or timed out.
    Hardware(LockstepError),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Compile(e) => write!(f, "compile: {e}"),
            StackError::Image(e) => write!(f, "image: {e}"),
            StackError::Hardware(e) => write!(f, "hardware: {e}"),
        }
    }
}

impl std::error::Error for StackError {}

impl From<CompileError> for StackError {
    fn from(e: CompileError) -> Self {
        StackError::Compile(e)
    }
}

impl From<ImageError> for StackError {
    fn from(e: ImageError) -> Self {
        StackError::Image(e)
    }
}

impl From<LockstepError> for StackError {
    fn from(e: LockstepError) -> Self {
        StackError::Hardware(e)
    }
}

/// The stack: a compiler configuration plus a memory layout.
#[derive(Clone, Debug, Default)]
pub struct Stack {
    /// Compiler options.
    pub compiler: CompilerConfig,
    /// Memory layout.
    pub layout: TargetLayout,
}

impl Stack {
    /// A stack with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Stack::default()
    }

    /// Compiles a program (theorem (3): `compile confAg prog = Some ...`).
    ///
    /// # Errors
    ///
    /// Parse, type or code-generation errors.
    pub fn compile(&self, src: &str) -> Result<CompiledProgram, StackError> {
        Ok(cakeml::compile_source(src, self.layout, &self.compiler)?)
    }

    /// Builds the Figure-2 initial machine state for a compiled program.
    ///
    /// # Errors
    ///
    /// [`ImageError`] when stdin or the command line exceed their devices.
    pub fn load(
        &self,
        compiled: &CompiledProgram,
        args: &[&str],
        stdin: &[u8],
    ) -> Result<State, StackError> {
        Ok(build_image(compiled, args, stdin)?)
    }

    /// Compiles, loads and runs in one step.
    ///
    /// # Errors
    ///
    /// Any [`StackError`].
    pub fn run_source(
        &self,
        src: &str,
        args: &[&str],
        stdin: &[u8],
        backend: Backend,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        let compiled = self.compile(src)?;
        let image = self.load(&compiled, args, stdin)?;
        self.run_image(image, backend, rc)
    }

    /// Runs a loaded image on the chosen backend.
    ///
    /// # Errors
    ///
    /// Hardware-backend simulation failures or timeouts.
    pub fn run_image(
        &self,
        image: State,
        backend: Backend,
        rc: &RunConfig,
    ) -> Result<StackResult, StackError> {
        match backend {
            Backend::Isa => {
                let r = run_to_halt(image, &self.layout, rc.fuel);
                Ok(StackResult {
                    exit: r.exit,
                    stdout: r.stdout,
                    stderr: r.stderr,
                    instructions: r.instructions,
                    cycles: None,
                    stats: Some(r.state.stats.clone()),
                })
            }
            Backend::Rtl => {
                let (rtl_state, env, cycles) =
                    silver::run_rtl_program(&image, rc.env.clone(), rc.max_cycles)?;
                let (stdout, stderr) = extract_streams(&env.io_events);
                let instructions = rtl_state.get_scalar("retired").map_err(|e| {
                    StackError::Hardware(LockstepError::Rtl(e))
                })?;
                let exit = classify_hw(&env.mem, &self.layout, &rtl_state)?;
                Ok(StackResult {
                    exit,
                    stdout,
                    stderr,
                    instructions,
                    cycles: Some(cycles),
                    stats: None,
                })
            }
            Backend::Verilog => {
                let (fin, env, cycles) =
                    silver::run_verilog_program(&image, rc.env.clone(), rc.max_cycles)?;
                let (stdout, stderr) = extract_streams(&env.io_events);
                let code = env.mem.read_word(self.layout.exit_code_addr);
                let pc = fin.get("pc").map(|v| v.as_u64() as u32).unwrap_or(0);
                let exit = if pc == self.layout.halt_addr && code != basis::image::EXIT_UNSET {
                    ExitStatus::Exited(code as u8)
                } else {
                    ExitStatus::Wedged
                };
                Ok(StackResult {
                    exit,
                    stdout,
                    stderr,
                    instructions: 0,
                    cycles: Some(cycles),
                    stats: None,
                })
            }
        }
    }
}

fn classify_hw(
    mem: &ag32::Memory,
    layout: &TargetLayout,
    rtl_state: &rtl::RtlState,
) -> Result<ExitStatus, StackError> {
    let code = mem.read_word(layout.exit_code_addr);
    let pc = rtl_state
        .get_scalar("pc")
        .map_err(|e| StackError::Hardware(LockstepError::Rtl(e)))? as u32;
    Ok(if pc == layout.halt_addr && code != basis::image::EXIT_UNSET {
        ExitStatus::Exited(code as u8)
    } else {
        ExitStatus::Wedged
    })
}
