//! The end-to-end theorem analog (theorem (8) and §7's theorem (14)).
//!
//! For a program and its inputs, [`check_end_to_end`] establishes
//! dynamically what the paper proves once and for all: the behaviour
//! observed by running the *hardware* (the circuit-level CPU, and
//! optionally its generated Verilog) equals the behaviour of the source
//! semantics — same exit status, same standard output and error.
//!
//! Failures are structured: a [`CheckFailure`] names the [`Layer`] that
//! errored, or the pair of adjacent layers that disagreed — the campaign
//! engine's triage (`campaign::triage`) leans on this to report "first
//! diverging layer" without string matching.

use std::fmt;

use basis::{BasisHost, ExitStatus, FsState};
use cakeml::frontend;
use silver::lockstep::run_lockstep;

use crate::stack::{Backend, Engine, RunConfig, Stack, StackError, StackResult};

/// One layer of the paper's Figure-1 stack, as exercised by the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// The source semantics (the CakeML interpreter) — the specification.
    Source,
    /// The Silver ISA `Next` function.
    Isa,
    /// The [`jet`] translation-cache implementation of the ISA layer —
    /// same `Next` semantics, different engine (theorem J).
    Jet,
    /// The circuit-level CPU implementation.
    Rtl,
    /// The generated deep-embedded Verilog.
    Verilog,
    /// The ISA↔circuit lockstep simulation relation (theorem (9)).
    Lockstep,
}

impl Layer {
    /// Stable lower-case name used in reports and repro lines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Layer::Source => "source",
            Layer::Isa => "isa",
            Layer::Jet => "jet",
            Layer::Rtl => "rtl",
            Layer::Verilog => "verilog",
            Layer::Lockstep => "lockstep",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an end-to-end check did not produce an [`EndToEndReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckFailure {
    /// A layer could not produce a behaviour at all: compile/load error,
    /// simulator failure, fuel exhaustion, or a run that wedged instead
    /// of exiting.
    Error {
        /// The layer that failed.
        layer: Layer,
        /// Human-readable cause.
        message: String,
    },
    /// Two layers both produced behaviours, and the behaviours differ —
    /// a genuine counterexample to the theorem analog.
    Disagreement {
        /// The layer acting as specification in this comparison.
        spec: Layer,
        /// The layer under test that diverged from it.
        impl_: Layer,
        /// What differed (exit codes, stdout, stderr).
        message: String,
    },
}

impl CheckFailure {
    /// The layer to blame: the erroring layer, or for a disagreement the
    /// implementation-side layer (the first one to diverge walking the
    /// stack downward from the source semantics).
    #[must_use]
    pub fn layer(&self) -> Layer {
        match self {
            CheckFailure::Error { layer, .. } => *layer,
            CheckFailure::Disagreement { impl_, .. } => *impl_,
        }
    }

    /// True for [`CheckFailure::Disagreement`] — a real divergence
    /// between two layers rather than an infrastructure error.
    #[must_use]
    pub fn is_disagreement(&self) -> bool {
        matches!(self, CheckFailure::Disagreement { .. })
    }
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckFailure::Error { layer, message } => {
                write!(f, "[{layer}] error: {message}")
            }
            CheckFailure::Disagreement { spec, impl_, message } => {
                write!(f, "[{impl_}] disagrees with [{spec}]: {message}")
            }
        }
    }
}

impl std::error::Error for CheckFailure {}

impl From<CheckFailure> for String {
    fn from(f: CheckFailure) -> String {
        f.to_string()
    }
}

/// What to include in the end-to-end check.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Also run under the Verilog semantics (slow; keep programs small).
    pub verilog: bool,
    /// Also spot-check the ISA↔circuit simulation relation over the
    /// first `lockstep_instructions` instructions (theorem (9)).
    pub lockstep_instructions: u64,
    /// Interpreter fuel.
    pub interp_fuel: u64,
    /// Which implementation executes the ISA layer. With
    /// [`Engine::Jet`] the translation-cache engine runs the image and
    /// ISA-level failures are attributed to [`Layer::Jet`], so triage
    /// distinguishes "jet engine diverged" from "ISA semantics
    /// diverged".
    pub engine: Engine,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            verilog: false,
            lockstep_instructions: 0,
            interp_fuel: 2_000_000_000,
            engine: Engine::Ref,
        }
    }
}

/// The agreed observable behaviour plus per-layer costs.
#[derive(Clone, Debug)]
pub struct EndToEndReport {
    /// Exit code every layer agreed on.
    pub exit_code: u8,
    /// Agreed standard output.
    pub stdout: String,
    /// Agreed standard error.
    pub stderr: String,
    /// ISA instructions retired.
    pub isa_instructions: u64,
    /// Circuit-level clock cycles.
    pub rtl_cycles: u64,
    /// Verilog-level clock cycles, when checked.
    pub verilog_cycles: Option<u64>,
    /// Per-opcode retire counters from the ISA run.
    pub isa_stats: Option<ag32::ExecStats>,
}

fn err(layer: Layer, message: impl Into<String>) -> CheckFailure {
    CheckFailure::Error { layer, message: message.into() }
}

fn expect_exit(layer: Layer, r: &StackResult) -> Result<u8, CheckFailure> {
    match r.exit {
        ExitStatus::Exited(c) => Ok(c),
        ref other => Err(err(layer, format!("did not exit cleanly: {other:?}"))),
    }
}

/// Compares the observable behaviour of two layers' runs.
fn compare_behaviour(
    spec: Layer,
    spec_code: u8,
    spec_out: &str,
    spec_err: &str,
    impl_: Layer,
    impl_code: u8,
    impl_out: &str,
    impl_err: &str,
) -> Result<(), CheckFailure> {
    if impl_code != spec_code {
        return Err(CheckFailure::Disagreement {
            spec,
            impl_,
            message: format!("exit {impl_code} vs {spec_code}"),
        });
    }
    if impl_out != spec_out {
        return Err(CheckFailure::Disagreement {
            spec,
            impl_,
            message: format!("stdout {impl_out:?} vs {spec_out:?}"),
        });
    }
    if impl_err != spec_err {
        return Err(CheckFailure::Disagreement {
            spec,
            impl_,
            message: format!("stderr {impl_err:?} vs {spec_err:?}"),
        });
    }
    Ok(())
}

/// Runs `src` at every level and checks the observable behaviours agree.
///
/// # Errors
///
/// A [`CheckFailure`] naming the first layer to error or diverge.
pub fn check_end_to_end(
    stack: &Stack,
    src: &str,
    args: &[&str],
    stdin: &[u8],
    opts: &CheckOptions,
) -> Result<EndToEndReport, CheckFailure> {
    let rc = RunConfig { engine: opts.engine, ..RunConfig::default() };
    // Failures of the ISA-level run are attributed to the engine that
    // actually executed it.
    let isa_layer = match opts.engine {
        Engine::Ref => Layer::Isa,
        Engine::Jet => Layer::Jet,
    };

    // Source semantics (the specification side of theorem (1)).
    let (prog, _) = frontend(src, &stack.compiler).map_err(|e| err(Layer::Source, e.to_string()))?;
    let mut host = BasisHost::new(FsState::stdin_only(args, stdin));
    let interp = cakeml::run_program(&prog, &mut host, opts.interp_fuel)
        .map_err(|e| err(Layer::Source, format!("interpreter: {e}")))?;
    let spec_out = host.fs.stdout_utf8();
    let spec_err = host.fs.stderr_utf8();

    let compiled = stack.compile(src).map_err(|e| err(Layer::Source, e.to_string()))?;
    let image = stack
        .load(&compiled, args, stdin)
        .map_err(|e| err(Layer::Source, e.to_string()))?;

    // ISA level (theorem (6)); under `Engine::Jet`, also theorem J.
    let isa = stack
        .run_image(image.clone(), Backend::Isa, &rc)
        .map_err(|e| err(isa_layer, e.to_string()))?;
    let isa_code = expect_exit(isa_layer, &isa)?;
    compare_behaviour(
        Layer::Source,
        interp.exit_code,
        &spec_out,
        &spec_err,
        isa_layer,
        isa_code,
        &isa.stdout_utf8(),
        &isa.stderr_utf8(),
    )?;

    // Circuit level (theorem (9) composed in).
    let rtl = stack
        .run_image(image.clone(), Backend::Rtl, &rc)
        .map_err(|e| err(Layer::Rtl, e.to_string()))?;
    let rtl_code = expect_exit(Layer::Rtl, &rtl)?;
    compare_behaviour(
        isa_layer,
        isa_code,
        &isa.stdout_utf8(),
        &isa.stderr_utf8(),
        Layer::Rtl,
        rtl_code,
        &rtl.stdout_utf8(),
        &rtl.stderr_utf8(),
    )?;

    // Verilog level (theorem (8)).
    let verilog_cycles = if opts.verilog {
        let v = stack
            .run_image(image.clone(), Backend::Verilog, &rc)
            .map_err(|e| err(Layer::Verilog, e.to_string()))?;
        let v_code = expect_exit(Layer::Verilog, &v)?;
        compare_behaviour(
            isa_layer,
            isa_code,
            &isa.stdout_utf8(),
            &isa.stderr_utf8(),
            Layer::Verilog,
            v_code,
            &v.stdout_utf8(),
            &v.stderr_utf8(),
        )?;
        v.cycles
    } else {
        None
    };

    // Optional theorem-(9) lockstep spot check with random latencies.
    if opts.lockstep_instructions > 0 {
        run_lockstep(
            &image,
            opts.lockstep_instructions,
            silver::env::MemEnvConfig {
                mem_latency: silver::env::Latency::Random { max: 2 },
                seed: 0xE2E,
                ..silver::env::MemEnvConfig::default()
            },
            opts.lockstep_instructions * 64 + 10_000,
        )
        .map_err(|e| err(Layer::Lockstep, e.to_string()))?;
    }

    Ok(EndToEndReport {
        exit_code: isa_code,
        stdout: spec_out,
        stderr: spec_err,
        isa_instructions: isa.instructions,
        rtl_cycles: rtl.cycles.unwrap_or(0),
        verilog_cycles,
        isa_stats: isa.stats,
    })
}

/// One workload for [`check_end_to_end_batch`].
#[derive(Clone, Debug)]
pub struct Workload {
    /// A label for error messages.
    pub name: String,
    /// Program source.
    pub src: String,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Standard input.
    pub stdin: Vec<u8>,
}

impl Workload {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, src: &str, args: &[&str], stdin: &[u8]) -> Self {
        Workload {
            name: name.to_string(),
            src: src.to_string(),
            args: args.iter().map(ToString::to_string).collect(),
            stdin: stdin.to_vec(),
        }
    }
}

/// Runs [`check_end_to_end`] over a whole suite of workloads, fanned
/// across threads with [`testkit::par::par_map`] (bounded by
/// `TESTKIT_THREADS`). Results come back in input order, each paired
/// with its workload; every workload runs to completion, so one batch
/// identifies *every* divergence, not just the first.
#[must_use]
pub fn check_end_to_end_batch(
    stack: &Stack,
    workloads: Vec<Workload>,
    opts: &CheckOptions,
) -> Vec<(Workload, Result<EndToEndReport, CheckFailure>)> {
    testkit::par::par_map(workloads, |w| {
        let args: Vec<&str> = w.args.iter().map(String::as_str).collect();
        let r = check_end_to_end(stack, &w.src, &args, &w.stdin, opts);
        (w, r)
    })
}

/// Collapses a batch result into `Ok(reports)` or the first failure
/// rendered as a string — the shape the batch API had before failures
/// became structured, still convenient for plain assertion suites.
///
/// # Errors
///
/// The first failing workload, labelled with its name.
pub fn batch_reports(
    results: Vec<(Workload, Result<EndToEndReport, CheckFailure>)>,
) -> Result<Vec<EndToEndReport>, String> {
    results
        .into_iter()
        .map(|(w, r)| r.map_err(|e| format!("{}: {e}", w.name)))
        .collect()
}

impl From<StackError> for String {
    fn from(e: StackError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_behaviour_names_the_diverging_pair() {
        // Exit-code divergence between source and ISA.
        let f = compare_behaviour(Layer::Source, 3, "", "", Layer::Isa, 4, "", "")
            .unwrap_err();
        assert!(f.is_disagreement());
        assert_eq!(f.layer(), Layer::Isa);
        assert_eq!(f.to_string(), "[isa] disagrees with [source]: exit 4 vs 3");

        // Stdout divergence between ISA and RTL.
        let f = compare_behaviour(Layer::Isa, 0, "a", "", Layer::Rtl, 0, "b", "")
            .unwrap_err();
        match &f {
            CheckFailure::Disagreement { spec, impl_, .. } => {
                assert_eq!(*spec, Layer::Isa);
                assert_eq!(*impl_, Layer::Rtl);
            }
            other => panic!("expected disagreement, got {other:?}"),
        }

        // Stderr divergence is caught too.
        assert!(compare_behaviour(Layer::Isa, 0, "", "x", Layer::Verilog, 0, "", "y").is_err());

        // Agreement passes.
        assert!(compare_behaviour(Layer::Source, 7, "o", "e", Layer::Isa, 7, "o", "e").is_ok());
    }

    #[test]
    fn error_failures_name_their_layer() {
        let f = err(Layer::Rtl, "timed out");
        assert!(!f.is_disagreement());
        assert_eq!(f.layer(), Layer::Rtl);
        assert_eq!(f.to_string(), "[rtl] error: timed out");
        assert_eq!(Layer::Lockstep.name(), "lockstep");
    }
}
