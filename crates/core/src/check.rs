//! The end-to-end theorem analog (theorem (8) and §7's theorem (14)).
//!
//! For a program and its inputs, [`check_end_to_end`] establishes
//! dynamically what the paper proves once and for all: the behaviour
//! observed by running the *hardware* (the circuit-level CPU, and
//! optionally its generated Verilog) equals the behaviour of the source
//! semantics — same exit status, same standard output and error.

use basis::{BasisHost, ExitStatus, FsState};
use cakeml::frontend;
use silver::lockstep::run_lockstep;

use crate::stack::{Backend, RunConfig, Stack, StackError, StackResult};

/// What to include in the end-to-end check.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Also run under the Verilog semantics (slow; keep programs small).
    pub verilog: bool,
    /// Also spot-check the ISA↔circuit simulation relation over the
    /// first `lockstep_instructions` instructions (theorem (9)).
    pub lockstep_instructions: u64,
    /// Interpreter fuel.
    pub interp_fuel: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { verilog: false, lockstep_instructions: 0, interp_fuel: 2_000_000_000 }
    }
}

/// The agreed observable behaviour plus per-layer costs.
#[derive(Clone, Debug)]
pub struct EndToEndReport {
    /// Exit code every layer agreed on.
    pub exit_code: u8,
    /// Agreed standard output.
    pub stdout: String,
    /// Agreed standard error.
    pub stderr: String,
    /// ISA instructions retired.
    pub isa_instructions: u64,
    /// Circuit-level clock cycles.
    pub rtl_cycles: u64,
    /// Verilog-level clock cycles, when checked.
    pub verilog_cycles: Option<u64>,
}

fn expect_exit(label: &str, r: &StackResult) -> Result<u8, String> {
    match r.exit {
        ExitStatus::Exited(c) => Ok(c),
        ref other => Err(format!("{label}: did not exit cleanly: {other:?}")),
    }
}

/// Runs `src` at every level and checks the observable behaviours agree.
///
/// # Errors
///
/// A description of the first disagreement or failure.
pub fn check_end_to_end(
    stack: &Stack,
    src: &str,
    args: &[&str],
    stdin: &[u8],
    opts: &CheckOptions,
) -> Result<EndToEndReport, String> {
    let rc = RunConfig::default();

    // Source semantics (the specification side of theorem (1)).
    let (prog, _) = frontend(src, &stack.compiler).map_err(|e| e.to_string())?;
    let mut host = BasisHost::new(FsState::stdin_only(args, stdin));
    let interp = cakeml::run_program(&prog, &mut host, opts.interp_fuel)
        .map_err(|e| format!("interpreter: {e}"))?;
    let spec_out = host.fs.stdout_utf8();
    let spec_err = host.fs.stderr_utf8();

    let compiled = stack.compile(src).map_err(|e| e.to_string())?;
    let image = stack.load(&compiled, args, stdin).map_err(|e| e.to_string())?;

    // ISA level (theorem (6)).
    let isa = stack
        .run_image(image.clone(), Backend::Isa, &rc)
        .map_err(|e| e.to_string())?;
    let isa_code = expect_exit("isa", &isa)?;
    if isa_code != interp.exit_code
        || isa.stdout_utf8() != spec_out
        || isa.stderr_utf8() != spec_err
    {
        return Err(format!(
            "ISA disagrees with source semantics: exit {isa_code} vs {}, stdout {:?} vs {:?}",
            interp.exit_code,
            isa.stdout_utf8(),
            spec_out
        ));
    }

    // Circuit level (theorem (9) composed in).
    let rtl = stack
        .run_image(image.clone(), Backend::Rtl, &rc)
        .map_err(|e| e.to_string())?;
    let rtl_code = expect_exit("rtl", &rtl)?;
    if rtl_code != isa_code || rtl.stdout != isa.stdout || rtl.stderr != isa.stderr {
        return Err(format!(
            "circuit level disagrees with ISA: exit {rtl_code} vs {isa_code}"
        ));
    }

    // Verilog level (theorem (8)).
    let verilog_cycles = if opts.verilog {
        let v = stack
            .run_image(image.clone(), Backend::Verilog, &rc)
            .map_err(|e| e.to_string())?;
        let v_code = expect_exit("verilog", &v)?;
        if v_code != isa_code || v.stdout != isa.stdout || v.stderr != isa.stderr {
            return Err("verilog level disagrees with ISA".to_string());
        }
        v.cycles
    } else {
        None
    };

    // Optional theorem-(9) lockstep spot check with random latencies.
    if opts.lockstep_instructions > 0 {
        run_lockstep(
            &image,
            opts.lockstep_instructions,
            silver::env::MemEnvConfig {
                mem_latency: silver::env::Latency::Random { max: 2 },
                seed: 0xE2E,
                ..silver::env::MemEnvConfig::default()
            },
            opts.lockstep_instructions * 64 + 10_000,
        )
        .map_err(|e| format!("lockstep: {e}"))?;
    }

    Ok(EndToEndReport {
        exit_code: isa_code,
        stdout: spec_out,
        stderr: spec_err,
        isa_instructions: isa.instructions,
        rtl_cycles: rtl.cycles.unwrap_or(0),
        verilog_cycles,
    })
}

/// One workload for [`check_end_to_end_batch`].
#[derive(Clone, Debug)]
pub struct Workload {
    /// A label for error messages.
    pub name: String,
    /// Program source.
    pub src: String,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Standard input.
    pub stdin: Vec<u8>,
}

impl Workload {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, src: &str, args: &[&str], stdin: &[u8]) -> Self {
        Workload {
            name: name.to_string(),
            src: src.to_string(),
            args: args.iter().map(ToString::to_string).collect(),
            stdin: stdin.to_vec(),
        }
    }
}

/// Runs [`check_end_to_end`] over a whole suite of workloads, fanned
/// across threads with [`testkit::par::par_map`] (bounded by
/// `TESTKIT_THREADS`). Results come back in input order.
///
/// # Errors
///
/// The first failing workload, labelled with its name. All workloads
/// run to completion before the error is reported, so a batch failure
/// message identifies every divergence in `stderr` logs.
pub fn check_end_to_end_batch(
    stack: &Stack,
    workloads: Vec<Workload>,
    opts: &CheckOptions,
) -> Result<Vec<EndToEndReport>, String> {
    let results = testkit::par::par_map(workloads, |w| {
        let args: Vec<&str> = w.args.iter().map(String::as_str).collect();
        check_end_to_end(stack, &w.src, &args, &w.stdin, opts)
            .map_err(|e| format!("{}: {e}", w.name))
    });
    results.into_iter().collect()
}

impl From<StackError> for String {
    fn from(e: StackError) -> Self {
        e.to_string()
    }
}
