//! The parallel end-to-end checker: the paper's application suite run
//! through every layer at once, fanned across threads with
//! `testkit::par`, plus the failure paths of the structured
//! per-workload result shape.

use silver_stack::{
    apps, batch_reports, check_end_to_end_batch, CheckFailure, CheckOptions, Layer, Stack,
    Workload,
};

#[test]
fn app_suite_checks_end_to_end_in_parallel() {
    let stack = Stack::new();
    let workloads = vec![
        Workload::new("hello", apps::HELLO, &["hello"], b""),
        Workload::new("wc", apps::WC, &["wc"], b"one two three\nfour\n"),
        Workload::new("cat", apps::CAT, &["cat"], b"line a\nline b\n"),
        Workload::new("sort", apps::SORT, &["sort"], b"pear\napple\nplum\n"),
    ];
    let opts = CheckOptions { lockstep_instructions: 2_000, ..CheckOptions::default() };
    let reports = batch_reports(check_end_to_end_batch(&stack, workloads, &opts))
        .expect("all layers agree");
    assert_eq!(reports.len(), 4);
    // Reports come back in input order.
    assert_eq!(reports[1].stdout, "2 4 19\n");
    assert_eq!(reports[2].stdout, "line a\nline b\n");
    assert_eq!(reports[3].stdout, "apple\npear\nplum\n");
    for r in &reports {
        assert_eq!(r.exit_code, 0);
        assert!(r.isa_instructions > 0);
        assert!(r.rtl_cycles >= r.isa_instructions);
        // The ISA run reports which opcodes it retired.
        let stats = r.isa_stats.as_ref().expect("isa stats recorded");
        assert_eq!(stats.total(), r.isa_instructions);
        assert!(stats.opcodes_exercised() > 4);
    }
}

#[test]
fn batch_results_pair_each_workload_with_its_outcome() {
    let stack = Stack::new();
    let workloads = vec![
        Workload::new("ok", apps::HELLO, &["hello"], b""),
        Workload::new("broken", "val _ = exit (1 div 0);", &["broken"], b""),
        Workload::new("nonsense", "val = = =", &["x"], b""),
    ];
    let results = check_end_to_end_batch(&stack, workloads, &CheckOptions::default());
    assert_eq!(results.len(), 3);

    // Results come back paired with their workloads, in input order.
    assert_eq!(results[0].0.name, "ok");
    assert_eq!(results[0].1.as_ref().expect("hello passes").exit_code, 0);

    // `1 div 0` crashes with a nonzero code at every layer *identically*,
    // so end-to-end checking succeeds — crash codes are behaviour too.
    assert_eq!(results[1].0.name, "broken");
    assert_ne!(results[1].1.as_ref().expect("crash codes agree").exit_code, 0);

    // An ill-formed program is an *error* at the source layer, not a
    // cross-layer disagreement.
    assert_eq!(results[2].0.name, "nonsense");
    let failure = results[2].1.as_ref().expect_err("parse failure surfaces");
    assert_eq!(failure.layer(), Layer::Source);
    assert!(!failure.is_disagreement());
    match failure {
        CheckFailure::Error { layer: Layer::Source, message } => {
            assert!(!message.is_empty());
        }
        other => panic!("expected source-layer error, got {other:?}"),
    }

    // The string-collapsing view labels failures with the workload name.
    let err = batch_reports(results).unwrap_err();
    assert!(err.starts_with("nonsense:"), "error not labelled: {err}");
}

/// Found by the first `silver-fuzz` campaign (repro `e2e:0,0,0,2`,
/// minimised to `Runtime.exit (~1)`): the exit-code sentinel used to be
/// the in-band value `0xFF`, so a program exiting with code 255 — which
/// is also what every negative argument masks to — was classified as
/// wedged instead of exited. The sentinel now lives outside the `u8`
/// range; the full boundary must round-trip through every layer.
#[test]
fn exit_code_255_is_a_clean_exit_not_a_wedge() {
    let stack = Stack::new();
    let workloads = vec![
        Workload::new("max", "val _ = exit 255;", &["max"], b""),
        Workload::new("neg", "val v0 = 17;\nval _ = Runtime.exit (~1);", &["neg"], b""),
    ];
    let reports = batch_reports(check_end_to_end_batch(&stack, workloads, &CheckOptions::default()))
        .expect("exit 255 agrees at every layer");
    assert_eq!(reports[0].exit_code, 255);
    assert_eq!(reports[1].exit_code, 255);
}

#[test]
fn interpreter_fuel_exhaustion_is_a_source_layer_error() {
    let stack = Stack::new();
    let spin = "fun loop n = loop (n + 1);\nval _ = exit (loop 0);";
    let workloads = vec![Workload::new("spin", spin, &["spin"], b"")];
    let opts = CheckOptions { interp_fuel: 10_000, ..CheckOptions::default() };
    let results = check_end_to_end_batch(&stack, workloads, &opts);
    let failure = results[0].1.as_ref().expect_err("fuel runs out");
    assert_eq!(failure.layer(), Layer::Source);
    assert!(!failure.is_disagreement());
    assert!(failure.to_string().starts_with("[source]"), "got: {failure}");
}
