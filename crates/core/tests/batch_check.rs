//! The parallel end-to-end checker: the paper's application suite run
//! through every layer at once, fanned across threads with
//! `testkit::par`.

use silver_stack::{apps, check_end_to_end_batch, CheckOptions, Stack, Workload};

#[test]
fn app_suite_checks_end_to_end_in_parallel() {
    let stack = Stack::new();
    let workloads = vec![
        Workload::new("hello", apps::HELLO, &["hello"], b""),
        Workload::new("wc", apps::WC, &["wc"], b"one two three\nfour\n"),
        Workload::new("cat", apps::CAT, &["cat"], b"line a\nline b\n"),
        Workload::new("sort", apps::SORT, &["sort"], b"pear\napple\nplum\n"),
    ];
    let opts = CheckOptions { lockstep_instructions: 2_000, ..CheckOptions::default() };
    let reports = check_end_to_end_batch(&stack, workloads, &opts).expect("all layers agree");
    assert_eq!(reports.len(), 4);
    // Reports come back in input order.
    assert_eq!(reports[1].stdout, "2 4 19\n");
    assert_eq!(reports[2].stdout, "line a\nline b\n");
    assert_eq!(reports[3].stdout, "apple\npear\nplum\n");
    for r in &reports {
        assert_eq!(r.exit_code, 0);
        assert!(r.isa_instructions > 0);
        assert!(r.rtl_cycles >= r.isa_instructions);
    }
}

#[test]
fn batch_reports_failures_by_name() {
    let stack = Stack::new();
    let workloads = vec![
        Workload::new("ok", apps::HELLO, &["hello"], b""),
        Workload::new("broken", "val _ = exit (1 div 0);", &["broken"], b""),
    ];
    // `1 div 0` crashes with a nonzero code at every layer *identically*,
    // so end-to-end checking succeeds — crash codes are behaviour too.
    let reports =
        check_end_to_end_batch(&stack, workloads, &CheckOptions::default()).expect("agree");
    assert_eq!(reports[0].exit_code, 0);
    assert_ne!(reports[1].exit_code, 0);

    // An actually ill-formed program surfaces its workload name.
    let bad = vec![Workload::new("nonsense", "val = = =", &["x"], b"")];
    let err = check_end_to_end_batch(&stack, bad, &CheckOptions::default()).unwrap_err();
    assert!(err.starts_with("nonsense:"), "error not labelled: {err}");
}
