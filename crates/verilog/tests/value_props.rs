//! Property tests for the deep-embedded Verilog bit-vector values, on
//! the hermetic `testkit` harness.

use verilog::Value;

testkit::props! {
    /// `as_u64 ∘ from_u64` truncates to the declared width — the same
    /// masking a Verilog `logic [w-1:0]` assignment performs.
    fn from_as_u64_roundtrip(ctx) {
        let width = ctx.gen_range(1usize..=64);
        let v = ctx.any::<u64>();
        let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
        let val = Value::from_u64(width, v);
        assert_eq!(val.width(), width);
        assert_eq!(val.as_u64(), masked);
    }

    /// `zeros` really is the all-zero vector at every width.
    fn zeros_is_zero(ctx) {
        let width = ctx.gen_range(1usize..=128);
        let z = Value::zeros(width);
        assert!(z.is_zero());
        assert_eq!(z.width(), width);
        assert!(z.bits().iter().all(|b| !b));
    }

    /// `bits` has exactly `width` entries and agrees with `as_u64`
    /// bit-by-bit on word-sized values.
    fn bits_agree_with_u64(ctx) {
        let width = ctx.gen_range(1usize..=64);
        let v = ctx.any::<u64>();
        let val = Value::from_u64(width, v);
        let bits = val.bits();
        assert_eq!(bits.len(), width);
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(*b, val.as_u64() >> i & 1 == 1, "bit {i}");
        }
    }
}
