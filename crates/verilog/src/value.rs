//! Runtime values of the Verilog semantics.
//!
//! The paper's semantics translates "HOL Booleans to Verilog Booleans, and
//! HOL words to Verilog arrays", with Booleans restricted to the standard
//! two-state values. We mirror that: a value is a single bit or a packed
//! bit array. Bit arrays store the least-significant bit at index 0.

use std::fmt;

/// A Verilog runtime value: a single `logic` bit or a packed bit vector.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A one-bit `logic` value.
    Bool(bool),
    /// A packed `logic [w-1:0]` vector; index 0 is the LSB.
    Array(Vec<bool>),
}

impl Value {
    /// Builds an all-zero vector of the given width.
    #[must_use]
    pub fn zeros(width: usize) -> Value {
        Value::Array(vec![false; width])
    }

    /// Builds a `width`-bit vector from the low bits of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    #[must_use]
    pub fn from_u64(width: usize, v: u64) -> Value {
        assert!(width <= 64, "width {width} exceeds 64");
        Value::Array((0..width).map(|i| (v >> i) & 1 == 1).collect())
    }

    /// The width in bits: 1 for a Bool, the vector length otherwise.
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            Value::Bool(_) => 1,
            Value::Array(bits) => bits.len(),
        }
    }

    /// The bits LSB-first; a Bool is a one-bit slice of itself.
    #[must_use]
    pub fn bits(&self) -> Vec<bool> {
        match self {
            Value::Bool(b) => vec![*b],
            Value::Array(bits) => bits.clone(),
        }
    }

    /// Interprets the value as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if wider than 64 bits.
    #[must_use]
    pub fn as_u64(&self) -> u64 {
        let bits = self.bits();
        assert!(bits.len() <= 64, "value too wide for u64");
        bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    /// Whether every bit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match self {
            Value::Bool(b) => !b,
            Value::Array(bits) => bits.iter().all(|b| !b),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "1'b{}", u8::from(*b)),
            Value::Array(bits) => {
                if bits.len() <= 64 {
                    write!(f, "{}'d{}", bits.len(), self.as_u64())
                } else {
                    write!(f, "{}'b", bits.len())?;
                    for b in bits.iter().rev() {
                        write!(f, "{}", u8::from(*b))?;
                    }
                    Ok(())
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 0xFF, 0xDEAD_BEEF, u64::MAX >> 1] {
            assert_eq!(Value::from_u64(63, v & (u64::MAX >> 1)).as_u64(), v & (u64::MAX >> 1));
            assert_eq!(Value::from_u64(32, v).as_u64(), v & 0xFFFF_FFFF);
        }
    }

    #[test]
    fn lsb_is_index_zero() {
        let v = Value::from_u64(8, 0b0000_0001);
        assert!(v.bits()[0]);
        assert!(!v.bits()[7]);
    }

    #[test]
    fn zero_checks() {
        assert!(Value::zeros(32).is_zero());
        assert!(Value::Bool(false).is_zero());
        assert!(!Value::from_u64(4, 8).is_zero());
    }

    #[test]
    fn debug_renders_verilog_literals() {
        assert_eq!(format!("{:?}", Value::Bool(true)), "1'b1");
        assert_eq!(format!("{:?}", Value::from_u64(8, 10)), "8'd10");
    }
}
