//! Abstract syntax of the Verilog subset.
//!
//! The subset covers exactly what the paper's code generator targets
//! (§3 "Tool implementation"): a single flattened module whose processes
//! are all `always_ff` blocks on the positive edge of a common clock,
//! over two-state `logic` scalars, packed vectors and unpacked arrays of
//! vectors (for the register file). All inter-process communication goes
//! through non-blocking assignment.

use crate::value::Value;

/// The type of a variable or port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A single `logic` bit.
    Logic,
    /// A packed vector `logic [w-1:0]`.
    Array(usize),
    /// An unpacked array of packed vectors:
    /// `logic [elem_width-1:0] name [0:len-1]`.
    Unpacked { elem_width: usize, len: usize },
}

impl Type {
    /// The default (all-zero) value of the type. Unpacked arrays default
    /// to a vector of zeroed elements, represented elementwise (see
    /// [`VarState`](crate::eval::VarState)).
    #[must_use]
    pub fn zero(&self) -> ValueOrArray {
        match *self {
            Type::Logic => ValueOrArray::Value(Value::Bool(false)),
            Type::Array(w) => ValueOrArray::Value(Value::zeros(w)),
            Type::Unpacked { elem_width, len } => {
                ValueOrArray::Unpacked(vec![Value::zeros(elem_width); len])
            }
        }
    }
}

/// A stored variable value: scalar/vector, or an unpacked array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueOrArray {
    /// A scalar or packed vector.
    Value(Value),
    /// An unpacked array of packed vectors.
    Unpacked(Vec<Value>),
}

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Driven by the environment before each clock edge.
    Input,
    /// Readable by the environment after each clock edge.
    Output,
}

/// A module port (besides the implicit common clock).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Type.
    pub ty: Type,
}

/// An internal variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Type.
    pub ty: Type,
}

/// Binary operators. Arithmetic is modular at the operand width;
/// comparisons produce a 1-bit value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Binop {
    /// Modular addition (equal widths).
    Add,
    /// Modular subtraction (equal widths).
    Sub,
    /// Modular multiplication (equal widths; widen first for a full
    /// product, as the generated Silver ALU does).
    Mul,
    /// Bitwise and (also valid on two Bools).
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Equality, producing a Bool.
    Eq,
    /// Unsigned less-than, producing a Bool.
    Lt,
    /// Signed less-than, producing a Bool.
    Slt,
    /// Logical shift left; right operand is an unsigned amount of any
    /// width, result has the left operand's width.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right (left operand treated as signed).
    Sra,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unop {
    /// Bitwise complement (logical not on Bools).
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A variable or port reference.
    Var(String),
    /// Read an element of an unpacked array: `name[index]`.
    Index(String, Box<Expr>),
    /// Bit slice `e[hi:lo]` (inclusive), LSB-numbered.
    Slice(Box<Expr>, usize, usize),
    /// Unary operator application.
    Unop(Unop, Box<Expr>),
    /// Binary operator application.
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// Conditional `c ? t : e`; `c` must be one bit wide.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{hi, .., lo}`: the *first* element is most
    /// significant, as in Verilog source text.
    Concat(Vec<Expr>),
    /// Zero-extension to the given width.
    ZExt(usize, Box<Expr>),
    /// Sign-extension to the given width.
    SExt(usize, Box<Expr>),
}

impl Expr {
    /// A variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A one-bit constant.
    #[must_use]
    pub fn bit(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// A `width`-bit constant from the low bits of `v`.
    #[must_use]
    pub fn word(width: usize, v: u64) -> Expr {
        Expr::Const(Value::from_u64(width, v))
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binop(Binop::Add, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs` (unsigned).
    #[must_use]
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binop(Binop::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    #[must_use]
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Binop(Binop::Eq, Box::new(self), Box::new(rhs))
    }
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lhs {
    /// A whole variable.
    Var(String),
    /// One element of an unpacked array: `name[index] <= ...`.
    Index(String, Expr),
}

/// Statements of a process body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `if (cond) { then } else { else }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `case (scrutinee) v, v: stmts ... default: stmts endcase`.
    Case(Expr, Vec<(Vec<Value>, Vec<Stmt>)>, Option<Vec<Stmt>>),
    /// Non-blocking assignment `lhs <= e`: queued, merged at cycle end.
    NonBlocking(Lhs, Expr),
    /// Blocking assignment `lhs = e`: takes effect immediately. Only
    /// process-local variables should be written this way (the
    /// non-interference restriction of §3).
    Blocking(Lhs, Expr),
}

/// A process: the body of one `always_ff @(posedge clk)` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Process {
    /// Statements run on each positive clock edge.
    pub body: Vec<Stmt>,
}

/// A flattened module: ports, internal variables and processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// Module name (used by the pretty-printer).
    pub name: String,
    /// Ports, excluding the implicit clock.
    pub ports: Vec<Port>,
    /// Internal variables.
    pub vars: Vec<VarDecl>,
    /// Processes, all clocked by the common `clk`.
    pub processes: Vec<Process>,
}

impl Module {
    /// Every declaration (ports then vars) as `(name, type)` pairs.
    pub fn declarations(&self) -> impl Iterator<Item = (&str, Type)> + '_ {
        self.ports
            .iter()
            .map(|p| (p.name.as_str(), p.ty))
            .chain(self.vars.iter().map(|v| (v.name.as_str(), v.ty)))
    }

    /// An all-zero initial state for every declared variable and port.
    ///
    /// # Errors
    ///
    /// Returns an error if two declarations share a name.
    pub fn initial_state(&self) -> Result<crate::eval::VarState, crate::eval::VError> {
        crate::eval::VarState::zeroed(self)
    }
}
