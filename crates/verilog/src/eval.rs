//! Operational cycle semantics (`verilog_sem` in the paper).
//!
//! A clock cycle executes every process in declaration order against the
//! current state. Blocking assignments (`=`) update the state
//! immediately; non-blocking assignments (`<=`) are saved in a queue
//! during cycle execution, and "the contents of this queue is merged into
//! the program state at the end of every clock cycle" (§3). Inputs are
//! driven by an [`Env`] before each edge, mirroring the paper's `env`
//! function from timesteps to the state of the world.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Binop, Dir, Expr, Lhs, Module, Stmt, Type, Unop, ValueOrArray};
use crate::value::Value;

/// Evaluation errors. The paper's `verilog_sem` returns `Ok fin` on
/// success; these are the failure cases a malformed program can hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VError {
    /// Reference to an undeclared variable.
    UnknownVar(String),
    /// Two declarations share a name.
    DuplicateVar(String),
    /// Indexing a variable that is not an unpacked array.
    NotAnArray(String),
    /// Using an unpacked array where a scalar/vector is required.
    NotAScalar(String),
    /// Operand widths disagree (context string names the operation).
    WidthMismatch(String),
    /// Unpacked-array index out of bounds.
    IndexOutOfBounds { name: String, index: u64, len: usize },
    /// Arithmetic on vectors wider than 64 bits is outside the subset.
    TooWide(usize),
    /// A conditional or `if` guard was not one bit wide.
    CondWidth(usize),
    /// Slice bounds outside the operand, or `hi < lo`.
    SliceRange { width: usize, hi: usize, lo: usize },
    /// Extension target narrower than the operand.
    ExtNarrows { from: usize, to: usize },
    /// Assignment value shape differs from the declared type.
    AssignShape(String),
}

impl fmt::Display for VError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VError::UnknownVar(n) => write!(f, "unknown variable `{n}`"),
            VError::DuplicateVar(n) => write!(f, "duplicate declaration of `{n}`"),
            VError::NotAnArray(n) => write!(f, "`{n}` is not an unpacked array"),
            VError::NotAScalar(n) => write!(f, "`{n}` is an unpacked array, not a value"),
            VError::WidthMismatch(ctx) => write!(f, "operand width mismatch in {ctx}"),
            VError::IndexOutOfBounds { name, index, len } => {
                write!(f, "index {index} out of bounds for `{name}` of length {len}")
            }
            VError::TooWide(w) => write!(f, "arithmetic on {w}-bit vector exceeds 64 bits"),
            VError::CondWidth(w) => write!(f, "condition is {w} bits wide, expected 1"),
            VError::SliceRange { width, hi, lo } => {
                write!(f, "slice [{hi}:{lo}] invalid for {width}-bit operand")
            }
            VError::ExtNarrows { from, to } => {
                write!(f, "extension from {from} to {to} bits would narrow")
            }
            VError::AssignShape(n) => write!(f, "assignment to `{n}` changes its shape"),
        }
    }
}

impl std::error::Error for VError {}

/// The state of every variable and port of a module.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VarState {
    vars: HashMap<String, ValueOrArray>,
}

impl VarState {
    /// An all-zero state for `module`'s declarations.
    ///
    /// # Errors
    ///
    /// [`VError::DuplicateVar`] when two declarations share a name.
    pub fn zeroed(module: &Module) -> Result<VarState, VError> {
        let mut vars = HashMap::new();
        for (name, ty) in module.declarations() {
            if vars.insert(name.to_string(), ty.zero()).is_some() {
                return Err(VError::DuplicateVar(name.to_string()));
            }
        }
        Ok(VarState { vars })
    }

    /// Reads a scalar/vector variable (`verilog_get_var` in the paper).
    ///
    /// # Errors
    ///
    /// Unknown name, or the variable is an unpacked array.
    pub fn get(&self, name: &str) -> Result<&Value, VError> {
        match self.vars.get(name) {
            Some(ValueOrArray::Value(v)) => Ok(v),
            Some(ValueOrArray::Unpacked(_)) => Err(VError::NotAScalar(name.to_string())),
            None => Err(VError::UnknownVar(name.to_string())),
        }
    }

    /// Reads an element of an unpacked array.
    ///
    /// # Errors
    ///
    /// Unknown name, wrong shape, or out-of-bounds index.
    pub fn get_index(&self, name: &str, index: u64) -> Result<&Value, VError> {
        match self.vars.get(name) {
            Some(ValueOrArray::Unpacked(elems)) => elems.get(index as usize).ok_or_else(|| {
                VError::IndexOutOfBounds { name: name.to_string(), index, len: elems.len() }
            }),
            Some(ValueOrArray::Value(_)) => Err(VError::NotAnArray(name.to_string())),
            None => Err(VError::UnknownVar(name.to_string())),
        }
    }

    /// Writes a scalar/vector variable, preserving its shape.
    ///
    /// # Errors
    ///
    /// Unknown name or shape/width change.
    pub fn set(&mut self, name: &str, value: Value) -> Result<(), VError> {
        match self.vars.get_mut(name) {
            Some(ValueOrArray::Value(old)) => {
                if old.width() != value.width()
                    || matches!(old, Value::Bool(_)) != matches!(value, Value::Bool(_))
                {
                    return Err(VError::AssignShape(name.to_string()));
                }
                *old = value;
                Ok(())
            }
            Some(ValueOrArray::Unpacked(_)) => Err(VError::NotAScalar(name.to_string())),
            None => Err(VError::UnknownVar(name.to_string())),
        }
    }

    /// Writes one element of an unpacked array.
    ///
    /// # Errors
    ///
    /// Unknown name, wrong shape, bad index, or element-width change.
    pub fn set_index(&mut self, name: &str, index: u64, value: Value) -> Result<(), VError> {
        match self.vars.get_mut(name) {
            Some(ValueOrArray::Unpacked(elems)) => {
                let len = elems.len();
                let slot = elems.get_mut(index as usize).ok_or(VError::IndexOutOfBounds {
                    name: name.to_string(),
                    index,
                    len,
                })?;
                if slot.width() != value.width() {
                    return Err(VError::AssignShape(name.to_string()));
                }
                *slot = value;
                Ok(())
            }
            Some(ValueOrArray::Value(_)) => Err(VError::NotAnArray(name.to_string())),
            None => Err(VError::UnknownVar(name.to_string())),
        }
    }

    /// Whether every variable of `module` exists here with its declared
    /// type (`vars_has_type` in the paper's example).
    #[must_use]
    pub fn has_types_of(&self, module: &Module) -> bool {
        module.declarations().all(|(name, ty)| match (self.vars.get(name), ty) {
            (Some(ValueOrArray::Value(Value::Bool(_))), Type::Logic) => true,
            (Some(ValueOrArray::Value(Value::Array(b))), Type::Array(w)) => b.len() == w,
            (Some(ValueOrArray::Unpacked(es)), Type::Unpacked { elem_width, len }) => {
                es.len() == len && es.iter().all(|e| e.width() == elem_width)
            }
            _ => false,
        })
    }
}

/// Drives module inputs, one call per clock cycle.
///
/// This is the paper's `env`: a model of everything outside the circuit
/// (memory, the start interface, the interrupt interface). It observes
/// the module's outputs from the previous cycle and produces the input
/// values for the next one.
pub trait Env {
    /// Produces `(input_name, value)` pairs for the given cycle.
    fn drive(&mut self, cycle: u64, state: &VarState) -> Vec<(String, Value)>;
}

/// An environment holding every input constant.
#[derive(Clone, Debug)]
pub struct ConstEnv {
    inputs: Vec<(String, Value)>,
}

impl ConstEnv {
    /// Builds a constant environment.
    #[must_use]
    pub fn new(inputs: Vec<(String, Value)>) -> Self {
        ConstEnv { inputs }
    }
}

impl Env for ConstEnv {
    fn drive(&mut self, _cycle: u64, _state: &VarState) -> Vec<(String, Value)> {
        self.inputs.clone()
    }
}

fn bits_to_u64(bits: &[bool]) -> Result<u64, VError> {
    if bits.len() > 64 {
        return Err(VError::TooWide(bits.len()));
    }
    Ok(bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | (u64::from(b) << i)))
}

fn as_signed(bits: &[bool]) -> Result<i64, VError> {
    let w = bits.len();
    let raw = bits_to_u64(bits)?;
    if w == 0 || w == 64 {
        return Ok(raw as i64);
    }
    let sign = bits[w - 1];
    Ok(if sign { (raw as i64) - (1i64 << w) } else { raw as i64 })
}

fn bool_like(v: &Value) -> Result<bool, VError> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Array(bits) if bits.len() == 1 => Ok(bits[0]),
        other => Err(VError::CondWidth(other.width())),
    }
}

fn bitwise(op: Binop, a: &Value, b: &Value) -> Result<Value, VError> {
    let f = |x: bool, y: bool| match op {
        Binop::And => x && y,
        Binop::Or => x || y,
        Binop::Xor => x ^ y,
        _ => unreachable!(),
    };
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(f(*x, *y))),
        (Value::Array(xs), Value::Array(ys)) if xs.len() == ys.len() => {
            Ok(Value::Array(xs.iter().zip(ys).map(|(&x, &y)| f(x, y)).collect()))
        }
        _ => Err(VError::WidthMismatch(format!("{op:?}"))),
    }
}

/// Evaluates an expression against a state.
///
/// # Errors
///
/// Any [`VError`] a malformed expression can produce; well-typed
/// generated code never fails.
pub fn eval(state: &VarState, e: &Expr) -> Result<Value, VError> {
    match e {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => Ok(state.get(name)?.clone()),
        Expr::Index(name, idx) => {
            let i = bits_to_u64(&eval(state, idx)?.bits())?;
            Ok(state.get_index(name, i)?.clone())
        }
        Expr::Slice(inner, hi, lo) => {
            let bits = eval(state, inner)?.bits();
            if *hi >= bits.len() || lo > hi {
                return Err(VError::SliceRange { width: bits.len(), hi: *hi, lo: *lo });
            }
            Ok(Value::Array(bits[*lo..=*hi].to_vec()))
        }
        Expr::Unop(Unop::Not, inner) => match eval(state, inner)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Array(bits) => Ok(Value::Array(bits.iter().map(|b| !b).collect())),
        },
        Expr::Binop(op, a, b) => {
            let va = eval(state, a)?;
            let vb = eval(state, b)?;
            match op {
                Binop::And | Binop::Or | Binop::Xor => bitwise(*op, &va, &vb),
                Binop::Eq => {
                    if va.width() != vb.width() {
                        return Err(VError::WidthMismatch("Eq".into()));
                    }
                    Ok(Value::Bool(va.bits() == vb.bits()))
                }
                Binop::Lt => {
                    if va.width() != vb.width() {
                        return Err(VError::WidthMismatch("Lt".into()));
                    }
                    Ok(Value::Bool(bits_to_u64(&va.bits())? < bits_to_u64(&vb.bits())?))
                }
                Binop::Slt => {
                    if va.width() != vb.width() {
                        return Err(VError::WidthMismatch("Slt".into()));
                    }
                    Ok(Value::Bool(as_signed(&va.bits())? < as_signed(&vb.bits())?))
                }
                Binop::Add | Binop::Sub | Binop::Mul => {
                    let w = va.width();
                    if w != vb.width() {
                        return Err(VError::WidthMismatch(format!("{op:?}")));
                    }
                    let x = bits_to_u64(&va.bits())?;
                    let y = bits_to_u64(&vb.bits())?;
                    let r = match op {
                        Binop::Add => x.wrapping_add(y),
                        Binop::Sub => x.wrapping_sub(y),
                        Binop::Mul => x.wrapping_mul(y),
                        _ => unreachable!(),
                    };
                    Ok(Value::from_u64(w, if w == 64 { r } else { r & ((1 << w) - 1) }))
                }
                Binop::Shl | Binop::Shr | Binop::Sra => {
                    let bits = va.bits();
                    let w = bits.len();
                    let amount = bits_to_u64(&vb.bits())? as usize;
                    let x = bits_to_u64(&bits)?;
                    let r = match op {
                        Binop::Shl => {
                            if amount >= w {
                                0
                            } else {
                                x << amount
                            }
                        }
                        Binop::Shr => {
                            if amount >= w {
                                0
                            } else {
                                x >> amount
                            }
                        }
                        Binop::Sra => {
                            let sx = as_signed(&bits)?;
                            let sh = amount.min(63);
                            (sx >> sh) as u64
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::from_u64(w, if w == 64 { r } else { r & ((1 << w) - 1) }))
                }
            }
        }
        Expr::Cond(c, t, f) => {
            let cond = bool_like(&eval(state, c)?)?;
            let vt = eval(state, t)?;
            let vf = eval(state, f)?;
            if vt.width() != vf.width() {
                return Err(VError::WidthMismatch("Cond".into()));
            }
            Ok(if cond { vt } else { vf })
        }
        Expr::Concat(parts) => {
            // First element is most significant; accumulate LSB-first.
            let mut bits = Vec::new();
            for p in parts.iter().rev() {
                bits.extend(eval(state, p)?.bits());
            }
            Ok(Value::Array(bits))
        }
        Expr::ZExt(width, inner) => {
            let mut bits = eval(state, inner)?.bits();
            if bits.len() > *width {
                return Err(VError::ExtNarrows { from: bits.len(), to: *width });
            }
            bits.resize(*width, false);
            Ok(Value::Array(bits))
        }
        Expr::SExt(width, inner) => {
            let mut bits = eval(state, inner)?.bits();
            if bits.len() > *width {
                return Err(VError::ExtNarrows { from: bits.len(), to: *width });
            }
            let sign = bits.last().copied().unwrap_or(false);
            bits.resize(*width, sign);
            Ok(Value::Array(bits))
        }
    }
}

/// A queued non-blocking write, with the array index (if any) resolved at
/// execution time, as the standard requires.
enum QueuedWrite {
    Var(String, Value),
    Index(String, u64, Value),
}

fn exec_stmts(
    state: &mut VarState,
    queue: &mut Vec<QueuedWrite>,
    stmts: &[Stmt],
) -> Result<(), VError> {
    for stmt in stmts {
        match stmt {
            Stmt::If(cond, then_b, else_b) => {
                if bool_like(&eval(state, cond)?)? {
                    exec_stmts(state, queue, then_b)?;
                } else {
                    exec_stmts(state, queue, else_b)?;
                }
            }
            Stmt::Case(scrut, arms, default) => {
                let v = eval(state, scrut)?;
                let mut taken = false;
                for (consts, body) in arms {
                    if consts.iter().any(|c| c.bits() == v.bits()) {
                        exec_stmts(state, queue, body)?;
                        taken = true;
                        break;
                    }
                }
                if !taken {
                    if let Some(body) = default {
                        exec_stmts(state, queue, body)?;
                    }
                }
            }
            Stmt::NonBlocking(lhs, e) => {
                let value = eval(state, e)?;
                match lhs {
                    Lhs::Var(name) => queue.push(QueuedWrite::Var(name.clone(), value)),
                    Lhs::Index(name, idx) => {
                        let i = bits_to_u64(&eval(state, idx)?.bits())?;
                        queue.push(QueuedWrite::Index(name.clone(), i, value));
                    }
                }
            }
            Stmt::Blocking(lhs, e) => {
                let value = eval(state, e)?;
                match lhs {
                    Lhs::Var(name) => state.set(name, value)?,
                    Lhs::Index(name, idx) => {
                        let i = bits_to_u64(&eval(state, idx)?.bits())?;
                        state.set_index(name, i, value)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Executes one clock cycle: every process runs, then the non-blocking
/// queue is merged into the state (later writes win).
///
/// # Errors
///
/// Propagates any evaluation error.
pub fn cycle(module: &Module, state: &mut VarState) -> Result<(), VError> {
    let mut queue = Vec::new();
    for process in &module.processes {
        exec_stmts(state, &mut queue, &process.body)?;
    }
    for write in queue {
        match write {
            QueuedWrite::Var(name, v) => state.set(&name, v)?,
            QueuedWrite::Index(name, i, v) => state.set_index(&name, i, v)?,
        }
    }
    Ok(())
}

/// Runs `module` for `cycles` clock cycles from `init`, driving inputs
/// from `env` before every edge. This is the paper's
/// `verilog_sem env module init n = Ok fin`.
///
/// # Errors
///
/// Propagates any evaluation or input-driving error.
pub fn run(
    module: &Module,
    mut env: impl Env,
    mut init: VarState,
    cycles: u64,
) -> Result<VarState, VError> {
    for c in 0..cycles {
        step(module, &mut env, &mut init, c)?;
    }
    Ok(init)
}

/// One externally-driven step: drive inputs for cycle `c`, then clock.
///
/// # Errors
///
/// Propagates any evaluation or input-driving error.
pub fn step(
    module: &Module,
    env: &mut impl Env,
    state: &mut VarState,
    c: u64,
) -> Result<(), VError> {
    for (name, value) in env.drive(c, state) {
        debug_assert!(
            module.ports.iter().any(|p| p.name == name && p.dir == Dir::Input),
            "env drove `{name}`, which is not an input port"
        );
        state.set(&name, value)?;
    }
    cycle(module, state)
}

/// Observes the post-edge state after every clock cycle — the Verilog-
/// level sibling of `rtl::interp::CycleObserver`, used for waveform
/// dumping and forensics.
///
/// The default [`NoCycleObserver`] is a zero-sized no-op that
/// monomorphises away.
pub trait CycleObserver {
    /// Called after the clock edge of cycle `c`, with the settled state.
    fn on_cycle(&mut self, c: u64, state: &VarState);
}

/// The no-op observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCycleObserver;

impl CycleObserver for NoCycleObserver {
    #[inline(always)]
    fn on_cycle(&mut self, _c: u64, _state: &VarState) {}
}

impl<T: CycleObserver> CycleObserver for &mut T {
    #[inline]
    fn on_cycle(&mut self, c: u64, state: &VarState) {
        (**self).on_cycle(c, state);
    }
}

/// Fan-out: drive two observers from one run (e.g. a VCD dumper plus a
/// cycle profiler).
impl<A: CycleObserver, B: CycleObserver> CycleObserver for (A, B) {
    #[inline]
    fn on_cycle(&mut self, c: u64, state: &VarState) {
        self.0.on_cycle(c, state);
        self.1.on_cycle(c, state);
    }
}

/// [`step`] plus a [`CycleObserver`] seeing the post-edge state.
///
/// # Errors
///
/// Propagates any evaluation or input-driving error.
pub fn step_observed(
    module: &Module,
    env: &mut impl Env,
    state: &mut VarState,
    c: u64,
    obs: &mut impl CycleObserver,
) -> Result<(), VError> {
    step(module, env, state, c)?;
    obs.on_cycle(c, state);
    Ok(())
}

/// [`run`] plus a [`CycleObserver`] seeing every post-edge state.
///
/// # Errors
///
/// Propagates any evaluation or input-driving error.
pub fn run_observed(
    module: &Module,
    mut env: impl Env,
    mut init: VarState,
    cycles: u64,
    obs: &mut impl CycleObserver,
) -> Result<VarState, VError> {
    for c in 0..cycles {
        step_observed(module, &mut env, &mut init, c, obs)?;
    }
    Ok(init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn counter_module() -> Module {
        Module {
            name: "counter".into(),
            ports: vec![Port { name: "en".into(), dir: Dir::Input, ty: Type::Logic }],
            vars: vec![VarDecl { name: "n".into(), ty: Type::Array(8) }],
            processes: vec![Process {
                body: vec![Stmt::If(
                    Expr::var("en"),
                    vec![Stmt::NonBlocking(
                        Lhs::Var("n".into()),
                        Expr::var("n").add(Expr::word(8, 1)),
                    )],
                    vec![],
                )],
            }],
        }
    }

    #[test]
    fn counter_counts_when_enabled() {
        let m = counter_module();
        let init = m.initial_state().unwrap();
        let fin =
            run(&m, ConstEnv::new(vec![("en".into(), Value::Bool(true))]), init.clone(), 7)
                .unwrap();
        assert_eq!(fin.get("n").unwrap().as_u64(), 7);
        let idle =
            run(&m, ConstEnv::new(vec![("en".into(), Value::Bool(false))]), init, 7).unwrap();
        assert_eq!(idle.get("n").unwrap().as_u64(), 0);
    }

    #[test]
    fn nonblocking_reads_old_value_within_cycle() {
        // Swap two registers with non-blocking writes: the classic test
        // that the queue semantics reads pre-edge values.
        let m = Module {
            name: "swap".into(),
            ports: vec![],
            vars: vec![
                VarDecl { name: "a".into(), ty: Type::Array(4) },
                VarDecl { name: "b".into(), ty: Type::Array(4) },
            ],
            processes: vec![
                Process {
                    body: vec![Stmt::NonBlocking(Lhs::Var("a".into()), Expr::var("b"))],
                },
                Process {
                    body: vec![Stmt::NonBlocking(Lhs::Var("b".into()), Expr::var("a"))],
                },
            ],
        };
        let mut st = m.initial_state().unwrap();
        st.set("a", Value::from_u64(4, 3)).unwrap();
        st.set("b", Value::from_u64(4, 9)).unwrap();
        cycle(&m, &mut st).unwrap();
        assert_eq!(st.get("a").unwrap().as_u64(), 9);
        assert_eq!(st.get("b").unwrap().as_u64(), 3);
    }

    #[test]
    fn blocking_write_is_immediate() {
        let m = Module {
            name: "blk".into(),
            ports: vec![],
            vars: vec![
                VarDecl { name: "x".into(), ty: Type::Array(4) },
                VarDecl { name: "y".into(), ty: Type::Array(4) },
            ],
            processes: vec![Process {
                body: vec![
                    Stmt::Blocking(Lhs::Var("x".into()), Expr::word(4, 5)),
                    Stmt::NonBlocking(Lhs::Var("y".into()), Expr::var("x")),
                ],
            }],
        };
        let mut st = m.initial_state().unwrap();
        cycle(&m, &mut st).unwrap();
        assert_eq!(st.get("y").unwrap().as_u64(), 5, "NBA saw the blocking write");
    }

    #[test]
    fn unpacked_array_read_write() {
        let m = Module {
            name: "regfile".into(),
            ports: vec![],
            vars: vec![
                VarDecl { name: "regs".into(), ty: Type::Unpacked { elem_width: 8, len: 4 } },
                VarDecl { name: "out".into(), ty: Type::Array(8) },
            ],
            processes: vec![Process {
                body: vec![
                    Stmt::NonBlocking(
                        Lhs::Index("regs".into(), Expr::word(2, 2)),
                        Expr::word(8, 0xAB),
                    ),
                    Stmt::NonBlocking(
                        Lhs::Var("out".into()),
                        Expr::Index("regs".into(), Box::new(Expr::word(2, 2))),
                    ),
                ],
            }],
        };
        let mut st = m.initial_state().unwrap();
        cycle(&m, &mut st).unwrap();
        assert_eq!(st.get("out").unwrap().as_u64(), 0, "read saw pre-edge value");
        cycle(&m, &mut st).unwrap();
        assert_eq!(st.get("out").unwrap().as_u64(), 0xAB);
    }

    #[test]
    fn case_selects_matching_arm() {
        let m = Module {
            name: "case".into(),
            ports: vec![Port { name: "sel".into(), dir: Dir::Input, ty: Type::Array(2) }],
            vars: vec![VarDecl { name: "out".into(), ty: Type::Array(8) }],
            processes: vec![Process {
                body: vec![Stmt::Case(
                    Expr::var("sel"),
                    vec![
                        (vec![Value::from_u64(2, 0)], vec![Stmt::NonBlocking(
                            Lhs::Var("out".into()),
                            Expr::word(8, 10),
                        )]),
                        (
                            vec![Value::from_u64(2, 1), Value::from_u64(2, 2)],
                            vec![Stmt::NonBlocking(Lhs::Var("out".into()), Expr::word(8, 20))],
                        ),
                    ],
                    Some(vec![Stmt::NonBlocking(Lhs::Var("out".into()), Expr::word(8, 99))]),
                )],
            }],
        };
        for (sel, expect) in [(0u64, 10u64), (1, 20), (2, 20), (3, 99)] {
            let mut st = m.initial_state().unwrap();
            st.set("sel", Value::from_u64(2, sel)).unwrap();
            cycle(&m, &mut st).unwrap();
            assert_eq!(st.get("out").unwrap().as_u64(), expect, "sel={sel}");
        }
    }

    #[test]
    fn expression_operators() {
        let st = VarState::default();
        let e = |x: Expr| eval(&st, &x).unwrap();
        assert_eq!(e(Expr::word(8, 200).add(Expr::word(8, 100))).as_u64(), 44, "wraps mod 256");
        assert_eq!(
            e(Expr::Binop(Binop::Sub, Box::new(Expr::word(8, 1)), Box::new(Expr::word(8, 2))))
                .as_u64(),
            255
        );
        assert_eq!(
            e(Expr::Binop(Binop::Slt, Box::new(Expr::word(8, 255)), Box::new(Expr::word(8, 0)))),
            Value::Bool(true),
            "255 is -1 signed"
        );
        assert_eq!(
            e(Expr::Binop(Binop::Lt, Box::new(Expr::word(8, 255)), Box::new(Expr::word(8, 0)))),
            Value::Bool(false)
        );
        assert_eq!(
            e(Expr::Binop(Binop::Sra, Box::new(Expr::word(8, 0x80)), Box::new(Expr::word(4, 7))))
                .as_u64(),
            0xFF
        );
        assert_eq!(
            e(Expr::Binop(Binop::Shl, Box::new(Expr::word(8, 1)), Box::new(Expr::word(8, 200))))
                .as_u64(),
            0,
            "overshift gives zero"
        );
        // {2'b10, 2'b01} == 4'b1001
        assert_eq!(e(Expr::Concat(vec![Expr::word(2, 2), Expr::word(2, 1)])).as_u64(), 0b1001);
        assert_eq!(e(Expr::SExt(8, Box::new(Expr::word(4, 0b1000)))).as_u64(), 0xF8);
        assert_eq!(e(Expr::ZExt(8, Box::new(Expr::word(4, 0b1000)))).as_u64(), 0x08);
        assert_eq!(
            e(Expr::Slice(Box::new(Expr::word(8, 0xA5)), 7, 4)).as_u64(),
            0xA,
            "slice takes high nibble"
        );
    }

    #[test]
    fn width_mismatch_detected() {
        let st = VarState::default();
        let bad = Expr::word(8, 1).add(Expr::word(4, 1));
        assert_eq!(eval(&st, &bad), Err(VError::WidthMismatch("Add".into())));
    }

    #[test]
    fn later_nba_write_wins() {
        let m = Module {
            name: "race".into(),
            ports: vec![],
            vars: vec![VarDecl { name: "x".into(), ty: Type::Array(4) }],
            processes: vec![
                Process { body: vec![Stmt::NonBlocking(Lhs::Var("x".into()), Expr::word(4, 1))] },
                Process { body: vec![Stmt::NonBlocking(Lhs::Var("x".into()), Expr::word(4, 2))] },
            ],
        };
        let mut st = m.initial_state().unwrap();
        cycle(&m, &mut st).unwrap();
        assert_eq!(st.get("x").unwrap().as_u64(), 2);
    }

    #[test]
    fn has_types_of_checks_shapes() {
        let m = counter_module();
        let st = m.initial_state().unwrap();
        assert!(st.has_types_of(&m));
        let other = Module { vars: vec![VarDecl { name: "n".into(), ty: Type::Array(9) }], ..m };
        assert!(!st.has_types_of(&other));
    }
}
