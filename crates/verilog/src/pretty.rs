//! Pretty-printing of the deep embedding to synthesisable SystemVerilog.
//!
//! "The output from the Verilog code generator can be pretty-printed and
//! fed into synthesis toolchains, such as Xilinx's Vivado Design Suite"
//! (§3). The printer is deliberately simple — §8 argues that simple
//! printing code keeps the (informal) trust argument for this step small.
//!
//! Notes on the emitted dialect:
//!
//! * the common clock is an implicit first input port `clk`;
//! * extensions print as SystemVerilog width casts (`32'(x)`,
//!   `32'($signed(x))`), arithmetic right shift as `$signed(a) >>> b`;
//! * bit slices are printed as `expr[hi:lo]`; the code generator only
//!   slices variables and constants, which keeps this legal Verilog.

use std::fmt::Write as _;

use crate::ast::{Binop, Dir, Expr, Lhs, Module, Stmt, Type, Unop};
use crate::value::Value;

fn print_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("1'b{}", u8::from(*b)),
        Value::Array(bits) if bits.len() <= 64 => {
            format!("{}'d{}", bits.len(), Value::Array(bits.clone()).as_u64())
        }
        Value::Array(bits) => {
            let mut s = format!("{}'b", bits.len());
            for b in bits.iter().rev() {
                let _ = write!(s, "{}", u8::from(*b));
            }
            s
        }
    }
}

fn binop_str(op: Binop) -> &'static str {
    match op {
        Binop::Add => "+",
        Binop::Sub => "-",
        Binop::Mul => "*",
        Binop::And => "&",
        Binop::Or => "|",
        Binop::Xor => "^",
        Binop::Eq => "==",
        Binop::Lt => "<",
        Binop::Slt => "<",
        Binop::Shl => "<<",
        Binop::Shr => ">>",
        Binop::Sra => ">>>",
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => print_value(v),
        Expr::Var(n) => n.clone(),
        Expr::Index(n, i) => format!("{n}[{}]", print_expr(i)),
        Expr::Slice(inner, hi, lo) => format!("{}[{hi}:{lo}]", print_expr(inner)),
        Expr::Unop(Unop::Not, inner) => format!("(~{})", print_expr(inner)),
        Expr::Binop(op @ (Binop::Slt | Binop::Sra), a, b) => match op {
            Binop::Slt => {
                format!("($signed({}) < $signed({}))", print_expr(a), print_expr(b))
            }
            _ => format!("($signed({}) >>> {})", print_expr(a), print_expr(b)),
        },
        Expr::Binop(op, a, b) => {
            format!("({} {} {})", print_expr(a), binop_str(*op), print_expr(b))
        }
        Expr::Cond(c, t, f) => {
            format!("({} ? {} : {})", print_expr(c), print_expr(t), print_expr(f))
        }
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::ZExt(w, inner) => format!("{w}'({})", print_expr(inner)),
        Expr::SExt(w, inner) => format!("{w}'($signed({}))", print_expr(inner)),
    }
}

fn print_type_prefix(ty: Type) -> String {
    match ty {
        Type::Logic => "logic".to_string(),
        Type::Array(w) => format!("logic [{}:0]", w - 1),
        Type::Unpacked { elem_width, .. } => format!("logic [{}:0]", elem_width - 1),
    }
}

fn print_type_suffix(ty: Type) -> String {
    match ty {
        Type::Unpacked { len, .. } => format!(" [0:{}]", len - 1),
        _ => String::new(),
    }
}

fn print_lhs(lhs: &Lhs) -> String {
    match lhs {
        Lhs::Var(n) => n.clone(),
        Lhs::Index(n, i) => format!("{n}[{}]", print_expr(i)),
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for stmt in stmts {
        match stmt {
            Stmt::If(c, t, e) => {
                let _ = writeln!(out, "{pad}if ({}) begin", print_expr(c));
                print_stmts(out, t, indent + 1);
                if e.is_empty() {
                    let _ = writeln!(out, "{pad}end");
                } else {
                    let _ = writeln!(out, "{pad}end else begin");
                    print_stmts(out, e, indent + 1);
                    let _ = writeln!(out, "{pad}end");
                }
            }
            Stmt::Case(scrut, arms, default) => {
                let _ = writeln!(out, "{pad}case ({})", print_expr(scrut));
                for (consts, body) in arms {
                    let labels: Vec<String> = consts.iter().map(print_value).collect();
                    let _ = writeln!(out, "{pad}  {}: begin", labels.join(", "));
                    print_stmts(out, body, indent + 2);
                    let _ = writeln!(out, "{pad}  end");
                }
                if let Some(body) = default {
                    let _ = writeln!(out, "{pad}  default: begin");
                    print_stmts(out, body, indent + 2);
                    let _ = writeln!(out, "{pad}  end");
                }
                let _ = writeln!(out, "{pad}endcase");
            }
            Stmt::NonBlocking(lhs, e) => {
                let _ = writeln!(out, "{pad}{} <= {};", print_lhs(lhs), print_expr(e));
            }
            Stmt::Blocking(lhs, e) => {
                let _ = writeln!(out, "{pad}{} = {};", print_lhs(lhs), print_expr(e));
            }
        }
    }
}

/// Renders a module as SystemVerilog source text.
#[must_use]
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Generated by the silver-stack Verilog pretty-printer.");
    let _ = writeln!(out, "module {}(", m.name);
    let _ = write!(out, "  input logic clk");
    for p in &m.ports {
        let dir = match p.dir {
            Dir::Input => "input",
            Dir::Output => "output",
        };
        let _ = write!(
            out,
            ",\n  {dir} {} {}{}",
            print_type_prefix(p.ty),
            p.name,
            print_type_suffix(p.ty)
        );
    }
    let _ = writeln!(out, "\n);");
    for v in &m.vars {
        let _ = writeln!(out, "  {} {}{};", print_type_prefix(v.ty), v.name, print_type_suffix(v.ty));
    }
    for p in &m.processes {
        let _ = writeln!(out);
        let _ = writeln!(out, "  always_ff @(posedge clk) begin");
        print_stmts(&mut out, &p.body, 2);
        let _ = writeln!(out, "  end");
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Port, Process, VarDecl};

    #[test]
    fn prints_ab_example_shape() {
        // The paper's process A: always_ff if (pulse) count <= count + 8'd1;
        let m = Module {
            name: "ABv".into(),
            ports: vec![Port { name: "pulse".into(), dir: Dir::Input, ty: Type::Logic }],
            vars: vec![
                VarDecl { name: "count".into(), ty: Type::Array(8) },
                VarDecl { name: "done".into(), ty: Type::Logic },
            ],
            processes: vec![
                Process {
                    body: vec![Stmt::If(
                        Expr::var("pulse"),
                        vec![Stmt::NonBlocking(
                            Lhs::Var("count".into()),
                            Expr::var("count").add(Expr::word(8, 1)),
                        )],
                        vec![],
                    )],
                },
                Process {
                    body: vec![Stmt::If(
                        Expr::word(8, 10).lt(Expr::var("count")),
                        vec![Stmt::Blocking(Lhs::Var("done".into()), Expr::bit(true))],
                        vec![],
                    )],
                },
            ],
        };
        let text = print_module(&m);
        assert!(text.contains("module ABv("));
        assert!(text.contains("input logic clk"));
        assert!(text.contains("input logic pulse"));
        assert!(text.contains("logic [7:0] count;"));
        assert!(text.contains("always_ff @(posedge clk)"));
        assert!(text.contains("count <= (count + 8'd1);"));
        assert!(text.contains("done = 1'b1;"));
        assert!(text.contains("if ((8'd10 < count))"));
        assert!(text.ends_with("endmodule\n"));
    }

    #[test]
    fn prints_unpacked_arrays_and_casts() {
        let m = Module {
            name: "rf".into(),
            ports: vec![Port { name: "out".into(), dir: Dir::Output, ty: Type::Array(32) }],
            vars: vec![VarDecl {
                name: "regs".into(),
                ty: Type::Unpacked { elem_width: 32, len: 64 },
            }],
            processes: vec![Process {
                body: vec![Stmt::NonBlocking(
                    Lhs::Var("out".into()),
                    Expr::ZExt(32, Box::new(Expr::Index("regs".into(), Box::new(Expr::word(6, 3))))),
                )],
            }],
        };
        let text = print_module(&m);
        assert!(text.contains("logic [31:0] regs [0:63];"));
        assert!(text.contains("out <= 32'(regs[6'd3]);"));
    }

    #[test]
    fn signed_operations_use_signed_casts() {
        let e = Expr::Binop(
            Binop::Slt,
            Box::new(Expr::var("a")),
            Box::new(Expr::var("b")),
        );
        assert_eq!(print_expr(&e), "($signed(a) < $signed(b))");
        let sra = Expr::Binop(Binop::Sra, Box::new(Expr::var("a")), Box::new(Expr::var("n")));
        assert_eq!(print_expr(&sra), "($signed(a) >>> n)");
    }

    #[test]
    fn case_prints_all_arms() {
        let m = Module {
            name: "c".into(),
            ports: vec![],
            vars: vec![VarDecl { name: "x".into(), ty: Type::Array(2) }],
            processes: vec![Process {
                body: vec![Stmt::Case(
                    Expr::var("x"),
                    vec![(vec![Value::from_u64(2, 0)], vec![])],
                    Some(vec![]),
                )],
            }],
        };
        let text = print_module(&m);
        assert!(text.contains("case (x)"));
        assert!(text.contains("2'd0: begin"));
        assert!(text.contains("default: begin"));
        assert!(text.contains("endcase"));
    }
}
