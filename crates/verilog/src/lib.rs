//! # verilog — a deeply-embedded synthesisable Verilog subset
//!
//! §3 of *Verified Compilation on a Verified Processor* (PLDI 2019)
//! introduces an operational semantics for a subset of Verilog, developed
//! alongside a proof-producing code generator. This crate is that subset:
//!
//! * a deep embedding of the abstract syntax ([`ast`]) — modules made of
//!   `always_ff @(posedge clk)` processes over `logic` variables,
//! * an operational [cycle semantics](eval) faithful to the paper's
//!   design: a flattened module hierarchy, processes waiting on a common
//!   clock edge, and *non-blocking* writes saved in a queue during cycle
//!   execution and merged into the program state at the end of every
//!   clock cycle,
//! * two-state values only — the paper's semantics gives Booleans the
//!   standard values true/false (no `Z`, with `X` handled by
//!   quantification in the logic; here, by randomised initial states in
//!   the test-suites),
//! * a [pretty-printer](pretty) producing synthesisable SystemVerilog
//!   text, the artefact handed to a synthesis toolchain (layer 4 → 5 of
//!   the paper's Figure 1).
//!
//! The `rtl` crate contains the code generator that targets this AST, and
//! the equivalence harness standing in for the paper's per-run
//! correspondence theorems.
//!
//! # Example
//!
//! The paper's `AB` pulse-counter, written directly as a Verilog module
//! and run for enough cycles to see `done` rise:
//!
//! ```
//! use verilog::ast::*;
//! use verilog::eval::{run, ConstEnv};
//! use verilog::value::Value;
//!
//! let module = Module {
//!     name: "AB".into(),
//!     ports: vec![Port { name: "pulse".into(), dir: Dir::Input, ty: Type::Logic }],
//!     vars: vec![
//!         VarDecl { name: "count".into(), ty: Type::Array(8) },
//!         VarDecl { name: "done".into(), ty: Type::Logic },
//!     ],
//!     processes: vec![
//!         // always_ff @(posedge clk) if (pulse) count <= count + 8'd1;
//!         Process { body: vec![Stmt::If(
//!             Expr::var("pulse"),
//!             vec![Stmt::NonBlocking(
//!                 Lhs::Var("count".into()),
//!                 Expr::var("count").add(Expr::word(8, 1)),
//!             )],
//!             vec![],
//!         )] },
//!         // always_ff @(posedge clk) if (8'd10 < count) done = 1;
//!         Process { body: vec![Stmt::If(
//!             Expr::word(8, 10).lt(Expr::var("count")),
//!             vec![Stmt::Blocking(Lhs::Var("done".into()), Expr::bit(true))],
//!             vec![],
//!         )] },
//!     ],
//! };
//!
//! let init = module.initial_state()?;
//! let env = ConstEnv::new(vec![("pulse".into(), Value::Bool(true))]);
//! let fin = run(&module, env, init, 20)?;
//! assert_eq!(fin.get("done")?, &Value::Bool(true));
//! # Ok::<(), verilog::eval::VError>(())
//! ```

pub mod ast;
pub mod eval;
pub mod pretty;
pub mod value;

pub use ast::{Dir, Expr, Lhs, Module, Port, Process, Stmt, Type, VarDecl};
pub use eval::{cycle, run, run_observed, CycleObserver, Env, NoCycleObserver, VError, VarState};
pub use value::Value;
