//! Per-tenant fuel metering and admission control.
//!
//! Fuel is the service's unit of account (exactly the paper's machine
//! semantics clock): a tenant's *budget* bounds reserved-plus-spent
//! fuel over the server's lifetime, reservations are taken at admission
//! for the job's full requested fuel and settled down to the
//! instructions actually retired at completion. Admission also bounds
//! the tenant's in-flight job count, so one tenant cannot monopolise
//! the shared queue. Cache hits bypass metering entirely — a served
//! result retires no instructions.

use std::collections::HashMap;
use std::sync::Mutex;

/// Knobs bounding what one tenant may consume. One policy applies to
/// every tenant (tenants are created on first sight).
#[derive(Clone, Copy, Debug)]
pub struct TenantPolicy {
    /// Lifetime fuel budget: `reserved + spent` never exceeds this.
    pub fuel_budget: u64,
    /// Maximum jobs a tenant may have queued or running.
    pub max_in_flight: usize,
    /// Largest fuel a single job may request.
    pub max_job_fuel: u64,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            fuel_budget: 1 << 40,
            max_in_flight: 64,
            max_job_fuel: 4_000_000_000,
        }
    }
}

/// Why admission refused a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The job's fuel exceeds the per-job cap.
    JobFuel {
        /// Fuel the job asked for.
        asked: u64,
        /// The per-job cap.
        cap: u64,
    },
    /// The tenant's remaining budget cannot cover the job.
    FuelBudget {
        /// Fuel the job asked for.
        asked: u64,
        /// Budget still unreserved.
        remaining: u64,
    },
    /// The tenant already has too many jobs in flight.
    QueueDepth {
        /// The in-flight cap.
        cap: usize,
    },
}

#[derive(Default)]
struct TenantState {
    reserved: u64,
    spent: u64,
    in_flight: usize,
    completed: u64,
}

/// The metering table: tenant name → accounting state.
pub struct TenantTable {
    policy: TenantPolicy,
    inner: Mutex<HashMap<String, TenantState>>,
}

impl TenantTable {
    /// A table applying `policy` to every tenant.
    #[must_use]
    pub fn new(policy: TenantPolicy) -> TenantTable {
        TenantTable { policy, inner: Mutex::new(HashMap::new()) }
    }

    /// Tries to admit a job of `fuel` for `tenant`, reserving the fuel
    /// and an in-flight slot on success. Every success must be paired
    /// with exactly one [`settle`](TenantTable::settle).
    ///
    /// # Errors
    ///
    /// The first violated bound, per [`AdmitError`].
    pub fn admit(&self, tenant: &str, fuel: u64) -> Result<(), AdmitError> {
        if fuel > self.policy.max_job_fuel {
            return Err(AdmitError::JobFuel { asked: fuel, cap: self.policy.max_job_fuel });
        }
        let mut inner = self.inner.lock().expect("tenant lock");
        let st = inner.entry(tenant.to_string()).or_default();
        let committed = st.reserved.saturating_add(st.spent);
        let remaining = self.policy.fuel_budget.saturating_sub(committed);
        if fuel > remaining {
            return Err(AdmitError::FuelBudget { asked: fuel, remaining });
        }
        if st.in_flight >= self.policy.max_in_flight {
            return Err(AdmitError::QueueDepth { cap: self.policy.max_in_flight });
        }
        st.reserved += fuel;
        st.in_flight += 1;
        Ok(())
    }

    /// Settles a completed (or abandoned) job: releases the
    /// reservation, charges the fuel actually spent, frees the
    /// in-flight slot.
    pub fn settle(&self, tenant: &str, reserved: u64, spent: u64) {
        let mut inner = self.inner.lock().expect("tenant lock");
        let st = inner.entry(tenant.to_string()).or_default();
        st.reserved = st.reserved.saturating_sub(reserved);
        st.spent = st.spent.saturating_add(spent);
        st.in_flight = st.in_flight.saturating_sub(1);
        st.completed += 1;
    }

    /// Per-tenant `(name, fuel_spent, jobs_completed, in_flight)`,
    /// sorted by name for deterministic reporting.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64, u64, usize)> {
        let inner = self.inner.lock().expect("tenant lock");
        let mut rows: Vec<_> = inner
            .iter()
            .map(|(name, st)| (name.clone(), st.spent, st.completed, st.in_flight))
            .collect();
        rows.sort();
        rows
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &TenantPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(budget: u64, depth: usize, job_cap: u64) -> TenantTable {
        TenantTable::new(TenantPolicy {
            fuel_budget: budget,
            max_in_flight: depth,
            max_job_fuel: job_cap,
        })
    }

    #[test]
    fn budget_reserves_then_settles_to_actual_spend() {
        let t = table(1000, 8, 1000);
        t.admit("a", 600).expect("first job fits");
        assert_eq!(
            t.admit("a", 600),
            Err(AdmitError::FuelBudget { asked: 600, remaining: 400 }),
            "reservation counts against the budget"
        );
        t.settle("a", 600, 50);
        t.admit("a", 600).expect("after settling to 50 spent, 950 remains");
        let rows = t.snapshot();
        assert_eq!(rows, vec![("a".to_string(), 50, 1, 1)]);
    }

    #[test]
    fn queue_depth_and_job_cap_are_enforced_per_tenant() {
        let t = table(1 << 30, 2, 100);
        assert_eq!(t.admit("a", 101), Err(AdmitError::JobFuel { asked: 101, cap: 100 }));
        t.admit("a", 10).unwrap();
        t.admit("a", 10).unwrap();
        assert_eq!(t.admit("a", 10), Err(AdmitError::QueueDepth { cap: 2 }));
        t.admit("b", 10).expect("depth is per tenant");
    }
}
