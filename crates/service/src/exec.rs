//! The sliced job executor: run a job in checkpoint-sized slices so a
//! worker stop interrupts *between* slices, hand back the last rolling
//! checkpoint, and let any worker resume it later — the in-memory form
//! of the `silverc --checkpoint/--resume` crash-resume contract (and
//! the job-migration gap PR 6 left for the service layer).
//!
//! Semantics mirror `silver_stack::Stack` exactly: fuel is total
//! retires from boot, a resume runs `fuel − snapshot.retired()` more,
//! classification is `basis::classify_exit` on the reference engine and
//! the same halt-probe on jet, so a migrated job is byte-identical to
//! an uninterrupted one (`tests/crash_resume.rs` asserts this).

use ag32::State;
use basis::{classify_exit, extract_streams, ExitStatus};
use cakeml::TargetLayout;
use jet::Jet;
use silver::snapshot::Snapshot;

use crate::job::{JobOutcome, JobStatus, ServeEngine};

/// How a slice loop ended.
pub(crate) enum ExecEnd {
    /// Ran to completion (halt, wedge, or fuel exhaustion).
    Done(JobOutcome),
    /// Stopped cooperatively at a slice boundary; resume from this
    /// rolling checkpoint (a stop is only ever observed right after a
    /// capture, so there is always one).
    Killed(Box<Snapshot>),
}

/// Execution environment threaded through a slice loop.
pub(crate) struct SliceEnv<'a> {
    /// Memory layout for exit classification.
    pub layout: &'a TargetLayout,
    /// Slice length = rolling-checkpoint cadence, in retires.
    pub checkpoint_every: u64,
    /// Polled at every slice boundary; `true` interrupts the job.
    pub stop: &'a dyn Fn() -> bool,
    /// Called once per captured rolling checkpoint with the retire
    /// count it captured at.
    pub on_checkpoint: &'a dyn Fn(u64),
    /// Called once per executed slice with the retire counts at slice
    /// begin and end — the engine-level trace events (`SpanKind::Slice`
    /// with retire-count logical annotations).
    pub on_slice: &'a dyn Fn(u64, u64),
}

fn outcome(
    status: JobStatus,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    instructions: u64,
    engine: ServeEngine,
) -> JobOutcome {
    JobOutcome {
        job_id: 0,
        status,
        message: String::new(),
        stdout,
        stderr,
        instructions,
        engine,
        cached: false,
        shadowed: false,
        migrations: 0,
    }
}

fn status_of(exit: ExitStatus) -> (JobStatus, String) {
    match exit {
        ExitStatus::Exited(c) => (JobStatus::Exited(c), String::new()),
        ExitStatus::OutOfFuel => (JobStatus::OutOfFuel, String::new()),
        ExitStatus::Wedged => (JobStatus::Wedged, String::new()),
        ExitStatus::FfiFailed(detail) => (JobStatus::FfiFailed, detail),
    }
}

/// Runs `state` on the reference interpreter up to `fuel` total retires
/// (the state may already carry a resumed prefix), capturing a rolling
/// checkpoint every slice.
pub(crate) fn run_ref_sliced(env: &SliceEnv<'_>, mut state: State, fuel: u64) -> ExecEnd {
    loop {
        let remaining = fuel.saturating_sub(state.instructions_retired);
        if remaining == 0 || state.is_halted() {
            break;
        }
        let chunk = env.checkpoint_every.min(remaining);
        let before = state.instructions_retired;
        let n = state.run(chunk);
        (env.on_slice)(before, state.instructions_retired);
        if state.is_halted() || n < chunk {
            break;
        }
        let snap = Snapshot::capture(&state);
        (env.on_checkpoint)(state.instructions_retired);
        if (env.stop)() {
            return ExecEnd::Killed(Box::new(snap));
        }
    }
    let fuel_left = state.instructions_retired < fuel;
    let (stdout, stderr) = extract_streams(&state.io_events);
    let (status, message) = status_of(classify_exit(&state, env.layout, fuel_left));
    let mut out = outcome(status, stdout, stderr, state.instructions_retired, ServeEngine::Ref);
    out.message = message;
    ExecEnd::Done(out)
}

/// [`run_ref_sliced`], on the jet engine. Classification matches the
/// reference path: same halt probe, same `EXIT_UNSET` sentinel.
pub(crate) fn run_jet_sliced(env: &SliceEnv<'_>, mut j: Jet, fuel: u64) -> ExecEnd {
    loop {
        let remaining = fuel.saturating_sub(j.instructions_retired);
        if remaining == 0 || j.is_halted() {
            break;
        }
        let chunk = env.checkpoint_every.min(remaining);
        let before = j.instructions_retired;
        let n = j.run(chunk);
        (env.on_slice)(before, j.instructions_retired);
        if j.is_halted() || n < chunk {
            break;
        }
        let snap = Snapshot::capture_jet(&j);
        (env.on_checkpoint)(j.instructions_retired);
        if (env.stop)() {
            return ExecEnd::Killed(Box::new(snap));
        }
    }
    let fuel_left = j.instructions_retired < fuel;
    let (stdout, stderr) = extract_streams(&j.io_events);
    let status = if !fuel_left && !j.is_halted() {
        JobStatus::OutOfFuel
    } else {
        let code = j.mem().read_word(env.layout.exit_code_addr);
        if j.pc == env.layout.halt_addr && code != basis::image::EXIT_UNSET {
            JobStatus::Exited(code as u8)
        } else {
            JobStatus::Wedged
        }
    };
    ExecEnd::Done(outcome(status, stdout, stderr, j.instructions_retired, ServeEngine::Jet))
}

/// Dispatches a fresh image or a restored checkpoint to the right
/// engine's slice loop.
pub(crate) fn run_sliced(
    env: &SliceEnv<'_>,
    start: Start,
    fuel: u64,
    engine: ServeEngine,
) -> ExecEnd {
    match (engine, start) {
        (ServeEngine::Ref, Start::Image(state)) => run_ref_sliced(env, *state, fuel),
        (ServeEngine::Ref, Start::Checkpoint(snap)) => run_ref_sliced(env, snap.restore(), fuel),
        (ServeEngine::Jet, Start::Image(state)) => {
            let j = Jet::from_state(&state);
            run_jet_sliced(env, j, fuel)
        }
        (ServeEngine::Jet, Start::Checkpoint(snap)) => run_jet_sliced(env, snap.restore_jet(), fuel),
    }
}

/// Where a slice loop starts from.
pub(crate) enum Start {
    /// A freshly built boot image.
    Image(Box<State>),
    /// A rolling checkpoint captured by an interrupted run.
    Checkpoint(Box<Snapshot>),
}
