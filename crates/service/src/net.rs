//! The socket front end: accept connections on TCP or a Unix socket,
//! speak the [`wire`](crate::wire) protocol, one thread per connection.
//!
//! The accept loop is non-blocking so a `Shutdown` request (observed by
//! any connection thread) or a SIGINT/SIGTERM (latched by
//! [`crate::signal`]) stops accepting promptly; the service then drains
//! its queue, joins its workers, and — when configured — emits
//! `BENCH_service.json`. With a bench path set, the loop also appends
//! one time-series stats line every
//! [`stats_every_ms`](crate::ServiceConfig::stats_every_ms), so the
//! artifact is a QPS/cache/utilization time series rather than a single
//! shutdown blob.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::server::Service;
use crate::signal;
use crate::wire::{read_request, write_response, Request, Response, WireError};

/// Where to listen.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7070`.
    Tcp(String),
    /// Unix-domain socket path (a stale socket file is replaced).
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Serves `service` on `endpoint` until a client sends `Shutdown`, then
/// drains and (if `bench` is set) writes the bench artifact. Blocks the
/// calling thread for the server's lifetime.
///
/// # Errors
///
/// Bind/accept errors and bench-write failures.
pub fn serve(
    service: &Arc<Service>,
    endpoint: &Endpoint,
    bench: Option<&std::path::Path>,
) -> std::io::Result<()> {
    let listener = match endpoint {
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
        Endpoint::Unix(path) => {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l)
        }
    };

    signal::install_termination_latch();
    let stats_every = service.stats_every();
    let mut last_stats = Instant::now();

    let shutdown = Arc::new(AtomicBool::new(false));
    while !shutdown.load(Ordering::Relaxed) && !signal::termination_requested() {
        if let (Some(path), Some(every)) = (bench, stats_every) {
            if last_stats.elapsed() >= every {
                last_stats = Instant::now();
                service.append_stats_line(path)?;
            }
        }
        let stream: Option<Box<dyn ReadWrite + Send>> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Some(Box::new(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Some(Box::new(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        match stream {
            Some(s) => {
                let service = Arc::clone(service);
                let shutdown = Arc::clone(&shutdown);
                // Detached: a connection blocked on a long job must not
                // block shutdown of the accept loop; its response write
                // races only against process exit, which the CLI delays
                // until after the drain.
                std::thread::spawn(move || serve_conn(&service, s, &shutdown));
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    service.shutdown();
    if let Some(path) = bench {
        service.write_bench(path)?;
    }
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// `Read + Write` object-safe alias for TCP/Unix streams.
pub trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

fn serve_conn(
    service: &Arc<Service>,
    mut stream: Box<dyn ReadWrite + Send>,
    shutdown: &AtomicBool,
) {
    loop {
        let req = match read_request(&mut stream) {
            Ok(r) => r,
            Err(WireError::Truncated) | Err(WireError::Io(_)) => return, // peer gone
            Err(e) => {
                let _ = write_response(&mut stream, &Response::Error(e.to_string()));
                return;
            }
        };
        let resp = match req {
            Request::Submit(spec) => match service.submit(spec) {
                Ok(outcome) => Response::Done(outcome),
                Err(reject) => {
                    Response::Rejected { code: reject.code(), reason: reject.reason() }
                }
            },
            Request::Stats => Response::Stats(service.stats_text()),
            Request::Ping => Response::Pong,
            Request::Trace(job_id) => Response::Trace(service.trace(job_id)),
            Request::Shutdown => {
                let _ = write_response(&mut stream, &Response::ShutdownAck);
                shutdown.store(true, Ordering::Relaxed);
                return;
            }
        };
        if write_response(&mut stream, &resp).is_err() {
            return;
        }
    }
}
