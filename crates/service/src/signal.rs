//! Minimal SIGINT/SIGTERM latching, so the socket front end can flush
//! `BENCH_service.json` and the flight recorder on Ctrl-C instead of
//! dying with the artifacts unwritten.
//!
//! No `libc` crate: `signal(2)` is declared directly (std already links
//! libc on every supported target) and the handler does the only thing
//! async-signal-safety allows — a relaxed store into a static flag that
//! the accept loop polls between accepts.

use std::sync::atomic::{AtomicBool, Ordering};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs the SIGINT/SIGTERM latch. Idempotent; call once before the
/// accept loop.
pub fn install_termination_latch() {
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// True once SIGINT or SIGTERM has been received.
#[must_use]
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_trips_on_raise() {
        install_termination_latch();
        assert!(!termination_requested());
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe {
            raise(SIGTERM);
        }
        assert!(termination_requested());
    }
}
