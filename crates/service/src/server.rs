//! The in-process execution service: admission → cache → queue →
//! sharded worker pool → outcome, with shadow sampling, checkpoint
//! migration, metrics, and per-job tracing.
//!
//! Submission path:
//!
//! 1. **Validate** the spec (non-empty source, no named files, fuel > 0).
//! 2. **Cache lookup** by content key — a hit is served immediately
//!    (after the mandatory cache-version check) without touching the
//!    tenant's fuel budget.
//! 3. **Admission** reserves the job's fuel and an in-flight slot
//!    against the tenant's policy, then the job is enqueued on the
//!    bounded work queue (back-pressure: a full queue rejects).
//! 4. A **worker** compiles and runs the job in checkpoint-sized
//!    slices. Every `shadow.every_jobs`-th executed job first runs the
//!    full lockstep shadow oracle (theorem J) over its whole execution;
//!    a divergence fails the job with forensics and is never cached.
//! 5. A worker stopped mid-job requeues the job *at the front* of the
//!    queue with its last rolling checkpoint; any worker — including a
//!    freshly respawned one — resumes it from there. The resumed
//!    result is byte-identical to an uninterrupted run (the crash-resume
//!    contract, now as live job migration).
//!
//! Every step above also emits a span into the job's
//! [`obs::trace::JobTrace`] — admit, cache lookup, tenant reserve,
//! queue wait, compile, shadow check, exec slices, checkpoints,
//! migration, requeue, reply — timed by **logical clocks** (per-job
//! event sequence numbers; retire counts and queue depths as span
//! args). Wall-clock readings ride along only as optional annotations.
//! The same events tee into a bounded per-shard [`FlightRecorder`]; on
//! a shadow divergence, a worker death, or shutdown the recorder dumps
//! Chrome trace-event JSON (Perfetto-loadable) into
//! [`ServiceConfig::trace_dir`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use basis::build_image;
use cakeml::{compile_source, CompilerConfig, TargetLayout};
use obs::metrics::Registry;
use obs::trace::{chrome_trace_json, FlightRecorder, JobTrace, SpanId, SpanKind, TraceBuilder};
use silver::snapshot::Snapshot;
use testkit::pool::{PushError, WorkQueue, WorkerCtl, WorkerPool};

use crate::cache::{CacheStats, ResultCache};
use crate::exec::{run_sliced, ExecEnd, SliceEnv, Start};
use crate::job::{job_key, EnginePref, JobOutcome, JobSpec, JobStatus, ServeEngine, ShadowPref};
use crate::tenant::{AdmitError, TenantPolicy, TenantTable};
use crate::{ServiceConfig, ShadowPolicy};

/// Why the service refused a job at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Per-job fuel cap exceeded.
    JobFuel(String),
    /// Tenant fuel budget exhausted.
    FuelBudget(String),
    /// Tenant in-flight cap reached.
    QueueDepth(String),
    /// The shared queue is full (global back-pressure).
    QueueFull,
    /// Malformed job.
    BadRequest(String),
    /// The service is shutting down.
    ShuttingDown,
}

impl RejectReason {
    /// The wire code for this rejection.
    #[must_use]
    pub fn code(&self) -> u8 {
        use crate::wire::reject_code as rc;
        match self {
            RejectReason::JobFuel(_) => rc::JOB_FUEL,
            RejectReason::FuelBudget(_) => rc::FUEL_BUDGET,
            RejectReason::QueueDepth(_) => rc::QUEUE_DEPTH,
            RejectReason::QueueFull => rc::QUEUE_FULL,
            RejectReason::BadRequest(_) => rc::BAD_REQUEST,
            RejectReason::ShuttingDown => rc::SHUTTING_DOWN,
        }
    }

    /// Human-readable reason.
    #[must_use]
    pub fn reason(&self) -> String {
        match self {
            RejectReason::JobFuel(s)
            | RejectReason::FuelBudget(s)
            | RejectReason::QueueDepth(s)
            | RejectReason::BadRequest(s) => s.clone(),
            RejectReason::QueueFull => "shared work queue is full".to_string(),
            RejectReason::ShuttingDown => "service is shutting down".to_string(),
        }
    }
}

struct Pending {
    spec: JobSpec,
    key: u64,
    job_id: u64,
    engine: ServeEngine,
    shadowed: bool,
    resume: Option<Box<Snapshot>>,
    migrations: u32,
    /// The job's span tree under construction (None only transiently
    /// inside `handle_job`).
    trace: Option<TraceBuilder>,
    /// The currently open queue-wait span, ended when a worker picks
    /// the job up.
    queue_span: Option<SpanId>,
    tx: mpsc::Sender<JobOutcome>,
    submitted: Instant,
}

struct Metrics {
    registry: Registry,
    submitted: Arc<obs::metrics::Counter>,
    completed: Arc<obs::metrics::Counter>,
    cached: Arc<obs::metrics::Counter>,
    rejected: Arc<obs::metrics::Counter>,
    shadow_jobs: Arc<obs::metrics::Counter>,
    divergences: Arc<obs::metrics::Counter>,
    migrations: Arc<obs::metrics::Counter>,
    checkpoints: Arc<obs::metrics::Counter>,
    cache_hits: Arc<obs::metrics::Counter>,
    cache_misses: Arc<obs::metrics::Counter>,
    cache_evictions: Arc<obs::metrics::Counter>,
    job_us: Arc<obs::metrics::Histogram>,
    exec_us: Arc<obs::metrics::Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        Metrics {
            submitted: registry.counter("service.jobs.submitted"),
            completed: registry.counter("service.jobs.completed"),
            cached: registry.counter("service.jobs.cached"),
            rejected: registry.counter("service.jobs.rejected"),
            shadow_jobs: registry.counter("service.shadow.jobs"),
            divergences: registry.counter("service.shadow.divergences"),
            migrations: registry.counter("service.migrations"),
            checkpoints: registry.counter("service.checkpoints"),
            cache_hits: registry.counter("service.cache.hits"),
            cache_misses: registry.counter("service.cache.misses"),
            cache_evictions: registry.counter("service.cache.evictions"),
            job_us: registry.histogram("service.job_us"),
            exec_us: registry.histogram("service.exec_us"),
            registry,
        }
    }
}

struct Inner {
    cfg: ServiceConfig,
    layout: TargetLayout,
    compiler_cfg: CompilerConfig,
    queue: Arc<WorkQueue<Pending>>,
    cache: ResultCache,
    tenants: TenantTable,
    m: Metrics,
    /// Admission sequence: the service-global logical clock that names
    /// jobs (`job_id`) and orders them causally.
    admit_seq: AtomicU64,
    /// Executed-job counter driving `every_jobs` shadow sampling.
    shadow_seq: AtomicU64,
    /// Total rolling checkpoints captured (also the clock for the
    /// deterministic kill tripwire).
    checkpoint_seq: AtomicU64,
    /// Stats-line sequence for the time-series bench lines.
    stats_seq: AtomicU64,
    /// Fault-injection tripwire for tests: when nonzero, the worker
    /// that reaches this checkpoint count "dies" (requeues its job and
    /// stops) — a deterministic stand-in for killing a worker mid-job.
    kill_at_checkpoint: AtomicU64,
    /// High-water mark of worker slots ever spawned. Outlives the pool
    /// so post-shutdown stats still cover every shard that existed.
    spawned_hwm: AtomicUsize,
    /// The flight recorder every trace event tees into.
    flight: Arc<FlightRecorder>,
    /// The newest `cfg.trace_capacity` completed job traces, oldest
    /// first — what the `Trace` wire op serves.
    traces: Mutex<VecDeque<JobTrace>>,
    started: Instant,
}

impl Inner {
    /// Wall-clock annotation for spans: µs since service start. Only
    /// ever attached as an *annotation* — ordering is logical clocks.
    fn wall_us(&self) -> Option<u64> {
        Some(self.started.elapsed().as_micros() as u64)
    }

    fn store_trace(&self, trace: JobTrace) {
        if self.cfg.trace_capacity == 0 {
            return;
        }
        let mut traces = self.traces.lock().expect("trace lock");
        while traces.len() >= self.cfg.trace_capacity {
            traces.pop_front();
        }
        traces.push_back(trace);
    }

    /// Writes a Chrome trace-event dump (`traces` plus the flight
    /// recorder's resident events) into `trace_dir` as
    /// `TRACE_<label>.json`. No-op without a configured dir.
    fn dump_flight(&self, label: &str, traces: &[JobTrace]) -> Option<std::path::PathBuf> {
        let dir = self.cfg.trace_dir.as_ref()?;
        let doc = chrome_trace_json(traces, &self.flight.chrome_events());
        let path = dir.join(format!("TRACE_{label}.json"));
        match std::fs::write(&path, doc) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }
}

/// The multi-tenant execution service. Cheap to share: all state is
/// behind `Arc`/locks; [`Service::submit`] may be called from any
/// number of threads (the socket front end spawns one per connection).
pub struct Service {
    inner: Arc<Inner>,
    pool: Mutex<Option<WorkerPool<Pending>>>,
}

impl Service {
    /// Starts a service with `cfg.shards` workers.
    #[must_use]
    pub fn start(cfg: ServiceConfig) -> Service {
        let queue = WorkQueue::bounded(cfg.queue_depth.max(1));
        let flight = Arc::new(FlightRecorder::new(cfg.shards.max(1), cfg.flight_capacity.max(1)));
        let inner = Arc::new(Inner {
            layout: TargetLayout::default(),
            compiler_cfg: CompilerConfig::default(),
            queue: Arc::clone(&queue),
            cache: ResultCache::new(cfg.cache_capacity),
            tenants: TenantTable::new(cfg.tenant),
            m: Metrics::new(),
            admit_seq: AtomicU64::new(0),
            shadow_seq: AtomicU64::new(0),
            checkpoint_seq: AtomicU64::new(0),
            stats_seq: AtomicU64::new(0),
            kill_at_checkpoint: AtomicU64::new(0),
            spawned_hwm: AtomicUsize::new(0),
            flight,
            traces: Mutex::new(VecDeque::new()),
            started: Instant::now(),
            cfg,
        });
        let shards = inner.cfg.shards.max(1);
        inner.spawned_hwm.store(shards, Ordering::Relaxed);
        let handler_inner = Arc::clone(&inner);
        let pool = WorkerPool::new(queue, shards, move |ctl, job| {
            handle_job(&handler_inner, ctl, job);
        });
        Service { inner, pool: Mutex::new(Some(pool)) }
    }

    /// Submits a job and blocks until its outcome.
    ///
    /// # Errors
    ///
    /// [`RejectReason`] when admission refuses the job.
    pub fn submit(&self, spec: JobSpec) -> Result<JobOutcome, RejectReason> {
        let rx = self.submit_async(spec)?;
        Ok(rx.recv().unwrap_or_else(|_| internal_outcome("worker lost the job channel")))
    }

    /// Submits a job, returning a receiver for its outcome (already
    /// filled for cache hits).
    ///
    /// # Errors
    ///
    /// [`RejectReason`] when admission refuses the job.
    pub fn submit_async(
        &self,
        spec: JobSpec,
    ) -> Result<mpsc::Receiver<JobOutcome>, RejectReason> {
        let inner = &self.inner;
        inner.m.submitted.inc();

        // Every submission gets a job id (the admit sequence number —
        // the service-global logical clock) and a trace builder teeing
        // into the flight recorder.
        let job_id = inner.admit_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut tb = TraceBuilder::new(job_id, Some(Arc::clone(&inner.flight)));
        tb.begin(SpanKind::Job, 0, inner.wall_us());
        let admit = tb.begin(SpanKind::Admit, 0, inner.wall_us());

        if let Err(r) = validate(&spec) {
            inner.m.rejected.inc();
            return Err(r);
        }
        tb.end(admit, 0, inner.wall_us());
        let key = job_key(&spec);
        let (tx, rx) = mpsc::channel();

        // Cache: a hit costs the tenant nothing and touches no worker.
        let lookup = tb.begin(SpanKind::CacheLookup, 0, inner.wall_us());
        if let Some(mut hit) = inner.cache.lookup(key) {
            tb.end(lookup, 1, inner.wall_us());
            inner.m.cache_hits.inc();
            inner.m.cached.inc();
            inner.m.completed.inc();
            inner.m.job_us.record(0);
            hit.job_id = job_id;
            tb.instant(SpanKind::Reply, 0, inner.wall_us());
            inner.store_trace(tb.finish());
            let _ = tx.send(hit);
            return Ok(rx);
        }
        tb.end(lookup, 0, inner.wall_us());
        inner.m.cache_misses.inc();

        let reserve = tb.begin(SpanKind::TenantReserve, spec.fuel, inner.wall_us());
        if let Err(e) = inner.tenants.admit(&spec.tenant, spec.fuel) {
            inner.m.rejected.inc();
            return Err(match e {
                AdmitError::JobFuel { asked, cap } => {
                    RejectReason::JobFuel(format!("job fuel {asked} exceeds per-job cap {cap}"))
                }
                AdmitError::FuelBudget { asked, remaining } => RejectReason::FuelBudget(format!(
                    "job fuel {asked} exceeds tenant's remaining budget {remaining}"
                )),
                AdmitError::QueueDepth { cap } => {
                    RejectReason::QueueDepth(format!("tenant already has {cap} jobs in flight"))
                }
            });
        }
        tb.end(reserve, spec.fuel, inner.wall_us());

        let engine = match spec.engine {
            EnginePref::Auto => inner.cfg.default_engine,
            EnginePref::Ref => ServeEngine::Ref,
            EnginePref::Jet => ServeEngine::Jet,
        };
        let shadowed = match spec.shadow {
            ShadowPref::Always => true,
            ShadowPref::Default => match inner.cfg.shadow {
                ShadowPolicy { every_jobs: 0, .. } => false,
                ShadowPolicy { every_jobs, .. } => {
                    inner.shadow_seq.fetch_add(1, Ordering::Relaxed) % every_jobs == 0
                }
            },
        };

        // Queue wait: begun here with the observed queue depth, ended
        // by the worker that dequeues the job.
        let queue_span = tb.begin(SpanKind::QueueWait, inner.queue.len() as u64, inner.wall_us());

        let tenant = spec.tenant.clone();
        let fuel = spec.fuel;
        let pending = Pending {
            spec,
            key,
            job_id,
            engine,
            shadowed,
            resume: None,
            migrations: 0,
            trace: Some(tb),
            queue_span: Some(queue_span),
            tx,
            submitted: Instant::now(),
        };
        match inner.queue.try_push(pending) {
            Ok(()) => Ok(rx),
            Err(err) => {
                inner.tenants.settle(&tenant, fuel, 0);
                inner.m.rejected.inc();
                Err(match err {
                    PushError::Full(_) => RejectReason::QueueFull,
                    PushError::Closed(_) => RejectReason::ShuttingDown,
                })
            }
        }
    }

    /// Signals worker `i` to stop; a job in flight is requeued from its
    /// last rolling checkpoint at the next slice boundary.
    pub fn kill_worker(&self, i: usize) -> bool {
        match self.pool.lock().expect("pool lock").as_mut() {
            Some(p) => p.stop_worker(i),
            None => false,
        }
    }

    /// Spawns a replacement worker; returns its index.
    pub fn respawn_worker(&self) -> Option<usize> {
        let idx = self.pool.lock().expect("pool lock").as_mut().map(WorkerPool::spawn_worker);
        if let Some(i) = idx {
            self.inner.spawned_hwm.fetch_max(i + 1, Ordering::Relaxed);
        }
        idx
    }

    /// Arms the deterministic kill tripwire: the worker that captures
    /// rolling checkpoint number `current + n` dies right after it
    /// (requeueing its job). Test hook — production kills go through
    /// [`kill_worker`](Service::kill_worker).
    pub fn inject_kill_after_checkpoints(&self, n: u64) {
        let at = self.inner.checkpoint_seq.load(Ordering::Relaxed) + n;
        self.inner.kill_at_checkpoint.store(at.max(1), Ordering::Relaxed);
    }

    /// Total rolling checkpoints captured so far.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.inner.checkpoint_seq.load(Ordering::Relaxed)
    }

    /// Shadow divergences observed so far (0 is the expected value —
    /// anything else is a found engine bug).
    #[must_use]
    pub fn divergences(&self) -> u64 {
        self.inner.m.divergences.get()
    }

    /// Cache accounting.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Per-tenant `(name, fuel_spent, jobs_completed, in_flight)`.
    #[must_use]
    pub fn tenant_snapshot(&self) -> Vec<(String, u64, u64, usize)> {
        self.inner.tenants.snapshot()
    }

    /// The policy in force.
    #[must_use]
    pub fn tenant_policy(&self) -> TenantPolicy {
        *self.inner.tenants.policy()
    }

    /// The span tree of job `job_id`, if it is still in the bounded
    /// trace store (the newest [`ServiceConfig::trace_capacity`]
    /// completed jobs).
    #[must_use]
    pub fn trace(&self, job_id: u64) -> Option<JobTrace> {
        let traces = self.inner.traces.lock().expect("trace lock");
        traces.iter().rev().find(|t| t.job_id == job_id).cloned()
    }

    /// Writes a flight-recorder dump labelled `label` into the
    /// configured trace dir (Chrome trace-event JSON). Returns the path
    /// written, or `None` when no trace dir is configured.
    pub fn dump_flight(&self, label: &str) -> Option<std::path::PathBuf> {
        self.inner.dump_flight(label, &[])
    }

    /// The configured cadence of periodic time-series stats lines
    /// (`None` when [`ServiceConfig::stats_every_ms`] is 0).
    #[must_use]
    pub fn stats_every(&self) -> Option<std::time::Duration> {
        match self.inner.cfg.stats_every_ms {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        }
    }

    /// One time-series stats line (the `BENCH_service.json` line the
    /// socket front end appends periodically): the service summary with
    /// a monotonically increasing `seq` and the current in-flight count.
    #[must_use]
    pub fn stats_line(&self) -> String {
        let inner = &self.inner;
        let cache = inner.cache.stats();
        // Mirror cache-internal accounting into the registry counters
        // (hits/misses move through submit, evictions only here).
        let ev = cache.evictions.saturating_sub(inner.m.cache_evictions.get());
        inner.m.cache_evictions.add(ev);

        let uptime_us = inner.started.elapsed().as_micros().max(1) as u64;
        let submitted = inner.m.submitted.get();
        let completed = inner.m.completed.get();
        let rejected = inner.m.rejected.get();
        let inflight = submitted.saturating_sub(completed).saturating_sub(rejected);
        let qps = completed as f64 / (uptime_us as f64 / 1e6);
        let lookups = cache.hits + cache.misses;
        let hit_rate = if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
        inner.m.registry.gauge("service.qps").set(qps);
        inner.m.registry.gauge("service.cache.hit_rate").set(hit_rate);
        inner.m.registry.gauge("service.uptime_us").set(uptime_us as f64);
        inner.m.registry.gauge("service.inflight").set(inflight as f64);
        for i in 0..self.spawned_workers() {
            let busy = inner.m.registry.counter(&format!("service.shard_busy_us.{i}")).get();
            inner
                .m
                .registry
                .gauge(&format!("service.shard_util.{i}"))
                .set(busy as f64 / uptime_us as f64);
        }

        format!(
            "{{\"suite\":\"service\",\"seq\":{},\"uptime_us\":{},\"shards\":{},\"jobs\":{},\"cached\":{},\"rejected\":{},\"inflight\":{},\"qps\":{:.2},\"p50_us\":{},\"p99_us\":{},\"cache_hit_rate\":{:.4},\"evictions\":{},\"shadow_jobs\":{},\"divergences\":{},\"migrations\":{},\"checkpoints\":{}}}\n",
            inner.stats_seq.fetch_add(1, Ordering::Relaxed),
            uptime_us,
            self.inner.cfg.shards,
            completed,
            inner.m.cached.get(),
            rejected,
            inflight,
            qps,
            inner.m.job_us.quantile(0.50),
            inner.m.job_us.quantile(0.99),
            hit_rate,
            cache.evictions,
            inner.m.shadow_jobs.get(),
            inner.m.divergences.get(),
            inner.m.migrations.get(),
            inner.m.checkpoints.get(),
        )
    }

    /// One summary JSON line (a [`stats_line`](Service::stats_line))
    /// followed by the full metrics registry as JSON lines — what the
    /// `Stats` wire op returns.
    #[must_use]
    pub fn stats_text(&self) -> String {
        let mut out = self.stats_line();
        out.push_str(&self.inner.m.registry.json_lines());
        out
    }

    /// Appends one time-series stats line to `path` — the periodic
    /// `BENCH_service.json` emission.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn append_stats_line(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(self.stats_line().as_bytes())
    }

    /// Appends the final [`stats_text`](Service::stats_text) to `path`
    /// — the shutdown tail of the `BENCH_service.json` artifact, after
    /// the run's periodic time-series lines.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write_bench(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(self.stats_text().as_bytes())
    }

    /// Worker slots ever spawned (indices are stable, so this is also
    /// the exclusive upper bound on shard indices in metrics). Survives
    /// shutdown so the bench artifact covers every shard.
    #[must_use]
    pub fn spawned_workers(&self) -> usize {
        self.inner.spawned_hwm.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop admitting, drain every queued job, join
    /// all workers, and dump the flight recorder (when a trace dir is
    /// configured). Safe to call more than once.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let pool = self.pool.lock().expect("pool lock").take();
        if let Some(p) = pool {
            p.join();
            self.inner.dump_flight("shutdown", &[]);
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.queue.close();
        if let Some(p) = self.pool.lock().expect("pool lock").take() {
            p.join();
        }
    }
}

fn validate(spec: &JobSpec) -> Result<(), RejectReason> {
    if spec.source.trim().is_empty() {
        return Err(RejectReason::BadRequest("empty source".to_string()));
    }
    if !spec.files.is_empty() {
        return Err(RejectReason::BadRequest(
            "named files are not realised at machine level (std streams only)".to_string(),
        ));
    }
    if spec.fuel == 0 {
        return Err(RejectReason::BadRequest("zero fuel".to_string()));
    }
    Ok(())
}

fn internal_outcome(msg: &str) -> JobOutcome {
    JobOutcome {
        job_id: 0,
        status: JobStatus::Internal,
        message: msg.to_string(),
        stdout: Vec::new(),
        stderr: Vec::new(),
        instructions: 0,
        engine: ServeEngine::Ref,
        cached: false,
        shadowed: false,
        migrations: 0,
    }
}

/// The worker body: compile (fresh jobs), shadow-check when sampled,
/// run in slices, and either finish the job or requeue it from its
/// last checkpoint when stopped. Every phase lands in the job's trace.
fn handle_job(inner: &Arc<Inner>, ctl: &WorkerCtl, mut job: Pending) {
    let t_exec = Instant::now();
    let busy = inner.m.registry.counter(&format!("service.shard_busy_us.{}", ctl.index));

    // The trace builder moves into a RefCell so the `&dyn Fn` slice and
    // checkpoint hooks below can record spans.
    let tb = RefCell::new(
        job.trace.take().unwrap_or_else(|| TraceBuilder::new(job.job_id, None)),
    );
    tb.borrow_mut().set_shard(ctl.index as u32);
    if let Some(q) = job.queue_span.take() {
        tb.borrow_mut().end(q, inner.queue.len() as u64, inner.wall_us());
    }

    let tripwire_fired = {
        let inner = Arc::clone(inner);
        move || {
            let at = inner.kill_at_checkpoint.load(Ordering::Relaxed);
            at != 0 && inner.checkpoint_seq.load(Ordering::Relaxed) >= at
        }
    };
    let stop = {
        let tripwire = tripwire_fired.clone();
        move || ctl.stop_requested() || tripwire()
    };
    let on_checkpoint = |retired: u64| {
        inner.checkpoint_seq.fetch_add(1, Ordering::Relaxed);
        inner.m.checkpoints.inc();
        tb.borrow_mut().instant(SpanKind::Checkpoint, retired, inner.wall_us());
    };
    let on_slice = |before: u64, after: u64| {
        let mut t = tb.borrow_mut();
        let s = t.begin(SpanKind::Slice, before, None);
        t.end(s, after, inner.wall_us());
    };
    let env = SliceEnv {
        layout: &inner.layout,
        checkpoint_every: inner.cfg.checkpoint_every.max(1),
        stop: &stop,
        on_checkpoint: &on_checkpoint,
        on_slice: &on_slice,
    };

    let end = match &job.resume {
        Some(snap) => {
            let resumed_at = snap.retired();
            let exec = tb.borrow_mut().begin(SpanKind::Exec, resumed_at, inner.wall_us());
            let end =
                run_sliced(&env, Start::Checkpoint(snap.clone()), job.spec.fuel, job.engine);
            let retired = match &end {
                ExecEnd::Done(out) => out.instructions,
                ExecEnd::Killed(s) => s.retired(),
            };
            tb.borrow_mut().end(exec, retired, inner.wall_us());
            end
        }
        None => {
            // Fresh job: compile, build the boot image, shadow-check if
            // sampled, then run. Resumed segments never re-shadow: the
            // fresh pass already verified the *whole* execution.
            let compile = tb.borrow_mut().begin(SpanKind::Compile, 0, inner.wall_us());
            match compile_source(&job.spec.source, inner.layout, &inner.compiler_cfg) {
                Err(e) => {
                    tb.borrow_mut().end(compile, 1, inner.wall_us());
                    let mut out = internal_outcome("");
                    out.status = JobStatus::CompileError;
                    out.message = e.to_string();
                    ExecEnd::Done(out)
                }
                Ok(compiled) => {
                    tb.borrow_mut().end(compile, 0, inner.wall_us());
                    let args: Vec<&str> = job.spec.args.iter().map(String::as_str).collect();
                    let build = tb.borrow_mut().begin(SpanKind::ImageBuild, 0, inner.wall_us());
                    match build_image(&compiled, &args, &job.spec.stdin) {
                        Err(e) => {
                            tb.borrow_mut().end(build, 1, inner.wall_us());
                            let mut out = internal_outcome("");
                            out.status = JobStatus::ImageError;
                            out.message = e.to_string();
                            ExecEnd::Done(out)
                        }
                        Ok(image) => {
                            tb.borrow_mut().end(build, 0, inner.wall_us());
                            let mut diverged = None;
                            if job.shadowed {
                                inner.m.shadow_jobs.inc();
                                let sample = inner.cfg.shadow.sample.max(1);
                                let check = tb
                                    .borrow_mut()
                                    .begin(SpanKind::ShadowCheck, 0, inner.wall_us());
                                match jet::run_shadow(
                                    &image,
                                    job.spec.fuel,
                                    sample,
                                    inner.cfg.fault_xor,
                                ) {
                                    Ok(_) => {
                                        tb.borrow_mut().end(check, 0, inner.wall_us());
                                    }
                                    Err(fx) => {
                                        tb.borrow_mut().end(check, 1, inner.wall_us());
                                        inner.m.divergences.inc();
                                        // The flight recorder's reason to
                                        // exist: dump the record, with this
                                        // job's lifecycle so far attached.
                                        inner.dump_flight(
                                            &format!("divergence_job{}", job.job_id),
                                            &[tb.borrow().snapshot()],
                                        );
                                        let mut out = internal_outcome("");
                                        out.status = JobStatus::Divergence;
                                        out.message = fx.render();
                                        diverged = Some(ExecEnd::Done(out));
                                    }
                                }
                            }
                            match diverged {
                                Some(d) => d,
                                None => {
                                    let exec =
                                        tb.borrow_mut().begin(SpanKind::Exec, 0, inner.wall_us());
                                    let end = run_sliced(
                                        &env,
                                        Start::Image(Box::new(image)),
                                        job.spec.fuel,
                                        job.engine,
                                    );
                                    let retired = match &end {
                                        ExecEnd::Done(out) => out.instructions,
                                        ExecEnd::Killed(s) => s.retired(),
                                    };
                                    tb.borrow_mut().end(exec, retired, inner.wall_us());
                                    end
                                }
                            }
                        }
                    }
                }
            }
        }
    };

    busy.add(t_exec.elapsed().as_micros() as u64);

    match end {
        ExecEnd::Killed(snap) => {
            // Disarm a fired tripwire and make this worker actually die,
            // so the respawn path is exercised exactly like a real kill.
            if tripwire_fired() {
                inner.kill_at_checkpoint.store(0, Ordering::Relaxed);
                ctl.request_stop();
            }
            inner.m.migrations.inc();
            job.migrations += 1;
            {
                let mut t = tb.borrow_mut();
                t.instant(SpanKind::Migrate, snap.retired(), inner.wall_us());
                t.instant(SpanKind::Requeue, u64::from(job.migrations), inner.wall_us());
                // The resumed segment waits on the queue again.
                job.queue_span =
                    Some(t.begin(SpanKind::QueueWait, inner.queue.len() as u64, inner.wall_us()));
            }
            // A dying worker is a flight-recorder moment: dump what every
            // shard was doing when this one stopped mid-job.
            inner.dump_flight(
                &format!("worker_death_shard{}", ctl.index),
                &[tb.borrow().snapshot()],
            );
            job.resume = Some(snap);
            job.trace = Some(tb.into_inner());
            if let Err(dropped) = inner.queue.push_front(job) {
                let mut out = internal_outcome(
                    "worker stopped mid-job after the queue closed; no resume path",
                );
                out.job_id = dropped.job_id;
                let _ = dropped.tx.send(out);
            }
        }
        ExecEnd::Done(mut out) => {
            out.job_id = job.job_id;
            out.shadowed = job.shadowed;
            out.migrations = job.migrations;
            out.engine = job.engine;
            inner.tenants.settle(&job.spec.tenant, job.spec.fuel, out.instructions);
            inner.cache.insert(job.key, &out);
            inner.m.completed.inc();
            inner.m.job_us.record(job.submitted.elapsed().as_micros() as u64);
            inner.m.exec_us.record(t_exec.elapsed().as_micros() as u64);
            {
                let mut t = tb.borrow_mut();
                t.instant(SpanKind::Reply, out.instructions, inner.wall_us());
            }
            inner.store_trace(tb.into_inner().finish());
            let _ = job.tx.send(out);
        }
    }
}
