//! The in-process execution service: admission → cache → queue →
//! sharded worker pool → outcome, with shadow sampling, checkpoint
//! migration, and metrics.
//!
//! Submission path:
//!
//! 1. **Validate** the spec (non-empty source, no named files, fuel > 0).
//! 2. **Cache lookup** by content key — a hit is served immediately
//!    (after the mandatory cache-version check) without touching the
//!    tenant's fuel budget.
//! 3. **Admission** reserves the job's fuel and an in-flight slot
//!    against the tenant's policy, then the job is enqueued on the
//!    bounded work queue (back-pressure: a full queue rejects).
//! 4. A **worker** compiles and runs the job in checkpoint-sized
//!    slices. Every `shadow.every_jobs`-th executed job first runs the
//!    full lockstep shadow oracle (theorem J) over its whole execution;
//!    a divergence fails the job with forensics and is never cached.
//! 5. A worker stopped mid-job requeues the job *at the front* of the
//!    queue with its last rolling checkpoint; any worker — including a
//!    freshly respawned one — resumes it from there. The resumed
//!    result is byte-identical to an uninterrupted run (the crash-resume
//!    contract, now as live job migration).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use basis::build_image;
use cakeml::{compile_source, CompilerConfig, TargetLayout};
use obs::metrics::Registry;
use silver::snapshot::Snapshot;
use testkit::pool::{PushError, WorkQueue, WorkerCtl, WorkerPool};

use crate::cache::{CacheStats, ResultCache};
use crate::exec::{run_sliced, ExecEnd, SliceEnv, Start};
use crate::job::{job_key, EnginePref, JobOutcome, JobSpec, JobStatus, ServeEngine, ShadowPref};
use crate::tenant::{AdmitError, TenantPolicy, TenantTable};
use crate::{ServiceConfig, ShadowPolicy};

/// Why the service refused a job at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Per-job fuel cap exceeded.
    JobFuel(String),
    /// Tenant fuel budget exhausted.
    FuelBudget(String),
    /// Tenant in-flight cap reached.
    QueueDepth(String),
    /// The shared queue is full (global back-pressure).
    QueueFull,
    /// Malformed job.
    BadRequest(String),
    /// The service is shutting down.
    ShuttingDown,
}

impl RejectReason {
    /// The wire code for this rejection.
    #[must_use]
    pub fn code(&self) -> u8 {
        use crate::wire::reject_code as rc;
        match self {
            RejectReason::JobFuel(_) => rc::JOB_FUEL,
            RejectReason::FuelBudget(_) => rc::FUEL_BUDGET,
            RejectReason::QueueDepth(_) => rc::QUEUE_DEPTH,
            RejectReason::QueueFull => rc::QUEUE_FULL,
            RejectReason::BadRequest(_) => rc::BAD_REQUEST,
            RejectReason::ShuttingDown => rc::SHUTTING_DOWN,
        }
    }

    /// Human-readable reason.
    #[must_use]
    pub fn reason(&self) -> String {
        match self {
            RejectReason::JobFuel(s)
            | RejectReason::FuelBudget(s)
            | RejectReason::QueueDepth(s)
            | RejectReason::BadRequest(s) => s.clone(),
            RejectReason::QueueFull => "shared work queue is full".to_string(),
            RejectReason::ShuttingDown => "service is shutting down".to_string(),
        }
    }
}

struct Pending {
    spec: JobSpec,
    key: u64,
    engine: ServeEngine,
    shadowed: bool,
    resume: Option<Box<Snapshot>>,
    migrations: u32,
    tx: mpsc::Sender<JobOutcome>,
    submitted: Instant,
}

struct Metrics {
    registry: Registry,
    submitted: Arc<obs::metrics::Counter>,
    completed: Arc<obs::metrics::Counter>,
    cached: Arc<obs::metrics::Counter>,
    rejected: Arc<obs::metrics::Counter>,
    shadow_jobs: Arc<obs::metrics::Counter>,
    divergences: Arc<obs::metrics::Counter>,
    migrations: Arc<obs::metrics::Counter>,
    checkpoints: Arc<obs::metrics::Counter>,
    cache_hits: Arc<obs::metrics::Counter>,
    cache_misses: Arc<obs::metrics::Counter>,
    cache_evictions: Arc<obs::metrics::Counter>,
    job_us: Arc<obs::metrics::Histogram>,
    exec_us: Arc<obs::metrics::Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        Metrics {
            submitted: registry.counter("service.jobs.submitted"),
            completed: registry.counter("service.jobs.completed"),
            cached: registry.counter("service.jobs.cached"),
            rejected: registry.counter("service.jobs.rejected"),
            shadow_jobs: registry.counter("service.shadow.jobs"),
            divergences: registry.counter("service.shadow.divergences"),
            migrations: registry.counter("service.migrations"),
            checkpoints: registry.counter("service.checkpoints"),
            cache_hits: registry.counter("service.cache.hits"),
            cache_misses: registry.counter("service.cache.misses"),
            cache_evictions: registry.counter("service.cache.evictions"),
            job_us: registry.histogram("service.job_us"),
            exec_us: registry.histogram("service.exec_us"),
            registry,
        }
    }
}

struct Inner {
    cfg: ServiceConfig,
    layout: TargetLayout,
    compiler_cfg: CompilerConfig,
    queue: Arc<WorkQueue<Pending>>,
    cache: ResultCache,
    tenants: TenantTable,
    m: Metrics,
    /// Executed-job counter driving `every_jobs` shadow sampling.
    shadow_seq: AtomicU64,
    /// Total rolling checkpoints captured (also the clock for the
    /// deterministic kill tripwire).
    checkpoint_seq: AtomicU64,
    /// Fault-injection tripwire for tests: when nonzero, the worker
    /// that reaches this checkpoint count "dies" (requeues its job and
    /// stops) — a deterministic stand-in for killing a worker mid-job.
    kill_at_checkpoint: AtomicU64,
    /// High-water mark of worker slots ever spawned. Outlives the pool
    /// so post-shutdown stats still cover every shard that existed.
    spawned_hwm: AtomicUsize,
    started: Instant,
}

/// The multi-tenant execution service. Cheap to share: all state is
/// behind `Arc`/locks; [`Service::submit`] may be called from any
/// number of threads (the socket front end spawns one per connection).
pub struct Service {
    inner: Arc<Inner>,
    pool: Mutex<Option<WorkerPool<Pending>>>,
}

impl Service {
    /// Starts a service with `cfg.shards` workers.
    #[must_use]
    pub fn start(cfg: ServiceConfig) -> Service {
        let queue = WorkQueue::bounded(cfg.queue_depth.max(1));
        let inner = Arc::new(Inner {
            layout: TargetLayout::default(),
            compiler_cfg: CompilerConfig::default(),
            queue: Arc::clone(&queue),
            cache: ResultCache::new(cfg.cache_capacity),
            tenants: TenantTable::new(cfg.tenant),
            m: Metrics::new(),
            shadow_seq: AtomicU64::new(0),
            checkpoint_seq: AtomicU64::new(0),
            kill_at_checkpoint: AtomicU64::new(0),
            spawned_hwm: AtomicUsize::new(0),
            started: Instant::now(),
            cfg,
        });
        let shards = inner.cfg.shards.max(1);
        inner.spawned_hwm.store(shards, Ordering::Relaxed);
        let handler_inner = Arc::clone(&inner);
        let pool = WorkerPool::new(queue, shards, move |ctl, job| {
            handle_job(&handler_inner, ctl, job);
        });
        Service { inner, pool: Mutex::new(Some(pool)) }
    }

    /// Submits a job and blocks until its outcome.
    ///
    /// # Errors
    ///
    /// [`RejectReason`] when admission refuses the job.
    pub fn submit(&self, spec: JobSpec) -> Result<JobOutcome, RejectReason> {
        let rx = self.submit_async(spec)?;
        Ok(rx.recv().unwrap_or_else(|_| internal_outcome("worker lost the job channel")))
    }

    /// Submits a job, returning a receiver for its outcome (already
    /// filled for cache hits).
    ///
    /// # Errors
    ///
    /// [`RejectReason`] when admission refuses the job.
    pub fn submit_async(
        &self,
        spec: JobSpec,
    ) -> Result<mpsc::Receiver<JobOutcome>, RejectReason> {
        let inner = &self.inner;
        inner.m.submitted.inc();
        if let Err(r) = validate(&spec) {
            inner.m.rejected.inc();
            return Err(r);
        }
        let key = job_key(&spec);
        let (tx, rx) = mpsc::channel();

        // Cache: a hit costs the tenant nothing and touches no worker.
        if let Some(hit) = inner.cache.lookup(key) {
            inner.m.cache_hits.inc();
            inner.m.cached.inc();
            inner.m.completed.inc();
            inner.m.job_us.record(0);
            let _ = tx.send(hit);
            return Ok(rx);
        }
        inner.m.cache_misses.inc();

        if let Err(e) = inner.tenants.admit(&spec.tenant, spec.fuel) {
            inner.m.rejected.inc();
            return Err(match e {
                AdmitError::JobFuel { asked, cap } => {
                    RejectReason::JobFuel(format!("job fuel {asked} exceeds per-job cap {cap}"))
                }
                AdmitError::FuelBudget { asked, remaining } => RejectReason::FuelBudget(format!(
                    "job fuel {asked} exceeds tenant's remaining budget {remaining}"
                )),
                AdmitError::QueueDepth { cap } => {
                    RejectReason::QueueDepth(format!("tenant already has {cap} jobs in flight"))
                }
            });
        }

        let engine = match spec.engine {
            EnginePref::Auto => inner.cfg.default_engine,
            EnginePref::Ref => ServeEngine::Ref,
            EnginePref::Jet => ServeEngine::Jet,
        };
        let shadowed = match spec.shadow {
            ShadowPref::Always => true,
            ShadowPref::Default => match inner.cfg.shadow {
                ShadowPolicy { every_jobs: 0, .. } => false,
                ShadowPolicy { every_jobs, .. } => {
                    inner.shadow_seq.fetch_add(1, Ordering::Relaxed) % every_jobs == 0
                }
            },
        };

        let tenant = spec.tenant.clone();
        let fuel = spec.fuel;
        let pending = Pending {
            spec,
            key,
            engine,
            shadowed,
            resume: None,
            migrations: 0,
            tx,
            submitted: Instant::now(),
        };
        match inner.queue.try_push(pending) {
            Ok(()) => Ok(rx),
            Err(err) => {
                inner.tenants.settle(&tenant, fuel, 0);
                inner.m.rejected.inc();
                Err(match err {
                    PushError::Full(_) => RejectReason::QueueFull,
                    PushError::Closed(_) => RejectReason::ShuttingDown,
                })
            }
        }
    }

    /// Signals worker `i` to stop; a job in flight is requeued from its
    /// last rolling checkpoint at the next slice boundary.
    pub fn kill_worker(&self, i: usize) -> bool {
        match self.pool.lock().expect("pool lock").as_mut() {
            Some(p) => p.stop_worker(i),
            None => false,
        }
    }

    /// Spawns a replacement worker; returns its index.
    pub fn respawn_worker(&self) -> Option<usize> {
        let idx = self.pool.lock().expect("pool lock").as_mut().map(WorkerPool::spawn_worker);
        if let Some(i) = idx {
            self.inner.spawned_hwm.fetch_max(i + 1, Ordering::Relaxed);
        }
        idx
    }

    /// Arms the deterministic kill tripwire: the worker that captures
    /// rolling checkpoint number `current + n` dies right after it
    /// (requeueing its job). Test hook — production kills go through
    /// [`kill_worker`](Service::kill_worker).
    pub fn inject_kill_after_checkpoints(&self, n: u64) {
        let at = self.inner.checkpoint_seq.load(Ordering::Relaxed) + n;
        self.inner.kill_at_checkpoint.store(at.max(1), Ordering::Relaxed);
    }

    /// Total rolling checkpoints captured so far.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.inner.checkpoint_seq.load(Ordering::Relaxed)
    }

    /// Shadow divergences observed so far (0 is the expected value —
    /// anything else is a found engine bug).
    #[must_use]
    pub fn divergences(&self) -> u64 {
        self.inner.m.divergences.get()
    }

    /// Cache accounting.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Per-tenant `(name, fuel_spent, jobs_completed, in_flight)`.
    #[must_use]
    pub fn tenant_snapshot(&self) -> Vec<(String, u64, u64, usize)> {
        self.inner.tenants.snapshot()
    }

    /// The policy in force.
    #[must_use]
    pub fn tenant_policy(&self) -> TenantPolicy {
        *self.inner.tenants.policy()
    }

    /// One summary JSON line (the `BENCH_service.json` head line)
    /// followed by the full metrics registry as JSON lines.
    #[must_use]
    pub fn stats_text(&self) -> String {
        let inner = &self.inner;
        let cache = inner.cache.stats();
        // Mirror cache-internal accounting into the registry counters
        // (hits/misses move through submit, evictions only here).
        let ev = cache.evictions.saturating_sub(inner.m.cache_evictions.get());
        inner.m.cache_evictions.add(ev);

        let uptime_us = inner.started.elapsed().as_micros().max(1) as u64;
        let completed = inner.m.completed.get();
        let qps = completed as f64 / (uptime_us as f64 / 1e6);
        let lookups = cache.hits + cache.misses;
        let hit_rate = if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
        inner.m.registry.gauge("service.qps").set(qps);
        inner.m.registry.gauge("service.cache.hit_rate").set(hit_rate);
        inner.m.registry.gauge("service.uptime_us").set(uptime_us as f64);
        for i in 0..self.spawned_workers() {
            let busy = inner.m.registry.counter(&format!("service.shard_busy_us.{i}")).get();
            inner
                .m
                .registry
                .gauge(&format!("service.shard_util.{i}"))
                .set(busy as f64 / uptime_us as f64);
        }

        let mut out = format!(
            "{{\"suite\":\"service\",\"shards\":{},\"jobs\":{},\"cached\":{},\"rejected\":{},\"qps\":{:.2},\"p50_us\":{},\"p99_us\":{},\"cache_hit_rate\":{:.4},\"evictions\":{},\"shadow_jobs\":{},\"divergences\":{},\"migrations\":{},\"checkpoints\":{}}}\n",
            self.inner.cfg.shards,
            completed,
            inner.m.cached.get(),
            inner.m.rejected.get(),
            qps,
            inner.m.job_us.quantile(0.50),
            inner.m.job_us.quantile(0.99),
            hit_rate,
            cache.evictions,
            inner.m.shadow_jobs.get(),
            inner.m.divergences.get(),
            inner.m.migrations.get(),
            inner.m.checkpoints.get(),
        );
        out.push_str(&inner.m.registry.json_lines());
        out
    }

    /// Writes [`stats_text`](Service::stats_text) to `path`
    /// (truncating) — the `BENCH_service.json` artifact.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write_bench(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.stats_text())
    }

    /// Worker slots ever spawned (indices are stable, so this is also
    /// the exclusive upper bound on shard indices in metrics). Survives
    /// shutdown so the bench artifact covers every shard.
    #[must_use]
    pub fn spawned_workers(&self) -> usize {
        self.inner.spawned_hwm.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop admitting, drain every queued job, join
    /// all workers. Safe to call more than once.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let pool = self.pool.lock().expect("pool lock").take();
        if let Some(p) = pool {
            p.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.queue.close();
        if let Some(p) = self.pool.lock().expect("pool lock").take() {
            p.join();
        }
    }
}

fn validate(spec: &JobSpec) -> Result<(), RejectReason> {
    if spec.source.trim().is_empty() {
        return Err(RejectReason::BadRequest("empty source".to_string()));
    }
    if !spec.files.is_empty() {
        return Err(RejectReason::BadRequest(
            "named files are not realised at machine level (std streams only)".to_string(),
        ));
    }
    if spec.fuel == 0 {
        return Err(RejectReason::BadRequest("zero fuel".to_string()));
    }
    Ok(())
}

fn internal_outcome(msg: &str) -> JobOutcome {
    JobOutcome {
        status: JobStatus::Internal,
        message: msg.to_string(),
        stdout: Vec::new(),
        stderr: Vec::new(),
        instructions: 0,
        engine: ServeEngine::Ref,
        cached: false,
        shadowed: false,
        migrations: 0,
    }
}

/// The worker body: compile (fresh jobs), shadow-check when sampled,
/// run in slices, and either finish the job or requeue it from its
/// last checkpoint when stopped.
fn handle_job(inner: &Arc<Inner>, ctl: &WorkerCtl, mut job: Pending) {
    let t_exec = Instant::now();
    let busy = inner.m.registry.counter(&format!("service.shard_busy_us.{}", ctl.index));

    let tripwire_fired = {
        let inner = Arc::clone(inner);
        move || {
            let at = inner.kill_at_checkpoint.load(Ordering::Relaxed);
            at != 0 && inner.checkpoint_seq.load(Ordering::Relaxed) >= at
        }
    };
    let stop = {
        let tripwire = tripwire_fired.clone();
        move || ctl.stop_requested() || tripwire()
    };
    let on_checkpoint = || {
        inner.checkpoint_seq.fetch_add(1, Ordering::Relaxed);
        inner.m.checkpoints.inc();
    };
    let env = SliceEnv {
        layout: &inner.layout,
        checkpoint_every: inner.cfg.checkpoint_every.max(1),
        stop: &stop,
        on_checkpoint: &on_checkpoint,
    };

    let end = match &job.resume {
        Some(snap) => run_sliced(&env, Start::Checkpoint(snap.clone()), job.spec.fuel, job.engine),
        None => {
            // Fresh job: compile, build the boot image, shadow-check if
            // sampled, then run. Resumed segments never re-shadow: the
            // fresh pass already verified the *whole* execution.
            match compile_source(&job.spec.source, inner.layout, &inner.compiler_cfg) {
                Err(e) => {
                    let mut out = internal_outcome("");
                    out.status = JobStatus::CompileError;
                    out.message = e.to_string();
                    ExecEnd::Done(out)
                }
                Ok(compiled) => {
                    let args: Vec<&str> = job.spec.args.iter().map(String::as_str).collect();
                    match build_image(&compiled, &args, &job.spec.stdin) {
                        Err(e) => {
                            let mut out = internal_outcome("");
                            out.status = JobStatus::ImageError;
                            out.message = e.to_string();
                            ExecEnd::Done(out)
                        }
                        Ok(image) => {
                            let mut diverged = None;
                            if job.shadowed {
                                inner.m.shadow_jobs.inc();
                                let sample = inner.cfg.shadow.sample.max(1);
                                if let Err(fx) =
                                    jet::run_shadow(&image, job.spec.fuel, sample, 0)
                                {
                                    inner.m.divergences.inc();
                                    let mut out = internal_outcome("");
                                    out.status = JobStatus::Divergence;
                                    out.message = fx.render();
                                    diverged = Some(ExecEnd::Done(out));
                                }
                            }
                            match diverged {
                                Some(d) => d,
                                None => run_sliced(
                                    &env,
                                    Start::Image(Box::new(image)),
                                    job.spec.fuel,
                                    job.engine,
                                ),
                            }
                        }
                    }
                }
            }
        }
    };

    busy.add(t_exec.elapsed().as_micros() as u64);

    match end {
        ExecEnd::Killed(snap) => {
            // Disarm a fired tripwire and make this worker actually die,
            // so the respawn path is exercised exactly like a real kill.
            if tripwire_fired() {
                inner.kill_at_checkpoint.store(0, Ordering::Relaxed);
                ctl.request_stop();
            }
            inner.m.migrations.inc();
            job.migrations += 1;
            job.resume = Some(snap);
            if let Err(dropped) = inner.queue.push_front(job) {
                let _ = dropped.tx.send(internal_outcome(
                    "worker stopped mid-job after the queue closed; no resume path",
                ));
            }
        }
        ExecEnd::Done(mut out) => {
            out.shadowed = job.shadowed;
            out.migrations = job.migrations;
            out.engine = job.engine;
            inner.tenants.settle(&job.spec.tenant, job.spec.fuel, out.instructions);
            inner.cache.insert(job.key, &out);
            inner.m.completed.inc();
            inner.m.job_us.record(job.submitted.elapsed().as_micros() as u64);
            inner.m.exec_us.record(t_exec.elapsed().as_micros() as u64);
            let _ = job.tx.send(out);
        }
    }
}
