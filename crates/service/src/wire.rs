//! The length-prefixed wire protocol.
//!
//! Frames are `u32` little-endian payload length followed by the
//! payload; payloads are a one-byte tag followed by tag-specific
//! fields. Integers are little-endian; strings and byte blobs are
//! `u32` length + contents. Submit payloads additionally carry a
//! protocol version (checked, so mismatched clients fail loudly rather
//! than misparse). Frames are capped at [`MAX_FRAME`] so a hostile
//! length prefix cannot make the server allocate unboundedly.
//!
//! | tag | direction | meaning |
//! |---|---|---|
//! | `0x01` | → | submit a [`JobSpec`] |
//! | `0x02` | → | request the metrics/stats text |
//! | `0x03` | → | ping |
//! | `0x04` | → | graceful shutdown |
//! | `0x05` | → | fetch a job's span tree by job id |
//! | `0x81` | ← | [`JobOutcome`] |
//! | `0x82` | ← | rejected (code + reason) |
//! | `0x83` | ← | stats text |
//! | `0x84` | ← | pong |
//! | `0x85` | ← | protocol-level error |
//! | `0x86` | ← | shutdown acknowledged |
//! | `0x87` | ← | span tree (or not-found) |

use std::fmt;
use std::io::{Read, Write};

use obs::trace::{JobTrace, Span, SpanKind};

use crate::job::{EnginePref, JobOutcome, JobSpec, JobStatus, ServeEngine, ShadowPref};

/// Protocol version carried in every Submit payload.
/// * v2: outcomes carry the job id; `Trace`/span-tree frames added.
pub const PROTO_VERSION: u16 = 2;

/// Hard cap on one frame's payload, request or response.
pub const MAX_FRAME: usize = 16 << 20;

/// A client→server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one job and wait for its outcome.
    Submit(JobSpec),
    /// Fetch the server's stats text (summary + metrics JSON lines).
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down gracefully (drain, emit bench).
    Shutdown,
    /// Fetch the span tree of a completed job by its id (the
    /// [`JobOutcome::job_id`] a Submit response carried).
    Trace(u64),
}

/// Machine-readable rejection codes (mirrors `RejectReason`).
pub mod reject_code {
    /// Per-job fuel cap exceeded.
    pub const JOB_FUEL: u8 = 1;
    /// Tenant fuel budget exhausted.
    pub const FUEL_BUDGET: u8 = 2;
    /// Tenant queue depth exceeded.
    pub const QUEUE_DEPTH: u8 = 3;
    /// Global queue full.
    pub const QUEUE_FULL: u8 = 4;
    /// Malformed job (empty source, named files, zero fuel…).
    pub const BAD_REQUEST: u8 = 5;
    /// Server is shutting down.
    pub const SHUTTING_DOWN: u8 = 6;
}

/// A server→client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The job completed (in any [`JobStatus`]).
    Done(JobOutcome),
    /// Admission refused the job.
    Rejected {
        /// One of [`reject_code`].
        code: u8,
        /// Human-readable reason.
        reason: String,
    },
    /// Stats text.
    Stats(String),
    /// Pong.
    Pong,
    /// Frame-level failure (bad version, undecodable job…).
    Error(String),
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// A job's span tree — `None` when the id is unknown or already
    /// evicted from the bounded trace store.
    Trace(Option<JobTrace>),
}

/// Decode/transport failures.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error.
    Io(std::io::Error),
    /// Peer closed mid-frame or the payload ended mid-field.
    Truncated,
    /// Length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// Unknown payload tag.
    BadTag(u8),
    /// Submit carried an unsupported protocol version.
    BadVersion(u16),
    /// A string field was not UTF-8.
    BadUtf8,
    /// An enum byte was out of range.
    BadEnum(&'static str, u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME}"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (this server speaks {PROTO_VERSION})")
            }
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadEnum(what, v) => write!(f, "bad {what} byte {v}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

// ---- encoding ----

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn encode_spec(buf: &mut Vec<u8>, spec: &JobSpec) {
    put_u16(buf, PROTO_VERSION);
    put_str(buf, &spec.tenant);
    put_str(buf, &spec.source);
    put_u16(buf, spec.args.len() as u16);
    for a in &spec.args {
        put_str(buf, a);
    }
    put_bytes(buf, &spec.stdin);
    put_u16(buf, spec.files.len() as u16);
    for (name, data) in &spec.files {
        put_str(buf, name);
        put_bytes(buf, data);
    }
    put_u64(buf, spec.fuel);
    buf.push(match spec.engine {
        EnginePref::Auto => 0,
        EnginePref::Ref => 1,
        EnginePref::Jet => 2,
    });
    buf.push(match spec.shadow {
        ShadowPref::Default => 0,
        ShadowPref::Always => 1,
    });
}

fn encode_outcome(buf: &mut Vec<u8>, out: &JobOutcome) {
    put_u64(buf, out.job_id);
    let (status, exit) = match out.status {
        JobStatus::Exited(c) => (0u8, c),
        JobStatus::OutOfFuel => (1, 0),
        JobStatus::Wedged => (2, 0),
        JobStatus::CompileError => (3, 0),
        JobStatus::ImageError => (4, 0),
        JobStatus::Divergence => (5, 0),
        JobStatus::Internal => (6, 0),
        JobStatus::FfiFailed => (7, 0),
    };
    buf.push(status);
    buf.push(exit);
    put_str(buf, &out.message);
    put_bytes(buf, &out.stdout);
    put_bytes(buf, &out.stderr);
    put_u64(buf, out.instructions);
    buf.push(match out.engine {
        ServeEngine::Ref => 0,
        ServeEngine::Jet => 1,
    });
    buf.push(u8::from(out.cached) | (u8::from(out.shadowed) << 1));
    put_u32(buf, out.migrations);
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one request frame.
///
/// # Errors
///
/// Underlying I/O errors.
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    let mut buf = Vec::new();
    match req {
        Request::Submit(spec) => {
            buf.push(0x01);
            encode_spec(&mut buf, spec);
        }
        Request::Stats => buf.push(0x02),
        Request::Ping => buf.push(0x03),
        Request::Shutdown => buf.push(0x04),
        Request::Trace(job_id) => {
            buf.push(0x05);
            put_u64(&mut buf, *job_id);
        }
    }
    write_frame(w, &buf)
}

/// Writes one response frame.
///
/// # Errors
///
/// Underlying I/O errors.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    let mut buf = Vec::new();
    match resp {
        Response::Done(out) => {
            buf.push(0x81);
            encode_outcome(&mut buf, out);
        }
        Response::Rejected { code, reason } => {
            buf.push(0x82);
            buf.push(*code);
            put_str(&mut buf, reason);
        }
        Response::Stats(text) => {
            buf.push(0x83);
            put_str(&mut buf, text);
        }
        Response::Pong => buf.push(0x84),
        Response::Error(msg) => {
            buf.push(0x85);
            put_str(&mut buf, msg);
        }
        Response::ShutdownAck => buf.push(0x86),
        Response::Trace(trace) => {
            buf.push(0x87);
            match trace {
                None => buf.push(0),
                Some(t) => {
                    buf.push(1);
                    encode_trace(&mut buf, t);
                }
            }
        }
    }
    write_frame(w, &buf)
}

/// Span parents are `u16` indices; `NO_PARENT` marks a root span on the
/// wire (span counts are capped well below it by `TraceBuilder`).
const NO_PARENT: u16 = u16::MAX;

fn encode_trace(buf: &mut Vec<u8>, t: &JobTrace) {
    put_u64(buf, t.job_id);
    put_u32(buf, t.spans.len() as u32);
    for s in &t.spans {
        buf.push(s.kind as u8);
        put_u16(buf, s.parent.unwrap_or(NO_PARENT));
        put_u64(buf, s.begin_lc);
        put_u64(buf, s.end_lc);
        put_u32(buf, s.shard);
        put_u64(buf, s.arg);
        match s.wall_us {
            None => buf.push(0),
            Some(w) => {
                buf.push(1);
                put_u64(buf, w);
            }
        }
    }
}

// ---- decoding ----

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

fn decode_spec(r: &mut Reader<'_>) -> Result<JobSpec, WireError> {
    let version = r.u16()?;
    if version != PROTO_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tenant = r.string()?;
    let source = r.string()?;
    let nargs = r.u16()?;
    let mut args = Vec::with_capacity(nargs as usize);
    for _ in 0..nargs {
        args.push(r.string()?);
    }
    let stdin = r.bytes()?;
    let nfiles = r.u16()?;
    let mut files = Vec::with_capacity(nfiles as usize);
    for _ in 0..nfiles {
        let name = r.string()?;
        let data = r.bytes()?;
        files.push((name, data));
    }
    let fuel = r.u64()?;
    let engine = match r.u8()? {
        0 => EnginePref::Auto,
        1 => EnginePref::Ref,
        2 => EnginePref::Jet,
        b => return Err(WireError::BadEnum("engine", b)),
    };
    let shadow = match r.u8()? {
        0 => ShadowPref::Default,
        1 => ShadowPref::Always,
        b => return Err(WireError::BadEnum("shadow", b)),
    };
    Ok(JobSpec { tenant, source, args, stdin, files, fuel, engine, shadow })
}

fn decode_outcome(r: &mut Reader<'_>) -> Result<JobOutcome, WireError> {
    let job_id = r.u64()?;
    let status_b = r.u8()?;
    let exit = r.u8()?;
    let status = match status_b {
        0 => JobStatus::Exited(exit),
        1 => JobStatus::OutOfFuel,
        2 => JobStatus::Wedged,
        3 => JobStatus::CompileError,
        4 => JobStatus::ImageError,
        5 => JobStatus::Divergence,
        6 => JobStatus::Internal,
        7 => JobStatus::FfiFailed,
        b => return Err(WireError::BadEnum("status", b)),
    };
    let message = r.string()?;
    let stdout = r.bytes()?;
    let stderr = r.bytes()?;
    let instructions = r.u64()?;
    let engine = match r.u8()? {
        0 => ServeEngine::Ref,
        1 => ServeEngine::Jet,
        b => return Err(WireError::BadEnum("engine", b)),
    };
    let flags = r.u8()?;
    let migrations = r.u32()?;
    Ok(JobOutcome {
        job_id,
        status,
        message,
        stdout,
        stderr,
        instructions,
        engine,
        cached: flags & 1 != 0,
        shadowed: flags & 2 != 0,
        migrations,
    })
}

fn decode_trace(r: &mut Reader<'_>) -> Result<JobTrace, WireError> {
    let job_id = r.u64()?;
    let nspans = r.u32()?;
    // A span is ≥ 32 bytes on the wire; reject counts a frame under
    // MAX_FRAME cannot actually carry before allocating.
    if nspans as usize > MAX_FRAME / 32 {
        return Err(WireError::Truncated);
    }
    let mut spans = Vec::with_capacity(nspans as usize);
    for _ in 0..nspans {
        let kind_b = r.u8()?;
        let kind =
            SpanKind::from_u8(kind_b).ok_or(WireError::BadEnum("span-kind", kind_b))?;
        let parent_raw = r.u16()?;
        let parent = if parent_raw == NO_PARENT { None } else { Some(parent_raw) };
        let begin_lc = r.u64()?;
        let end_lc = r.u64()?;
        let shard = r.u32()?;
        let arg = r.u64()?;
        let wall_us = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            b => return Err(WireError::BadEnum("wall-flag", b)),
        };
        spans.push(Span { kind, parent, begin_lc, end_lc, shard, arg, wall_us });
    }
    Ok(JobTrace { job_id, spans })
}

fn read_payload(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Reads one request frame.
///
/// # Errors
///
/// [`WireError`] on transport or decode failure.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    let payload = read_payload(r)?;
    let mut rd = Reader { buf: &payload, pos: 0 };
    let req = match rd.u8()? {
        0x01 => Request::Submit(decode_spec(&mut rd)?),
        0x02 => Request::Stats,
        0x03 => Request::Ping,
        0x04 => Request::Shutdown,
        0x05 => Request::Trace(rd.u64()?),
        t => return Err(WireError::BadTag(t)),
    };
    rd.done()?;
    Ok(req)
}

/// Reads one response frame.
///
/// # Errors
///
/// [`WireError`] on transport or decode failure.
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    let payload = read_payload(r)?;
    let mut rd = Reader { buf: &payload, pos: 0 };
    let resp = match rd.u8()? {
        0x81 => Response::Done(decode_outcome(&mut rd)?),
        0x82 => {
            let code = rd.u8()?;
            let reason = rd.string()?;
            Response::Rejected { code, reason }
        }
        0x83 => Response::Stats(rd.string()?),
        0x84 => Response::Pong,
        0x85 => Response::Error(rd.string()?),
        0x86 => Response::ShutdownAck,
        0x87 => match rd.u8()? {
            0 => Response::Trace(None),
            1 => Response::Trace(Some(decode_trace(&mut rd)?)),
            b => return Err(WireError::BadEnum("trace-presence", b)),
        },
        t => return Err(WireError::BadTag(t)),
    };
    rd.done()?;
    Ok(resp)
}
