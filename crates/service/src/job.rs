//! Job specifications, outcomes, and the content-addressed cache key.
//!
//! A job is one compile+run request: source text, command line, stdin,
//! an (optional, currently unrealised) file image and a fuel budget.
//! The cache key is an FNV-1a-64 hash over exactly the inputs that
//! determine the result bytes — and *nothing else*. In particular the
//! serving engine and the shadow policy are excluded on purpose:
//! theorem J (checked continuously by the shadow sampler) says the
//! reference interpreter and the jet engine produce identical
//! observable behaviour, so a result computed on either engine may be
//! served to a request asking for the other. The tenant is excluded
//! too — results are content-addressed, not principal-addressed.

use std::fmt;

/// Bump when the *meaning* of a cached result changes (result encoding,
/// classification rules, compiler defaults). Entries recorded under a
/// different version are never served; see
/// [`ResultCache::lookup`](crate::cache::ResultCache::lookup).
pub const CACHE_VERSION: u32 = 1;

/// Which engine a job asks for. `Auto` defers to the server default
/// (jet — the fastest engine is safe to default to precisely because
/// shadow sampling keeps checking theorem J in production).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnginePref {
    /// Server picks (jet by default).
    Auto,
    /// Force the reference interpreter.
    Ref,
    /// Force the jet translation-cache engine.
    Jet,
}

/// Per-job shadow request. Jobs may *strengthen* the server's sampling
/// policy (force a full lockstep check) but never weaken it — an
/// untrusted tenant must not be able to opt out of safety checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowPref {
    /// Follow the server's sampling policy.
    Default,
    /// Always shadow-check this job.
    Always,
}

/// The engine that actually served a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeEngine {
    /// Reference interpreter (`ag32::State::next`).
    Ref,
    /// Jet translation-cache engine.
    Jet,
}

impl ServeEngine {
    /// Stable lowercase name for logs and wire encoding.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServeEngine::Ref => "ref",
            ServeEngine::Jet => "jet",
        }
    }
}

/// One compile+run request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant the job is metered against.
    pub tenant: String,
    /// CakeML-style source text to compile.
    pub source: String,
    /// Command line (including `argv[0]`).
    pub args: Vec<String>,
    /// Standard input bytes.
    pub stdin: Vec<u8>,
    /// Named file image. Part of the wire format and the cache key for
    /// forward compatibility, but machine-level runs realise only the
    /// std streams (paper §2.4), so jobs with named files are rejected
    /// at admission.
    pub files: Vec<(String, Vec<u8>)>,
    /// Total instruction budget (retires from boot).
    pub fuel: u64,
    /// Engine request.
    pub engine: EnginePref,
    /// Shadow request.
    pub shadow: ShadowPref,
}

impl JobSpec {
    /// A minimal spec: empty stdin, `argv = [tenant-agnostic "job"]`,
    /// the server-default engine and shadow policy, and a 100M-retire
    /// budget (plenty for the app corpus).
    #[must_use]
    pub fn new(tenant: &str, source: &str) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            source: source.to_string(),
            args: vec!["job".to_string()],
            stdin: Vec::new(),
            files: Vec::new(),
            fuel: 100_000_000,
            engine: EnginePref::Auto,
            shadow: ShadowPref::Default,
        }
    }
}

/// How a completed job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to the halt loop with an exit code.
    Exited(u8),
    /// Fuel budget exhausted before halting.
    OutOfFuel,
    /// Stopped without reaching a well-formed halt.
    Wedged,
    /// The source failed to compile (detail in `message`).
    CompileError,
    /// The compiled program violated an image-build assumption.
    ImageError,
    /// An FFI call failed during execution (detail in `message`).
    FfiFailed,
    /// The shadow check caught an engine divergence — the result is
    /// untrusted and never cached; `message` carries the forensics.
    Divergence,
    /// Service-internal failure (worker lost without a resume path).
    Internal,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStatus::Exited(c) => write!(f, "exited({c})"),
            JobStatus::OutOfFuel => write!(f, "out-of-fuel"),
            JobStatus::Wedged => write!(f, "wedged"),
            JobStatus::CompileError => write!(f, "compile-error"),
            JobStatus::ImageError => write!(f, "image-error"),
            JobStatus::FfiFailed => write!(f, "ffi-failed"),
            JobStatus::Divergence => write!(f, "divergence"),
            JobStatus::Internal => write!(f, "internal-error"),
        }
    }
}

/// Everything the service returns for one job. The deterministic core
/// (`status`, `message`, `stdout`, `stderr`, `instructions`) is what
/// byte-identity contracts — cache hits, crash-resume — compare; the
/// rest (`engine`, `cached`, `shadowed`, `migrations`) is provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// The submission's id (its admit sequence number) — the handle the
    /// `Trace` wire op takes. A cache hit gets a fresh id of its own;
    /// its (tiny) trace records the hit, not the original computation.
    pub job_id: u64,
    /// Final classification.
    pub status: JobStatus,
    /// Error / divergence detail (empty on success).
    pub message: String,
    /// Standard output bytes.
    pub stdout: Vec<u8>,
    /// Standard error bytes.
    pub stderr: Vec<u8>,
    /// Instructions retired (0 for compile/image errors).
    pub instructions: u64,
    /// Engine that produced the result.
    pub engine: ServeEngine,
    /// Served from the result cache.
    pub cached: bool,
    /// A full lockstep shadow check ran over this execution.
    pub shadowed: bool,
    /// Times the job was resumed from a checkpoint after a worker
    /// stop (migrations between workers/shards).
    pub migrations: u32,
}

impl JobOutcome {
    /// The deterministic result core — what must be byte-identical
    /// between a cache hit and the original computation, and between a
    /// migrated and an uninterrupted run.
    #[must_use]
    pub fn result_bytes_eq(&self, other: &JobOutcome) -> bool {
        self.status == other.status
            && self.message == other.message
            && self.stdout == other.stdout
            && self.stderr == other.stderr
            && self.instructions == other.instructions
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a-64 (the same construction `silver::snapshot`
/// uses for its trailer checksum).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Length-prefixed field, so adjacent fields can never alias
    /// (`("ab","c")` vs `("a","bc")`).
    fn field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }
}

/// The content-addressed cache key of a job: an FNV-1a-64 hash over
/// (program, args, stdin, file image, fuel). Engine, shadow policy and
/// tenant are deliberately excluded — see the module docs.
#[must_use]
pub fn job_key(spec: &JobSpec) -> u64 {
    let mut h = Fnv::new();
    h.field(&CACHE_VERSION.to_le_bytes());
    h.field(spec.source.as_bytes());
    h.update(&(spec.args.len() as u64).to_le_bytes());
    for a in &spec.args {
        h.field(a.as_bytes());
    }
    h.field(&spec.stdin);
    // Canonical file order: the image is a *set* of named files.
    let mut files: Vec<&(String, Vec<u8>)> = spec.files.iter().collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    h.update(&(files.len() as u64).to_le_bytes());
    for (name, data) in files {
        h.field(name.as_bytes());
        h.field(data);
    }
    h.field(&spec.fuel.to_le_bytes());
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ignores_engine_shadow_and_tenant() {
        let a = JobSpec::new("alice", "val _ = print \"hi\";");
        let mut b = a.clone();
        b.tenant = "bob".into();
        b.engine = EnginePref::Ref;
        b.shadow = ShadowPref::Always;
        assert_eq!(job_key(&a), job_key(&b));
    }

    #[test]
    fn key_depends_on_every_content_field() {
        let base = JobSpec::new("t", "val _ = print \"hi\";");
        let k = job_key(&base);
        for (label, spec) in [
            ("source", JobSpec { source: "val _ = print \"ho\";".into(), ..base.clone() }),
            ("args", JobSpec { args: vec!["job".into(), "-x".into()], ..base.clone() }),
            ("stdin", JobSpec { stdin: b"input".to_vec(), ..base.clone() }),
            ("files", JobSpec { files: vec![("f".into(), b"x".to_vec())], ..base.clone() }),
            ("fuel", JobSpec { fuel: base.fuel + 1, ..base.clone() }),
        ] {
            assert_ne!(job_key(&spec), k, "{label} must affect the key");
        }
    }

    #[test]
    fn key_is_canonical_in_file_order_but_not_field_aliasable() {
        let mut a = JobSpec::new("t", "src");
        a.files = vec![("a".into(), b"1".to_vec()), ("b".into(), b"2".to_vec())];
        let mut b = a.clone();
        b.files.reverse();
        assert_eq!(job_key(&a), job_key(&b), "file image is a set");

        let mut c = JobSpec::new("t", "ab");
        c.args = vec!["c".into()];
        let mut d = JobSpec::new("t", "a");
        d.args = vec!["bc".into()];
        assert_ne!(job_key(&c), job_key(&d), "length prefixes prevent aliasing");
    }
}
