//! The wire client, the seeded loadgen, and the stats-line parser
//! behind `silver-client top`.
//!
//! [`Client`] is a thin blocking connection speaking the
//! [`wire`](crate::wire) protocol. [`loadgen`] replays a seeded mixed
//! workload — N tenants × M jobs drawn from a program corpus with
//! deliberate duplicates — over C connections, and reports client-side
//! latency quantiles alongside outcome tallies. Everything is derived
//! from the seed, so a loadgen run is reproducible job-for-job (the
//! interleaving across connections is scheduling-dependent; the job
//! *set* is not).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use obs::metrics::quantile_sorted;
use obs::trace::JobTrace;
use testkit::{Rng, TestRng};

use crate::job::{EnginePref, JobSpec, JobStatus, ShadowPref};
use crate::net::Endpoint;
use crate::wire::{read_response, write_request, Request, Response, WireError};

trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

/// A blocking client connection.
pub struct Client {
    stream: Box<dyn Stream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let stream: Box<dyn Stream> = match endpoint {
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr)?),
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
        };
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, WireError> {
        write_request(&mut self.stream, req)?;
        read_response(&mut self.stream)
    }

    /// Submits a job and waits for the server's verdict.
    ///
    /// # Errors
    ///
    /// Transport/decode failures ([`WireError`]).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Response, WireError> {
        self.roundtrip(&Request::Submit(spec.clone()))
    }

    /// Fetches the server's stats text.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn stats(&mut self) -> Result<String, WireError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(WireError::Io(std::io::Error::other(format!(
                "expected Stats, got {other:?}"
            )))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(WireError::Io(std::io::Error::other(format!(
                "expected Pong, got {other:?}"
            )))),
        }
    }

    /// Fetches the span tree of job `job_id` (`Ok(None)` when the
    /// server no longer holds it).
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn trace(&mut self, job_id: u64) -> Result<Option<JobTrace>, WireError> {
        match self.roundtrip(&Request::Trace(job_id))? {
            Response::Trace(t) => Ok(t),
            other => Err(WireError::Io(std::io::Error::other(format!(
                "expected Trace, got {other:?}"
            )))),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(WireError::Io(std::io::Error::other(format!(
                "expected ShutdownAck, got {other:?}"
            )))),
        }
    }
}

/// Loadgen parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Tenants to spread jobs across (`tenant-0` … `tenant-{n-1}`).
    pub tenants: usize,
    /// Total jobs to submit.
    pub jobs: usize,
    /// Distinct (program, stdin) pairs; jobs are drawn from this pool,
    /// so `jobs − distinct` submissions are potential cache hits.
    pub distinct: usize,
    /// Concurrent client connections.
    pub conns: usize,
    /// Master seed for the workload.
    pub seed: u64,
    /// Per-job fuel budget.
    pub fuel: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig { tenants: 4, jobs: 1000, distinct: 200, conns: 8, seed: 1, fuel: 100_000_000 }
    }
}

/// What a loadgen run observed, client-side.
#[derive(Clone, Debug, Default)]
pub struct LoadgenSummary {
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs that completed with [`JobStatus::Exited`].
    pub exited: usize,
    /// Completions served from the cache.
    pub cached: usize,
    /// Completions that were shadow-checked.
    pub shadowed: usize,
    /// Shadow divergences (must be 0).
    pub divergences: usize,
    /// Admission rejections.
    pub rejected: usize,
    /// Other terminal statuses (out-of-fuel, wedged, errors).
    pub other: usize,
    /// Client-observed p50 latency, µs.
    pub p50_us: u64,
    /// Client-observed p99 latency, µs.
    pub p99_us: u64,
}

impl LoadgenSummary {
    /// One JSON line, same spirit as the `BENCH_*.json` schemas.
    #[must_use]
    pub fn json_line(&self) -> String {
        format!(
            "{{\"suite\":\"service-loadgen\",\"submitted\":{},\"exited\":{},\"cached\":{},\"shadowed\":{},\"divergences\":{},\"rejected\":{},\"other\":{},\"p50_us\":{},\"p99_us\":{}}}",
            self.submitted,
            self.exited,
            self.cached,
            self.shadowed,
            self.divergences,
            self.rejected,
            self.other,
            self.p50_us,
            self.p99_us,
        )
    }
}

const WORDS: &[&str] = &[
    "silver", "cake", "verified", "stack", "theorem", "retire", "fuel", "shard", "jet", "proof",
    "halt", "carry", "mango", "pear", "apple",
];

fn gen_stdin(rng: &mut TestRng) -> Vec<u8> {
    let lines = rng.gen_range(1..=20usize);
    let mut out = Vec::new();
    for _ in 0..lines {
        let words = rng.gen_range(1..=4usize);
        for w in 0..words {
            if w > 0 {
                out.push(b' ');
            }
            out.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())].as_bytes());
        }
        out.push(b'\n');
    }
    out
}

/// Builds the deterministic distinct-job pool from a program corpus of
/// `(name, source)` pairs.
#[must_use]
pub fn loadgen_pool(cfg: &LoadgenConfig, corpus: &[(&str, &str)]) -> Vec<JobSpec> {
    let mut rng = TestRng::seed_from_u64(cfg.seed);
    let mut pool = Vec::with_capacity(cfg.distinct);
    for _ in 0..cfg.distinct.max(1) {
        let (name, source) = corpus[rng.gen_range(0..corpus.len())];
        let mut spec = JobSpec::new("tenant-0", source);
        spec.args = vec![name.to_string()];
        spec.stdin = gen_stdin(&mut rng);
        spec.fuel = cfg.fuel;
        spec.engine = EnginePref::Auto;
        spec.shadow = ShadowPref::Default;
        pool.push(spec);
    }
    pool
}

/// Runs the seeded mixed workload against a server. Job `j` uses pool
/// entry `rng(j)` under tenant `tenant-{rng(j) % tenants}` — both
/// derived from the seed, independent of connection scheduling.
///
/// # Errors
///
/// A message when connecting fails or a connection dies mid-run.
pub fn loadgen(
    endpoint: &Endpoint,
    cfg: &LoadgenConfig,
    corpus: &[(&str, &str)],
) -> Result<LoadgenSummary, String> {
    assert!(!corpus.is_empty(), "loadgen needs a non-empty corpus");
    let pool = loadgen_pool(cfg, corpus);

    // Pre-draw every job's (pool index, tenant) so the workload is
    // seed-deterministic regardless of how connections interleave.
    let mut rng = TestRng::seed_from_u64(cfg.seed ^ 0x10AD_6E4E);
    let draws: Vec<(usize, usize)> = (0..cfg.jobs)
        .map(|_| (rng.gen_range(0..pool.len()), rng.gen_range(0..cfg.tenants.max(1))))
        .collect();

    let next = AtomicUsize::new(0);
    let tally = Mutex::new((LoadgenSummary::default(), Vec::<u64>::new()));
    let errors = Mutex::new(Vec::<String>::new());

    std::thread::scope(|scope| {
        for _ in 0..cfg.conns.max(1) {
            scope.spawn(|| {
                let mut client = match Client::connect(endpoint) {
                    Ok(c) => c,
                    Err(e) => {
                        errors.lock().expect("errors lock").push(format!("connect: {e}"));
                        return;
                    }
                };
                loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= draws.len() {
                        return;
                    }
                    let (pi, ti) = draws[j];
                    let mut spec = pool[pi].clone();
                    spec.tenant = format!("tenant-{ti}");
                    let t0 = std::time::Instant::now();
                    let resp = client.submit(&spec);
                    let us = t0.elapsed().as_micros() as u64;
                    let mut guard = tally.lock().expect("tally lock");
                    let (summary, lat) = &mut *guard;
                    summary.submitted += 1;
                    match resp {
                        Ok(Response::Done(out)) => {
                            lat.push(us);
                            if out.cached {
                                summary.cached += 1;
                            }
                            if out.shadowed {
                                summary.shadowed += 1;
                            }
                            match out.status {
                                JobStatus::Exited(_) => summary.exited += 1,
                                JobStatus::Divergence => summary.divergences += 1,
                                _ => summary.other += 1,
                            }
                        }
                        Ok(Response::Rejected { .. }) => summary.rejected += 1,
                        Ok(other) => {
                            drop(guard);
                            errors
                                .lock()
                                .expect("errors lock")
                                .push(format!("unexpected response: {other:?}"));
                            return;
                        }
                        Err(e) => {
                            drop(guard);
                            errors.lock().expect("errors lock").push(format!("submit: {e}"));
                            return;
                        }
                    }
                }
            });
        }
    });

    let errs = errors.into_inner().expect("errors lock");
    if !errs.is_empty() {
        return Err(errs.join("; "));
    }
    let (mut summary, mut lat) = tally.into_inner().expect("tally lock");
    lat.sort_unstable();
    summary.p50_us = quantile_sorted(&lat, 0.50);
    summary.p99_us = quantile_sorted(&lat, 0.99);
    Ok(summary)
}

/// The head summary line of a server's stats text, parsed — what
/// `silver-client top` polls and diffs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Stats-line sequence number (monotonic per server).
    pub seq: u64,
    /// Server uptime, µs.
    pub uptime_us: u64,
    /// Worker shard count.
    pub shards: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Completions served from the cache.
    pub cached: u64,
    /// Admission rejections.
    pub rejected: u64,
    /// Jobs admitted but not yet completed.
    pub inflight: u64,
    /// Completed jobs per second over the whole uptime.
    pub qps: f64,
    /// Server-side p50 job latency, µs.
    pub p50_us: u64,
    /// Server-side p99 job latency, µs.
    pub p99_us: u64,
    /// Cache hit rate over all lookups.
    pub cache_hit_rate: f64,
    /// Shadow divergences (anything nonzero is a found engine bug).
    pub divergences: u64,
    /// Checkpoint migrations.
    pub migrations: u64,
    /// Rolling checkpoints captured.
    pub checkpoints: u64,
}

fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the first `"suite":"service"` summary line out of a stats
/// text (or a bench file's contents). Returns `None` when no such line
/// exists or mandatory keys are missing.
#[must_use]
pub fn parse_stats(text: &str) -> Option<StatsSnapshot> {
    let line = text.lines().find(|l| l.contains("\"suite\":\"service\""))?;
    let num = |k: &str| json_num(line, k);
    let int = |k: &str| num(k).map(|v| v as u64);
    Some(StatsSnapshot {
        seq: int("seq")?,
        uptime_us: int("uptime_us")?,
        shards: int("shards")?,
        jobs: int("jobs")?,
        cached: int("cached").unwrap_or(0),
        rejected: int("rejected").unwrap_or(0),
        inflight: int("inflight")?,
        qps: num("qps")?,
        p50_us: int("p50_us").unwrap_or(0),
        p99_us: int("p99_us").unwrap_or(0),
        cache_hit_rate: num("cache_hit_rate").unwrap_or(0.0),
        divergences: int("divergences").unwrap_or(0),
        migrations: int("migrations").unwrap_or(0),
        checkpoints: int("checkpoints").unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_stats_reads_the_summary_line() {
        let text = "{\"suite\":\"service\",\"seq\":7,\"uptime_us\":1000000,\"shards\":4,\"jobs\":42,\"cached\":10,\"rejected\":1,\"inflight\":3,\"qps\":42.00,\"p50_us\":150,\"p99_us\":900,\"cache_hit_rate\":0.2381,\"evictions\":0,\"shadow_jobs\":6,\"divergences\":0,\"migrations\":2,\"checkpoints\":9}\n{\"name\":\"x\",\"kind\":\"counter\",\"value\":1}\n";
        let s = parse_stats(text).expect("parses");
        assert_eq!(s.seq, 7);
        assert_eq!(s.shards, 4);
        assert_eq!(s.jobs, 42);
        assert_eq!(s.inflight, 3);
        assert!((s.qps - 42.0).abs() < 1e-9);
        assert!((s.cache_hit_rate - 0.2381).abs() < 1e-9);
        assert_eq!(s.migrations, 2);
    }

    #[test]
    fn parse_stats_rejects_other_lines() {
        assert_eq!(parse_stats("{\"suite\":\"loadgen\"}\n"), None);
        assert_eq!(parse_stats(""), None);
    }
}
