//! Silver as a service: a multi-tenant execution server for the
//! verified stack.
//!
//! The paper's stack gives a machine-checked guarantee that every
//! engine implementing the Silver ISA behaves identically (theorem J,
//! checked continuously by `jet::run_shadow`). That is exactly the
//! property that makes it safe to serve untrusted compile+run jobs at
//! scale on the *fastest* engine with *sampled* lockstep checking: the
//! contract is one, the implementations are many, and the sampler keeps
//! the implementations honest in production.
//!
//! Architecture (one crate, one process):
//!
//! ```text
//! silver-client ──wire──▶ net::serve ──▶ Service::submit
//!                                           │  validate → cache → admit
//!                                           ▼
//!                                bounded WorkQueue (testkit::pool)
//!                                           │
//!                              sharded WorkerPool (N workers)
//!                                           │  compile → [shadow] → run in
//!                                           │  checkpoint-sized slices
//!                                           ▼
//!                       JobOutcome ──▶ cache + tenant settle + metrics
//! ```
//!
//! A worker stopped mid-job requeues the job at the queue front with
//! its last rolling checkpoint ([`silver::snapshot::Snapshot`]); any
//! worker resumes it byte-identically — the crash-resume contract of
//! `tests/checkpoint.rs`, promoted to live job migration.
//!
//! Safety defaults are deliberate and guarded by CI:
//! * shadow sampling is **on** by default (`every_jobs: 8`);
//! * a cached result is **never** served without a cache-version check
//!   ([`cache::ResultCache::lookup`]).

pub mod cache;
mod exec;
pub mod client;
pub mod job;
pub mod net;
pub mod server;
pub mod signal;
pub mod tenant;
pub mod wire;

pub use cache::{CacheStats, ResultCache};
pub use client::{loadgen, parse_stats, Client, LoadgenConfig, LoadgenSummary, StatsSnapshot};
pub use job::{
    job_key, EnginePref, JobOutcome, JobSpec, JobStatus, ServeEngine, ShadowPref, CACHE_VERSION,
};
pub use net::{serve, Endpoint};
pub use server::{RejectReason, Service};
pub use tenant::{AdmitError, TenantPolicy, TenantTable};

/// Shadow-sampling policy: every `every_jobs`-th executed job runs the
/// full lockstep shadow oracle over its whole execution before the
/// serving run (`0` disables sampling; jobs can still force a check
/// via [`ShadowPref::Always`]). `sample` is the in-run cadence of full
/// architectural comparisons (the PC is compared on every retire
/// regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowPolicy {
    /// Shadow-check every Nth executed job (0 = off).
    pub every_jobs: u64,
    /// Full register-file comparison every N retires within a check.
    pub sample: u64,
}

impl Default for ShadowPolicy {
    fn default() -> ShadowPolicy {
        // Shadow sampling defaults ON: serving jet-by-default is only
        // safe while theorem J keeps being spot-checked in production.
        // (scripts/ci.sh pins this default.)
        ShadowPolicy { every_jobs: 8, sample: 64 }
    }
}

/// Service construction knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker (shard) count.
    pub shards: usize,
    /// Bounded shared queue depth (back-pressure bound).
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Shadow-sampling policy.
    pub shadow: ShadowPolicy,
    /// Rolling-checkpoint cadence in retires (also the migration
    /// granularity: a stop is noticed at the next boundary).
    pub checkpoint_every: u64,
    /// Per-tenant metering policy.
    pub tenant: TenantPolicy,
    /// Engine for [`EnginePref::Auto`] jobs. Jet: the fastest engine is
    /// the right default precisely because shadow sampling stays on.
    pub default_engine: ServeEngine,
    /// Completed-trace store capacity: the newest N job traces are
    /// retrievable through the `Trace` wire op (0 disables tracing
    /// retention; the flight recorder still runs).
    pub trace_capacity: usize,
    /// Flight-recorder ring capacity, in events per shard ring.
    pub flight_capacity: usize,
    /// Where flight-recorder dumps land (Chrome trace-event JSON,
    /// written automatically on shadow divergence, worker death and
    /// shutdown). `None` disables dumping; recording still happens.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Cadence of time-series stats lines appended to the bench file by
    /// the socket front end, in milliseconds (0 = only the shutdown
    /// lines).
    pub stats_every_ms: u64,
    /// Fault-injection hook for tests and CI: XORed into one ALU result
    /// inside sampled shadow checks so a divergence (and its automatic
    /// flight-recorder dump) can be provoked on demand. Keep 0 in
    /// production.
    #[doc(hidden)]
    pub fault_xor: u32,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 4,
            queue_depth: 256,
            cache_capacity: 256,
            shadow: ShadowPolicy::default(),
            checkpoint_every: 100_000,
            tenant: TenantPolicy::default(),
            default_engine: ServeEngine::Jet,
            trace_capacity: 512,
            flight_capacity: 4096,
            trace_dir: None,
            stats_every_ms: 1000,
            fault_xor: 0,
        }
    }
}
