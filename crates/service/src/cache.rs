//! The content-addressed result cache.
//!
//! Keyed by [`job_key`](crate::job::job_key) — (program, args, stdin,
//! file image, fuel) — so a result computed once is served to every
//! tenant and every engine request that asks the same question. Safety
//! rests on two pillars: theorem J makes the result engine-independent,
//! and **every** lookup checks the entry's recorded [`CACHE_VERSION`]
//! before serving it, so a version bump instantly invalidates stale
//! semantics instead of serving them.
//!
//! Eviction is least-recently-used under a fixed capacity, counted so
//! the service can report hit/miss/eviction rates.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::job::{JobOutcome, JobStatus, CACHE_VERSION};

struct Entry {
    version: u32,
    outcome: JobOutcome,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Hit/miss/eviction accounting, read at bench-emission time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// A bounded LRU result cache. Capacity 0 disables caching entirely
/// (every lookup is a miss, nothing is stored).
pub struct ResultCache {
    cap: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache holding at most `cap` results.
    #[must_use]
    pub fn new(cap: usize) -> ResultCache {
        ResultCache { cap, inner: Mutex::new(Inner::default()) }
    }

    /// Looks up `key`, returning a clone of the stored outcome with
    /// `cached = true`. An entry recorded under a different
    /// [`CACHE_VERSION`] is *never* served — it is dropped and the
    /// lookup counts as a miss. This check is the hygiene invariant the
    /// CI guard pins: no cached result leaves the cache without a
    /// version comparison.
    pub fn lookup(&self, key: u64) -> Option<JobOutcome> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) if entry.version == CACHE_VERSION => {
                entry.last_used = tick;
                let mut out = entry.outcome.clone();
                inner.hits += 1;
                out.cached = true;
                Some(out)
            }
            Some(_) => {
                // Stale semantics: invalidate rather than serve.
                inner.map.remove(&key);
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `outcome` under `key`. Divergence and internal-error
    /// outcomes are never cached (the former is untrusted by
    /// definition, the latter is not a property of the job). Evicts the
    /// least-recently-used entry when at capacity.
    pub fn insert(&self, key: u64, outcome: &JobOutcome) {
        self.insert_with_version(key, outcome, CACHE_VERSION);
    }

    /// [`insert`](ResultCache::insert) with an explicit recorded
    /// version — exists so tests can prove the version check fires;
    /// production code always goes through `insert`.
    #[doc(hidden)]
    pub fn insert_with_version(&self, key: u64, outcome: &JobOutcome, version: u32) {
        if self.cap == 0 {
            return;
        }
        if matches!(outcome.status, JobStatus::Divergence | JobStatus::Internal) {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.cap {
            // LRU victim: smallest last-used tick (ticks are unique, so
            // this is deterministic regardless of map iteration order).
            if let Some(&victim) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        let mut stored = outcome.clone();
        stored.cached = false; // canonical form; lookup sets the flag
        inner.map.insert(key, Entry { version, outcome: stored, last_used: tick });
    }

    /// Current accounting.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ServeEngine;

    fn outcome(tag: u8) -> JobOutcome {
        JobOutcome {
            job_id: u64::from(tag),
            status: JobStatus::Exited(tag),
            message: String::new(),
            stdout: vec![tag; 3],
            stderr: Vec::new(),
            instructions: u64::from(tag) * 1000,
            engine: ServeEngine::Jet,
            cached: false,
            shadowed: false,
            migrations: 0,
        }
    }

    #[test]
    fn hit_returns_the_stored_bytes_flagged_cached() {
        let c = ResultCache::new(4);
        assert!(c.lookup(1).is_none());
        c.insert(1, &outcome(7));
        let hit = c.lookup(1).expect("hit");
        assert!(hit.cached);
        assert!(hit.result_bytes_eq(&outcome(7)));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, evictions: 0, len: 1 });
    }

    #[test]
    fn lru_eviction_under_small_capacity() {
        let c = ResultCache::new(2);
        c.insert(1, &outcome(1));
        c.insert(2, &outcome(2));
        assert!(c.lookup(1).is_some(), "touch 1 so 2 becomes the LRU victim");
        c.insert(3, &outcome(3));
        assert!(c.lookup(2).is_none(), "2 was evicted");
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn version_mismatch_is_never_served() {
        let c = ResultCache::new(4);
        c.insert_with_version(1, &outcome(1), CACHE_VERSION + 1);
        assert!(c.lookup(1).is_none(), "stale-version entry must not be served");
        assert_eq!(c.stats().len, 0, "stale entry is dropped on lookup");
    }

    #[test]
    fn divergence_and_zero_capacity_are_not_cached() {
        let c = ResultCache::new(4);
        let mut bad = outcome(1);
        bad.status = JobStatus::Divergence;
        c.insert(1, &bad);
        assert!(c.lookup(1).is_none());

        let off = ResultCache::new(0);
        off.insert(2, &outcome(2));
        assert!(off.lookup(2).is_none());
    }
}
