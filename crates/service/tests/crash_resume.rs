//! Crash-resume at the service level: kill a worker mid-job, respawn
//! it, and assert the migrated job's outcome is byte-identical to an
//! uninterrupted run — the PR 6 checkpoint contract, now exercised as
//! live job migration through the shared work queue.
//!
//! The kill uses the deterministic tripwire
//! (`inject_kill_after_checkpoints`): the worker that captures the
//! armed rolling checkpoint requeues its job *and genuinely stops*, so
//! the respawn path runs exactly as it would after a real worker death.

use std::time::{Duration, Instant};

use service::{EnginePref, JobSpec, JobStatus, ServeEngine, Service, ServiceConfig};

const SORT: &str = r#"
val input = read_all ();
val lines = split_lines input;
val sorted = merge_sort string_lt lines;
val _ = print (join_lines sorted);
"#;

/// Enough work that the job crosses many checkpoint boundaries at
/// `checkpoint_every = 10_000`.
fn big_stdin() -> Vec<u8> {
    let mut s = String::new();
    for i in 0..64 {
        s.push_str(&format!("line-{:03}\n", (i * 37) % 100));
    }
    s.into_bytes()
}

fn spec(engine: EnginePref) -> JobSpec {
    let mut spec = JobSpec::new("crash-tenant", SORT);
    spec.stdin = big_stdin();
    spec.engine = engine;
    spec
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        checkpoint_every: 10_000,
        cache_capacity: 0, // force real execution on both runs
        ..ServiceConfig::default()
    }
}

fn kill_resume_matches_uninterrupted(engine: EnginePref, expect_engine: ServeEngine) {
    // Uninterrupted baseline on a fresh service.
    let baseline_svc = Service::start(cfg());
    let baseline = baseline_svc.submit(spec(engine)).expect("baseline admitted");
    assert_eq!(baseline.status, JobStatus::Exited(0), "{baseline:?}");
    assert_eq!(baseline.engine, expect_engine);
    assert_eq!(baseline.migrations, 0);
    baseline_svc.shutdown();

    // Interrupted run: arm the tripwire, submit, wait for the worker to
    // die mid-job, respawn a replacement, and collect the outcome.
    let svc = Service::start(cfg());
    svc.inject_kill_after_checkpoints(3);
    let rx = svc.submit_async(spec(engine)).expect("job admitted");

    let deadline = Instant::now() + Duration::from_secs(120);
    while svc.checkpoints() < 3 {
        assert!(
            Instant::now() < deadline,
            "job produced only {} checkpoints before the tripwire point — \
             too short to interrupt?",
            svc.checkpoints()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // The only worker is dead (or dying). A replacement picks the job
    // back up from its requeued checkpoint.
    let replacement = svc.respawn_worker().expect("pool still alive");
    assert_eq!(replacement, 1, "shard 0 died; the replacement is slot 1");

    let resumed = rx.recv_timeout(Duration::from_secs(120)).expect("migrated job completed");
    assert!(resumed.migrations >= 1, "job was never actually migrated: {resumed:?}");
    assert_eq!(resumed.status, JobStatus::Exited(0), "{resumed:?}");
    assert!(
        resumed.result_bytes_eq(&baseline),
        "migrated run differs from uninterrupted run:\n  baseline: {baseline:?}\n  resumed: {resumed:?}"
    );
    assert_eq!(svc.spawned_workers(), 2);
    svc.shutdown();
}

#[test]
fn killed_ref_job_resumes_byte_identical() {
    kill_resume_matches_uninterrupted(EnginePref::Ref, ServeEngine::Ref);
}

#[test]
fn killed_jet_job_resumes_byte_identical() {
    kill_resume_matches_uninterrupted(EnginePref::Jet, ServeEngine::Jet);
}

#[test]
fn kill_and_respawn_on_an_idle_pool_keeps_serving() {
    let svc = Service::start(ServiceConfig { shards: 2, ..ServiceConfig::default() });
    assert!(svc.kill_worker(0), "worker 0 exists");
    svc.respawn_worker().expect("pool alive");
    let out = svc
        .submit(JobSpec::new("t", "val _ = print \"still here\\n\";"))
        .expect("admitted after respawn");
    assert_eq!(out.status, JobStatus::Exited(0), "{out:?}");
    assert_eq!(out.stdout, b"still here\n");
    svc.shutdown();
}
