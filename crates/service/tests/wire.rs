//! Wire-protocol contract: every message round-trips byte-exactly,
//! hostile inputs (truncation, oversize length prefixes, unknown tags,
//! wrong versions) fail with typed errors instead of misparses.

use obs::trace::{JobTrace, Span, SpanKind};
use service::job::{EnginePref, JobOutcome, JobSpec, JobStatus, ServeEngine, ShadowPref};
use service::wire::{
    read_request, read_response, write_request, write_response, Request, Response, WireError,
    MAX_FRAME,
};

fn spec() -> JobSpec {
    JobSpec {
        tenant: "alice".into(),
        source: "val _ = print \"hi\";".into(),
        args: vec!["job".into(), "--flag".into()],
        stdin: b"line one\nline two\n".to_vec(),
        files: vec![("data.txt".into(), b"\x00\xff contents".to_vec())],
        fuel: 123_456_789,
        engine: EnginePref::Jet,
        shadow: ShadowPref::Always,
    }
}

fn outcome() -> JobOutcome {
    JobOutcome {
        job_id: 41,
        status: JobStatus::Exited(3),
        message: "note".into(),
        stdout: b"out bytes \xf0".to_vec(),
        stderr: b"err".to_vec(),
        instructions: 987_654,
        engine: ServeEngine::Jet,
        cached: true,
        shadowed: true,
        migrations: 2,
    }
}

fn trace() -> JobTrace {
    JobTrace {
        job_id: 41,
        spans: vec![
            Span {
                kind: SpanKind::Job,
                parent: None,
                begin_lc: 0,
                end_lc: 9,
                shard: u32::MAX,
                arg: 0,
                wall_us: Some(1234),
            },
            Span {
                kind: SpanKind::Exec,
                parent: Some(0),
                begin_lc: 3,
                end_lc: 8,
                shard: 2,
                arg: 987_654,
                wall_us: None,
            },
        ],
    }
}

#[test]
fn requests_roundtrip() {
    for req in [
        Request::Submit(spec()),
        Request::Stats,
        Request::Ping,
        Request::Shutdown,
        Request::Trace(41),
    ] {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).expect("encode");
        let got = read_request(&mut buf.as_slice()).expect("decode");
        assert_eq!(got, req);
    }
}

#[test]
fn responses_roundtrip() {
    let cases = [
        Response::Done(outcome()),
        Response::Rejected { code: 4, reason: "queue full".into() },
        Response::Stats("{\"suite\":\"service\"}\n".into()),
        Response::Pong,
        Response::Error("bad frame".into()),
        Response::ShutdownAck,
        Response::Trace(None),
        Response::Trace(Some(trace())),
    ];
    for resp in cases {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).expect("encode");
        let got = read_response(&mut buf.as_slice()).expect("decode");
        assert_eq!(got, resp);
    }
}

#[test]
fn every_status_roundtrips() {
    for status in [
        JobStatus::Exited(0),
        JobStatus::Exited(255),
        JobStatus::OutOfFuel,
        JobStatus::Wedged,
        JobStatus::CompileError,
        JobStatus::ImageError,
        JobStatus::FfiFailed,
        JobStatus::Divergence,
        JobStatus::Internal,
    ] {
        let mut out = outcome();
        out.status = status.clone();
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Done(out.clone())).expect("encode");
        match read_response(&mut buf.as_slice()).expect("decode") {
            Response::Done(got) => assert_eq!(got.status, status),
            other => panic!("expected Done, got {other:?}"),
        }
    }
}

#[test]
fn truncated_frames_are_typed_errors() {
    let mut buf = Vec::new();
    write_request(&mut buf, &Request::Submit(spec())).expect("encode");
    // Every strict prefix must fail as Truncated, never panic or misparse.
    for cut in 0..buf.len() {
        match read_request(&mut &buf[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn oversize_length_prefix_is_rejected_without_allocation() {
    let frame = (MAX_FRAME as u32 + 1).to_le_bytes();
    match read_request(&mut frame.as_slice()) {
        Err(WireError::TooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn unknown_tag_and_trailing_garbage_are_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.push(0x7f);
    match read_request(&mut buf.as_slice()) {
        Err(WireError::BadTag(0x7f)) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }

    // A Ping frame with a trailing byte must not decode.
    let mut buf = Vec::new();
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.push(0x03);
    buf.push(0xee);
    match read_request(&mut buf.as_slice()) {
        Err(WireError::Truncated) => {}
        other => panic!("expected Truncated for trailing garbage, got {other:?}"),
    }
}

#[test]
fn trace_request_truncations_are_typed_errors() {
    let mut buf = Vec::new();
    write_request(&mut buf, &Request::Trace(0xDEAD_BEEF_0BAD_F00D)).expect("encode");
    for cut in 0..buf.len() {
        match read_request(&mut &buf[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
    }
    // A trailing byte after the job id must not decode either.
    buf[0] = buf[0].wrapping_add(1); // length prefix +1
    buf.push(0xee);
    match read_request(&mut buf.as_slice()) {
        Err(WireError::Truncated) => {}
        other => panic!("expected Truncated for trailing garbage, got {other:?}"),
    }
}

#[test]
fn trace_response_truncations_are_typed_errors() {
    // Mirrors the Submit coverage: every strict prefix of a span-tree
    // response must fail Truncated — never panic, never misparse.
    let mut buf = Vec::new();
    write_response(&mut buf, &Response::Trace(Some(trace()))).expect("encode");
    for cut in 0..buf.len() {
        match read_response(&mut &buf[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn trace_response_bad_bytes_are_typed_errors() {
    // Presence byte out of range.
    let mut buf = Vec::new();
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.push(0x87);
    buf.push(9);
    match read_response(&mut buf.as_slice()) {
        Err(WireError::BadEnum("trace-presence", 9)) => {}
        other => panic!("expected BadEnum(trace-presence), got {other:?}"),
    }

    // Bad span-kind byte. The first span's kind is the first byte after
    // tag + presence + job id (u64) + span count (u32).
    let mut buf = Vec::new();
    write_response(&mut buf, &Response::Trace(Some(trace()))).expect("encode");
    let kind_at = 4 + 1 + 1 + 8 + 4;
    buf[kind_at] = 0xfe;
    match read_response(&mut buf.as_slice()) {
        Err(WireError::BadEnum("span-kind", 0xfe)) => {}
        other => panic!("expected BadEnum(span-kind), got {other:?}"),
    }

    // Bad wall-us presence flag. The first span's flag is its last
    // byte: kind(1) + parent(2) + begin(8) + end(8) + shard(4) + arg(8).
    let mut buf = Vec::new();
    write_response(&mut buf, &Response::Trace(Some(trace()))).expect("encode");
    let flag_at = kind_at + 1 + 2 + 8 + 8 + 4 + 8;
    assert_eq!(buf[flag_at], 1, "first test span carries a wall annotation");
    buf[flag_at] = 7;
    match read_response(&mut buf.as_slice()) {
        Err(WireError::BadEnum("wall-flag", 7)) => {}
        other => panic!("expected BadEnum(wall-flag), got {other:?}"),
    }
}

#[test]
fn trace_response_hostile_span_count_is_rejected() {
    // A span count far beyond what the frame could carry must be
    // rejected before any allocation is attempted.
    let mut buf = Vec::new();
    buf.extend_from_slice(&14u32.to_le_bytes());
    buf.push(0x87);
    buf.push(1);
    buf.extend_from_slice(&1u64.to_le_bytes()); // job id
    buf.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile span count
    match read_response(&mut buf.as_slice()) {
        Err(WireError::Truncated) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let mut buf = Vec::new();
    write_request(&mut buf, &Request::Submit(spec())).expect("encode");
    // The version is the first u16 after the 4-byte length + 1-byte tag.
    buf[5] = 0x63;
    buf[6] = 0x00;
    match read_request(&mut buf.as_slice()) {
        Err(WireError::BadVersion(0x63)) => {}
        other => panic!("expected BadVersion, got {other:?}"),
    }
}
