//! Wire-protocol contract: every message round-trips byte-exactly,
//! hostile inputs (truncation, oversize length prefixes, unknown tags,
//! wrong versions) fail with typed errors instead of misparses.

use service::job::{EnginePref, JobOutcome, JobSpec, JobStatus, ServeEngine, ShadowPref};
use service::wire::{
    read_request, read_response, write_request, write_response, Request, Response, WireError,
    MAX_FRAME,
};

fn spec() -> JobSpec {
    JobSpec {
        tenant: "alice".into(),
        source: "val _ = print \"hi\";".into(),
        args: vec!["job".into(), "--flag".into()],
        stdin: b"line one\nline two\n".to_vec(),
        files: vec![("data.txt".into(), b"\x00\xff contents".to_vec())],
        fuel: 123_456_789,
        engine: EnginePref::Jet,
        shadow: ShadowPref::Always,
    }
}

fn outcome() -> JobOutcome {
    JobOutcome {
        status: JobStatus::Exited(3),
        message: "note".into(),
        stdout: b"out bytes \xf0".to_vec(),
        stderr: b"err".to_vec(),
        instructions: 987_654,
        engine: ServeEngine::Jet,
        cached: true,
        shadowed: true,
        migrations: 2,
    }
}

#[test]
fn requests_roundtrip() {
    for req in [Request::Submit(spec()), Request::Stats, Request::Ping, Request::Shutdown] {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).expect("encode");
        let got = read_request(&mut buf.as_slice()).expect("decode");
        assert_eq!(got, req);
    }
}

#[test]
fn responses_roundtrip() {
    let cases = [
        Response::Done(outcome()),
        Response::Rejected { code: 4, reason: "queue full".into() },
        Response::Stats("{\"suite\":\"service\"}\n".into()),
        Response::Pong,
        Response::Error("bad frame".into()),
        Response::ShutdownAck,
    ];
    for resp in cases {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).expect("encode");
        let got = read_response(&mut buf.as_slice()).expect("decode");
        assert_eq!(got, resp);
    }
}

#[test]
fn every_status_roundtrips() {
    for status in [
        JobStatus::Exited(0),
        JobStatus::Exited(255),
        JobStatus::OutOfFuel,
        JobStatus::Wedged,
        JobStatus::CompileError,
        JobStatus::ImageError,
        JobStatus::FfiFailed,
        JobStatus::Divergence,
        JobStatus::Internal,
    ] {
        let mut out = outcome();
        out.status = status.clone();
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Done(out.clone())).expect("encode");
        match read_response(&mut buf.as_slice()).expect("decode") {
            Response::Done(got) => assert_eq!(got.status, status),
            other => panic!("expected Done, got {other:?}"),
        }
    }
}

#[test]
fn truncated_frames_are_typed_errors() {
    let mut buf = Vec::new();
    write_request(&mut buf, &Request::Submit(spec())).expect("encode");
    // Every strict prefix must fail as Truncated, never panic or misparse.
    for cut in 0..buf.len() {
        match read_request(&mut &buf[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn oversize_length_prefix_is_rejected_without_allocation() {
    let frame = (MAX_FRAME as u32 + 1).to_le_bytes();
    match read_request(&mut frame.as_slice()) {
        Err(WireError::TooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn unknown_tag_and_trailing_garbage_are_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.push(0x7f);
    match read_request(&mut buf.as_slice()) {
        Err(WireError::BadTag(0x7f)) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }

    // A Ping frame with a trailing byte must not decode.
    let mut buf = Vec::new();
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.push(0x03);
    buf.push(0xee);
    match read_request(&mut buf.as_slice()) {
        Err(WireError::Truncated) => {}
        other => panic!("expected Truncated for trailing garbage, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let mut buf = Vec::new();
    write_request(&mut buf, &Request::Submit(spec())).expect("encode");
    // The version is the first u16 after the 4-byte length + 1-byte tag.
    buf[5] = 0x63;
    buf[6] = 0x00;
    match read_request(&mut buf.as_slice()) {
        Err(WireError::BadVersion(0x63)) => {}
        other => panic!("expected BadVersion, got {other:?}"),
    }
}
