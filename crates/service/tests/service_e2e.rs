//! In-process service end-to-end: multi-tenant submission, cache
//! behaviour across engines, shadow sampling, admission control, and
//! the socket front end over a Unix socket.

use std::sync::Arc;

use service::{
    serve, Client, Endpoint, EnginePref, JobSpec, JobStatus, RejectReason, ServeEngine, Service,
    ServiceConfig, ShadowPolicy, ShadowPref, TenantPolicy,
};

const HELLO: &str = r#"
val _ = print "Hello from the verified stack!\n";
"#;

const SORT: &str = r#"
val input = read_all ();
val lines = split_lines input;
val sorted = merge_sort string_lt lines;
val _ = print (join_lines sorted);
"#;

fn cfg() -> ServiceConfig {
    ServiceConfig { shards: 2, ..ServiceConfig::default() }
}

fn hello_spec(tenant: &str) -> JobSpec {
    JobSpec::new(tenant, HELLO)
}

fn sort_spec(tenant: &str, stdin: &[u8]) -> JobSpec {
    let mut spec = JobSpec::new(tenant, SORT);
    spec.stdin = stdin.to_vec();
    spec
}

#[test]
fn two_tenants_one_computation_one_cache_hit() {
    let svc = Service::start(cfg());
    let a = svc.submit(hello_spec("alice")).expect("alice's job admitted");
    assert_eq!(a.status, JobStatus::Exited(0), "{a:?}");
    assert_eq!(a.stdout, b"Hello from the verified stack!\n");
    assert!(!a.cached);
    assert_eq!(a.engine, ServeEngine::Jet, "jet is the default engine");

    // Same program from another tenant: served from the cache,
    // byte-identical, and not metered against bob.
    let b = svc.submit(hello_spec("bob")).expect("bob's job admitted");
    assert!(b.cached, "second submission must hit the cache");
    assert!(b.result_bytes_eq(&a), "cache hit must be byte-identical");
    let stats = svc.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    let tenants = svc.tenant_snapshot();
    assert_eq!(tenants.len(), 1, "bob's cache hit created no metering state: {tenants:?}");
    assert_eq!(tenants[0].0, "alice");
    assert!(tenants[0].1 > 0, "alice was charged the instructions actually retired");
    svc.shutdown();
}

#[test]
fn engines_agree_byte_for_byte_and_share_the_cache_key() {
    // Cache off: both engines really execute.
    let svc = Service::start(ServiceConfig { cache_capacity: 0, ..cfg() });
    let stdin = b"pear\napple\nmango\n";
    let mut on_ref = sort_spec("t", stdin);
    on_ref.engine = EnginePref::Ref;
    let mut on_jet = sort_spec("t", stdin);
    on_jet.engine = EnginePref::Jet;
    let r = svc.submit(on_ref).expect("ref admitted");
    let j = svc.submit(on_jet).expect("jet admitted");
    assert_eq!(r.engine, ServeEngine::Ref);
    assert_eq!(j.engine, ServeEngine::Jet);
    assert_eq!(r.stdout, b"apple\nmango\npear\n");
    assert!(r.result_bytes_eq(&j), "theorem J at the service level: {r:?} vs {j:?}");
    svc.shutdown();

    // Cache on: a result computed on ref serves a jet request.
    let svc = Service::start(cfg());
    let mut on_ref = sort_spec("t", stdin);
    on_ref.engine = EnginePref::Ref;
    let first = svc.submit(on_ref).expect("ref admitted");
    let mut on_jet = sort_spec("t", stdin);
    on_jet.engine = EnginePref::Jet;
    let second = svc.submit(on_jet).expect("jet admitted");
    assert!(second.cached, "engine choice must not split the cache key");
    assert!(second.result_bytes_eq(&first));
    svc.shutdown();
}

#[test]
fn shadow_sampling_runs_and_finds_no_divergence() {
    // every_jobs = 1: every executed job is shadow-checked.
    let svc = Service::start(ServiceConfig {
        shadow: ShadowPolicy { every_jobs: 1, sample: 1 },
        ..cfg()
    });
    let out = svc.submit(sort_spec("t", b"b\na\n")).expect("admitted");
    assert_eq!(out.status, JobStatus::Exited(0), "{out:?}");
    assert!(out.shadowed, "policy says every job is shadowed");
    assert_eq!(svc.divergences(), 0, "theorem J must hold");

    // A cache hit is served, not re-executed, hence not re-shadowed.
    let hit = svc.submit(sort_spec("other", b"b\na\n")).expect("admitted");
    assert!(hit.cached);
    svc.shutdown();

    // ShadowPref::Always forces a check even when sampling is off.
    let svc = Service::start(ServiceConfig {
        shadow: ShadowPolicy { every_jobs: 0, sample: 1 },
        ..cfg()
    });
    let mut spec = hello_spec("t");
    spec.shadow = ShadowPref::Always;
    let out = svc.submit(spec).expect("admitted");
    assert!(out.shadowed, "jobs may strengthen the policy");
    let plain = svc.submit(hello_spec("u")).expect("admitted");
    assert!(plain.cached, "forced-shadow result still lands in the shared cache");
    svc.shutdown();
}

#[test]
fn admission_control_rejects_over_budget_and_malformed_jobs() {
    let svc = Service::start(ServiceConfig {
        tenant: TenantPolicy { fuel_budget: 1_000_000, max_in_flight: 2, max_job_fuel: 600_000 },
        ..cfg()
    });

    // Per-job cap.
    let mut big = hello_spec("a");
    big.fuel = 700_000;
    match svc.submit(big) {
        Err(RejectReason::JobFuel(_)) => {}
        other => panic!("expected JobFuel, got {other:?}"),
    }

    // Budget: a completed job charges actual retire count, so a cheap
    // job leaves budget; an expensive reservation is refused.
    let mut small = hello_spec("a");
    small.fuel = 600_000;
    svc.submit(small).expect("fits the budget");
    let mut again = hello_spec("a");
    again.source.push_str("\nval _ = print \"x\";"); // different key: no cache hit
    again.fuel = 600_000;
    let spent = svc.tenant_snapshot()[0].1;
    assert!(spent < 400_000, "hello is cheap (spent {spent})");
    svc.submit(again).expect("budget counts actual spend, not reservations");

    // Malformed jobs.
    let mut withfiles = hello_spec("b");
    withfiles.files = vec![("f".into(), b"x".to_vec())];
    match svc.submit(withfiles) {
        Err(RejectReason::BadRequest(_)) => {}
        other => panic!("expected BadRequest for named files, got {other:?}"),
    }
    let mut nofuel = hello_spec("b");
    nofuel.fuel = 0;
    match svc.submit(nofuel) {
        Err(RejectReason::BadRequest(_)) => {}
        other => panic!("expected BadRequest for zero fuel, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn compile_errors_out_of_fuel_and_shutdown_are_reported() {
    let svc = Service::start(cfg());
    let bad = svc.submit(JobSpec::new("t", "val _ = this is not cakeml;")).expect("admitted");
    assert_eq!(bad.status, JobStatus::CompileError, "{bad:?}");
    assert!(!bad.message.is_empty(), "compile error carries the diagnostic");

    let mut starved = sort_spec("t", b"kiwi\nfig\n");
    starved.fuel = 1_000;
    let out = svc.submit(starved).expect("admitted");
    assert_eq!(out.status, JobStatus::OutOfFuel, "{out:?}");
    assert_eq!(out.instructions, 1_000, "ran exactly the budget");

    svc.shutdown();
    match svc.submit(hello_spec("t")) {
        Err(RejectReason::ShuttingDown) => {}
        other => panic!("expected ShuttingDown after shutdown, got {other:?}"),
    }
}

#[test]
fn bench_artifact_carries_the_service_schema() {
    let svc = Service::start(cfg());
    svc.submit(hello_spec("a")).expect("job 1");
    svc.submit(hello_spec("b")).expect("job 2 (cache hit)");
    svc.shutdown();

    let text = svc.stats_text();
    let head = text.lines().next().expect("summary line");
    for key in [
        "\"suite\":\"service\"",
        "\"qps\":",
        "\"p50_us\":",
        "\"p99_us\":",
        "\"cache_hit_rate\":0.5000",
        "\"divergences\":0",
        "\"shards\":2",
    ] {
        assert!(head.contains(key), "summary line missing {key}: {head}");
    }
    assert!(text.contains("\"metric\":\"counter\",\"name\":\"service.jobs.completed\",\"value\":2"));
    assert!(text.contains("\"name\":\"service.cache.hits\",\"value\":1"));
    assert!(text.contains("\"metric\":\"histogram\",\"name\":\"service.job_us\""));
    assert!(text.contains("\"name\":\"service.shard_busy_us.0\""));
}

#[test]
fn unix_socket_roundtrip_with_graceful_shutdown() {
    let dir = std::env::temp_dir().join(format!("silver-svc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let sock = dir.join("svc.sock");
    let bench = dir.join("BENCH_service.json");

    let svc = Arc::new(Service::start(cfg()));
    let server = {
        let svc = Arc::clone(&svc);
        let sock = sock.clone();
        let bench = bench.clone();
        std::thread::spawn(move || serve(&svc, &Endpoint::Unix(sock), Some(&bench)))
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !sock.exists() {
        assert!(std::time::Instant::now() < deadline, "server never bound its socket");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let endpoint = Endpoint::Unix(sock.clone());
    let mut alice = Client::connect(&endpoint).expect("connect");
    alice.ping().expect("ping");
    match alice.submit(&hello_spec("alice")).expect("submit") {
        service::wire::Response::Done(out) => {
            assert_eq!(out.status, JobStatus::Exited(0));
            assert_eq!(out.stdout, b"Hello from the verified stack!\n");
            assert!(!out.cached);
        }
        other => panic!("expected Done, got {other:?}"),
    }

    let mut bob = Client::connect(&endpoint).expect("second connection");
    match bob.submit(&hello_spec("bob")).expect("submit") {
        service::wire::Response::Done(out) => assert!(out.cached, "cross-connection cache hit"),
        other => panic!("expected Done, got {other:?}"),
    }
    let stats = bob.stats().expect("stats");
    assert!(stats.contains("\"suite\":\"service\""), "{stats}");

    bob.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("serve returns cleanly");
    let bench_text = std::fs::read_to_string(&bench).expect("bench artifact written");
    assert!(bench_text.contains("\"suite\":\"service\""));
    assert!(!sock.exists(), "socket file cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}
