//! Per-job tracing contracts: full lifecycle coverage, logical-clock
//! determinism across runs, automatic flight-recorder dumps on shadow
//! divergence and worker death, and the `Trace` wire op end to end.

use std::time::{Duration, Instant};

use obs::trace::SpanKind;
use service::{EnginePref, JobSpec, JobStatus, Service, ServiceConfig, ShadowPolicy};

const SORT: &str = r#"
val input = read_all ();
val lines = split_lines input;
val sorted = merge_sort string_lt lines;
val _ = print (join_lines sorted);
"#;

const HELLO: &str = r#"
val _ = print "Hello from the verified stack!\n";
"#;

fn big_stdin() -> Vec<u8> {
    let mut s = String::new();
    for i in 0..64 {
        s.push_str(&format!("line-{:03}\n", (i * 37) % 100));
    }
    s.into_bytes()
}

fn sort_spec(tenant: &str) -> JobSpec {
    let mut spec = JobSpec::new(tenant, SORT);
    spec.stdin = big_stdin();
    spec
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("silver-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn kinds(trace: &obs::trace::JobTrace) -> Vec<SpanKind> {
    trace.spans.iter().map(|s| s.kind).collect()
}

#[test]
fn trace_covers_the_full_job_lifecycle() {
    let svc = Service::start(ServiceConfig {
        shards: 1,
        checkpoint_every: 10_000,
        shadow: ShadowPolicy { every_jobs: 1, sample: 64 },
        ..ServiceConfig::default()
    });
    let out = svc.submit(sort_spec("t")).expect("admitted");
    assert_eq!(out.status, JobStatus::Exited(0), "{out:?}");
    assert!(out.job_id > 0, "every outcome carries its job id");

    let trace = svc.trace(out.job_id).expect("trace stored for the job id");
    assert_eq!(trace.job_id, out.job_id);
    let ks = kinds(&trace);
    for want in [
        SpanKind::Job,
        SpanKind::Admit,
        SpanKind::CacheLookup,
        SpanKind::TenantReserve,
        SpanKind::QueueWait,
        SpanKind::Compile,
        SpanKind::ImageBuild,
        SpanKind::ShadowCheck,
        SpanKind::Exec,
        SpanKind::Slice,
        SpanKind::Checkpoint,
        SpanKind::Reply,
    ] {
        assert!(ks.contains(&want), "lifecycle span {want:?} missing: {ks:?}");
    }

    // Logical clocks: begin order is strictly increasing, the root Job
    // span encloses everything, and the Exec span's end arg is the
    // retire count the outcome reported.
    for w in trace.spans.windows(2) {
        assert!(w[0].begin_lc < w[1].begin_lc, "span begins must be strictly ordered");
    }
    let root = &trace.spans[0];
    assert_eq!(root.kind, SpanKind::Job);
    assert!(trace.spans.iter().all(|s| s.end_lc <= root.end_lc), "root encloses all");
    let exec = trace.spans.iter().find(|s| s.kind == SpanKind::Exec).expect("exec span");
    assert_eq!(exec.arg, out.instructions, "exec span arg is the retire count");
    // Slices carry monotonically increasing retire counts.
    let slice_args: Vec<u64> =
        trace.spans.iter().filter(|s| s.kind == SpanKind::Slice).map(|s| s.arg).collect();
    assert!(slice_args.windows(2).all(|w| w[0] <= w[1]), "slice retires: {slice_args:?}");
    svc.shutdown();
}

#[test]
fn cache_hits_get_fresh_ids_and_tiny_traces() {
    let svc = Service::start(ServiceConfig { shards: 1, ..ServiceConfig::default() });
    let miss = svc.submit(JobSpec::new("a", HELLO)).expect("admitted");
    let hit = svc.submit(JobSpec::new("b", HELLO)).expect("admitted");
    assert!(hit.cached);
    assert_ne!(miss.job_id, hit.job_id, "a cache hit is its own submission");

    let t = svc.trace(hit.job_id).expect("hit trace stored");
    let ks = kinds(&t);
    assert!(ks.contains(&SpanKind::CacheLookup));
    assert!(ks.contains(&SpanKind::Reply));
    assert!(!ks.contains(&SpanKind::Exec), "a cache hit executes nothing: {ks:?}");
    let lookup = t.spans.iter().find(|s| s.kind == SpanKind::CacheLookup).expect("lookup");
    assert_eq!(lookup.arg, 1, "lookup arg records the hit");

    let t = svc.trace(miss.job_id).expect("miss trace stored");
    let lookup = t.spans.iter().find(|s| s.kind == SpanKind::CacheLookup).expect("lookup");
    assert_eq!(lookup.arg, 0, "lookup arg records the miss");
    svc.shutdown();
}

#[test]
fn canonical_traces_are_byte_identical_across_runs() {
    // The determinism contract: same seed ⇒ same job ids ⇒ the same
    // logical-clock span trees, byte for byte, across two fresh
    // services — regardless of shard placement or wall-clock jitter
    // (both are stripped from the canonical form).
    let run = || -> Vec<String> {
        let svc = Service::start(ServiceConfig {
            shards: 2,
            checkpoint_every: 10_000,
            shadow: ShadowPolicy { every_jobs: 2, sample: 64 },
            ..ServiceConfig::default()
        });
        let mut specs = vec![
            JobSpec::new("a", HELLO),
            sort_spec("b"),
            JobSpec::new("c", HELLO), // cache hit on job 1
            sort_spec("a"),           // cache hit on job 2
        ];
        specs[1].engine = EnginePref::Jet;
        specs[3].engine = EnginePref::Jet;
        let mut texts = Vec::new();
        for spec in specs {
            let out = svc.submit(spec).expect("admitted");
            let trace = svc.trace(out.job_id).expect("trace stored");
            texts.push(trace.canonical_text());
        }
        svc.shutdown();
        texts
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "canonical span trees must be run-invariant");
    // And they are genuinely per-job: ids differ, so do the headers.
    assert!(first[0].starts_with("job 1\n"), "{}", first[0]);
    assert!(first[1].starts_with("job 2\n"), "{}", first[1]);
}

#[test]
fn shadow_divergence_dumps_the_flight_recorder() {
    let dir = scratch_dir("divergence");
    let svc = Service::start(ServiceConfig {
        shards: 1,
        shadow: ShadowPolicy { every_jobs: 1, sample: 1 },
        trace_dir: Some(dir.clone()),
        fault_xor: 1, // flips one ALU bit inside the shadow check
        ..ServiceConfig::default()
    });
    let out = svc.submit(JobSpec::new("t", HELLO)).expect("admitted");
    assert_eq!(out.status, JobStatus::Divergence, "{out:?}");
    assert!(!out.cached, "a diverged result must never be cached");
    assert_eq!(svc.divergences(), 1);

    let dump = dir.join(format!("TRACE_divergence_job{}.json", out.job_id));
    let doc = std::fs::read_to_string(&dump).expect("divergence auto-dump exists");
    assert!(doc.starts_with("{\"traceEvents\":["), "chrome trace shape: {doc:.>40}");
    assert!(doc.trim_end().ends_with('}'));
    // The dump names the job's lifecycle so far, flight events included.
    for name in ["admit", "compile", "image_build", "shadow_check"] {
        assert!(doc.contains(&format!("\"name\":\"{name}\"")), "dump missing {name}");
    }
    assert!(doc.contains("\"cat\":\"flight\""), "flight-recorder events present");
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_death_emits_migration_spans_and_a_dump() {
    let dir = scratch_dir("death");
    let svc = Service::start(ServiceConfig {
        shards: 1,
        checkpoint_every: 10_000,
        cache_capacity: 0,
        trace_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    svc.inject_kill_after_checkpoints(3);
    let rx = svc.submit_async(sort_spec("t")).expect("admitted");

    let deadline = Instant::now() + Duration::from_secs(120);
    while svc.checkpoints() < 3 {
        assert!(Instant::now() < deadline, "job too short to interrupt");
        std::thread::sleep(Duration::from_millis(2));
    }
    svc.respawn_worker().expect("pool alive");
    let out = rx.recv_timeout(Duration::from_secs(120)).expect("migrated job completed");
    assert!(out.migrations >= 1, "{out:?}");
    assert_eq!(out.status, JobStatus::Exited(0), "{out:?}");

    // The trace shows the interrupted first attempt and the resume.
    let trace = svc.trace(out.job_id).expect("trace stored");
    let ks = kinds(&trace);
    assert!(ks.contains(&SpanKind::Migrate), "{ks:?}");
    assert!(ks.contains(&SpanKind::Requeue), "{ks:?}");
    let queue_waits = ks.iter().filter(|k| **k == SpanKind::QueueWait).count();
    let execs = ks.iter().filter(|k| **k == SpanKind::Exec).count();
    assert!(queue_waits >= 2, "requeued job waits twice: {ks:?}");
    assert!(execs >= 2, "interrupted + resumed exec segments: {ks:?}");
    // The Migrate instant carries the checkpoint's retire count, and
    // the resumed Exec span begins from at least that point.
    let migrate = trace.spans.iter().find(|s| s.kind == SpanKind::Migrate).expect("migrate");
    assert!(migrate.arg > 0, "migration happened at a real checkpoint");
    let last_exec =
        trace.spans.iter().filter(|s| s.kind == SpanKind::Exec).last().expect("resumed exec");
    assert!(last_exec.begin_lc > migrate.begin_lc, "resume follows migration");

    let dump = dir.join("TRACE_worker_death_shard0.json");
    let doc = std::fs::read_to_string(&dump).expect("worker-death auto-dump exists");
    assert!(doc.contains("\"name\":\"migrate\""), "dump names the migration");
    assert!(doc.contains("\"name\":\"requeue\""), "dump names the requeue");
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_dump_and_trace_store_bounds() {
    let dir = scratch_dir("shutdown");
    let svc = Service::start(ServiceConfig {
        shards: 1,
        trace_capacity: 2,
        trace_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let mut ids = Vec::new();
    for t in ["a", "b", "c"] {
        // Distinct sources: three real executions, three traces.
        let spec = JobSpec::new(t, &format!("val _ = print \"{t}\";"));
        ids.push(svc.submit(spec).expect("admitted").job_id);
    }
    // Capacity 2: the oldest trace is evicted, the newest two serve.
    assert!(svc.trace(ids[0]).is_none(), "oldest trace evicted");
    assert!(svc.trace(ids[1]).is_some());
    assert!(svc.trace(ids[2]).is_some());
    assert!(svc.trace(999_999).is_none(), "unknown ids are None, not errors");

    svc.shutdown();
    let doc = std::fs::read_to_string(dir.join("TRACE_shutdown.json"))
        .expect("shutdown dump exists");
    assert!(doc.starts_with("{\"traceEvents\":["));
    let _ = std::fs::remove_dir_all(&dir);
}
