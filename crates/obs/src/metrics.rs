//! A lock-free-enough metrics registry.
//!
//! Hot-path operations ([`Counter::add`], [`Gauge::set`],
//! [`Histogram::record`]) are single relaxed atomic RMWs on
//! pre-registered `Arc` handles — no locks, no allocation, safe to call
//! from every campaign shard concurrently. The registry's mutex guards
//! *registration only* (name → handle lookup), which happens once per
//! metric on the cold path.
//!
//! Export is deterministic: [`Registry::json_lines`] emits one JSON
//! object per line, sorted by metric kind then name, in the same
//! append-friendly JSONL convention as `testkit::bench`'s
//! `BENCH_<suite>.json` files. Values themselves (latencies, rates) are
//! machine-dependent, which is why campaign metrics land in a *separate*
//! `BENCH_metrics.json` — `BENCH_campaign.json` stays a pure function of
//! the seed and the case budget.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values `v` with `2^(i-1) ≤ v < 2^i`; bucket 64 holds the top.
const BUCKETS: usize = 65;

/// A power-of-two-bucket histogram of `u64` samples (latencies in
/// nanoseconds, sizes, …).
///
/// Recording is one relaxed `fetch_add` plus two `fetch_min`/`max`;
/// quantiles are estimated from bucket upper bounds at export time
/// (within 2× of the true value, plenty for trending).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (v.ilog2() + 1) as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimated quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th sample. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_hi(i).min(self.max());
            }
        }
        self.max()
    }

    /// Nonzero buckets as `(inclusive upper bound, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_hi(i), c))
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create a handle; clones of the
/// `Arc` can be stashed per shard so the hot path never takes the
/// registration lock.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it at zero if new.
    ///
    /// # Panics
    ///
    /// Panics if the registration lock is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, creating it at zero if new.
    ///
    /// # Panics
    ///
    /// Panics if the registration lock is poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, creating it empty if new.
    ///
    /// # Panics
    ///
    /// Panics if the registration lock is poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name.to_string()).or_default().clone()
    }

    /// One JSON object per line: counters, then gauges, then histograms,
    /// each sorted by name. The `"metric"` discriminator keeps the lines
    /// distinguishable from `testkit::bench` lines when files are merged
    /// or concatenated.
    ///
    /// # Panics
    ///
    /// Panics if the registration lock is poisoned.
    #[must_use]
    pub fn json_lines(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            out.push_str(&format!(
                "{{\"metric\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                c.get()
            ));
        }
        for (name, g) in &inner.gauges {
            out.push_str(&format!(
                "{{\"metric\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                fmt_f64(g.get())
            ));
        }
        for (name, h) in &inner.histograms {
            let buckets: Vec<String> =
                h.nonzero_buckets().iter().map(|(hi, c)| format!("[{hi},{c}]")).collect();
            out.push_str(&format!(
                "{{\"metric\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}\n",
                escape(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                buckets.join(",")
            ));
        }
        out
    }

    /// Appends [`json_lines`](Registry::json_lines) to `path`
    /// (`BENCH_metrics.json` by convention). `-` skips the write.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening or writing the file.
    pub fn append_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if path.as_os_str() == "-" {
            return Ok(());
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(self.json_lines().as_bytes())
    }
}

/// Nearest-rank quantile of an already **sorted** sample slice:
/// `q ∈ [0, 1]` maps to index `⌊q · (len − 1)⌋`; empty slices yield 0.
///
/// This is the one shared definition of client-side quantile math —
/// `silver-client` loadgen and `top` both use it, so their p50/p99
/// numbers are comparable by construction.
#[must_use]
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest lossless-enough form that is still valid JSON.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("cases");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("cases").get(), 5, "same handle by name");
        let g = reg.gauge("util");
        g.set(0.75);
        assert!((reg.gauge("util").get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1105);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // p50: rank 3 → the two 1s end at rank 3 → bucket [1,1].
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 1000, "top quantile clamps to max");
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets[0], (0, 1), "zero bucket");
        assert_eq!(buckets[1], (1, 2));
        assert_eq!(buckets[2], (3, 1));
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn json_lines_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.cases").add(2);
        reg.counter("a.cases").add(1);
        reg.gauge("z.util").set(0.5);
        reg.histogram("lat").record(7);
        let out = reg.json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"a.cases\""), "{out}");
        assert!(lines[1].contains("\"b.cases\""));
        assert!(lines[2].contains("\"metric\":\"gauge\""));
        assert!(lines[3].contains("\"metric\":\"histogram\""));
        assert!(lines[3].contains("\"count\":1"));
        assert!(lines[3].contains("\"buckets\":[[7,1]]"));
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), 0);
        assert_eq!(quantile_sorted(&[7], 0.0), 7);
        assert_eq!(quantile_sorted(&[7], 1.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&v, 0.50), 50, "p50 of 1..=100");
        assert_eq!(quantile_sorted(&v, 0.99), 99);
        assert_eq!(quantile_sorted(&v, 1.0), 100);
        assert_eq!(quantile_sorted(&v, -1.0), 1, "q clamps");
    }

    #[test]
    fn concurrent_recording_is_exact_for_counts() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        let c = reg.counter("n");
        let results = testkit::par::par_map(vec![0u64; 8], |_| {
            for i in 0..1000u64 {
                h.record(i);
                c.inc();
            }
            0u64
        });
        assert_eq!(results.len(), 8);
        assert_eq!(h.count(), 8000);
        assert_eq!(c.get(), 8000);
    }
}
