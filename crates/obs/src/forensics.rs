//! Divergence forensics: the report emitted when two semantic levels
//! disagree.
//!
//! A bare `LockstepError::Mismatch { field, isa, rtl }` says *that* the
//! ISA and the RTL diverged; a [`Forensics`] report says *where*
//! (retire index and clock cycle), *what* (every differing register /
//! field with both values), and *how we got there* (the last-N retired
//! instructions on both sides, rendered from
//! [`ag32::RetireEvent`](ag32::trace::RetireEvent) ring buffers, plus a
//! VCD waveform window around the divergent cycle for GTKWave).
//!
//! Reports are plain text by design: they are embedded in campaign
//! failure messages, survive triage shrinking, and end up in terminal
//! scrollback — see the worked read-through in `EXPERIMENTS.md`.

use std::fmt;

/// One architectural field that differs at the divergent step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegDelta {
    /// Field name (`"r5"`, `"pc"`, `"carry"`, `"mem[0x1000]"`, …).
    pub field: String,
    /// Value on the specification side (ISA for t9, RTL for t10).
    pub spec: String,
    /// Value on the implementation side (RTL for t9, Verilog for t10).
    pub impl_: String,
}

/// A cross-level divergence report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Forensics {
    /// Which relation diverged (`"t9 ISA↔RTL lockstep"`, `"t10
    /// RTL↔Verilog equivalence"`, …).
    pub kind: String,
    /// Names of the two sides, e.g. `("isa", "rtl")`.
    pub sides: (String, String),
    /// Retire index at which the divergence was detected (spec side).
    pub divergent_step: Option<u64>,
    /// Clock cycle at which the divergence was detected (impl side).
    pub divergent_cycle: Option<u64>,
    /// Every differing architectural field, with both values.
    pub deltas: Vec<RegDelta>,
    /// Last-N retired instructions on the spec side, oldest first,
    /// rendered one per line.
    pub spec_tail: Vec<String>,
    /// Last-N retires observed on the impl side, oldest first.
    pub impl_tail: Vec<String>,
    /// VCD text covering a window of cycles around the divergence
    /// (empty when waveform capture was off).
    pub vcd_window: String,
    /// Retire count of the last good checkpoint before the divergence,
    /// when the run was checkpoint-anchored — triage replays from this
    /// retire instead of from boot.
    pub replay_anchor: Option<u64>,
    /// Free-form notes (timeout diagnostics, wedge states, …).
    pub notes: Vec<String>,
}

impl Forensics {
    /// A report for `kind` between `spec` and `impl_` sides.
    #[must_use]
    pub fn new(kind: &str, spec: &str, impl_: &str) -> Self {
        Forensics {
            kind: kind.to_string(),
            sides: (spec.to_string(), impl_.to_string()),
            ..Forensics::default()
        }
    }

    /// The full plain-text report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== divergence forensics: {} ===\n", self.kind));
        match (self.divergent_step, self.divergent_cycle) {
            (Some(s), Some(c)) => {
                out.push_str(&format!("divergent step: {s} (retire index), cycle: {c}\n"));
            }
            (Some(s), None) => out.push_str(&format!("divergent step: {s} (retire index)\n")),
            (None, Some(c)) => out.push_str(&format!("divergent cycle: {c}\n")),
            (None, None) => {}
        }
        if let Some(anchor) = self.replay_anchor {
            out.push_str(&format!(
                "replay anchor: retire {anchor} (replay from this checkpoint, not from boot)\n"
            ));
        }
        if !self.deltas.is_empty() {
            out.push_str(&format!(
                "differing fields ({}={} vs {}={}):\n",
                "spec", self.sides.0, "impl", self.sides.1
            ));
            for d in &self.deltas {
                out.push_str(&format!(
                    "  {:<14} {}={:<12} {}={}\n",
                    d.field, self.sides.0, d.spec, self.sides.1, d.impl_
                ));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        if !self.spec_tail.is_empty() {
            out.push_str(&format!(
                "--- last {} retired on {} (oldest first) ---\n",
                self.spec_tail.len(),
                self.sides.0
            ));
            for line in &self.spec_tail {
                out.push_str(&format!("  {line}\n"));
            }
        }
        if !self.impl_tail.is_empty() {
            out.push_str(&format!(
                "--- last {} retired on {} (oldest first) ---\n",
                self.impl_tail.len(),
                self.sides.1
            ));
            for line in &self.impl_tail {
                out.push_str(&format!("  {line}\n"));
            }
        }
        if !self.vcd_window.is_empty() {
            out.push_str("--- vcd window around divergence (save as .vcd for GTKWave) ---\n");
            out.push_str(&self.vcd_window);
            if !self.vcd_window.ends_with('\n') {
                out.push('\n');
            }
        }
        out.push_str("=== end forensics ===");
        out
    }
}

impl fmt::Display for Forensics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_names_cycle_fields_and_tails() {
        let mut fx = Forensics::new("t9 ISA↔RTL lockstep", "isa", "rtl");
        fx.divergent_step = Some(17);
        fx.divergent_cycle = Some(103);
        fx.deltas.push(RegDelta {
            field: "r5".to_string(),
            spec: "0x00000007".to_string(),
            impl_: "0x00000006".to_string(),
        });
        fx.spec_tail.push("#16 0x00000040 Add r5 <- r5, 1".to_string());
        fx.impl_tail.push("#16 0x00000040 retired, pc -> 0x00000044".to_string());
        fx.vcd_window = "$version silver-stack obs $end".to_string();
        fx.replay_anchor = Some(16);
        let text = fx.render();
        assert!(text.contains("divergent step: 17"), "{text}");
        assert!(text.contains("replay anchor: retire 16"), "{text}");
        assert!(text.contains("cycle: 103"));
        assert!(text.contains("r5"));
        assert!(text.contains("isa=0x00000007"));
        assert!(text.contains("rtl=0x00000006"));
        assert!(text.contains("last 1 retired on isa"));
        assert!(text.contains("last 1 retired on rtl"));
        assert!(text.contains("vcd window"));
        assert!(text.ends_with("=== end forensics ==="));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let fx = Forensics::new("t10 RTL↔Verilog equivalence", "rtl", "verilog");
        let text = fx.render();
        assert!(!text.contains("differing fields"));
        assert!(!text.contains("vcd window"));
        assert!(text.contains("t10 RTL↔Verilog equivalence"));
    }
}
