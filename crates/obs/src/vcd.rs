//! A standard Value Change Dump (IEEE 1364 §18) writer.
//!
//! Produces textual `.vcd` files readable by GTKWave and every other
//! waveform viewer. The output is deterministic — no `$date` section,
//! a fixed `$version` string — so a fixed RTL run dumps byte-identical
//! waveforms (pinned by `crates/silver/tests/vcd_golden.rs`).
//!
//! Usage: declare signals with [`VcdWriter::add_signal`], write the
//! header with [`VcdWriter::begin`], then call [`VcdWriter::sample`]
//! once per cycle with the current value of every signal (in
//! declaration order). Only *changed* values are emitted per timestep,
//! as the format intends.

use std::io::{self, Write};

/// Handle returned by [`VcdWriter::add_signal`]; indexes the values
/// slice passed to [`VcdWriter::sample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignalId(pub usize);

#[derive(Debug)]
struct Signal {
    name: String,
    width: u32,
    code: String,
}

/// Identifier codes: printable ASCII 33..=126, shortest-first base-94.
fn id_code(mut n: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    code
}

/// Streaming VCD writer over any [`Write`] sink.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    w: W,
    signals: Vec<Signal>,
    last: Vec<Option<u64>>,
    header_written: bool,
}

impl<W: Write> VcdWriter<W> {
    /// A writer with no signals declared yet.
    pub fn new(w: W) -> Self {
        VcdWriter { w, signals: Vec::new(), last: Vec::new(), header_written: false }
    }

    /// Declares a signal of `width` bits. Must be called before
    /// [`begin`](VcdWriter::begin); ids index the `values` slice given
    /// to [`sample`](VcdWriter::sample) in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if called after the header was written or with zero width.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!(!self.header_written, "declare signals before begin()");
        assert!(width >= 1, "zero-width signal {name:?}");
        let id = SignalId(self.signals.len());
        self.signals.push(Signal {
            name: name.replace(char::is_whitespace, "_"),
            width,
            code: id_code(id.0),
        });
        self.last.push(None);
        id
    }

    /// Number of declared signals.
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Writes the VCD header, scoping every signal under `scope`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn begin(&mut self, scope: &str) -> io::Result<()> {
        assert!(!self.header_written, "begin() called twice");
        writeln!(self.w, "$version silver-stack obs $end")?;
        writeln!(self.w, "$timescale 1ns $end")?;
        writeln!(self.w, "$scope module {} $end", scope.replace(char::is_whitespace, "_"))?;
        for s in &self.signals {
            writeln!(self.w, "$var wire {} {} {} $end", s.width, s.code, s.name)?;
        }
        writeln!(self.w, "$upscope $end")?;
        writeln!(self.w, "$enddefinitions $end")?;
        self.header_written = true;
        Ok(())
    }

    fn write_value(w: &mut W, sig: &Signal, value: u64) -> io::Result<()> {
        if sig.width == 1 {
            writeln!(w, "{}{}", value & 1, sig.code)
        } else {
            let masked = if sig.width >= 64 { value } else { value & ((1u64 << sig.width) - 1) };
            writeln!(w, "b{masked:b} {}", sig.code)
        }
    }

    /// Records the value of every signal at `time` (in declaration
    /// order). The first sample emits a `$dumpvars` block with all
    /// values; later samples emit only changes, and timesteps with no
    /// changes are omitted entirely.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    ///
    /// # Panics
    ///
    /// Panics if `begin` has not been called or `values` has the wrong
    /// length.
    pub fn sample(&mut self, time: u64, values: &[u64]) -> io::Result<()> {
        assert!(self.header_written, "call begin() before sample()");
        assert_eq!(values.len(), self.signals.len(), "one value per declared signal");
        let first = self.last.iter().all(Option::is_none);
        if first {
            writeln!(self.w, "#{time}")?;
            writeln!(self.w, "$dumpvars")?;
            for (sig, &v) in self.signals.iter().zip(values) {
                Self::write_value(&mut self.w, sig, v)?;
            }
            writeln!(self.w, "$end")?;
        } else {
            let changed: Vec<usize> = (0..values.len())
                .filter(|&i| self.last[i] != Some(values[i]))
                .collect();
            if !changed.is_empty() {
                writeln!(self.w, "#{time}")?;
                for i in changed {
                    Self::write_value(&mut self.w, &self.signals[i], values[i])?;
                }
            }
        }
        for (slot, &v) in self.last.iter_mut().zip(values) {
            *slot = Some(v);
        }
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_distinct_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = id_code(n);
            assert!(code.bytes().all(|b| (33..=126).contains(&b)), "{code:?}");
            assert!(seen.insert(code), "duplicate at {n}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn header_and_change_only_samples() {
        let mut vcd = VcdWriter::new(Vec::new());
        let _clk = vcd.add_signal("clk", 1);
        let _pc = vcd.add_signal("pc", 32);
        vcd.begin("cpu").unwrap();
        vcd.sample(0, &[0, 0]).unwrap();
        vcd.sample(1, &[1, 0]).unwrap(); // only clk changes
        vcd.sample(2, &[1, 0]).unwrap(); // nothing changes: no output
        vcd.sample(3, &[0, 4]).unwrap();
        let text = String::from_utf8(vcd.finish().unwrap()).unwrap();
        assert!(text.contains("$var wire 1 ! clk $end"), "{text}");
        assert!(text.contains("$var wire 32 \" pc $end"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("#0\n$dumpvars\n0!\nb0 \"\n$end\n"));
        assert!(text.contains("#1\n1!\n"), "{text}");
        assert!(!text.contains("#2"), "unchanged timestep omitted: {text}");
        assert!(text.contains("#3\n0!\nb100 \"\n"), "{text}");
    }

    #[test]
    fn output_has_no_date_section() {
        let mut vcd = VcdWriter::new(Vec::new());
        vcd.add_signal("x", 8);
        vcd.begin("top").unwrap();
        vcd.sample(0, &[255]).unwrap();
        let text = String::from_utf8(vcd.finish().unwrap()).unwrap();
        assert!(!text.contains("$date"), "determinism: no date section");
        assert!(text.contains("b11111111 !"));
    }
}
