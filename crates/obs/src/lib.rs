//! # obs — cross-layer observability for the Silver stack
//!
//! The differential checks in this workspace relate four semantic levels
//! (CakeML interpreter ↔ ag32 ISA ↔ Silver RTL ↔ Verilog); when two
//! levels diverge, *that* they diverged is one bit — *where and why* is
//! what this crate extracts. Zero external dependencies, and everything
//! here is strictly opt-in: nothing in the execution hot paths touches
//! this crate unless a `--trace`/`--vcd`/`--profile` flag (or a
//! campaign) asked for it.
//!
//! Four pieces:
//!
//! * [`metrics`] — a lock-free-enough registry of counters, gauges and
//!   power-of-two-bucket histograms ([`Registry`]). Atomics on the hot
//!   path, a mutex only at registration; deterministic JSONL export in
//!   the `BENCH_*.json` convention.
//! * [`vcd`] — a standard Value Change Dump writer ([`VcdWriter`]),
//!   viewable in GTKWave, fed by the RTL interpreter's and Verilog
//!   evaluator's cycle hooks.
//! * [`forensics`] — the divergence report ([`Forensics`]): the
//!   divergent step/cycle, the differing field, register deltas, the
//!   last-N retired instructions on both sides and a VCD window around
//!   the divergence.
//! * [`profile`] — a flat cycle/retire profiler ([`CycleProfiler`])
//!   attributing PCs to symbols and emitting flamegraph-compatible
//!   folded stacks.
//! * [`trace`] — per-job distributed tracing ([`TraceBuilder`] /
//!   [`JobTrace`]) with deterministic logical clocks, a bounded
//!   per-shard lock-free flight recorder ([`FlightRecorder`]), and
//!   Chrome trace-event JSON export (Perfetto-loadable).

pub mod forensics;
pub mod metrics;
pub mod profile;
pub mod trace;
pub mod vcd;

pub use forensics::{Forensics, RegDelta};
pub use metrics::{quantile_sorted, Counter, Gauge, Histogram, Registry};
pub use profile::CycleProfiler;
pub use trace::{chrome_trace_json, FlightRecorder, JobTrace, SpanKind, TraceBuilder};
pub use vcd::{SignalId, VcdWriter};
