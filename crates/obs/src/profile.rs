//! A flat guest-program profiler: attributes PCs to symbols.
//!
//! Two feeding modes, one per backend family:
//!
//! * **ISA**: as an [`ag32::trace::Tracer`], every retired instruction's
//!   PC is attributed to the enclosing symbol — retire counts.
//! * **RTL/Verilog**: via [`CycleProfiler::record_pc`] called once per
//!   clock cycle with the `pc` signal — true *cycle* attribution, which
//!   naturally charges memory-latency stalls to the function that
//!   executed the access.
//!
//! Output is the flamegraph "folded" format — `name count` lines — so
//! `flamegraph.pl` (or any folded-stack viewer) renders it directly.
//! Symbols come from the compiler's
//! [`SymbolTable`](https://example.org) (see `cakeml::layout`): the
//! profiler itself only needs `(start address, name)` pairs.

use std::collections::HashMap;

use ag32::trace::{RetireEvent, Tracer};

/// A flat PC → symbol profiler.
#[derive(Clone, Debug)]
pub struct CycleProfiler {
    /// `(start address, name)` sorted by address.
    symbols: Vec<(u32, String)>,
    /// Counts indexed like `symbols`; the last slot is `<unknown>` (PCs
    /// below the first symbol or with no symbol table at all).
    counts: Vec<u64>,
    total: u64,
}

impl CycleProfiler {
    /// A profiler over `(start address, name)` pairs (any order;
    /// duplicates keep the first name seen for an address).
    #[must_use]
    pub fn new(mut symbols: Vec<(u32, String)>) -> Self {
        symbols.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        symbols.dedup_by_key(|s| s.0);
        let n = symbols.len();
        CycleProfiler { symbols, counts: vec![0; n + 1], total: 0 }
    }

    /// Index into `counts` for a PC: the last symbol starting at or
    /// before it, else the `<unknown>` slot.
    fn slot(&self, pc: u32) -> usize {
        match self.symbols.binary_search_by(|s| s.0.cmp(&pc)) {
            Ok(i) => i,
            Err(0) => self.symbols.len(), // below every symbol
            Err(i) => i - 1,
        }
    }

    /// Attributes one cycle (or retire) at `pc`.
    #[inline]
    pub fn record_pc(&mut self, pc: u32) {
        let slot = self.slot(pc);
        self.counts[slot] += 1;
        self.total += 1;
    }

    /// Total samples attributed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Nonzero `(name, count)` rows, highest count first (ties broken
    /// by name, so output is deterministic).
    #[must_use]
    pub fn rows(&self) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> = self
            .symbols
            .iter()
            .zip(self.counts.iter())
            .filter(|&(_, &c)| c > 0)
            .map(|((_, name), &c)| (name.as_str(), c))
            .collect();
        let unknown = self.counts[self.symbols.len()];
        if unknown > 0 {
            rows.push(("<unknown>", unknown));
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        rows
    }

    /// Flamegraph-compatible folded stacks: one `name count` line per
    /// symbol with samples, highest count first. Flat profile — each
    /// stack is a single frame.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (name, count) in self.rows() {
            out.push_str(&format!("{name} {count}\n"));
        }
        out
    }

    /// `rows()` as an owned map, for programmatic assertions.
    #[must_use]
    pub fn counts_by_name(&self) -> HashMap<String, u64> {
        self.rows().into_iter().map(|(n, c)| (n.to_string(), c)).collect()
    }
}

impl Tracer for CycleProfiler {
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        self.record_pc(ev.pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler() -> CycleProfiler {
        CycleProfiler::new(vec![
            (0x100, "main".to_string()),
            (0x200, "helper".to_string()),
            (0x300, "rt_exit".to_string()),
        ])
    }

    #[test]
    fn pc_attribution_uses_enclosing_symbol() {
        let mut p = profiler();
        p.record_pc(0x100); // main start
        p.record_pc(0x1FC); // still main
        p.record_pc(0x200); // helper start
        p.record_pc(0x2FF); // helper body
        p.record_pc(0x400); // past last symbol: rt_exit
        p.record_pc(0x50); // below first symbol: unknown
        assert_eq!(p.total(), 6);
        let counts = p.counts_by_name();
        assert_eq!(counts["main"], 2);
        assert_eq!(counts["helper"], 2);
        assert_eq!(counts["rt_exit"], 1);
        assert_eq!(counts["<unknown>"], 1);
    }

    #[test]
    fn folded_output_is_sorted_and_parseable() {
        let mut p = profiler();
        for _ in 0..5 {
            p.record_pc(0x210);
        }
        p.record_pc(0x110);
        let folded = p.folded();
        assert_eq!(folded, "helper 5\nmain 1\n");
    }

    #[test]
    fn empty_symbol_table_attributes_everything_to_unknown() {
        let mut p = CycleProfiler::new(Vec::new());
        p.record_pc(0x1234);
        assert_eq!(p.folded(), "<unknown> 1\n");
    }
}
