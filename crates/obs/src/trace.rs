//! Per-job distributed tracing with deterministic logical clocks, and
//! a bounded lock-free flight recorder.
//!
//! Every timestamp in this module is a **logical clock**: a per-job
//! event sequence number assigned in causal order, annotated with
//! domain measures (queue sequence numbers, retire counts) — never wall
//! time. Wall-clock readings may ride along as *optional annotations*
//! supplied by the caller (this module deliberately never reads the
//! clock itself), so two runs of the same seeded workload produce
//! byte-identical span trees once those annotations are stripped.
//!
//! Three pieces:
//!
//! * [`TraceBuilder`] / [`JobTrace`] — a span tree for one job's
//!   lifecycle (admit → cache → queue → exec slices → … → reply),
//!   built incrementally as the job moves through the service.
//! * [`FlightRecorder`] — a bounded per-shard ring of fixed-size
//!   events written with a seqlock (single writer per shard, wait-free
//!   recording, torn reads detected and skipped). When something goes
//!   wrong — a shadow divergence, a worker death — the last N events
//!   per shard reconstruct what the machine was doing, like a flight
//!   data recorder.
//! * [`chrome_trace_json`] — export as Chrome trace-event JSON, loadable
//!   in Perfetto / `chrome://tracing` (`ts` carries the logical clock;
//!   wall annotations appear only under `args`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The span taxonomy: every phase of a job's life in the service, plus
/// the engine-level slice events. The discriminants are the wire
/// encoding — append only, never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// The whole job, admit to reply (the root span).
    Job = 0,
    /// Validation + job-id assignment at the front door.
    Admit = 1,
    /// Result-cache lookup (`arg` = 1 hit, 0 miss).
    CacheLookup = 2,
    /// Tenant fuel reservation (`arg` = fuel reserved).
    TenantReserve = 3,
    /// Enqueue → dequeue on the shared work queue (`arg` = queue depth
    /// observed at enqueue).
    QueueWait = 4,
    /// Source → machine code (`arg` = 1 on failure).
    Compile = 5,
    /// Boot-image construction.
    ImageBuild = 6,
    /// Full lockstep shadow check (`arg` = 1 when it found a
    /// divergence).
    ShadowCheck = 7,
    /// The whole engine execution (`arg` = instructions retired).
    Exec = 8,
    /// One checkpoint-sized execution slice (`arg` = retire count at
    /// slice end).
    Slice = 9,
    /// A rolling checkpoint capture (`arg` = retire count).
    Checkpoint = 10,
    /// The job was interrupted and migrated off a stopping worker
    /// (`arg` = retire count of the resume checkpoint).
    Migrate = 11,
    /// Requeue at the queue front for another worker to resume.
    Requeue = 12,
    /// The outcome was settled, cached and sent back.
    Reply = 13,
}

impl SpanKind {
    /// Stable lowercase name (Chrome trace `name`, text renders, CI
    /// greps).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Admit => "admit",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::TenantReserve => "tenant_reserve",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Compile => "compile",
            SpanKind::ImageBuild => "image_build",
            SpanKind::ShadowCheck => "shadow_check",
            SpanKind::Exec => "exec",
            SpanKind::Slice => "slice",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Migrate => "migrate",
            SpanKind::Requeue => "requeue",
            SpanKind::Reply => "reply",
        }
    }

    /// Decodes a wire byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<SpanKind> {
        Some(match b {
            0 => SpanKind::Job,
            1 => SpanKind::Admit,
            2 => SpanKind::CacheLookup,
            3 => SpanKind::TenantReserve,
            4 => SpanKind::QueueWait,
            5 => SpanKind::Compile,
            6 => SpanKind::ImageBuild,
            7 => SpanKind::ShadowCheck,
            8 => SpanKind::Exec,
            9 => SpanKind::Slice,
            10 => SpanKind::Checkpoint,
            11 => SpanKind::Migrate,
            12 => SpanKind::Requeue,
            13 => SpanKind::Reply,
            _ => return None,
        })
    }
}

/// The shard id recorded for events emitted by the service front end
/// (before a worker owns the job).
pub const FRONTEND_SHARD: u32 = u32::MAX;

/// One node of a job's span tree. `begin_lc`/`end_lc` are the job-local
/// logical clock (event sequence numbers); an instant event has
/// `begin_lc == end_lc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What phase this is.
    pub kind: SpanKind,
    /// Index of the enclosing span in [`JobTrace::spans`], if any.
    pub parent: Option<u16>,
    /// Logical clock at begin.
    pub begin_lc: u64,
    /// Logical clock at end (`== begin_lc` until ended / for instants).
    pub end_lc: u64,
    /// Worker shard that emitted the span ([`FRONTEND_SHARD`] for the
    /// front end). Physical placement — excluded from the canonical
    /// (determinism-checked) form.
    pub shard: u32,
    /// Domain measure (retire count, queue depth, hit flag, …; see
    /// [`SpanKind`]).
    pub arg: u64,
    /// Optional wall-clock annotation in µs, supplied by the caller.
    /// Never used for ordering; stripped from the canonical form.
    pub wall_us: Option<u64>,
}

/// A completed (or in-flight) job's causally ordered span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobTrace {
    /// The job's id (its admit sequence number — a service-global
    /// logical clock).
    pub job_id: u64,
    /// Spans in begin order (`begin_lc` is strictly increasing).
    pub spans: Vec<Span>,
}

impl JobTrace {
    /// The canonical text form: one line per span, logical clocks and
    /// domain args only — no shard ids, no wall-clock annotations. Two
    /// runs of the same seeded workload must produce byte-identical
    /// canonical forms (the determinism contract `tests/trace.rs`
    /// asserts).
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = format!("job {}\n", self.job_id);
        for s in &self.spans {
            let parent = match s.parent {
                Some(p) => self.spans[p as usize].kind.name(),
                None => "-",
            };
            out.push_str(&format!(
                "  [{}..{}] {} parent={} arg={}\n",
                s.begin_lc,
                s.end_lc,
                s.kind.name(),
                parent,
                s.arg,
            ));
        }
        out
    }

    /// Human-oriented render: the span tree with indentation, wall
    /// annotations included when present.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!("trace of job {} ({} spans)\n", self.job_id, self.spans.len());
        for s in &self.spans {
            let mut depth = 0usize;
            let mut p = s.parent;
            while let Some(i) = p {
                depth += 1;
                p = self.spans[i as usize].parent;
            }
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!("{} lc=[{}..{}] arg={}", s.kind.name(), s.begin_lc, s.end_lc, s.arg));
            if s.shard != FRONTEND_SHARD {
                out.push_str(&format!(" shard={}", s.shard));
            }
            if let Some(us) = s.wall_us {
                out.push_str(&format!(" wall_us={us}"));
            }
            out.push('\n');
        }
        out
    }

    /// Appends this trace's spans as Chrome trace-event objects to
    /// `events` (one `"X"` complete event per span, `"i"` instants for
    /// zero-length spans). `ts` is the logical clock; `pid` the job id;
    /// `tid` the shard.
    fn push_chrome_events(&self, events: &mut Vec<String>) {
        for s in &self.spans {
            let tid = if s.shard == FRONTEND_SHARD { 0 } else { u64::from(s.shard) + 1 };
            let mut args = format!("\"arg\":{}", s.arg);
            if let Some(us) = s.wall_us {
                args.push_str(&format!(",\"wall_us\":{us}"));
            }
            if s.begin_lc == s.end_lc {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"job\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                    s.kind.name(),
                    s.begin_lc,
                    self.job_id,
                    tid,
                    args,
                ));
            } else {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                    s.kind.name(),
                    s.begin_lc,
                    s.end_lc - s.begin_lc,
                    self.job_id,
                    tid,
                    args,
                ));
            }
        }
    }
}

/// Opaque handle to an open span in a [`TraceBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u16);

/// Builds one job's [`JobTrace`] as it moves through the service.
///
/// The logical clock is a job-local event counter: `begin`/`end`/
/// `instant` each consume one tick, so every event in the job has a
/// distinct, causally ordered timestamp. Parentage is the innermost
/// span still open at `begin` time. When constructed with a
/// [`FlightRecorder`], every event is also recorded there.
pub struct TraceBuilder {
    job_id: u64,
    lc: u64,
    shard: u32,
    spans: Vec<Span>,
    open: Vec<u16>,
    flight: Option<Arc<FlightRecorder>>,
}

impl TraceBuilder {
    /// A builder for `job_id`, optionally teeing every event into
    /// `flight`.
    #[must_use]
    pub fn new(job_id: u64, flight: Option<Arc<FlightRecorder>>) -> TraceBuilder {
        TraceBuilder { job_id, lc: 0, shard: FRONTEND_SHARD, spans: Vec::new(), open: Vec::new(), flight }
    }

    /// Sets the shard recorded on subsequent events (workers call this
    /// when they pick the job up; [`FRONTEND_SHARD`] until then).
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// The job this builder traces.
    #[must_use]
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    fn tick(&mut self) -> u64 {
        let lc = self.lc;
        self.lc += 1;
        lc
    }

    fn tee(&self, kind: SpanKind, phase: u8, lc: u64, arg: u64) {
        if let Some(f) = &self.flight {
            f.record(FlightEvent { job: self.job_id, kind, phase, shard: self.shard, lc, arg });
        }
    }

    /// Opens a span. `wall_us` is an optional wall-clock annotation
    /// (this module never reads the clock itself).
    pub fn begin(&mut self, kind: SpanKind, arg: u64, wall_us: Option<u64>) -> SpanId {
        let lc = self.tick();
        let parent = self.open.last().copied();
        let id = self.spans.len() as u16;
        self.spans.push(Span {
            kind,
            parent,
            begin_lc: lc,
            end_lc: lc,
            shard: self.shard,
            arg,
            wall_us,
        });
        self.open.push(id);
        self.tee(kind, 0, lc, arg);
        SpanId(id)
    }

    /// Closes a span, updating its domain arg and wall annotation.
    pub fn end(&mut self, id: SpanId, arg: u64, wall_us: Option<u64>) {
        let lc = self.tick();
        if let Some(pos) = self.open.iter().rposition(|&i| i == id.0) {
            self.open.remove(pos);
        }
        let kind = if let Some(s) = self.spans.get_mut(id.0 as usize) {
            s.end_lc = lc;
            s.arg = arg;
            if wall_us.is_some() {
                s.wall_us = wall_us;
            }
            // A span's events carry the shard that emitted them; a span
            // begun on the front end but ended on a worker belongs to
            // the worker (it did the work).
            if self.shard != FRONTEND_SHARD {
                s.shard = self.shard;
            }
            s.kind
        } else {
            return;
        };
        self.tee(kind, 1, lc, arg);
    }

    /// Records a zero-length event.
    pub fn instant(&mut self, kind: SpanKind, arg: u64, wall_us: Option<u64>) {
        let lc = self.tick();
        let parent = self.open.last().copied();
        self.spans.push(Span {
            kind,
            parent,
            begin_lc: lc,
            end_lc: lc,
            shard: self.shard,
            arg,
            wall_us,
        });
        self.tee(kind, 2, lc, arg);
    }

    /// The trace so far (open spans appear with `end_lc == begin_lc`).
    /// Used for divergence dumps, where the job never completes.
    #[must_use]
    pub fn snapshot(&self) -> JobTrace {
        JobTrace { job_id: self.job_id, spans: self.spans.clone() }
    }

    /// Finishes the trace, closing any still-open spans at the current
    /// logical clock.
    #[must_use]
    pub fn finish(mut self) -> JobTrace {
        while let Some(i) = self.open.pop() {
            let lc = self.tick();
            self.spans[i as usize].end_lc = lc;
        }
        JobTrace { job_id: self.job_id, spans: self.spans }
    }
}

/// One fixed-size flight-recorder event. `phase`: 0 begin, 1 end,
/// 2 instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Job id.
    pub job: u64,
    /// Span taxonomy entry.
    pub kind: SpanKind,
    /// 0 begin, 1 end, 2 instant.
    pub phase: u8,
    /// Emitting shard ([`FRONTEND_SHARD`] for the front end).
    pub shard: u32,
    /// Job-local logical clock of the event.
    pub lc: u64,
    /// Domain measure.
    pub arg: u64,
}

/// One seqlock-guarded slot: `seq` is odd while a write is in flight;
/// readers retry/skip on odd or changed `seq`. Payload words:
/// `[job, kind|phase|shard, lc, arg, ring_seq]`.
struct Slot {
    seq: AtomicU64,
    w: [AtomicU64; 5],
}

impl Slot {
    fn empty() -> Slot {
        Slot { seq: AtomicU64::new(0), w: [0u64; 5].map(AtomicU64::new) }
    }
}

/// A bounded ring of [`Slot`]s with a single logical writer.
struct ShardRing {
    slots: Box<[Slot]>,
    /// Total events ever recorded on this ring — the per-shard logical
    /// clock flight dumps order by.
    head: AtomicU64,
}

impl ShardRing {
    fn new(cap: usize) -> ShardRing {
        ShardRing {
            slots: (0..cap.max(1)).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn record(&self, ev: FlightEvent) {
        let ring_seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ring_seq % self.slots.len() as u64) as usize];
        let s0 = slot.seq.fetch_add(1, Ordering::Acquire); // odd: write in flight
        let meta = u64::from(ev.kind as u8) | (u64::from(ev.phase) << 8) | (u64::from(ev.shard) << 16);
        slot.w[0].store(ev.job, Ordering::Relaxed);
        slot.w[1].store(meta, Ordering::Relaxed);
        slot.w[2].store(ev.lc, Ordering::Relaxed);
        slot.w[3].store(ev.arg, Ordering::Relaxed);
        slot.w[4].store(ring_seq, Ordering::Relaxed);
        slot.seq.store(s0 + 2, Ordering::Release); // even: write complete
    }

    /// The resident events, oldest first, paired with their ring seq.
    /// Torn slots (a write raced the read) are skipped rather than
    /// misreported.
    fn snapshot(&self) -> Vec<(u64, FlightEvent)> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::new();
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 % 2 != 0 {
                continue; // write in flight
            }
            let w: Vec<u64> = slot.w.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            if slot.seq.load(Ordering::Acquire) != s0 {
                continue; // torn
            }
            if w[4] != seq {
                continue; // already overwritten by a newer event
            }
            let Some(kind) = SpanKind::from_u8((w[1] & 0xff) as u8) else { continue };
            out.push((
                seq,
                FlightEvent {
                    job: w[0],
                    kind,
                    phase: ((w[1] >> 8) & 0xff) as u8,
                    shard: (w[1] >> 16) as u32,
                    lc: w[2],
                    arg: w[3],
                },
            ));
        }
        out
    }
}

/// The flight recorder: one bounded ring per shard (ring 0 is the
/// service front end, ring `i + 1` is worker shard `i`). Recording is
/// wait-free for the single writer each ring has in practice; reading
/// is lock-free with torn reads skipped.
pub struct FlightRecorder {
    rings: Vec<ShardRing>,
}

impl FlightRecorder {
    /// A recorder with `shards` worker rings (plus the front-end ring)
    /// of `cap` events each.
    #[must_use]
    pub fn new(shards: usize, cap: usize) -> FlightRecorder {
        FlightRecorder { rings: (0..shards + 1).map(|_| ShardRing::new(cap)).collect() }
    }

    /// Records `ev` on its shard's ring ([`FRONTEND_SHARD`] → ring 0;
    /// shard ids past the constructed count wrap rather than panic).
    pub fn record(&self, ev: FlightEvent) {
        let idx = if ev.shard == FRONTEND_SHARD {
            0
        } else {
            1 + (ev.shard as usize % (self.rings.len() - 1).max(1))
        };
        self.rings[idx.min(self.rings.len() - 1)].record(ev);
    }

    /// Every resident event as `(ring index, ring seq, event)`, ring by
    /// ring, oldest first within a ring.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(usize, u64, FlightEvent)> {
        let mut out = Vec::new();
        for (ri, ring) in self.rings.iter().enumerate() {
            for (seq, ev) in ring.snapshot() {
                out.push((ri, seq, ev));
            }
        }
        out
    }

    /// The resident events as Chrome trace-event objects. `ts` is the
    /// per-ring sequence number (a logical clock), `tid` the ring.
    #[must_use]
    pub fn chrome_events(&self) -> Vec<String> {
        let phase_name = |p: u8| match p {
            0 => "begin",
            1 => "end",
            _ => "instant",
        };
        self.snapshot()
            .into_iter()
            .map(|(ri, seq, ev)| {
                format!(
                    "{{\"name\":\"{}:{}\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"lc\":{},\"arg\":{}}}}}",
                    ev.kind.name(),
                    phase_name(ev.phase),
                    seq,
                    ev.job,
                    ri,
                    ev.lc,
                    ev.arg,
                )
            })
            .collect()
    }
}

/// Assembles a complete Chrome trace-event JSON document (the format
/// Perfetto and `chrome://tracing` load) from completed job traces and
/// pre-rendered flight-recorder events. Timestamps throughout are
/// logical clocks.
#[must_use]
pub fn chrome_trace_json(traces: &[JobTrace], flight_events: &[String]) -> String {
    let mut events = Vec::new();
    for t in traces {
        t.push_chrome_events(&mut events);
    }
    events.extend_from_slice(flight_events);
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_one() -> JobTrace {
        let mut b = TraceBuilder::new(7, None);
        let job = b.begin(SpanKind::Job, 0, None);
        let admit = b.begin(SpanKind::Admit, 0, Some(3));
        b.end(admit, 0, Some(5));
        let q = b.begin(SpanKind::QueueWait, 2, None);
        b.set_shard(1);
        b.end(q, 2, None);
        let exec = b.begin(SpanKind::Exec, 0, None);
        let s = b.begin(SpanKind::Slice, 0, None);
        b.end(s, 1000, None);
        b.instant(SpanKind::Checkpoint, 1000, None);
        b.end(exec, 1000, None);
        b.end(job, 0, None);
        b.finish()
    }

    #[test]
    fn spans_nest_and_clocks_are_strictly_ordered() {
        let t = build_one();
        assert_eq!(t.job_id, 7);
        let kinds: Vec<SpanKind> = t.spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Job,
                SpanKind::Admit,
                SpanKind::QueueWait,
                SpanKind::Exec,
                SpanKind::Slice,
                SpanKind::Checkpoint,
            ]
        );
        // Parentage: admit/queue/exec under job, slice+checkpoint under exec.
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[2].parent, Some(0));
        assert_eq!(t.spans[3].parent, Some(0));
        assert_eq!(t.spans[4].parent, Some(3));
        assert_eq!(t.spans[5].parent, Some(3));
        // Logical clocks: begin order is strictly increasing, ends follow begins.
        for w in t.spans.windows(2) {
            assert!(w[0].begin_lc < w[1].begin_lc);
        }
        for s in &t.spans {
            assert!(s.end_lc >= s.begin_lc);
        }
        // The checkpoint instant sits inside the slice..exec window.
        assert!(t.spans[5].begin_lc > t.spans[4].begin_lc);
        assert!(t.spans[5].begin_lc < t.spans[3].end_lc);
    }

    #[test]
    fn canonical_text_strips_wall_and_shard_but_keeps_clocks() {
        let t = build_one();
        let canon = t.canonical_text();
        assert!(!canon.contains("wall"), "{canon}");
        assert!(!canon.contains("shard"), "{canon}");
        assert!(canon.contains("admit"), "{canon}");
        assert!(canon.contains("parent=exec"), "{canon}");
        // Same events, different wall annotations ⇒ same canonical form.
        let mut b = TraceBuilder::new(7, None);
        let job = b.begin(SpanKind::Job, 0, Some(999));
        let admit = b.begin(SpanKind::Admit, 0, None);
        b.end(admit, 0, Some(1));
        let q = b.begin(SpanKind::QueueWait, 2, None);
        b.set_shard(0); // different shard than build_one
        b.end(q, 2, None);
        let exec = b.begin(SpanKind::Exec, 0, None);
        let s = b.begin(SpanKind::Slice, 0, None);
        b.end(s, 1000, None);
        b.instant(SpanKind::Checkpoint, 1000, None);
        b.end(exec, 1000, None);
        b.end(job, 0, None);
        assert_eq!(b.finish().canonical_text(), canon);
        // The human render keeps the annotations.
        assert!(t.render_text().contains("wall_us=5"));
        assert!(t.render_text().contains("shard=1"));
    }

    #[test]
    fn finish_closes_open_spans_and_snapshot_leaves_them_open() {
        let mut b = TraceBuilder::new(1, None);
        let job = b.begin(SpanKind::Job, 0, None);
        let exec = b.begin(SpanKind::Exec, 0, None);
        let snap = b.snapshot();
        assert_eq!(snap.spans[1].begin_lc, snap.spans[1].end_lc, "open in snapshot");
        let _ = (job, exec);
        let t = b.finish();
        assert!(t.spans[1].end_lc > t.spans[1].begin_lc, "finish closed it");
        assert!(t.spans[0].end_lc > t.spans[1].end_lc, "outer closes after inner");
    }

    #[test]
    fn flight_ring_is_bounded_and_overwrites_oldest() {
        let f = FlightRecorder::new(1, 8);
        for i in 0..20u64 {
            f.record(FlightEvent {
                job: i,
                kind: SpanKind::Slice,
                phase: 2,
                shard: 0,
                lc: i,
                arg: i,
            });
        }
        let evs = f.snapshot();
        assert_eq!(evs.len(), 8, "ring keeps exactly cap events");
        let jobs: Vec<u64> = evs.iter().map(|(_, _, e)| e.job).collect();
        assert_eq!(jobs, (12..20).collect::<Vec<_>>(), "oldest overwritten, order kept");
        for (ri, _, _) in &evs {
            assert_eq!(*ri, 1, "shard 0 events land on ring 1 (ring 0 is the front end)");
        }
    }

    #[test]
    fn frontend_and_worker_events_land_on_their_rings() {
        let f = FlightRecorder::new(2, 8);
        f.record(FlightEvent { job: 1, kind: SpanKind::Admit, phase: 0, shard: FRONTEND_SHARD, lc: 0, arg: 0 });
        f.record(FlightEvent { job: 1, kind: SpanKind::Exec, phase: 0, shard: 1, lc: 1, arg: 0 });
        let evs = f.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].0, 0, "front-end ring");
        assert_eq!(evs[1].0, 2, "worker shard 1 → ring 2");
    }

    #[test]
    fn builder_tees_into_the_flight_recorder() {
        let f = Arc::new(FlightRecorder::new(1, 16));
        let mut b = TraceBuilder::new(42, Some(Arc::clone(&f)));
        let job = b.begin(SpanKind::Job, 0, None);
        b.instant(SpanKind::Checkpoint, 500, None);
        b.end(job, 0, None);
        let _ = b.finish();
        let evs = f.snapshot();
        assert_eq!(evs.len(), 3, "begin + instant + end");
        assert!(evs.iter().all(|(_, _, e)| e.job == 42));
        assert_eq!(evs[1].2.kind, SpanKind::Checkpoint);
        assert_eq!(evs[1].2.arg, 500);
    }

    #[test]
    fn chrome_json_is_loadable_shaped_and_clock_timed() {
        let t = build_one();
        let f = FlightRecorder::new(1, 8);
        f.record(FlightEvent { job: 7, kind: SpanKind::Slice, phase: 1, shard: 0, lc: 9, arg: 1000 });
        let doc = chrome_trace_json(&[t], &f.chrome_events());
        assert!(doc.starts_with("{\"traceEvents\":["), "{doc}");
        assert!(doc.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"), "{doc}");
        assert!(doc.contains("\"ph\":\"X\""), "complete events: {doc}");
        assert!(doc.contains("\"ph\":\"i\""), "instants: {doc}");
        assert!(doc.contains("\"name\":\"slice:end\""), "flight events named: {doc}");
        assert!(doc.contains("\"cat\":\"flight\""), "{doc}");
        // Every ts is a logical clock (integers), never a float wall reading.
        for line in doc.lines().filter(|l| l.contains("\"ts\":")) {
            let ts = line.split("\"ts\":").nth(1).unwrap();
            let num: String = ts.chars().take_while(char::is_ascii_digit).collect();
            assert!(!num.is_empty(), "integer ts in {line}");
            assert!(!ts.starts_with(&format!("{num}.")), "no fractional ts in {line}");
        }
    }

    #[test]
    fn concurrent_recording_never_tears() {
        let f = Arc::new(FlightRecorder::new(4, 64));
        let handles: Vec<_> = (0..4u32)
            .map(|shard| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        f.record(FlightEvent {
                            job: u64::from(shard),
                            kind: SpanKind::Slice,
                            phase: 2,
                            shard,
                            lc: i,
                            arg: i,
                        });
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for (_, _, ev) in f.snapshot() {
                // A torn read would mix fields from different events.
                assert_eq!(ev.lc, ev.arg, "lc/arg written together must read together");
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = f.snapshot();
        assert_eq!(evs.len(), 4 * 64, "every ring full");
    }
}
