//! The compiler pipeline driver: source text → Silver machine code.
//!
//! `compile confAg prog = Some compiled_prog` (theorem (3)): parsing,
//! type inference + elaboration, ANF lowering with pattern compilation,
//! closure conversion, and code generation, all driven from one function.

use std::fmt;

use crate::anf;
use crate::ast::Program;
use crate::clos;
use crate::codegen::{self, CompiledProgram, CompilerConfig};
use crate::layout::TargetLayout;
use crate::parser;
use crate::prelude::PRELUDE;
use crate::types::{self, DataEnv};

/// Compilation errors, per phase.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(parser::ParseError),
    /// Type inference failed.
    Type(types::TypeError),
    /// Code generation failed (indicates a compiler bug).
    Asm(ag32::asm::AsmError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Asm(e) => write!(f, "code generation: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The user source with the prelude prepended (when configured).
#[must_use]
pub fn full_source(user: &str, cfg: &CompilerConfig) -> String {
    if cfg.prelude {
        format!("{PRELUDE}\n{user}")
    } else {
        user.to_string()
    }
}

/// Runs the front end only: parse, type-check, elaborate.
///
/// # Errors
///
/// Parse or type errors.
pub fn frontend(user: &str, cfg: &CompilerConfig) -> Result<(Program, DataEnv), CompileError> {
    let src = full_source(user, cfg);
    let mut prog = parser::parse_program(&src).map_err(CompileError::Parse)?;
    let data = types::check_program(&mut prog).map_err(CompileError::Type)?;
    Ok((prog, data))
}

/// Compiles source text to a Silver machine-code image (based at
/// [`TargetLayout::code_base`]).
///
/// # Errors
///
/// Parse, type or code-generation errors.
pub fn compile_source(
    user: &str,
    layout: TargetLayout,
    cfg: &CompilerConfig,
) -> Result<CompiledProgram, CompileError> {
    let (prog, data) = frontend(user, cfg)?;
    let mut lowered = anf::lower_program_with(&prog, &data, cfg.direct_calls);
    if cfg.const_fold {
        lowered = crate::opt::optimize(lowered);
    }
    let flat = clos::convert_program(&lowered);
    codegen::generate(&flat, layout, *cfg).map_err(CompileError::Asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag32::State;
    use crate::ast::{EXIT_DIV, EXIT_MATCH, EXIT_OOM, EXIT_SUBSCRIPT};

    /// Runs a compiled pure program (no FFI) directly on the ISA: code at
    /// `code_base`, PC at `_start`, a halt loop at `halt_addr`. Returns
    /// the exit code and the final machine state.
    fn run_pure(src: &str) -> (u8, State, u64) {
        let layout = TargetLayout::default();
        let cfg = CompilerConfig::default();
        let compiled = compile_source(src, layout, &cfg).expect("compiles");
        let mut s = State::new();
        s.mem.write_bytes(layout.code_base, &compiled.code);
        // Halt self-loop (PC-relative jump with offset 0).
        s.mem.write_word(
            layout.halt_addr,
            ag32::encode(ag32::Instr::Jump {
                func: ag32::Func::Add,
                w: ag32::Reg::new(0),
                a: ag32::Ri::Imm(0),
            }),
        );
        s.pc = layout.code_base;
        let steps = s.run(200_000_000);
        assert!(s.is_halted(), "program must halt");
        (s.mem.read_word(layout.exit_code_addr) as u8, s, steps)
    }

    fn exit_code(src: &str) -> u8 {
        run_pure(src).0
    }

    #[test]
    fn empty_program_exits_zero() {
        assert_eq!(exit_code("val x = 1;"), 0);
    }

    #[test]
    fn arithmetic_and_exit() {
        assert_eq!(exit_code("val _ = exit (40 + 2);"), 42);
        assert_eq!(exit_code("val _ = exit (7 * 6 - 21 div 3 * 6);"), 0);
        assert_eq!(exit_code("val _ = exit (1000000 mod 97);"), (1_000_000 % 97) as u8);
    }

    #[test]
    fn negative_division_truncates() {
        assert_eq!(exit_code("val _ = exit (if ~7 div 2 = ~3 then 0 else 1);"), 0);
        assert_eq!(exit_code("val _ = exit (if ~7 mod 2 = ~1 then 0 else 1);"), 0);
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(exit_code("fun f x = x div 0; val _ = exit (f 1);"), EXIT_DIV);
    }

    #[test]
    fn conditionals_and_comparisons() {
        assert_eq!(
            exit_code(
                "val _ = exit (if 3 < 5 andalso 5 <= 5 andalso 7 > 2 andalso
                               2 >= 2 andalso ~1 < 0 then 0 else 1);"
            ),
            0
        );
    }

    #[test]
    fn recursion_factorial() {
        assert_eq!(
            exit_code(
                "fun fact n = if n = 0 then 1 else n * fact (n - 1);
                 val _ = exit (fact 10 mod 251);"
            ),
            (3_628_800 % 251) as u8
        );
    }

    #[test]
    fn tail_recursion_runs_in_constant_stack() {
        // One million iterations would overflow any reasonable stack
        // without tail calls.
        assert_eq!(
            exit_code(
                "fun loop i acc = if i = 0 then acc else loop (i - 1) (acc + 1);
                 val _ = exit (loop 1000000 0 mod 97);"
            ),
            (1_000_000 % 97) as u8
        );
    }

    #[test]
    fn closures_capture() {
        assert_eq!(
            exit_code(
                "val base = 30;
                 fun addb x = x + base;
                 val f = fn y => addb y + 2;
                 val _ = exit (f 10);"
            ),
            42
        );
    }

    #[test]
    fn curried_first_class_functions() {
        assert_eq!(
            exit_code(
                "fun add a b = a + b;
                 val inc = add 1;
                 fun twice f x = f (f x);
                 val _ = exit (twice inc 40);"
            ),
            42
        );
    }

    #[test]
    fn lists_and_pattern_matching() {
        assert_eq!(
            exit_code(
                "fun sum xs = case xs of [] => 0 | h :: t => h + sum t;
                 val _ = exit (sum [1, 2, 3, 4, 5, 6, 7, 8]);"
            ),
            36
        );
    }

    #[test]
    fn datatypes_compile() {
        assert_eq!(
            exit_code(
                "datatype shape = Circle of int | Square of int | Point;
                 fun area s = case s of
                     Circle r => 3 * r * r
                   | Square w => w * w
                   | Point => 0;
                 val _ = exit (area (Circle 2) + area (Square 3) + area Point);"
            ),
            21
        );
    }

    #[test]
    fn match_failure_exits_with_code() {
        assert_eq!(exit_code("val _ = case 3 of 1 => () | 2 => ();"), EXIT_MATCH);
    }

    #[test]
    fn strings_concat_and_compare() {
        assert_eq!(
            exit_code(
                "val s = \"foo\" ^ \"bar\";
                 val _ = exit (if s = \"foobar\" andalso s <> \"foobaz\"
                               andalso String.size s = 6 then 0 else 1);"
            ),
            0
        );
    }

    #[test]
    fn string_subscript_traps() {
        assert_eq!(exit_code("val _ = exit (Char.ord (String.sub \"ab\" 5));"), EXIT_SUBSCRIPT);
    }

    #[test]
    fn byte_arrays_roundtrip() {
        assert_eq!(
            exit_code(
                "val a = Word8Array.array 4 (Char.chr 120);
                 val _ = Word8Array.update a 1 (Char.chr 121);
                 val s = Word8Array.substring a 0 4;
                 val _ = exit (if s = \"xyxx\" then 0 else 1);"
            ),
            0
        );
    }

    #[test]
    fn prelude_utilities_work_compiled() {
        assert_eq!(
            exit_code(
                "val xs = [5, 3, 9, 1];
                 val sorted = merge_sort (fn a => fn b => a < b) xs;
                 val _ = exit (case sorted of a :: b :: c :: d :: [] =>
                                 a * 1000 + b * 100 + c * 10 + d | _ => 1);"
            ),
            ((1000 + 300 + 50 + 9) % 256) as u8
        );
    }

    #[test]
    fn int_to_string_compiled() {
        assert_eq!(
            exit_code(
                "val s = int_to_string ~1042;
                 val _ = exit (if s = \"~1042\" then 0 else 1);"
            ),
            0
        );
    }

    #[test]
    fn refs_compiled() {
        assert_eq!(
            exit_code(
                "val r = ref 40;
                 val _ = r := !r + 2;
                 val _ = exit (!r);"
            ),
            42
        );
    }

    #[test]
    fn heap_exhaustion_exits_oom() {
        // Allocate unboundedly; the bump allocator must hit the limit and
        // exit with the documented out-of-memory code — the behaviour
        // `extend_with_oom` allows.
        assert_eq!(
            exit_code(
                "fun grow xs = grow (1 :: xs);
                 val _ = grow [];
                 val _ = exit 0;"
            ),
            EXIT_OOM
        );
    }

    #[test]
    fn deep_non_tail_recursion_hits_stack_oom() {
        assert_eq!(
            exit_code(
                "fun deep n = if n = 0 then 0 else 1 + deep (n - 1);
                 val _ = exit (deep 10000000);"
            ),
            EXIT_OOM
        );
    }

    #[test]
    fn mutual_recursion_compiled() {
        assert_eq!(
            exit_code(
                "fun even n = if n = 0 then true else odd (n - 1)
                 and odd n = if n = 0 then false else even (n - 1);
                 val _ = exit (if even 100 andalso odd 101 then 0 else 1);"
            ),
            0
        );
    }

    #[test]
    fn string_patterns_compiled() {
        assert_eq!(
            exit_code(
                "fun greet s = case s of \"hi\" => 1 | \"bye\" => 2 | _ => 3;
                 val _ = exit (greet \"hi\" * 100 + greet \"bye\" * 10 + greet \"zz\");"
            ),
            123
        );
    }

    #[test]
    fn nested_closures_capture_chains() {
        assert_eq!(
            exit_code(
                "fun make a = fn b => fn c => a * 100 + b * 10 + c;
                 val f = make 1;
                 val g = f 2;
                 val _ = exit (g 3 mod 256);"
            ),
            123
        );
    }

    #[test]
    fn shadowing_resolves_innermost() {
        assert_eq!(
            exit_code(
                "val x = 1;
                 val x = x + 10;
                 val _ = exit (let val x = x + 100 in x end);"
            ),
            111
        );
    }

    #[test]
    fn six_parameter_function_uses_wrapper_fallback() {
        assert_eq!(
            exit_code(
                "fun six a b c d e f = a + b + c + d + e + f;
                 val _ = exit (six 1 2 3 4 5 6);"
            ),
            21
        );
    }

    #[test]
    fn andalso_short_circuits_effects() {
        assert_eq!(
            exit_code(
                "val r = ref 0;
                 fun effect u = (r := !r + 1; true);
                 val _ = false andalso effect ();
                 val _ = true orelse effect ();
                 val _ = true andalso effect ();
                 val _ = exit (!r);"
            ),
            1
        );
    }

    #[test]
    fn deep_tuple_and_list_patterns() {
        assert_eq!(
            exit_code(
                "val data = [(1, (2, 3)), (4, (5, 6))];
                 fun f xs = case xs of
                     (a, (b, c)) :: (d, (e, g)) :: [] => a + b + c + d + e + g
                   | _ => 99;
                 val _ = exit (f data);"
            ),
            21
        );
    }

    #[test]
    fn chr_bounds_trap() {
        assert_eq!(exit_code("val _ = exit (Char.ord (Char.chr 300));"), EXIT_SUBSCRIPT);
        assert_eq!(exit_code("val _ = exit (Char.ord (Char.chr ~1));"), EXIT_SUBSCRIPT);
        assert_eq!(exit_code("val _ = exit (Char.ord (Char.chr 65) - 65);"), 0);
    }

    #[test]
    fn upper_constant_composition_in_codegen() {
        // Forces the LoadConstant/LoadUpperConstant pair path.
        assert_eq!(
            exit_code("val big = 123456789; val _ = exit (big mod 251);"),
            (123_456_789u64 % 251) as u8
        );
    }

    #[test]
    fn comparison_chain_on_boundaries() {
        assert_eq!(
            exit_code(
                "val lo = 0 - 1073741824; (* min int *)
                 val hi = 1073741823;     (* max int *)
                 val _ = exit (if lo < hi andalso lo <= lo andalso hi >= hi
                                  andalso not (hi < lo) then 0 else 1);"
            ),
            0
        );
    }

    #[test]
    fn wrapping_arithmetic_matches_interpreter_semantics() {
        assert_eq!(
            exit_code(
                "val big = 1073741823; (* 2^30 - 1 *)
                 val _ = exit (if big + 1 < 0 then 0 else 1); (* wraps to -2^30 *)"
            ),
            0
        );
    }
}
