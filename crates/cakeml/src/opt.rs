//! ANF-level optimisations: constant folding, copy propagation,
//! branch simplification and dead-code elimination.
//!
//! CakeML is an *optimising* compiler (§1); these are the classic
//! machine-independent passes, run between lowering and closure
//! conversion. Each is semantics-preserving in the strong sense the
//! correctness property demands: crash behaviours (division by zero,
//! subscripts) are never folded away or introduced — a `div` by a
//! constant zero is left for the runtime to trap exactly where the
//! source semantics does.

use std::collections::{HashMap, HashSet};

use crate::anf::{Anf, AnfProgram, Atom, Lam, Rhs, VarId};
use crate::ast::{wrap_int, Prim};

/// Optimises a lowered program (folding + pruning to a fixpoint, at most
/// a few rounds).
#[must_use]
pub fn optimize(mut p: AnfProgram) -> AnfProgram {
    for _ in 0..3 {
        let mut env = HashMap::new();
        let folded = fold(p.main.clone(), &mut env, &p.strings);
        let (pruned, _) = prune(folded);
        if pruned == p.main {
            break;
        }
        p.main = pruned;
    }
    p
}

type ConstEnv = HashMap<VarId, Atom>;

fn subst(env: &ConstEnv, a: Atom) -> Atom {
    match a {
        Atom::Var(v) => env.get(&v).copied().unwrap_or(a),
        other => other,
    }
}

fn as_word(a: Atom) -> Option<i64> {
    // The word-equality classes: int, bool, char, unit share comparisons.
    match a {
        Atom::Int(v) => Some(v),
        Atom::Bool(b) => Some(i64::from(b)),
        Atom::Char(c) => Some(i64::from(c)),
        Atom::Unit => Some(0),
        _ => None,
    }
}

fn fold_prim(p: &Prim, args: &[Atom], strings: &[String]) -> Option<Atom> {
    let int = |i: usize| match args[i] {
        Atom::Int(v) => Some(v),
        _ => None,
    };
    Some(match p {
        Prim::Add => Atom::Int(wrap_int(int(0)? + int(1)?)),
        Prim::Sub => Atom::Int(wrap_int(int(0)? - int(1)?)),
        Prim::Mul => Atom::Int(wrap_int(int(0)? * int(1)?)),
        // Fold only when the divisor is a non-zero constant; a constant
        // zero must keep its runtime trap.
        Prim::Div if int(1).is_some_and(|d| d != 0) => {
            Atom::Int(wrap_int(int(0)?.wrapping_div(int(1)?)))
        }
        Prim::Mod if int(1).is_some_and(|d| d != 0) => {
            Atom::Int(wrap_int(int(0)?.wrapping_rem(int(1)?)))
        }
        Prim::Lt => Atom::Bool(int(0)? < int(1)?),
        Prim::Le => Atom::Bool(int(0)? <= int(1)?),
        Prim::Gt => Atom::Bool(int(0)? > int(1)?),
        Prim::Ge => Atom::Bool(int(0)? >= int(1)?),
        Prim::Eq => Atom::Bool(as_word(args[0])? == as_word(args[1])?),
        Prim::Not => match args[0] {
            Atom::Bool(b) => Atom::Bool(!b),
            _ => return None,
        },
        Prim::StrSize => match args[0] {
            Atom::Str(id) => Atom::Int(strings[id.0 as usize].len() as i64),
            _ => return None,
        },
        Prim::Ord => match args[0] {
            Atom::Char(c) => Atom::Int(i64::from(c)),
            _ => return None,
        },
        Prim::Chr if int(0).is_some_and(|v| (0..=255).contains(&v)) => {
            Atom::Char(int(0)? as u8)
        }
        _ => return None,
    })
}

fn fold(a: Anf, env: &mut ConstEnv, strings: &[String]) -> Anf {
    match a {
        Anf::Ret(at) => Anf::Ret(subst(env, at)),
        Anf::Crash(c) => Anf::Crash(c),
        Anf::If { cond, then_, else_ } => {
            let cond = subst(env, cond);
            if let Atom::Bool(b) = cond {
                return fold(if b { *then_ } else { *else_ }, env, strings);
            }
            Anf::If {
                cond,
                then_: Box::new(fold(*then_, &mut env.clone(), strings)),
                else_: Box::new(fold(*else_, &mut env.clone(), strings)),
            }
        }
        Anf::LetRec { binds, body } => Anf::LetRec {
            binds: binds
                .into_iter()
                .map(|(v, lam)| {
                    (
                        v,
                        Lam {
                            params: lam.params,
                            body: Box::new(fold(*lam.body, &mut env.clone(), strings)),
                        },
                    )
                })
                .collect(),
            body: Box::new(fold(*body, env, strings)),
        },
        Anf::Let { dst, rhs, body } => {
            let rhs = match rhs {
                Rhs::Atom(at) => Rhs::Atom(subst(env, at)),
                Rhs::Prim(p, args) => {
                    let args: Vec<Atom> = args.into_iter().map(|a| subst(env, a)).collect();
                    match fold_prim(&p, &args, strings) {
                        Some(c) => Rhs::Atom(c),
                        None => Rhs::Prim(p, args),
                    }
                }
                Rhs::Tuple(args) => {
                    Rhs::Tuple(args.into_iter().map(|a| subst(env, a)).collect())
                }
                Rhs::Con { tag, arg } => Rhs::Con { tag, arg: arg.map(|a| subst(env, a)) },
                Rhs::Proj { index, of } => Rhs::Proj { index, of: subst(env, of) },
                Rhs::TagOf(at) => Rhs::TagOf(subst(env, at)),
                Rhs::Lam(lam) => Rhs::Lam(Lam {
                    params: lam.params,
                    body: Box::new(fold(*lam.body, &mut env.clone(), strings)),
                }),
                Rhs::App { f, arg } => {
                    Rhs::App { f: subst(env, f), arg: subst(env, arg) }
                }
                Rhs::CallKnown { f, args } => Rhs::CallKnown {
                    f,
                    args: args.into_iter().map(|a| subst(env, a)).collect(),
                },
                Rhs::Sub(sub) => Rhs::Sub(Box::new(fold(*sub, &mut env.clone(), strings))),
            };
            // Copy/constant propagation.
            if let Rhs::Atom(at) = &rhs {
                env.insert(dst, *at);
            }
            let body = fold(*body, env, strings);
            Anf::Let { dst, rhs, body: Box::new(body) }
        }
    }
}

/// Whether a right-hand side can be dropped when its result is unused:
/// it must be unable to crash, perform I/O or mutate state.
fn rhs_is_pure(rhs: &Rhs) -> bool {
    match rhs {
        Rhs::Atom(_) | Rhs::Tuple(_) | Rhs::Con { .. } | Rhs::Proj { .. } | Rhs::TagOf(_)
        | Rhs::Lam(_) => true,
        Rhs::Prim(p, _) => matches!(
            p,
            Prim::Add
                | Prim::Sub
                | Prim::Mul
                | Prim::Lt
                | Prim::Le
                | Prim::Gt
                | Prim::Ge
                | Prim::Eq
                | Prim::EqStr
                | Prim::Not
                | Prim::Concat
                | Prim::StrSize
                | Prim::Ord
                | Prim::BytesLen
                | Prim::RefNew
                | Prim::RefGet
        ),
        Rhs::App { .. } | Rhs::CallKnown { .. } | Rhs::Sub(_) => false,
    }
}

fn atom_uses(a: Atom, used: &mut HashSet<VarId>) {
    if let Atom::Var(v) = a {
        used.insert(v);
    }
}

fn rhs_uses(rhs: &Rhs, used: &mut HashSet<VarId>) {
    match rhs {
        Rhs::Atom(a) | Rhs::TagOf(a) => atom_uses(*a, used),
        Rhs::Prim(_, args) | Rhs::Tuple(args) => {
            args.iter().for_each(|a| atom_uses(*a, used));
        }
        Rhs::Con { arg, .. } => {
            if let Some(a) = arg {
                atom_uses(*a, used);
            }
        }
        Rhs::Proj { of, .. } => atom_uses(*of, used),
        Rhs::Lam(_) | Rhs::Sub(_) => unreachable!("handled structurally"),
        Rhs::App { f, arg } => {
            atom_uses(*f, used);
            atom_uses(*arg, used);
        }
        Rhs::CallKnown { f, args } => {
            used.insert(*f);
            args.iter().for_each(|a| atom_uses(*a, used));
        }
    }
}

/// Removes unused pure lets, bottom-up; returns the used-variable set.
fn prune(a: Anf) -> (Anf, HashSet<VarId>) {
    match a {
        Anf::Ret(at) => {
            let mut used = HashSet::new();
            atom_uses(at, &mut used);
            (Anf::Ret(at), used)
        }
        Anf::Crash(c) => (Anf::Crash(c), HashSet::new()),
        Anf::If { cond, then_, else_ } => {
            let (t, mut used) = prune(*then_);
            let (e, used_e) = prune(*else_);
            used.extend(used_e);
            atom_uses(cond, &mut used);
            (Anf::If { cond, then_: Box::new(t), else_: Box::new(e) }, used)
        }
        Anf::LetRec { binds, body } => {
            let (body, mut used) = prune(*body);
            let mut new_binds = Vec::new();
            // Conservative: keep a group if any member is used anywhere
            // (including by other members' bodies).
            let mut member_used = used.clone();
            let pruned: Vec<(VarId, Lam)> = binds
                .into_iter()
                .map(|(v, lam)| {
                    let (b, u) = prune(*lam.body);
                    member_used.extend(u.iter().copied());
                    used.extend(u);
                    (v, Lam { params: lam.params, body: Box::new(b) })
                })
                .collect();
            let keep = pruned.iter().any(|(v, _)| member_used.contains(v));
            if keep {
                new_binds.extend(pruned);
            }
            if new_binds.is_empty() {
                (body, used)
            } else {
                (Anf::LetRec { binds: new_binds, body: Box::new(body) }, used)
            }
        }
        Anf::Let { dst, rhs, body } => {
            let (body, mut used) = prune(*body);
            // Structural children first.
            let rhs = match rhs {
                Rhs::Lam(lam) => {
                    let (b, u) = prune(*lam.body);
                    let u: HashSet<VarId> =
                        u.into_iter().filter(|v| !lam.params.contains(v)).collect();
                    if !used.contains(&dst) {
                        // A lambda nobody references: drop entirely.
                        return (body, used);
                    }
                    used.extend(u);
                    Rhs::Lam(Lam { params: lam.params, body: Box::new(b) })
                }
                Rhs::Sub(sub) => {
                    let (s, u) = prune(*sub);
                    used.extend(u);
                    Rhs::Sub(Box::new(s))
                }
                other => other,
            };
            if !used.contains(&dst) && rhs_is_pure(&rhs) {
                return (body, used);
            }
            if !matches!(rhs, Rhs::Lam(_) | Rhs::Sub(_)) {
                rhs_uses(&rhs, &mut used);
            }
            (Anf::Let { dst, rhs, body: Box::new(body) }, used)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::lower_program;
    use crate::parser::parse_program;
    use crate::types::check_program;

    fn lowered(src: &str) -> AnfProgram {
        let mut prog = parse_program(src).expect("parses");
        let data = check_program(&mut prog).expect("typechecks");
        lower_program(&prog, &data)
    }

    fn size(a: &Anf) -> usize {
        match a {
            Anf::Ret(_) | Anf::Crash(_) => 1,
            Anf::If { then_, else_, .. } => 1 + size(then_) + size(else_),
            Anf::Let { rhs, body, .. } => {
                1 + match rhs {
                    Rhs::Lam(l) => size(&l.body),
                    Rhs::Sub(s) => size(s),
                    _ => 0,
                } + size(body)
            }
            Anf::LetRec { binds, body } => {
                1 + binds.iter().map(|(_, l)| size(&l.body)).sum::<usize>() + size(body)
            }
        }
    }

    #[test]
    fn folds_constant_arithmetic() {
        let p = optimize(lowered("val x = 2 + 3 * 4; val _ = Runtime.exit x;"));
        // Everything folds to `exit 14`: no Prim::Mul/Add remain.
        fn has_arith(a: &Anf) -> bool {
            match a {
                Anf::Let { rhs, body, .. } => {
                    matches!(rhs, Rhs::Prim(Prim::Add | Prim::Mul, _))
                        || match rhs {
                            Rhs::Sub(s) => has_arith(s),
                            Rhs::Lam(l) => has_arith(&l.body),
                            _ => false,
                        }
                        || has_arith(body)
                }
                Anf::If { then_, else_, .. } => has_arith(then_) || has_arith(else_),
                Anf::LetRec { binds, body } => {
                    binds.iter().any(|(_, l)| has_arith(&l.body)) || has_arith(body)
                }
                _ => false,
            }
        }
        assert!(!has_arith(&p.main), "constant arithmetic folded: {:?}", p.main);
    }

    #[test]
    fn keeps_division_by_constant_zero() {
        let p = optimize(lowered("val _ = Runtime.exit (1 div 0);"));
        fn has_div(a: &Anf) -> bool {
            match a {
                Anf::Let { rhs, body, .. } => {
                    matches!(rhs, Rhs::Prim(Prim::Div, _)) || has_div(body)
                }
                _ => false,
            }
        }
        assert!(has_div(&p.main), "the runtime trap must survive folding");
    }

    #[test]
    fn dead_branches_removed() {
        let p = optimize(lowered(
            "val x = if 1 < 2 then 10 else 1 div 0;
             val _ = Runtime.exit x;",
        ));
        fn has_if_or_div(a: &Anf) -> bool {
            match a {
                Anf::If { .. } => true,
                Anf::Let { rhs, body, .. } => {
                    matches!(rhs, Rhs::Prim(Prim::Div, _))
                        || match rhs {
                            Rhs::Sub(s) => has_if_or_div(s),
                            _ => false,
                        }
                        || has_if_or_div(body)
                }
                _ => false,
            }
        }
        assert!(!has_if_or_div(&p.main), "constant branch folded away: {:?}", p.main);
    }

    #[test]
    fn unused_pure_lets_pruned() {
        let before = lowered(
            "val unused = (1, 2, 3);
             val also_unused = fn x => x;
             val _ = Runtime.exit 0;",
        );
        let after = optimize(before.clone());
        assert!(size(&after.main) < size(&before.main));
    }

    #[test]
    fn effects_never_pruned() {
        let before = lowered(
            "val r = ref 0;
             val _ = r := 1;
             val buf = Word8Array.array 4 (Char.chr 0);
             val _ = Word8Array.update buf 9 (Char.chr 0); (* traps! *)
             val _ = Runtime.exit (!r);",
        );
        let after = optimize(before.clone());
        fn count_sets(a: &Anf) -> usize {
            match a {
                Anf::Let { rhs, body, .. } => {
                    usize::from(matches!(rhs, Rhs::Prim(Prim::RefSet | Prim::BytesSet, _)))
                        + count_sets(body)
                }
                _ => 0,
            }
        }
        assert_eq!(count_sets(&after.main), count_sets(&before.main));
    }

    #[test]
    fn optimizer_is_idempotent() {
        let p = lowered("val x = 1 + 2; fun f y = y + x; val _ = Runtime.exit (f 4);");
        let once = optimize(p);
        let twice = optimize(once.clone());
        assert_eq!(once.main, twice.main);
    }
}
