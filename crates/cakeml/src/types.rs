//! Hindley–Milner type inference with let-polymorphism, the value
//! restriction, user-declared (monomorphic) datatypes, and CakeML-style
//! equality types.
//!
//! Besides checking, [`check_program`] *elaborates*: every `=`/`<>` is
//! resolved to word equality or string equality ([`Prim::EqStr`]), so the
//! backend never needs type information.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::*;

/// Types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ty {
    /// `int`.
    Int,
    /// `bool`.
    Bool,
    /// `char`.
    Char,
    /// `string`.
    Str,
    /// `unit`.
    Unit,
    /// `bytearray` (`Word8Array.array`).
    Bytes,
    /// Tuples.
    Tuple(Vec<Ty>),
    /// `t list`.
    List(Box<Ty>),
    /// `t ref`.
    Ref(Box<Ty>),
    /// `a -> b`.
    Fun(Box<Ty>, Box<Ty>),
    /// A user datatype.
    Con(String),
    /// A unification variable.
    Var(u32),
}

/// A type scheme (`forall vars. ty`).
#[derive(Clone, Debug)]
pub struct Scheme {
    vars: Vec<u32>,
    ty: Ty,
}

/// A type error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// Description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

fn terr<T>(m: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError { message: m.into() })
}

/// Information about declared datatypes, used by later passes.
#[derive(Clone, Debug, Default)]
pub struct DataEnv {
    /// Constructor name → (numeric tag, argument type if any, datatype).
    pub constructors: HashMap<String, (u32, Option<Ty>, String)>,
    /// Declared datatype names.
    pub types: HashSet<String>,
}

impl DataEnv {
    fn builtin() -> DataEnv {
        let mut d = DataEnv::default();
        // The built-in list constructors: `[]` tag 0, `::` tag 1. Their
        // types are handled specially (polymorphic) during inference.
        d.constructors.insert("[]".into(), (0, None, "list".into()));
        d.constructors
            .insert("::".into(), (1, Some(Ty::Unit), "list".into()));
        d
    }
}

#[derive(Debug, Default)]
struct Infer {
    subst: Vec<Option<Ty>>,
    eq_sites: Vec<Ty>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EqKind {
    Word,
    Str,
}

type Env = HashMap<String, Scheme>;

impl Infer {
    fn fresh(&mut self) -> Ty {
        self.subst.push(None);
        Ty::Var(self.subst.len() as u32 - 1)
    }

    fn resolve(&self, t: &Ty) -> Ty {
        match t {
            Ty::Var(v) => match &self.subst[*v as usize] {
                Some(inner) => self.resolve(inner),
                None => t.clone(),
            },
            _ => t.clone(),
        }
    }

    fn zonk(&self, t: &Ty) -> Ty {
        let t = self.resolve(t);
        match t {
            Ty::Tuple(parts) => Ty::Tuple(parts.iter().map(|p| self.zonk(p)).collect()),
            Ty::List(e) => Ty::List(Box::new(self.zonk(&e))),
            Ty::Ref(e) => Ty::Ref(Box::new(self.zonk(&e))),
            Ty::Fun(a, b) => Ty::Fun(Box::new(self.zonk(&a)), Box::new(self.zonk(&b))),
            other => other,
        }
    }

    fn occurs(&self, v: u32, t: &Ty) -> bool {
        match self.resolve(t) {
            Ty::Var(w) => w == v,
            Ty::Tuple(parts) => parts.iter().any(|p| self.occurs(v, p)),
            Ty::List(e) | Ty::Ref(e) => self.occurs(v, &e),
            Ty::Fun(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
            _ => false,
        }
    }

    fn unify(&mut self, a: &Ty, b: &Ty) -> Result<(), TypeError> {
        let (ra, rb) = (self.resolve(a), self.resolve(b));
        match (&ra, &rb) {
            (Ty::Var(v), Ty::Var(w)) if v == w => Ok(()),
            (Ty::Var(v), _) => {
                if self.occurs(*v, &rb) {
                    return terr("occurs check failed (infinite type)");
                }
                self.subst[*v as usize] = Some(rb);
                Ok(())
            }
            (_, Ty::Var(_)) => self.unify(&rb, &ra),
            (Ty::Int, Ty::Int)
            | (Ty::Bool, Ty::Bool)
            | (Ty::Char, Ty::Char)
            | (Ty::Str, Ty::Str)
            | (Ty::Unit, Ty::Unit)
            | (Ty::Bytes, Ty::Bytes) => Ok(()),
            (Ty::Con(x), Ty::Con(y)) if x == y => Ok(()),
            (Ty::Tuple(xs), Ty::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Ty::List(x), Ty::List(y)) | (Ty::Ref(x), Ty::Ref(y)) => self.unify(x, y),
            (Ty::Fun(a1, r1), Ty::Fun(a2, r2)) => {
                self.unify(a1, a2)?;
                self.unify(r1, r2)
            }
            _ => terr(format!("cannot unify {} with {}", show(&self.zonk(&ra)), show(&self.zonk(&rb)))),
        }
    }

    fn instantiate(&mut self, s: &Scheme) -> Ty {
        let mapping: HashMap<u32, Ty> = s.vars.iter().map(|&v| (v, self.fresh())).collect();
        fn go(t: &Ty, m: &HashMap<u32, Ty>) -> Ty {
            match t {
                Ty::Var(v) => m.get(v).cloned().unwrap_or_else(|| t.clone()),
                Ty::Tuple(parts) => Ty::Tuple(parts.iter().map(|p| go(p, m)).collect()),
                Ty::List(e) => Ty::List(Box::new(go(e, m))),
                Ty::Ref(e) => Ty::Ref(Box::new(go(e, m))),
                Ty::Fun(a, b) => Ty::Fun(Box::new(go(a, m)), Box::new(go(b, m))),
                other => other.clone(),
            }
        }
        go(&s.ty, &mapping)
    }

    fn free_vars(&self, t: &Ty, acc: &mut HashSet<u32>) {
        match self.resolve(t) {
            Ty::Var(v) => {
                acc.insert(v);
            }
            Ty::Tuple(parts) => parts.iter().for_each(|p| self.free_vars(p, acc)),
            Ty::List(e) | Ty::Ref(e) => self.free_vars(&e, acc),
            Ty::Fun(a, b) => {
                self.free_vars(&a, acc);
                self.free_vars(&b, acc);
            }
            _ => {}
        }
    }

    fn generalize(&self, env: &Env, t: &Ty) -> Scheme {
        let mut tv = HashSet::new();
        self.free_vars(t, &mut tv);
        let mut env_tv = HashSet::new();
        for s in env.values() {
            let mut inner = HashSet::new();
            self.free_vars(&s.ty, &mut inner);
            for v in inner {
                if !s.vars.contains(&v) {
                    env_tv.insert(v);
                }
            }
        }
        let vars: Vec<u32> = tv.difference(&env_tv).copied().collect();
        Scheme { vars, ty: self.zonk(t) }
    }
}

fn mono(t: Ty) -> Scheme {
    Scheme { vars: vec![], ty: t }
}

fn show(t: &Ty) -> String {
    match t {
        Ty::Int => "int".into(),
        Ty::Bool => "bool".into(),
        Ty::Char => "char".into(),
        Ty::Str => "string".into(),
        Ty::Unit => "unit".into(),
        Ty::Bytes => "bytearray".into(),
        Ty::Tuple(parts) => {
            format!("({})", parts.iter().map(show).collect::<Vec<_>>().join(" * "))
        }
        Ty::List(e) => format!("{} list", show(e)),
        Ty::Ref(e) => format!("{} ref", show(e)),
        Ty::Fun(a, b) => format!("({} -> {})", show(a), show(b)),
        Ty::Con(n) => n.clone(),
        Ty::Var(v) => format!("'t{v}"),
    }
}

/// Whether an expression is a syntactic value (the value restriction).
fn is_value(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Fn(..) => true,
        Expr::Con(_, arg) => arg.as_deref().is_none_or(is_value),
        Expr::Tuple(parts) => parts.iter().all(is_value),
        _ => false,
    }
}

fn ty_of_tyexpr(data: &DataEnv, t: &TyExpr) -> Result<Ty, TypeError> {
    Ok(match t {
        TyExpr::Name(n) => match n.as_str() {
            "int" => Ty::Int,
            "bool" => Ty::Bool,
            "char" => Ty::Char,
            "string" => Ty::Str,
            "unit" => Ty::Unit,
            "bytearray" => Ty::Bytes,
            other if data.types.contains(other) => Ty::Con(other.to_string()),
            other => return terr(format!("unknown type `{other}`")),
        },
        TyExpr::List(e) => Ty::List(Box::new(ty_of_tyexpr(data, e)?)),
        TyExpr::Ref(e) => Ty::Ref(Box::new(ty_of_tyexpr(data, e)?)),
        TyExpr::Tuple(parts) => Ty::Tuple(
            parts.iter().map(|p| ty_of_tyexpr(data, p)).collect::<Result<_, _>>()?,
        ),
        TyExpr::Fun(a, b) => Ty::Fun(
            Box::new(ty_of_tyexpr(data, a)?),
            Box::new(ty_of_tyexpr(data, b)?),
        ),
    })
}

/// Type-checks and elaborates a program.
///
/// On success the program has been rewritten so that every equality is
/// either word equality (`Prim::Eq`) or string equality (`Prim::EqStr`),
/// `<>` has become `not (...)`, and a [`DataEnv`] describing all
/// datatypes is returned for the backend.
///
/// # Errors
///
/// The first [`TypeError`] encountered.
pub fn check_program(prog: &mut Program) -> Result<DataEnv, TypeError> {
    let mut inf = Infer::default();
    let mut env: Env = Env::new();
    let mut data = DataEnv::builtin();
    for decl in &prog.decls {
        match decl {
            Decl::Datatype(name, cons) => {
                if !data.types.insert(name.clone()) {
                    return terr(format!("datatype `{name}` declared twice"));
                }
                for (i, c) in cons.iter().enumerate() {
                    let arg = c.arg.as_ref().map(|t| ty_of_tyexpr(&data, t)).transpose()?;
                    if data
                        .constructors
                        .insert(c.name.clone(), (i as u32, arg, name.clone()))
                        .is_some()
                    {
                        return terr(format!("constructor `{}` declared twice", c.name));
                    }
                }
            }
            Decl::Val(pat, e) => {
                let t = inf.infer(&env.clone(), &data, e)?;
                let generalize = is_value(e);
                inf.bind_pat(&mut env, &data, pat, &t, generalize)?;
            }
            Decl::Fun(binds) => {
                inf.infer_funs(&mut env, &data, binds, true)?;
            }
        }
    }
    // Resolve every equality site, defaulting unconstrained ones to int.
    let mut kinds = Vec::with_capacity(inf.eq_sites.len());
    let sites = std::mem::take(&mut inf.eq_sites);
    for site in &sites {
        let t = inf.resolve(site);
        if let Ty::Var(_) = t {
            inf.unify(&t, &Ty::Int)?;
        }
        kinds.push(match inf.zonk(site) {
            Ty::Int | Ty::Bool | Ty::Char | Ty::Unit => EqKind::Word,
            Ty::Str => EqKind::Str,
            other => {
                return terr(format!("equality at non-equality type {}", show(&other)));
            }
        });
    }
    let mut cursor = 0;
    rewrite_program(prog, &kinds, &mut cursor);
    debug_assert_eq!(cursor, kinds.len(), "eq-site traversal mismatch");
    Ok(data)
}

impl Infer {
    fn infer_funs(
        &mut self,
        env: &mut Env,
        data: &DataEnv,
        binds: &[FunBind],
        generalize: bool,
    ) -> Result<(), TypeError> {
        // Pre-bind each function at a fresh monotype.
        let mut pre = Vec::new();
        for b in binds {
            let t = self.fresh();
            env.insert(b.name.clone(), mono(t.clone()));
            pre.push(t);
        }
        for (b, pre_t) in binds.iter().zip(&pre) {
            let mut inner = env.clone();
            let mut param_tys = Vec::new();
            for p in &b.params {
                let pt = self.fresh();
                inner.insert(p.clone(), mono(pt.clone()));
                param_tys.push(pt);
            }
            let body_t = self.infer(&inner, data, &b.body)?;
            let mut fun_t = body_t;
            for pt in param_tys.into_iter().rev() {
                fun_t = Ty::Fun(Box::new(pt), Box::new(fun_t));
            }
            self.unify(pre_t, &fun_t)
                .map_err(|e| TypeError { message: format!("in `{}`: {}", b.name, e.message) })?;
        }
        if generalize {
            for (b, t) in binds.iter().zip(&pre) {
                let mut probe = env.clone();
                for other in binds {
                    probe.remove(&other.name);
                }
                let s = self.generalize(&probe, t);
                env.insert(b.name.clone(), s);
            }
        }
        Ok(())
    }

    fn bind_pat(
        &mut self,
        env: &mut Env,
        data: &DataEnv,
        pat: &Pat,
        ty: &Ty,
        generalize: bool,
    ) -> Result<(), TypeError> {
        match pat {
            Pat::Wild => Ok(()),
            Pat::Var(x) => {
                let s = if generalize {
                    let probe = env.clone();
                    self.generalize(&probe, ty)
                } else {
                    mono(self.zonk(ty))
                };
                env.insert(x.clone(), s);
                Ok(())
            }
            Pat::Lit(l) => {
                let lt = self.lit_ty(l);
                self.unify(ty, &lt)
            }
            Pat::Tuple(parts) => {
                let tys: Vec<Ty> = (0..parts.len()).map(|_| self.fresh()).collect();
                self.unify(ty, &Ty::Tuple(tys.clone()))?;
                for (p, t) in parts.iter().zip(&tys) {
                    self.bind_pat(env, data, p, t, generalize)?;
                }
                Ok(())
            }
            Pat::ListNil => {
                let e = self.fresh();
                self.unify(ty, &Ty::List(Box::new(e)))
            }
            Pat::Cons(h, t) => {
                let e = self.fresh();
                self.unify(ty, &Ty::List(Box::new(e.clone())))?;
                self.bind_pat(env, data, h, &e, generalize)?;
                self.bind_pat(env, data, t, &Ty::List(Box::new(e)), generalize)
            }
            Pat::Con(name, arg) => {
                let Some((_tag, con_arg, ty_name)) = data.constructors.get(name) else {
                    return terr(format!("unknown constructor `{name}` in pattern"));
                };
                if ty_name == "list" {
                    return terr("use `::`/`[]` patterns for lists");
                }
                self.unify(ty, &Ty::Con(ty_name.clone()))?;
                match (arg, con_arg) {
                    (None, None) => Ok(()),
                    (Some(p), Some(at)) => self.bind_pat(env, data, p, &at.clone(), generalize),
                    (Some(_), None) => {
                        terr(format!("constructor `{name}` takes no argument"))
                    }
                    (None, Some(_)) => {
                        terr(format!("constructor `{name}` requires an argument"))
                    }
                }
            }
        }
    }

    fn lit_ty(&self, l: &Lit) -> Ty {
        match l {
            Lit::Int(_) => Ty::Int,
            Lit::Bool(_) => Ty::Bool,
            Lit::Char(_) => Ty::Char,
            Lit::Str(_) => Ty::Str,
            Lit::Unit => Ty::Unit,
        }
    }

    fn infer(&mut self, env: &Env, data: &DataEnv, e: &Expr) -> Result<Ty, TypeError> {
        match e {
            Expr::Lit(l) => Ok(self.lit_ty(l)),
            Expr::Var(x) => match env.get(x) {
                Some(s) => Ok(self.instantiate(s)),
                None => terr(format!("unbound variable `{x}`")),
            },
            Expr::Con(name, arg) => {
                if name == "[]" {
                    if arg.is_some() {
                        return terr("`[]` takes no argument");
                    }
                    let e = self.fresh();
                    return Ok(Ty::List(Box::new(e)));
                }
                if name == "::" {
                    let elem = self.fresh();
                    let lt = Ty::List(Box::new(elem.clone()));
                    let Some(a) = arg else { return terr("`::` requires an argument") };
                    let at = self.infer(env, data, a)?;
                    self.unify(&at, &Ty::Tuple(vec![elem, lt.clone()]))?;
                    return Ok(lt);
                }
                let Some((_tag, con_arg, ty_name)) = data.constructors.get(name).cloned()
                else {
                    return terr(format!("unknown constructor `{name}`"));
                };
                match (arg, con_arg) {
                    (None, None) => Ok(Ty::Con(ty_name)),
                    (Some(a), Some(at)) => {
                        let got = self.infer(env, data, a)?;
                        self.unify(&got, &at)?;
                        Ok(Ty::Con(ty_name))
                    }
                    (Some(_), None) => terr(format!("constructor `{name}` takes no argument")),
                    (None, Some(_)) => {
                        terr(format!("constructor `{name}` requires an argument"))
                    }
                }
            }
            Expr::Tuple(parts) => {
                let tys = parts
                    .iter()
                    .map(|p| self.infer(env, data, p))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Ty::Tuple(tys))
            }
            Expr::Prim(p, args) => self.infer_prim(env, data, p, args),
            Expr::App(f, a) => {
                let ft = self.infer(env, data, f)?;
                let at = self.infer(env, data, a)?;
                let rt = self.fresh();
                self.unify(&ft, &Ty::Fun(Box::new(at), Box::new(rt.clone())))?;
                Ok(rt)
            }
            Expr::Fn(x, body) => {
                let xt = self.fresh();
                let mut inner = env.clone();
                inner.insert(x.clone(), mono(xt.clone()));
                let bt = self.infer(&inner, data, body)?;
                Ok(Ty::Fun(Box::new(xt), Box::new(bt)))
            }
            Expr::Let(pat, rhs, body) => {
                let rt = self.infer(env, data, rhs)?;
                let mut inner = env.clone();
                self.bind_pat(&mut inner, data, pat, &rt, is_value(rhs))?;
                self.infer(&inner, data, body)
            }
            Expr::LetFun(binds, body) => {
                let mut inner = env.clone();
                self.infer_funs(&mut inner, data, binds, true)?;
                self.infer(&inner, data, body)
            }
            Expr::If(c, t, f) => {
                let ct = self.infer(env, data, c)?;
                self.unify(&ct, &Ty::Bool)?;
                let tt = self.infer(env, data, t)?;
                let ft = self.infer(env, data, f)?;
                self.unify(&tt, &ft)?;
                Ok(tt)
            }
            Expr::Case(scrut, arms) => {
                let st = self.infer(env, data, scrut)?;
                let rt = self.fresh();
                for (p, body) in arms {
                    let mut inner = env.clone();
                    self.bind_pat(&mut inner, data, p, &st, false)?;
                    let bt = self.infer(&inner, data, body)?;
                    self.unify(&bt, &rt)?;
                }
                Ok(rt)
            }
            Expr::AndAlso(a, b) | Expr::OrElse(a, b) => {
                let at = self.infer(env, data, a)?;
                self.unify(&at, &Ty::Bool)?;
                let bt = self.infer(env, data, b)?;
                self.unify(&bt, &Ty::Bool)?;
                Ok(Ty::Bool)
            }
            Expr::Seq(a, b) => {
                let _ = self.infer(env, data, a)?;
                self.infer(env, data, b)
            }
        }
    }

    fn infer_prim(
        &mut self,
        env: &Env,
        data: &DataEnv,
        p: &Prim,
        args: &[Expr],
    ) -> Result<Ty, TypeError> {
        let tys = args
            .iter()
            .map(|a| self.infer(env, data, a))
            .collect::<Result<Vec<_>, _>>()?;
        let u = |inf: &mut Infer, t: &Ty, want: Ty| inf.unify(t, &want);
        match p {
            Prim::Add | Prim::Sub | Prim::Mul | Prim::Div | Prim::Mod => {
                u(self, &tys[0], Ty::Int)?;
                u(self, &tys[1], Ty::Int)?;
                Ok(Ty::Int)
            }
            Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge => {
                u(self, &tys[0], Ty::Int)?;
                u(self, &tys[1], Ty::Int)?;
                Ok(Ty::Bool)
            }
            Prim::Eq | Prim::Ne => {
                self.unify(&tys[0], &tys[1])?;
                self.eq_sites.push(tys[0].clone());
                Ok(Ty::Bool)
            }
            Prim::EqStr => {
                u(self, &tys[0], Ty::Str)?;
                u(self, &tys[1], Ty::Str)?;
                Ok(Ty::Bool)
            }
            Prim::Not => {
                u(self, &tys[0], Ty::Bool)?;
                Ok(Ty::Bool)
            }
            Prim::Concat => {
                u(self, &tys[0], Ty::Str)?;
                u(self, &tys[1], Ty::Str)?;
                Ok(Ty::Str)
            }
            Prim::StrSize => {
                u(self, &tys[0], Ty::Str)?;
                Ok(Ty::Int)
            }
            Prim::StrSub => {
                u(self, &tys[0], Ty::Str)?;
                u(self, &tys[1], Ty::Int)?;
                Ok(Ty::Char)
            }
            Prim::StrSubstr => {
                u(self, &tys[0], Ty::Str)?;
                u(self, &tys[1], Ty::Int)?;
                u(self, &tys[2], Ty::Int)?;
                Ok(Ty::Str)
            }
            Prim::Ord => {
                u(self, &tys[0], Ty::Char)?;
                Ok(Ty::Int)
            }
            Prim::Chr => {
                u(self, &tys[0], Ty::Int)?;
                Ok(Ty::Char)
            }
            Prim::BytesNew => {
                u(self, &tys[0], Ty::Int)?;
                u(self, &tys[1], Ty::Char)?;
                Ok(Ty::Bytes)
            }
            Prim::BytesLen => {
                u(self, &tys[0], Ty::Bytes)?;
                Ok(Ty::Int)
            }
            Prim::BytesGet => {
                u(self, &tys[0], Ty::Bytes)?;
                u(self, &tys[1], Ty::Int)?;
                Ok(Ty::Char)
            }
            Prim::BytesSet => {
                u(self, &tys[0], Ty::Bytes)?;
                u(self, &tys[1], Ty::Int)?;
                u(self, &tys[2], Ty::Char)?;
                Ok(Ty::Unit)
            }
            Prim::BytesToStr => {
                u(self, &tys[0], Ty::Bytes)?;
                u(self, &tys[1], Ty::Int)?;
                u(self, &tys[2], Ty::Int)?;
                Ok(Ty::Str)
            }
            Prim::StrToBytes => {
                u(self, &tys[0], Ty::Str)?;
                u(self, &tys[1], Ty::Bytes)?;
                u(self, &tys[2], Ty::Int)?;
                Ok(Ty::Unit)
            }
            Prim::RefNew => Ok(Ty::Ref(Box::new(tys[0].clone()))),
            Prim::RefGet => {
                let inner = self.fresh();
                u(self, &tys[0], Ty::Ref(Box::new(inner.clone())))?;
                Ok(inner)
            }
            Prim::RefSet => {
                let inner = self.fresh();
                u(self, &tys[0], Ty::Ref(Box::new(inner.clone())))?;
                self.unify(&tys[1], &inner)?;
                Ok(Ty::Unit)
            }
            Prim::Ffi(_) => {
                u(self, &tys[0], Ty::Str)?;
                u(self, &tys[1], Ty::Bytes)?;
                Ok(Ty::Unit)
            }
            Prim::Exit => {
                u(self, &tys[0], Ty::Int)?;
                // `exit` never returns; its result unifies with anything.
                Ok(self.fresh())
            }
        }
    }
}

// ---- equality-site rewriting (same traversal order as inference) ----

fn rewrite_program(prog: &mut Program, kinds: &[EqKind], cursor: &mut usize) {
    for decl in &mut prog.decls {
        match decl {
            Decl::Val(_, e) => rewrite_expr(e, kinds, cursor),
            Decl::Fun(binds) => {
                for b in binds {
                    rewrite_expr(&mut b.body, kinds, cursor);
                }
            }
            Decl::Datatype(..) => {}
        }
    }
}

fn rewrite_expr(e: &mut Expr, kinds: &[EqKind], cursor: &mut usize) {
    match e {
        Expr::Lit(_) | Expr::Var(_) => {}
        Expr::Con(_, Some(a)) => rewrite_expr(a, kinds, cursor),
        Expr::Con(_, None) => {}
        Expr::Tuple(parts) => parts.iter_mut().for_each(|p| rewrite_expr(p, kinds, cursor)),
        Expr::Prim(p, args) => {
            args.iter_mut().for_each(|a| rewrite_expr(a, kinds, cursor));
            if matches!(p, Prim::Eq | Prim::Ne) {
                let kind = kinds[*cursor];
                *cursor += 1;
                let negate = matches!(p, Prim::Ne);
                let base = match kind {
                    EqKind::Word => Prim::Eq,
                    EqKind::Str => Prim::EqStr,
                };
                *p = base;
                if negate {
                    let inner = std::mem::replace(e, Expr::Lit(Lit::Unit));
                    *e = Expr::Prim(Prim::Not, vec![inner]);
                }
            }
        }
        Expr::App(f, a) => {
            rewrite_expr(f, kinds, cursor);
            rewrite_expr(a, kinds, cursor);
        }
        Expr::Fn(_, b) => rewrite_expr(b, kinds, cursor),
        Expr::Let(_, rhs, body) => {
            rewrite_expr(rhs, kinds, cursor);
            rewrite_expr(body, kinds, cursor);
        }
        Expr::LetFun(binds, body) => {
            for b in binds.iter_mut() {
                rewrite_expr(&mut b.body, kinds, cursor);
            }
            rewrite_expr(body, kinds, cursor);
        }
        Expr::If(c, t, f) => {
            rewrite_expr(c, kinds, cursor);
            rewrite_expr(t, kinds, cursor);
            rewrite_expr(f, kinds, cursor);
        }
        Expr::Case(s, arms) => {
            rewrite_expr(s, kinds, cursor);
            arms.iter_mut().for_each(|(_, e)| rewrite_expr(e, kinds, cursor));
        }
        Expr::AndAlso(a, b) | Expr::OrElse(a, b) | Expr::Seq(a, b) => {
            rewrite_expr(a, kinds, cursor);
            rewrite_expr(b, kinds, cursor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(Program, DataEnv), TypeError> {
        let mut prog = parse_program(src).expect("parses");
        let data = check_program(&mut prog)?;
        Ok((prog, data))
    }

    #[test]
    fn simple_declarations() {
        check("val x = 1 + 2; val s = \"hi\" ^ \"there\";").unwrap();
    }

    #[test]
    fn polymorphic_map() {
        check(
            "fun map f xs = case xs of [] => [] | x :: rest => f x :: map f rest;
             val a = map (fn x => x + 1) [1, 2, 3];
             val b = map (fn s => String.size s) [\"a\", \"bc\"];",
        )
        .unwrap();
    }

    #[test]
    fn rejects_ill_typed() {
        assert!(check("val x = 1 + \"foo\";").is_err());
        assert!(check("val x = if 1 then 2 else 3;").is_err());
        assert!(check("val x = [1, true];").is_err());
        assert!(check("fun f x = f;").is_err(), "occurs check");
    }

    #[test]
    fn datatypes_and_cases() {
        let (_, data) = check(
            "datatype tree = Leaf | Node of tree * int * tree;
             fun sum t = case t of Leaf => 0 | Node (l, v, r) => sum l + v + sum r;
             val n = sum (Node (Leaf, 5, Node (Leaf, 2, Leaf)));",
        )
        .unwrap();
        assert_eq!(data.constructors["Leaf"].0, 0);
        assert_eq!(data.constructors["Node"].0, 1);
    }

    #[test]
    fn equality_elaboration() {
        let (prog, _) = check("val a = 1 = 2; val b = \"x\" = \"y\"; val c = 1 <> 2;").unwrap();
        let get = |i: usize| match &prog.decls[i] {
            Decl::Val(_, e) => e.clone(),
            _ => unreachable!(),
        };
        assert!(matches!(get(0), Expr::Prim(Prim::Eq, _)));
        assert!(matches!(get(1), Expr::Prim(Prim::EqStr, _)));
        assert!(matches!(get(2), Expr::Prim(Prim::Not, _)));
    }

    #[test]
    fn equality_on_functions_rejected() {
        assert!(check("val f = (fn x => x); val b = f = f;").is_err());
    }

    #[test]
    fn equality_defaults_to_int() {
        // Polymorphic equality with no constraint defaults to int.
        check("fun eq x y = x = y; val t = eq 1 1;").unwrap();
    }

    #[test]
    fn value_restriction() {
        // `ref []` must not generalize: using it at two element types is
        // rejected.
        assert!(check(
            "val r = ref [];
             val u1 = r := [1];
             val u2 = r := [\"s\"];"
        )
        .is_err());
    }

    #[test]
    fn refs_and_arrays() {
        check(
            "val r = ref 0;
             val _ = r := !r + 1;
             val arr = Word8Array.array 16 #\"x\";
             val _ = Word8Array.update arr 0 #\"a\";
             val c = Word8Array.sub arr 0;
             val s = Word8Array.substring arr 0 4;",
        )
        .unwrap();
    }

    #[test]
    fn ffi_types() {
        check(
            "val buf = Word8Array.array 16 #\"\\n\";
             val _ = #(write) \"conf\" buf;",
        )
        .unwrap();
        assert!(check("val _ = #(write) 3 4;").is_err());
    }

    #[test]
    fn mutual_recursion() {
        check(
            "fun even n = if n = 0 then true else odd (n - 1)
             and odd n = if n = 0 then false else even (n - 1);
             val t = even 10;",
        )
        .unwrap();
    }

    #[test]
    fn unknown_constructor_rejected() {
        assert!(check("val x = Mystery 3;").is_err());
        assert!(check("fun f t = case t of Nope => 1;").is_err());
    }

    #[test]
    fn let_polymorphism() {
        check("val id = fn x => x; val a = id 1; val b = id \"s\";").unwrap();
    }
}
