//! # cakeml — an ML-family language with a verified-by-testing compiler
//! # targeting the Silver (ag32) ISA
//!
//! The CakeML compiler is the software half of *Verified Compilation on
//! a Verified Processor* (PLDI 2019). This crate is its stand-in: a
//! strict, impure ML (curried functions, algebraic datatypes, pattern
//! matching, references, byte arrays, and CakeML's `#(name)` FFI calls)
//! with
//!
//! * a [`parser`] and Hindley–Milner [type inference](types) with
//!   equality types and the value restriction,
//! * a fuel-bounded [interpreter](interp) — the executable `cakeml_sem`
//!   that compiled code is differentially tested against (theorem (2)'s
//!   analog lives in the `silver-stack` crate),
//! * an optimising multi-pass backend: [ANF lowering](anf) with pattern
//!   compilation → [closure conversion](clos) with direct-call detection
//!   and curry wrappers → [code generation](codegen) with tail calls and
//!   inline bump allocation,
//! * the [`prelude`] basis library, written in the source language, whose
//!   I/O functions speak the byte-level FFI protocols of the paper's §5,
//! * the Figure-2 [memory layout](layout) shared with the `basis` crate's
//!   image builder.
//!
//! Deviations from real CakeML (31-bit wrapping integers, monomorphic
//! datatypes, restricted equality, bump allocation + clean out-of-memory
//! exit instead of GC) are documented in `DESIGN.md`; the OOM behaviour
//! is exactly what the paper's `extend_with_oom` theorem shape permits.
//!
//! # Example
//!
//! ```
//! use cakeml::{compile_source, CompilerConfig, TargetLayout};
//!
//! let compiled = compile_source(
//!     "fun fact n = if n = 0 then 1 else n * fact (n - 1);
//!      val _ = exit (fact 5 mod 100);",
//!     TargetLayout::default(),
//!     &CompilerConfig::default(),
//! )?;
//! assert!(!compiled.code.is_empty());
//! # Ok::<(), cakeml::compile::CompileError>(())
//! ```

pub mod anf;
pub mod ast;
pub mod clos;
pub mod codegen;
pub mod compile;
pub mod features;
pub mod interp;
pub mod layout;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod prelude;
pub mod types;

pub use ast::Program;
pub use codegen::{CompiledProgram, CompilerConfig};
pub use compile::{compile_source, frontend, full_source, CompileError};
pub use features::{program_features, Feature, FeatureSet};
pub use interp::{run_program, FfiHost, NoFfi, RunOutcome, Stop, Value};
pub use layout::{Symbol, SymbolTable, TargetLayout};
pub use parser::parse_program;
pub use types::{check_program, DataEnv, TypeError};
