//! The bare-metal memory layout (Figure 2 of the paper).
//!
//! "The memory layout for running CakeML programs bare-metal on Silver":
//! startup code, then the command line (length | contents), standard
//! input (length | offset | contents), the output buffer (id | length |
//! contents), the system calls (called id | code), CakeML-usable memory
//! (initially zeros), and finally the CakeML-generated code+data.
//!
//! Regions are fixed at compile time; both the compiler backend
//! ([`crate::codegen`]) and the image builder (the `basis` crate) read
//! the same [`TargetLayout`], which is the analogue of the agreement the
//! paper's `installedAg`/`initAg` predicates pin down.

/// Addresses and sizes of every region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetLayout {
    /// Startup region (reset vector).
    pub startup_base: u32,
    /// Word the program's exit code is stored to before halting.
    pub exit_code_addr: u32,
    /// Address of the halt self-jump.
    pub halt_addr: u32,
    /// Command line: length word followed by bytes.
    pub cl_base: u32,
    /// Maximum command-line bytes (`cl_ok` in §7).
    pub cl_size: u32,
    /// Standard input: length word, cursor word, contents.
    pub stdin_base: u32,
    /// Maximum pre-filled stdin (the paper's `stdin_size`, about 5 MB).
    pub stdin_size: u32,
    /// Output buffer: id word, length word, contents.
    pub out_base: u32,
    /// Output buffer contents capacity.
    pub out_size: u32,
    /// System calls region: called-id word, jump table, code.
    pub ffi_base: u32,
    /// Size reserved for the system-call code.
    pub ffi_size: u32,
    /// Bottom of CakeML-usable memory (stack floor).
    pub stack_floor: u32,
    /// Initial stack pointer (stack grows down from here).
    pub stack_top: u32,
    /// Bump-allocator start.
    pub heap_base: u32,
    /// Bump-allocator end (exclusive); hitting it exits with
    /// [`crate::ast::EXIT_OOM`] — the `extend_with_oom` behaviour.
    pub heap_end: u32,
    /// Base address of the compiled code + data.
    pub code_base: u32,
}

impl Default for TargetLayout {
    fn default() -> Self {
        TargetLayout {
            startup_base: 0x0000_0000,
            exit_code_addr: 0x0000_0040,
            halt_addr: 0x0000_0044,
            cl_base: 0x0001_0000,
            cl_size: 0x0000_1000,
            stdin_base: 0x0002_0000,
            stdin_size: 0x0050_0000,
            out_base: 0x0053_0000,
            out_size: 0x0001_0000,
            ffi_base: 0x0055_0000,
            ffi_size: 0x0001_0000,
            stack_floor: 0x0060_0000,
            stack_top: 0x00A0_0000,
            heap_base: 0x00A0_0000,
            heap_end: 0x0340_0000,
            code_base: 0x0340_0000,
        }
    }
}

impl TargetLayout {
    /// Address of the word holding the id of the FFI call currently being
    /// serviced ("called id" in Figure 2).
    #[must_use]
    pub fn ffi_called_id_addr(&self) -> u32 {
        self.ffi_base
    }

    /// Scratch root words used by the garbage collector: runtime routines
    /// spill heap pointers here around allocations so a collection can
    /// relocate them (eight words in the startup region).
    #[must_use]
    pub fn gc_roots_addr(&self) -> u32 {
        self.exit_code_addr + 0x10
    }

    /// Number of GC root words.
    pub const GC_ROOT_WORDS: u32 = 8;

    /// Word where runtime routines save the link register around internal
    /// calls (the runtime has no stack frames of its own).
    #[must_use]
    pub fn rt_link_save_addr(&self) -> u32 {
        self.gc_roots_addr() + 4 * Self::GC_ROOT_WORDS
    }

    /// The semispace boundary when the copying collector is enabled: the
    /// heap is split into `[heap_base, mid)` and `[mid, heap_end)`.
    #[must_use]
    pub fn heap_mid(&self) -> u32 {
        self.heap_base + (self.heap_end - self.heap_base) / 2
    }

    /// Address of the jump-table entry for FFI index `i`.
    #[must_use]
    pub fn ffi_entry_addr(&self, i: u32) -> u32 {
        self.ffi_base + 4 + 4 * i
    }

    /// The I/O window an `Interrupt` snapshot captures: the output buffer
    /// (id, length, contents) plus the exit-code word is not included —
    /// the board-side handler reads only this region.
    #[must_use]
    pub fn io_window(&self) -> (u32, u32) {
        (self.out_base, 8 + self.out_size)
    }
}

/// One named code address — a compiled function, runtime routine, or
/// the startup stub.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Absolute address of the first instruction.
    pub addr: u32,
    /// Human-readable name (source function name where known, otherwise
    /// the assembler label, e.g. `rt_alloc` or `_start`).
    pub name: String,
}

/// A sorted PC→name map over the compiled image, for profilers and
/// trace renderers: [`SymbolTable::resolve`] attributes any PC to the
/// enclosing symbol by binary search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymbolTable {
    syms: Vec<Symbol>,
}

impl SymbolTable {
    /// Builds a table from `(name, addr)` pairs (any order); entries are
    /// sorted by address, ties broken by name.
    #[must_use]
    pub fn new(mut entries: Vec<Symbol>) -> Self {
        entries.sort_by(|a, b| a.addr.cmp(&b.addr).then_with(|| a.name.cmp(&b.name)));
        SymbolTable { syms: entries }
    }

    /// The symbols, sorted by address.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// `(addr, name)` pairs in address order — the shape
    /// `obs::CycleProfiler::new` takes.
    #[must_use]
    pub fn to_ranges(&self) -> Vec<(u32, String)> {
        self.syms.iter().map(|s| (s.addr, s.name.clone())).collect()
    }

    /// The symbol covering `pc`: the last symbol at or below it.
    /// PCs below the first symbol resolve to `None`.
    #[must_use]
    pub fn resolve(&self, pc: u32) -> Option<&Symbol> {
        match self.syms.binary_search_by(|s| s.addr.cmp(&pc)) {
            Ok(i) => Some(&self.syms[i]),
            Err(0) => None,
            Err(i) => Some(&self.syms[i - 1]),
        }
    }
}

/// Heap block tags (6 bits in the header word).
pub mod tag {
    /// Tuples (and constructor environments).
    pub const TUPLE: u32 = 0x3B;
    /// References.
    pub const REF: u32 = 0x3C;
    /// Closures (`[code, env]`).
    pub const CLOSURE: u32 = 0x3D;
    /// Immutable strings (byte length in the header).
    pub const STR: u32 = 0x3E;
    /// Mutable byte arrays (byte length in the header).
    pub const BYTES: u32 = 0x3F;
    /// Largest datatype-constructor tag.
    pub const MAX_CON: u32 = 0x3A;
}

/// Builds a block header: `(len << 8) | (tag << 2) | 0b10`.
#[must_use]
pub fn header(tag_bits: u32, len: u32) -> u32 {
    debug_assert!(tag_bits < 64);
    debug_assert!(len < (1 << 24));
    (len << 8) | (tag_bits << 2) | 0b10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = TargetLayout::default();
        let regions = [
            (l.startup_base, l.cl_base),
            (l.cl_base, l.cl_base + 4 + l.cl_size),
            (l.stdin_base, l.stdin_base + 8 + l.stdin_size),
            (l.out_base, l.out_base + 8 + l.out_size),
            (l.ffi_base, l.ffi_base + l.ffi_size),
            (l.stack_floor, l.stack_top),
            (l.heap_base, l.heap_end),
            (l.code_base, l.code_base + 1),
        ];
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "{:x?} overlaps {:x?}", w[0], w[1]);
        }
        assert!(l.stdin_size >= 5 * 1024 * 1024, "paper: about 5 MB of stdin");
    }

    #[test]
    fn header_roundtrip() {
        let h = header(tag::STR, 1234);
        assert_eq!(h >> 8, 1234);
        assert_eq!((h >> 2) & 0x3F, tag::STR);
        assert_eq!(h & 0b11, 0b10);
    }
}
