//! Closure conversion: ANF with nested lambdas → first-order [`FlatIR`].
//!
//! Every lambda is lifted to a top-level function taking its parameters
//! plus an *environment tuple* of captured values. Recursive groups share
//! one environment and reach each other through it, so no cyclic heap
//! structures are ever built (bump-allocator friendly). Saturated calls
//! of statically-known functions become [`FRhs::CallDirect`]; everything
//! else goes through the uniform one-argument [`FRhs::Apply`], with
//! automatically generated *curry wrappers* providing first-class values
//! for multi-parameter functions.
//!
//! [`FlatIR`]: FlatProgram

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::anf::{Anf, AnfProgram, Atom, Lam, Rhs, VarId};
use crate::ast::Prim;

/// Index of a lifted function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FunId(pub u32);

/// Right-hand sides (first-order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FRhs {
    /// Copy an atom.
    Atom(Atom),
    /// Primitive application.
    Prim(Prim, Vec<Atom>),
    /// Tuple allocation.
    Tuple(Vec<Atom>),
    /// Constructor value.
    Con {
        /// Numeric tag.
        tag: u32,
        /// Payload.
        arg: Option<Atom>,
    },
    /// Field projection.
    Proj {
        /// Field index.
        index: usize,
        /// Block.
        of: Atom,
    },
    /// Constructor tag of a value.
    TagOf(Atom),
    /// Allocate a closure `[code, env]`.
    MakeClosure {
        /// Code.
        fun: FunId,
        /// Environment tuple (or any value).
        env: Atom,
    },
    /// Call a closure with one argument.
    Apply {
        /// The closure.
        f: Atom,
        /// The argument.
        arg: Atom,
    },
    /// Direct call with an explicit environment argument.
    CallDirect {
        /// Callee.
        fun: FunId,
        /// Arguments (the callee's arity).
        args: Vec<Atom>,
        /// Environment value.
        env: Atom,
    },
    /// Nested computation.
    Sub(Box<FExpr>),
}

/// First-order expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FExpr {
    /// Return an atom.
    Ret(Atom),
    /// Let binding.
    Let {
        /// Destination.
        dst: VarId,
        /// Right-hand side.
        rhs: FRhs,
        /// Continuation.
        body: Box<FExpr>,
    },
    /// Conditional.
    If {
        /// Condition atom.
        cond: Atom,
        /// Then branch.
        then_: Box<FExpr>,
        /// Else branch.
        else_: Box<FExpr>,
    },
    /// Terminate with an exit code.
    Crash(u8),
}

/// A lifted function.
#[derive(Clone, Debug)]
pub struct FlatFun {
    /// Debug name.
    pub name: String,
    /// Parameters.
    pub params: Vec<VarId>,
    /// The environment parameter.
    pub env_var: VarId,
    /// Body.
    pub body: FExpr,
}

/// The closure-converted program.
#[derive(Clone, Debug)]
pub struct FlatProgram {
    /// All functions; index is [`FunId`].
    pub funs: Vec<FlatFun>,
    /// The program entry (no parameters).
    pub main: FunId,
    /// String pool (from lowering).
    pub strings: Vec<String>,
    /// FFI names in table order (from lowering).
    pub ffi_names: Vec<String>,
}

#[derive(Clone, Copy, Debug)]
enum EnvSource {
    /// The current function's own environment parameter.
    CurrentEnv,
    /// A local variable holding the group's environment tuple.
    Var(VarId),
}

#[derive(Clone, Copy, Debug)]
struct Known {
    fun: FunId,
    arity: usize,
    env: EnvSource,
}

#[derive(Clone)]
struct Ctx {
    known: HashMap<VarId, Known>,
    env_var: VarId,
}

struct Conv {
    funs: Vec<FlatFun>,
    wrappers: HashMap<FunId, FunId>,
    next_var: u32,
}

/// Converts a lowered program.
#[must_use]
pub fn convert_program(p: &AnfProgram) -> FlatProgram {
    let mut conv = Conv { funs: Vec::new(), wrappers: HashMap::new(), next_var: p.var_count };
    let env_var = conv.fresh();
    let ctx = Ctx { known: HashMap::new(), env_var };
    let body = conv.convert(&p.main, &ctx);
    let main = conv.push_fun(FlatFun {
        name: "main".into(),
        params: vec![],
        env_var,
        body,
    });
    FlatProgram {
        funs: conv.funs,
        main,
        strings: p.strings.clone(),
        ffi_names: p.ffi_names.clone(),
    }
}

impl Conv {
    fn fresh(&mut self) -> VarId {
        self.next_var += 1;
        VarId(self.next_var - 1)
    }

    fn push_fun(&mut self, f: FlatFun) -> FunId {
        self.funs.push(f);
        FunId(self.funs.len() as u32 - 1)
    }

    fn env_atom(&self, ctx: &Ctx, src: EnvSource) -> Atom {
        match src {
            EnvSource::CurrentEnv => Atom::Var(ctx.env_var),
            EnvSource::Var(v) => Atom::Var(v),
        }
    }

    /// Uses an atom, materialising known functions into closure values
    /// (re-binding the function's own `VarId`, which is slot-idempotent).
    fn use_atom(&mut self, a: Atom, ctx: &Ctx, lets: &mut Vec<(VarId, FRhs)>) -> Atom {
        if let Atom::Var(v) = a {
            if let Some(k) = ctx.known.get(&v).copied() {
                let env = self.env_atom(ctx, k.env);
                let code = if k.arity == 1 { k.fun } else { self.wrapper_for(k.fun, k.arity) };
                lets.push((v, FRhs::MakeClosure { fun: code, env }));
                return Atom::Var(v);
            }
        }
        a
    }

    fn use_atoms(&mut self, atoms: &[Atom], ctx: &Ctx, lets: &mut Vec<(VarId, FRhs)>) -> Vec<Atom> {
        atoms.iter().map(|a| self.use_atom(*a, ctx, lets)).collect()
    }

    /// The curry-wrapper entry for a multi-parameter function: a chain of
    /// one-argument functions accumulating `(…(E, x1), x2)…` environments
    /// and finally calling `fun` directly.
    fn wrapper_for(&mut self, fun: FunId, arity: usize) -> FunId {
        if let Some(w) = self.wrappers.get(&fun) {
            return *w;
        }
        debug_assert!(arity >= 2);
        // Build from the last wrapper backwards: w_1 .. w_arity, where
        // w_arity (the `None` case below) performs the direct call.
        let base_name = self.funs[fun.0 as usize].name.clone();
        let mut next: Option<FunId> = None;
        for i in (1..=arity).rev() {
            // Wrapper w_i takes x_i with env (..(E,x1)..,x_{i-1}).
            let x = self.fresh();
            let env_var = self.fresh();
            let body = if let Some(next_fun) = next {
                // return MakeClosure(next, (env, x))
                let pair = self.fresh();
                let dst = self.fresh();
                FExpr::Let {
                    dst: pair,
                    rhs: FRhs::Tuple(vec![Atom::Var(env_var), Atom::Var(x)]),
                    body: Box::new(FExpr::Let {
                        dst,
                        rhs: FRhs::MakeClosure { fun: next_fun, env: Atom::Var(pair) },
                        body: Box::new(FExpr::Ret(Atom::Var(dst))),
                    }),
                }
            } else {
                // Last wrapper (takes x_k where k = arity): unwind the env
                // chain to recover E and x_1..x_{k-1}, then call directly.
                let mut lets: Vec<(VarId, FRhs)> = Vec::new();
                let mut chain = env_var;
                let mut xs_rev = vec![Atom::Var(x)];
                for _ in (1..arity).rev() {
                    let xj = self.fresh();
                    lets.push((xj, FRhs::Proj { index: 1, of: Atom::Var(chain) }));
                    let rest = self.fresh();
                    lets.push((rest, FRhs::Proj { index: 0, of: Atom::Var(chain) }));
                    xs_rev.push(Atom::Var(xj));
                    chain = rest;
                }
                let args: Vec<Atom> = xs_rev.into_iter().rev().collect();
                let dst = self.fresh();
                let mut out = FExpr::Let {
                    dst,
                    rhs: FRhs::CallDirect { fun, args, env: Atom::Var(chain) },
                    body: Box::new(FExpr::Ret(Atom::Var(dst))),
                };
                for (d, r) in lets.into_iter().rev() {
                    out = FExpr::Let { dst: d, rhs: r, body: Box::new(out) };
                }
                out
            };
            // Wrapper w_i is the one taking x_i; the chain is built from
            // w_{arity} (the caller above maps i = arity-1 .. 1, with the
            // `None` case being w_{arity}).
            let id = self.push_fun(FlatFun {
                name: format!("{base_name}#curry{i}"),
                params: vec![x],
                env_var,
                body,
            });
            next = Some(id);
        }
        let w1 = next.expect("arity >= 2 produces wrappers");
        self.wrappers.insert(fun, w1);
        w1
    }

    fn lift_lambda(
        &mut self,
        name: String,
        lam: &Lam,
        group: &[(VarId, Known)],
        fvs: &[VarId],
    ) -> FunId {
        let env_var = self.fresh();
        let inner = Ctx { known: group.iter().copied().collect(), env_var };
        let converted = self.convert(&lam.body, &inner);
        // Prefix: rebind each captured variable from the env tuple.
        let mut body = converted;
        for (i, v) in fvs.iter().enumerate().rev() {
            body = FExpr::Let {
                dst: *v,
                rhs: FRhs::Proj { index: i, of: Atom::Var(env_var) },
                body: Box::new(body),
            };
        }
        self.push_fun(FlatFun { name, params: lam.params.clone(), env_var, body })
    }

    fn convert(&mut self, a: &Anf, ctx: &Ctx) -> FExpr {
        match a {
            Anf::Ret(atom) => {
                let mut lets = Vec::new();
                let at = self.use_atom(*atom, ctx, &mut lets);
                wrap_lets(lets, FExpr::Ret(at))
            }
            Anf::Crash(c) => FExpr::Crash(*c),
            Anf::If { cond, then_, else_ } => {
                let mut lets = Vec::new();
                let c = self.use_atom(*cond, ctx, &mut lets);
                let t = self.convert(then_, ctx);
                let e = self.convert(else_, ctx);
                wrap_lets(
                    lets,
                    FExpr::If { cond: c, then_: Box::new(t), else_: Box::new(e) },
                )
            }
            Anf::Let { dst, rhs, body } => {
                let mut lets = Vec::new();
                let frhs = match rhs {
                    Rhs::Atom(at) => FRhs::Atom(self.use_atom(*at, ctx, &mut lets)),
                    Rhs::Prim(p, args) => {
                        FRhs::Prim(p.clone(), self.use_atoms(args, ctx, &mut lets))
                    }
                    Rhs::Tuple(parts) => FRhs::Tuple(self.use_atoms(parts, ctx, &mut lets)),
                    Rhs::Con { tag, arg } => FRhs::Con {
                        tag: *tag,
                        arg: arg.map(|a| self.use_atom(a, ctx, &mut lets)),
                    },
                    Rhs::Proj { index, of } => FRhs::Proj {
                        index: *index,
                        of: self.use_atom(*of, ctx, &mut lets),
                    },
                    Rhs::TagOf(at) => FRhs::TagOf(self.use_atom(*at, ctx, &mut lets)),
                    Rhs::App { f, arg } => FRhs::Apply {
                        f: self.use_atom(*f, ctx, &mut lets),
                        arg: self.use_atom(*arg, ctx, &mut lets),
                    },
                    Rhs::CallKnown { f, args } => {
                        if let Some(k) = ctx.known.get(f).copied() {
                            let env = self.env_atom(ctx, k.env);
                            FRhs::CallDirect {
                                fun: k.fun,
                                args: self.use_atoms(args, ctx, &mut lets),
                                env,
                            }
                        } else {
                            // The function escaped its defining scope (it
                            // was captured first-class); apply one by one.
                            let mut acc = self.use_atom(Atom::Var(*f), ctx, &mut lets);
                            let args = self.use_atoms(args, ctx, &mut lets);
                            for (i, arg) in args.iter().enumerate() {
                                let d = if i + 1 == args.len() { *dst } else { self.fresh() };
                                lets.push((d, FRhs::Apply { f: acc, arg: *arg }));
                                acc = Atom::Var(d);
                            }
                            let tail = self.convert(body, ctx);
                            return wrap_lets(lets, tail);
                        }
                    }
                    Rhs::Sub(sub) => FRhs::Sub(Box::new(self.convert(sub, ctx))),
                    Rhs::Lam(lam) => {
                        // Anonymous lambda: capture free variables.
                        let fvs = ordered_free_vars(std::slice::from_ref(lam), &[]);
                        let fv_atoms = self.use_atoms(
                            &fvs.iter().map(|v| Atom::Var(*v)).collect::<Vec<_>>(),
                            ctx,
                            &mut lets,
                        );
                        let env_tuple = self.fresh();
                        lets.push((env_tuple, FRhs::Tuple(fv_atoms)));
                        let fun = self.lift_lambda(format!("lam{}", dst.0), lam, &[], &fvs);
                        let code = if lam.params.len() == 1 {
                            fun
                        } else {
                            self.wrapper_for(fun, lam.params.len())
                        };
                        FRhs::MakeClosure { fun: code, env: Atom::Var(env_tuple) }
                    }
                };
                let tail = self.convert(body, ctx);
                wrap_lets(
                    lets,
                    FExpr::Let { dst: *dst, rhs: frhs, body: Box::new(tail) },
                )
            }
            Anf::LetRec { binds, body } => {
                let group_vars: Vec<VarId> = binds.iter().map(|(v, _)| *v).collect();
                let lams: Vec<Lam> = binds.iter().map(|(_, l)| l.clone()).collect();
                let fvs = ordered_free_vars(&lams, &group_vars);
                let mut lets = Vec::new();
                let fv_atoms = self.use_atoms(
                    &fvs.iter().map(|v| Atom::Var(*v)).collect::<Vec<_>>(),
                    ctx,
                    &mut lets,
                );
                let env_tuple = self.fresh();
                lets.push((env_tuple, FRhs::Tuple(fv_atoms)));
                // Reserve FunIds in order so group members can refer to
                // each other before their bodies are converted.
                let mut ids = Vec::new();
                for (v, lam) in binds {
                    let id = self.push_fun(FlatFun {
                        name: format!("fun{}", v.0),
                        params: lam.params.clone(),
                        env_var: VarId(u32::MAX),
                        body: FExpr::Crash(0),
                    });
                    ids.push(id);
                }
                let group: Vec<(VarId, Known)> = group_vars
                    .iter()
                    .zip(&ids)
                    .zip(binds)
                    .map(|((v, id), (_, lam))| {
                        (
                            *v,
                            Known { fun: *id, arity: lam.params.len(), env: EnvSource::CurrentEnv },
                        )
                    })
                    .collect();
                for ((_, lam), id) in binds.iter().zip(&ids) {
                    let env_var = self.fresh();
                    let inner = Ctx { known: group.iter().copied().collect(), env_var };
                    let converted = self.convert(&lam.body, &inner);
                    let mut fbody = converted;
                    for (i, v) in fvs.iter().enumerate().rev() {
                        fbody = FExpr::Let {
                            dst: *v,
                            rhs: FRhs::Proj { index: i, of: Atom::Var(env_var) },
                            body: Box::new(fbody),
                        };
                    }
                    let f = &mut self.funs[id.0 as usize];
                    f.env_var = env_var;
                    f.body = fbody;
                }
                // Continuation: group members known through the env var.
                let mut outer = ctx.clone();
                for ((v, id), (_, lam)) in group_vars.iter().zip(&ids).zip(binds) {
                    outer.known.insert(
                        *v,
                        Known {
                            fun: *id,
                            arity: lam.params.len(),
                            env: EnvSource::Var(env_tuple),
                        },
                    );
                }
                let tail = self.convert(body, &outer);
                wrap_lets(lets, tail)
            }
        }
    }
}

fn wrap_lets(lets: Vec<(VarId, FRhs)>, tail: FExpr) -> FExpr {
    let mut out = tail;
    for (dst, rhs) in lets.into_iter().rev() {
        out = FExpr::Let { dst, rhs, body: Box::new(out) };
    }
    out
}

/// Free variables of a lambda group, in deterministic order: every
/// variable used inside any of the bodies that is bound outside them.
/// Variable ids are globally unique, so "bound outside" is computable
/// without scope information.
fn ordered_free_vars(lams: &[Lam], group: &[VarId]) -> Vec<VarId> {
    let mut bound: HashSet<VarId> = group.iter().copied().collect();
    let mut used: BTreeSet<VarId> = BTreeSet::new();
    for lam in lams {
        bound.extend(lam.params.iter().copied());
    }
    fn collect(a: &Anf, bound: &mut HashSet<VarId>, used: &mut BTreeSet<VarId>) {
        let atom = |at: &Atom, bound: &HashSet<VarId>, used: &mut BTreeSet<VarId>| {
            if let Atom::Var(v) = at {
                if !bound.contains(v) {
                    used.insert(*v);
                }
            }
        };
        match a {
            Anf::Ret(at) => atom(at, bound, used),
            Anf::Crash(_) => {}
            Anf::If { cond, then_, else_ } => {
                atom(cond, bound, used);
                collect(then_, bound, used);
                collect(else_, bound, used);
            }
            Anf::Let { dst, rhs, body } => {
                match rhs {
                    Rhs::Atom(at) | Rhs::TagOf(at) => atom(at, bound, used),
                    Rhs::Prim(_, args) | Rhs::Tuple(args) => {
                        args.iter().for_each(|at| atom(at, bound, used));
                    }
                    Rhs::Con { arg, .. } => {
                        if let Some(at) = arg {
                            atom(at, bound, used);
                        }
                    }
                    Rhs::Proj { of, .. } => atom(of, bound, used),
                    Rhs::App { f, arg } => {
                        atom(f, bound, used);
                        atom(arg, bound, used);
                    }
                    Rhs::CallKnown { f, args } => {
                        atom(&Atom::Var(*f), bound, used);
                        args.iter().for_each(|at| atom(at, bound, used));
                    }
                    Rhs::Sub(sub) => collect(sub, bound, used),
                    Rhs::Lam(lam) => {
                        let mut inner_bound = bound.clone();
                        inner_bound.extend(lam.params.iter().copied());
                        collect(&lam.body, &mut inner_bound, used);
                    }
                }
                bound.insert(*dst);
                collect(body, bound, used);
            }
            Anf::LetRec { binds, body } => {
                for (v, _) in binds {
                    bound.insert(*v);
                }
                for (_, lam) in binds {
                    let mut inner_bound = bound.clone();
                    inner_bound.extend(lam.params.iter().copied());
                    collect(&lam.body, &mut inner_bound, used);
                }
                collect(body, bound, used);
            }
        }
    }
    for lam in lams {
        let mut b = bound.clone();
        collect(&lam.body, &mut b, &mut used);
    }
    used.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::lower_program;
    use crate::parser::parse_program;
    use crate::types::check_program;

    fn flat(src: &str) -> FlatProgram {
        let mut prog = parse_program(src).expect("parses");
        let data = check_program(&mut prog).expect("typechecks");
        convert_program(&lower_program(&prog, &data))
    }

    fn count_rhs(p: &FlatProgram, pred: &dyn Fn(&FRhs) -> bool) -> usize {
        fn go(e: &FExpr, pred: &dyn Fn(&FRhs) -> bool, n: &mut usize) {
            match e {
                FExpr::Ret(_) | FExpr::Crash(_) => {}
                FExpr::Let { rhs, body, .. } => {
                    if pred(rhs) {
                        *n += 1;
                    }
                    if let FRhs::Sub(s) = rhs {
                        go(s, pred, n);
                    }
                    go(body, pred, n);
                }
                FExpr::If { then_, else_, .. } => {
                    go(then_, pred, n);
                    go(else_, pred, n);
                }
            }
        }
        let mut n = 0;
        for f in &p.funs {
            go(&f.body, pred, &mut n);
        }
        n
    }

    #[test]
    fn direct_calls_survive_conversion() {
        let p = flat("fun add a b = a + b; val x = add 1 2;");
        assert_eq!(count_rhs(&p, &|r| matches!(r, FRhs::CallDirect { .. })), 1);
    }

    #[test]
    fn recursion_is_direct_through_current_env() {
        let p = flat("fun fact n = if n = 0 then 1 else n * fact (n - 1); val x = fact 5;");
        // Two direct calls: the recursive one and the top-level one.
        assert_eq!(count_rhs(&p, &|r| matches!(r, FRhs::CallDirect { .. })), 2);
        assert_eq!(count_rhs(&p, &|r| matches!(r, FRhs::Apply { .. })), 0);
    }

    #[test]
    fn first_class_use_makes_wrappers() {
        let p = flat(
            "fun add a b = a + b;
             fun apply2 f = f 1 2;
             val x = apply2 add;",
        );
        // `add` is materialised via its curry wrapper chain (arity 2 =>
        // one wrapper pair) and applied twice generically.
        assert!(count_rhs(&p, &|r| matches!(r, FRhs::MakeClosure { .. })) >= 1);
        assert_eq!(count_rhs(&p, &|r| matches!(r, FRhs::Apply { .. })), 2);
        assert!(p.funs.iter().any(|f| f.name.contains("curry")));
    }

    #[test]
    fn captured_variables_come_from_env() {
        let p = flat(
            "val base = 100;
             fun addb x = x + base;
             val y = addb 1;",
        );
        // addb's body projects `base` out of its environment.
        assert!(count_rhs(&p, &|r| matches!(r, FRhs::Proj { .. })) >= 1);
    }

    #[test]
    fn anonymous_lambdas_lift() {
        let p = flat("val f = fn x => x + 1; val y = f 2;");
        assert!(p.funs.len() >= 2, "main + lifted lambda");
        assert_eq!(count_rhs(&p, &|r| matches!(r, FRhs::Apply { .. })), 1);
    }

    #[test]
    fn mutual_recursion_shares_env() {
        let p = flat(
            "val k = 1;
             fun even n = if n = 0 then true else odd (n - k)
             and odd n = if n = 0 then false else even (n - k);
             val t = even 4;",
        );
        assert!(count_rhs(&p, &|r| matches!(r, FRhs::CallDirect { .. })) >= 3);
    }
}
