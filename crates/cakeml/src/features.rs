//! Source-level feature coverage.
//!
//! The campaign engine (crate `campaign`) judges a generated workload not
//! only by the ISA-level edges it exercises but also by which *source
//! language constructs* it contains: a corpus full of integer arithmetic
//! is worth little for shaking out the pattern-match compiler. This
//! module assigns every AST construct of interest a [`Feature`] bit and
//! folds a whole [`Program`] into a [`FeatureSet`] — a 64-bit set with
//! the same `insert`/`merge`/`has_new_bits` vocabulary as
//! `ag32::EdgeSet`, so the corpus "keep if new coverage" policy can
//! treat the two uniformly.

use crate::ast::{Decl, Expr, Lit, Pat, Prim, Program};

/// A source-language construct tracked for corpus coverage.
///
/// The variants are dense (`LitInt = 0` …) so a [`FeatureSet`] is a
/// plain `u64` bitset. Primitive operations are grouped into categories
/// (all comparison operators are one feature) — the point is steering
/// generation toward unexercised *compiler paths*, not cataloguing every
/// operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Feature {
    /// Integer literal.
    LitInt = 0,
    /// Boolean literal.
    LitBool,
    /// Character literal.
    LitChar,
    /// String literal.
    LitStr,
    /// `()` literal.
    LitUnit,
    /// Constructor application (value position).
    ConExpr,
    /// Tuple expression.
    TupleExpr,
    /// Curried function application.
    App,
    /// `fn x => e` lambda.
    Lambda,
    /// `let val ... in ... end`.
    Let,
    /// `let fun ... in ... end` (local recursion).
    LetFun,
    /// `if`/`then`/`else`.
    If,
    /// `case ... of ...`.
    Case,
    /// `andalso` / `orelse` short-circuit operators.
    ShortCircuit,
    /// `e1; e2` sequencing.
    Seq,
    /// Wildcard or variable pattern.
    PatTrivial,
    /// Literal pattern.
    PatLit,
    /// Tuple pattern.
    PatTuple,
    /// Datatype-constructor pattern.
    PatCon,
    /// List patterns (`::` or `[]`).
    PatList,
    /// `val` declaration.
    DeclVal,
    /// `fun` declaration (top-level recursion).
    DeclFun,
    /// `datatype` declaration.
    DeclDatatype,
    /// Wrapping arithmetic (`+ - *`).
    Arith,
    /// Trapping `div` / `mod`.
    DivMod,
    /// Comparison (`< <= > >=`) and equality (`= <>`).
    Compare,
    /// `not`.
    BoolOp,
    /// String operations (concat, size, sub, substring, ord, chr).
    StringOp,
    /// Byte-array operations.
    BytesOp,
    /// References (`ref`, `!`, `:=`).
    RefOp,
    /// `ffi "name" conf bytes`.
    Ffi,
    /// `Runtime.exit`.
    Exit,
}

impl Feature {
    /// Number of features (dense from 0).
    pub const COUNT: usize = Feature::Exit as usize + 1;

    /// All features in declaration order.
    pub const ALL: [Feature; Feature::COUNT] = [
        Feature::LitInt,
        Feature::LitBool,
        Feature::LitChar,
        Feature::LitStr,
        Feature::LitUnit,
        Feature::ConExpr,
        Feature::TupleExpr,
        Feature::App,
        Feature::Lambda,
        Feature::Let,
        Feature::LetFun,
        Feature::If,
        Feature::Case,
        Feature::ShortCircuit,
        Feature::Seq,
        Feature::PatTrivial,
        Feature::PatLit,
        Feature::PatTuple,
        Feature::PatCon,
        Feature::PatList,
        Feature::DeclVal,
        Feature::DeclFun,
        Feature::DeclDatatype,
        Feature::Arith,
        Feature::DivMod,
        Feature::Compare,
        Feature::BoolOp,
        Feature::StringOp,
        Feature::BytesOp,
        Feature::RefOp,
        Feature::Ffi,
        Feature::Exit,
    ];

    /// Stable human-readable name (used in campaign reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Feature::LitInt => "lit-int",
            Feature::LitBool => "lit-bool",
            Feature::LitChar => "lit-char",
            Feature::LitStr => "lit-str",
            Feature::LitUnit => "lit-unit",
            Feature::ConExpr => "con",
            Feature::TupleExpr => "tuple",
            Feature::App => "app",
            Feature::Lambda => "lambda",
            Feature::Let => "let",
            Feature::LetFun => "letfun",
            Feature::If => "if",
            Feature::Case => "case",
            Feature::ShortCircuit => "short-circuit",
            Feature::Seq => "seq",
            Feature::PatTrivial => "pat-trivial",
            Feature::PatLit => "pat-lit",
            Feature::PatTuple => "pat-tuple",
            Feature::PatCon => "pat-con",
            Feature::PatList => "pat-list",
            Feature::DeclVal => "decl-val",
            Feature::DeclFun => "decl-fun",
            Feature::DeclDatatype => "decl-datatype",
            Feature::Arith => "arith",
            Feature::DivMod => "divmod",
            Feature::Compare => "compare",
            Feature::BoolOp => "bool-op",
            Feature::StringOp => "string-op",
            Feature::BytesOp => "bytes-op",
            Feature::RefOp => "ref-op",
            Feature::Ffi => "ffi",
            Feature::Exit => "exit",
        }
    }

    /// The feature category of a primitive operation.
    #[must_use]
    pub fn of_prim(p: &Prim) -> Feature {
        match p {
            Prim::Add | Prim::Sub | Prim::Mul => Feature::Arith,
            Prim::Div | Prim::Mod => Feature::DivMod,
            Prim::Lt
            | Prim::Le
            | Prim::Gt
            | Prim::Ge
            | Prim::Eq
            | Prim::Ne
            | Prim::EqStr => Feature::Compare,
            Prim::Not => Feature::BoolOp,
            Prim::Concat
            | Prim::StrSize
            | Prim::StrSub
            | Prim::StrSubstr
            | Prim::Ord
            | Prim::Chr => Feature::StringOp,
            Prim::BytesNew
            | Prim::BytesLen
            | Prim::BytesGet
            | Prim::BytesSet
            | Prim::BytesToStr
            | Prim::StrToBytes => Feature::BytesOp,
            Prim::RefNew | Prim::RefGet | Prim::RefSet => Feature::RefOp,
            Prim::Ffi(_) => Feature::Ffi,
            Prim::Exit => Feature::Exit,
        }
    }
}

/// A set of [`Feature`]s as a `u64` bitset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeatureSet {
    bits: u64,
}

impl FeatureSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        FeatureSet { bits: 0 }
    }

    /// Inserts a feature; returns `true` if it was not present before.
    pub fn insert(&mut self, f: Feature) -> bool {
        let bit = 1u64 << (f as u8);
        let fresh = self.bits & bit == 0;
        self.bits |= bit;
        fresh
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, f: Feature) -> bool {
        self.bits & (1u64 << (f as u8)) != 0
    }

    /// Number of features present.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Does `self` contain any feature missing from `seen`?
    #[must_use]
    pub fn has_new_bits(&self, seen: &FeatureSet) -> bool {
        self.bits & !seen.bits != 0
    }

    /// Unions `other` into `self`; returns how many features were new.
    pub fn merge(&mut self, other: &FeatureSet) -> usize {
        let new = (other.bits & !self.bits).count_ones() as usize;
        self.bits |= other.bits;
        new
    }

    /// The raw bits (stable across runs: variant discriminants).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Names of the present features, in declaration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        Feature::ALL
            .iter()
            .filter(|f| self.contains(**f))
            .map(|f| f.name())
            .collect()
    }
}

/// Folds an entire program into its feature set.
#[must_use]
pub fn program_features(p: &Program) -> FeatureSet {
    let mut set = FeatureSet::new();
    for d in &p.decls {
        walk_decl(d, &mut set);
    }
    set
}

fn walk_decl(d: &Decl, set: &mut FeatureSet) {
    match d {
        Decl::Val(p, e) => {
            set.insert(Feature::DeclVal);
            walk_pat(p, set);
            walk_expr(e, set);
        }
        Decl::Fun(binds) => {
            set.insert(Feature::DeclFun);
            for b in binds {
                walk_expr(&b.body, set);
            }
        }
        Decl::Datatype(_, _) => {
            set.insert(Feature::DeclDatatype);
        }
    }
}

fn walk_lit(l: &Lit, set: &mut FeatureSet) {
    set.insert(match l {
        Lit::Int(_) => Feature::LitInt,
        Lit::Bool(_) => Feature::LitBool,
        Lit::Char(_) => Feature::LitChar,
        Lit::Str(_) => Feature::LitStr,
        Lit::Unit => Feature::LitUnit,
    });
}

fn walk_pat(p: &Pat, set: &mut FeatureSet) {
    match p {
        Pat::Wild | Pat::Var(_) => {
            set.insert(Feature::PatTrivial);
        }
        Pat::Lit(l) => {
            set.insert(Feature::PatLit);
            walk_lit(l, set);
        }
        Pat::Tuple(ps) => {
            set.insert(Feature::PatTuple);
            for q in ps {
                walk_pat(q, set);
            }
        }
        Pat::Con(_, arg) => {
            set.insert(Feature::PatCon);
            if let Some(q) = arg {
                walk_pat(q, set);
            }
        }
        Pat::Cons(h, t) => {
            set.insert(Feature::PatList);
            walk_pat(h, set);
            walk_pat(t, set);
        }
        Pat::ListNil => {
            set.insert(Feature::PatList);
        }
    }
}

fn walk_expr(e: &Expr, set: &mut FeatureSet) {
    match e {
        Expr::Lit(l) => walk_lit(l, set),
        Expr::Var(_) => {}
        Expr::Con(_, arg) => {
            set.insert(Feature::ConExpr);
            if let Some(a) = arg {
                walk_expr(a, set);
            }
        }
        Expr::Tuple(es) => {
            set.insert(Feature::TupleExpr);
            for x in es {
                walk_expr(x, set);
            }
        }
        Expr::Prim(p, es) => {
            set.insert(Feature::of_prim(p));
            for x in es {
                walk_expr(x, set);
            }
        }
        Expr::App(f, a) => {
            set.insert(Feature::App);
            walk_expr(f, set);
            walk_expr(a, set);
        }
        Expr::Fn(_, b) => {
            set.insert(Feature::Lambda);
            walk_expr(b, set);
        }
        Expr::Let(p, e1, e2) => {
            set.insert(Feature::Let);
            walk_pat(p, set);
            walk_expr(e1, set);
            walk_expr(e2, set);
        }
        Expr::LetFun(binds, body) => {
            set.insert(Feature::LetFun);
            for b in binds {
                walk_expr(&b.body, set);
            }
            walk_expr(body, set);
        }
        Expr::If(c, t, f) => {
            set.insert(Feature::If);
            walk_expr(c, set);
            walk_expr(t, set);
            walk_expr(f, set);
        }
        Expr::Case(scrut, arms) => {
            set.insert(Feature::Case);
            walk_expr(scrut, set);
            for (p, a) in arms {
                walk_pat(p, set);
                walk_expr(a, set);
            }
        }
        Expr::AndAlso(a, b) | Expr::OrElse(a, b) => {
            set.insert(Feature::ShortCircuit);
            walk_expr(a, set);
            walk_expr(b, set);
        }
        Expr::Seq(a, b) => {
            set.insert(Feature::Seq);
            walk_expr(a, set);
            walk_expr(b, set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_bits_fit_in_u64_and_are_dense() {
        assert!(Feature::COUNT <= 64);
        for (i, f) in Feature::ALL.iter().enumerate() {
            assert_eq!(*f as usize, i, "{:?} is not dense", f);
        }
        // Names are unique.
        let mut names: Vec<_> = Feature::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Feature::COUNT);
    }

    #[test]
    fn set_insert_merge_new_bits() {
        let mut a = FeatureSet::new();
        assert!(a.insert(Feature::If));
        assert!(!a.insert(Feature::If));
        assert!(a.contains(Feature::If));
        assert_eq!(a.count(), 1);

        let mut b = FeatureSet::new();
        b.insert(Feature::If);
        b.insert(Feature::Case);
        assert!(b.has_new_bits(&a));
        assert!(!a.has_new_bits(&b));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.count(), 2);
        assert!(!b.has_new_bits(&a));
        assert_eq!(a.names(), vec!["if", "case"]);
    }

    #[test]
    fn program_features_walks_all_layers() {
        let src = r#"
            datatype t = A | B of int;
            fun f x = case x of A => 0 | B n => n + 1;
            val r = ref 5;
            val _ = r := (if !r < 10 then f (B 2) else 0);
            val _ = Runtime.exit (!r);
        "#;
        let prog = crate::parser::parse_program(src).expect("parse");
        let fs = program_features(&prog);
        for f in [
            Feature::DeclDatatype,
            Feature::DeclFun,
            Feature::DeclVal,
            Feature::Case,
            Feature::PatCon,
            Feature::PatTrivial,
            Feature::If,
            Feature::RefOp,
            Feature::Arith,
            Feature::Compare,
            Feature::Exit,
            Feature::LitInt,
        ] {
            assert!(fs.contains(f), "missing {:?} in {:?}", f, fs.names());
        }
        assert!(!fs.contains(Feature::BytesOp));
        assert!(!fs.contains(Feature::Ffi));
    }
}
