//! Abstract syntax of the source language.
//!
//! The language is a strict, impure ML in the CakeML family: curried
//! functions, algebraic datatypes, pattern matching, references, byte
//! arrays, strings, and the foreign-function-call primitive
//! `ffi "name" conf bytes` that CakeML programs use to reach the basis
//! library's system calls (§5 of the paper).
//!
//! Documented deviations from CakeML (see `DESIGN.md`): integers are
//! 31-bit wrapping (CakeML has bignums), user datatypes are monomorphic
//! (lists are the built-in polymorphic container), equality is restricted
//! to the equality types `int`, `bool`, `char`, `string`, and there is no
//! exception mechanism — failures (division by zero, out-of-bounds,
//! unmatched case) terminate the program with a documented exit code.

use std::fmt;

/// Signed integers are 31-bit two's complement; all arithmetic wraps.
pub const INT_BITS: u32 = 31;

/// Wraps an integer to the language's 31-bit signed range.
#[must_use]
pub fn wrap_int(v: i64) -> i64 {
    let m = 1i64 << (INT_BITS - 1);
    ((v + m).rem_euclid(1i64 << INT_BITS)) - m
}

/// Exit code for division/modulo by zero.
pub const EXIT_DIV: u8 = 2;
/// Exit code for out-of-bounds string/array access or `chr` overflow.
pub const EXIT_SUBSCRIPT: u8 = 3;
/// Exit code for an unmatched `case`.
pub const EXIT_MATCH: u8 = 4;
/// Exit code when the bump allocator exhausts the heap — the
/// out-of-memory behaviour that `extend_with_oom` permits (§2.3).
pub const EXIT_OOM: u8 = 5;

/// Built-in primitive operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prim {
    /// `+` (wrapping).
    Add,
    /// `-` (wrapping).
    Sub,
    /// `*` (wrapping).
    Mul,
    /// `div` (truncating; traps on zero).
    Div,
    /// `mod` (truncating remainder; traps on zero).
    Mod,
    /// `<` on ints or chars.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=` on equality types. After type elaboration this denotes *word*
    /// equality (int, bool, char, unit); string equality is rewritten to
    /// [`Prim::EqStr`].
    Eq,
    /// `<>` on equality types (rewritten to `not (= ...)` by elaboration).
    Ne,
    /// String equality (internal; produced by type elaboration).
    EqStr,
    /// `not`.
    Not,
    /// `^` string concatenation.
    Concat,
    /// `String.size`.
    StrSize,
    /// `String.sub` (traps out of bounds).
    StrSub,
    /// `String.substring s off len` (traps out of bounds).
    StrSubstr,
    /// `Char.ord`.
    Ord,
    /// `Char.chr` (traps outside 0..=255).
    Chr,
    /// `Word8Array.array n c` — fresh byte array of length `n` filled
    /// with the byte of char `c`.
    BytesNew,
    /// `Word8Array.length`.
    BytesLen,
    /// `Word8Array.sub` — returns a char (traps out of bounds).
    BytesGet,
    /// `Word8Array.update arr i c` (traps out of bounds).
    BytesSet,
    /// `Word8Array.substring arr off len` — copy out as a string.
    BytesToStr,
    /// `Word8Array.copyStr s arr off` — copy a string into an array.
    StrToBytes,
    /// `ref e`.
    RefNew,
    /// `!e`.
    RefGet,
    /// `e := e`.
    RefSet,
    /// `ffi "name" conf bytes` — call the foreign function `name` with a
    /// configuration string and a mutable byte array (CakeML's FFI).
    Ffi(String),
    /// `exit n` — terminate with the given exit code.
    Exit,
}

impl Prim {
    /// Number of value arguments the primitive takes.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            Prim::Not
            | Prim::StrSize
            | Prim::Ord
            | Prim::Chr
            | Prim::BytesLen
            | Prim::RefNew
            | Prim::RefGet
            | Prim::Exit => 1,
            Prim::Add
            | Prim::Sub
            | Prim::Mul
            | Prim::Div
            | Prim::Mod
            | Prim::Lt
            | Prim::Le
            | Prim::Gt
            | Prim::Ge
            | Prim::Eq
            | Prim::Ne
            | Prim::EqStr
            | Prim::Concat
            | Prim::StrSub
            | Prim::BytesNew
            | Prim::BytesGet
            | Prim::RefSet
            | Prim::Ffi(_) => 2,
            Prim::BytesSet | Prim::BytesToStr | Prim::StrToBytes | Prim::StrSubstr => 3,
        }
    }
}

/// Literal constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lit {
    /// Integer literal (wrapped to 31 bits).
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Character literal `#"c"`.
    Char(u8),
    /// String literal.
    Str(String),
    /// `()`.
    Unit,
}

/// Patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pat {
    /// `_`.
    Wild,
    /// A binder.
    Var(String),
    /// A literal pattern (int, bool, char, string, unit).
    Lit(Lit),
    /// Tuple pattern `(p1, ..., pn)`, n >= 2.
    Tuple(Vec<Pat>),
    /// Constructor pattern: `Nil`, `Cons p`, `C (p1, p2)` is `C` applied
    /// to a tuple pattern. The built-in list constructors are `::`
    /// (binary, via [`Pat::Cons`]) and `[]` ([`Pat::ListNil`]).
    Con(String, Option<Box<Pat>>),
    /// `p :: p`.
    Cons(Box<Pat>, Box<Pat>),
    /// `[]` (also produced by `[p1, ..., pn]` sugar).
    ListNil,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A literal.
    Lit(Lit),
    /// A variable (or constructor used as a value, resolved later).
    Var(String),
    /// Constructor application `C` or `C e`.
    Con(String, Option<Box<Expr>>),
    /// Tuple `(e1, ..., en)`, n >= 2.
    Tuple(Vec<Expr>),
    /// Primitive application, fully applied.
    Prim(Prim, Vec<Expr>),
    /// Function application `f x` (curried, left-associative).
    App(Box<Expr>, Box<Expr>),
    /// `fn x => e`.
    Fn(String, Box<Expr>),
    /// `let val x = e1 in e2 end` (also `val _ = ...` for sequencing).
    Let(Pat, Box<Expr>, Box<Expr>),
    /// `let fun f x y = e1 (and g ...)* in e2 end` — local recursive
    /// (possibly mutually recursive) functions.
    LetFun(Vec<FunBind>, Box<Expr>),
    /// `if c then t else e`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `case e of p1 => e1 | ... | pn => en`.
    Case(Box<Expr>, Vec<(Pat, Expr)>),
    /// `e1 andalso e2` (short-circuit).
    AndAlso(Box<Expr>, Box<Expr>),
    /// `e1 orelse e2` (short-circuit).
    OrElse(Box<Expr>, Box<Expr>),
    /// `e1; e2` sequencing.
    Seq(Box<Expr>, Box<Expr>),
}

/// One function binding in a `fun ... and ...` group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunBind {
    /// Function name.
    pub name: String,
    /// Parameter names (curried; at least one).
    pub params: Vec<String>,
    /// Body.
    pub body: Expr,
}

/// One constructor in a datatype declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConDef {
    /// Constructor name (capitalised by convention).
    pub name: String,
    /// Argument type, if any (`of ty`).
    pub arg: Option<TyExpr>,
}

/// Surface type expressions (used in datatype declarations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TyExpr {
    /// `int`, `bool`, `char`, `string`, `unit`, or a datatype name.
    Name(String),
    /// `ty list`.
    List(Box<TyExpr>),
    /// `ty ref`.
    Ref(Box<TyExpr>),
    /// `ty1 * ... * tyn`.
    Tuple(Vec<TyExpr>),
    /// `ty -> ty`.
    Fun(Box<TyExpr>, Box<TyExpr>),
}

/// Top-level declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decl {
    /// `val p = e`.
    Val(Pat, Expr),
    /// `fun f x .. = e and g y .. = e ...`.
    Fun(Vec<FunBind>),
    /// `datatype t = C1 | C2 of ty | ...`.
    Datatype(String, Vec<ConDef>),
}

/// A complete program: declarations evaluated in order. The program's
/// effect is whatever its declarations' FFI calls perform.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level declarations.
    pub decls: Vec<Decl>,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Char(c) => write!(f, "#\"{}\"", *c as char),
            Lit::Str(s) => write!(f, "{s:?}"),
            Lit::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_int_covers_range() {
        assert_eq!(wrap_int(0), 0);
        assert_eq!(wrap_int(1 << 30), -(1i64 << 30));
        assert_eq!(wrap_int((1 << 30) - 1), (1 << 30) - 1);
        assert_eq!(wrap_int(-(1i64 << 30)), -(1i64 << 30));
        assert_eq!(wrap_int(1 << 31), 0);
        assert_eq!(wrap_int(-1), -1);
    }

    #[test]
    fn prim_arities() {
        assert_eq!(Prim::Add.arity(), 2);
        assert_eq!(Prim::BytesSet.arity(), 3);
        assert_eq!(Prim::Ffi("write".into()).arity(), 2);
        assert_eq!(Prim::Exit.arity(), 1);
    }
}
