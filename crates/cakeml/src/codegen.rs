//! Code generation: [`FlatIR`](crate::clos::FlatProgram) → Silver machine
//! code.
//!
//! The backend is a straightforward stack machine — every variable lives
//! in a frame slot — with three performance-relevant refinements that the
//! benchmark harness can ablate:
//!
//! * saturated known calls compile to direct jumps (decided earlier, in
//!   lowering),
//! * self- and mutual tail calls reuse the caller's return address
//!   (`CompilerConfig::tail_calls`), making loops run in constant stack,
//! * allocation is inline bump allocation against a limit register; the
//!   out-of-memory path exits cleanly with [`EXIT_OOM`](crate::ast::EXIT_OOM),
//!   which is precisely the behaviour the paper's `extend_with_oom`
//!   accommodates (§2.3, §6.1).
//!
//! # Value representation
//!
//! Immediates (int, bool, char, unit, nullary constructors) are tagged
//! `(v << 1) | 1`; heap pointers are 4-aligned addresses of blocks
//! `[header, fields...]` with `header = (len << 8) | (tag << 2) | 0b10`
//! (see [`crate::layout`]). Booleans are `1`/`3` (tagged 0/1).
//!
//! # Register conventions
//!
//! | regs   | use                                   |
//! |--------|---------------------------------------|
//! | r1–r5  | arguments / result / codegen scratch  |
//! | r6     | environment argument                  |
//! | r7–r12 | runtime-routine internals             |
//! | r56    | HP (bump pointer)                     |
//! | r57    | HL (heap limit)                       |
//! | r58    | SP (stack pointer, grows down)        |
//! | r59–61 | assembler/codegen scratch             |
//! | r62    | link register                         |
//! | r63    | runtime scratch                       |

use std::collections::HashMap;

use ag32::asm::{AsmError, Assembler};
use ag32::{Func, Instr, Reg, Ri, Shift};

use crate::anf::{Atom, VarId};
use crate::ast::{Prim, EXIT_DIV, EXIT_OOM, EXIT_SUBSCRIPT};
use crate::clos::{FExpr, FRhs, FlatProgram, FunId};
use crate::layout::{header, tag, Symbol, SymbolTable, TargetLayout};

const R1: Reg = Reg::new(1);
const R2: Reg = Reg::new(2);
const R3: Reg = Reg::new(3);
const R4: Reg = Reg::new(4);
const ENV: Reg = Reg::new(6);
const R7: Reg = Reg::new(7);
const R8: Reg = Reg::new(8);
const R9: Reg = Reg::new(9);
const R10: Reg = Reg::new(10);
const R11: Reg = Reg::new(11);
const R12: Reg = Reg::new(12);
const HP: Reg = Reg::new(56);
const HL: Reg = Reg::new(57);
const SP: Reg = Reg::new(58);
const S0: Reg = Reg::new(59);
const S1: Reg = Reg::new(60);
const S2: Reg = Reg::new(61);
const LINK: Reg = Reg::new(62);
// Registers r13-r31 are reserved for the garbage collector and runtime
// byte-copy temporaries; compiled code never holds values in them.
const R13: Reg = Reg::new(13);
const R14: Reg = Reg::new(14);
const R15: Reg = Reg::new(15);
const R16: Reg = Reg::new(16);
const R17: Reg = Reg::new(17);
const R18: Reg = Reg::new(18);
const R19: Reg = Reg::new(19);
const R20: Reg = Reg::new(20);
const R21: Reg = Reg::new(21);
const R22: Reg = Reg::new(22);
const R23: Reg = Reg::new(23);
const R24: Reg = Reg::new(24);
const R25: Reg = Reg::new(25);
const R26: Reg = Reg::new(26);
const R27: Reg = Reg::new(27);
const R28: Reg = Reg::new(28);
const R29: Reg = Reg::new(29);
const R30: Reg = Reg::new(30);
const R31: Reg = Reg::new(31);
const GC_LINK: Reg = Reg::new(55);

fn tag_imm(v: i64) -> u32 {
    ((v << 1) | 1) as u32
}

fn atom_imm(a: Atom) -> Option<u32> {
    match a {
        Atom::Int(v) => Some(tag_imm(v)),
        Atom::Bool(b) => Some(if b { 3 } else { 1 }),
        Atom::Char(c) => Some(tag_imm(i64::from(c))),
        Atom::Unit => Some(1),
        Atom::Var(_) | Atom::Str(_) => None,
    }
}

/// Compiler options; each switch exists so the ablation benchmarks can
/// measure what it buys.
#[derive(Clone, Copy, Debug)]
pub struct CompilerConfig {
    /// Recognise saturated calls of known functions (lowering).
    pub direct_calls: bool,
    /// Compile tail calls without growing the stack.
    pub tail_calls: bool,
    /// Prepend the basis-library prelude.
    pub prelude: bool,
    /// Run the ANF optimiser (constant folding, copy propagation, branch
    /// simplification, dead-code elimination).
    pub const_fold: bool,
    /// Enable the two-space copying garbage collector (the paper's
    /// CakeML has a GC; the primary runtime here is bump allocation with
    /// a clean out-of-memory exit, which `extend_with_oom` permits).
    /// With `gc` the heap is split into semispaces and exhaustion
    /// triggers a Cheney collection instead of an immediate OOM exit.
    pub gc: bool,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig { direct_calls: true, tail_calls: true, prelude: true, const_fold: true, gc: false }
    }
}

/// The output of compilation: a position-dependent code+data image based
/// at [`TargetLayout::code_base`].
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Machine code and data, to be loaded at `layout.code_base`.
    pub code: Vec<u8>,
    /// FFI names in jump-table order.
    pub ffi_names: Vec<String>,
    /// The memory layout the code was compiled against.
    pub layout: TargetLayout,
    /// Number of compiled functions (including curry wrappers and main).
    pub fun_count: usize,
    /// PC→name map over the image: source function names for `f{N}`
    /// labels, runtime routines (`rt_*`), and the `_start` stub. Feeds
    /// the `silverc --profile` cycle profiler.
    pub symbols: SymbolTable,
}

struct Gen {
    asm: Assembler,
    layout: TargetLayout,
    cfg: CompilerConfig,
    labels: u32,
    ffi_names: Vec<String>,
    slots: HashMap<VarId, u32>,
    frame_bytes: u32,
}

/// Compiles a closure-converted program to machine code.
///
/// # Errors
///
/// Assembler failures (duplicate/undefined labels) indicate a codegen
/// bug and are surfaced as [`AsmError`].
pub fn generate(p: &FlatProgram, layout: TargetLayout, cfg: CompilerConfig) -> Result<CompiledProgram, AsmError> {
    let mut g = Gen {
        asm: Assembler::new(layout.code_base),
        layout,
        cfg,
        labels: 0,
        ffi_names: p.ffi_names.clone(),
        slots: HashMap::new(),
        frame_bytes: 0,
    };
    g.emit_start(p.main);
    for (i, f) in p.funs.iter().enumerate() {
        g.emit_fun(FunId(i as u32), f);
    }
    g.emit_runtime();
    g.emit_strings(&p.strings);
    let code = g.asm.assemble()?;
    let symbols = symbol_table(&g.asm, p);
    Ok(CompiledProgram {
        code,
        ffi_names: p.ffi_names.clone(),
        layout,
        fun_count: p.funs.len(),
        symbols,
    })
}

/// Builds the PC→name map from the assembler's resolved labels:
/// `f{N}` labels are renamed to their source function's debug name
/// (disambiguated with the id when names repeat), runtime routines
/// (`rt_*`), `_start` and string-pool entries keep their labels, and
/// internal control-flow labels (`else_*`, `sub_*`, ...) are dropped.
fn symbol_table(asm: &Assembler, p: &FlatProgram) -> SymbolTable {
    let mut syms = Vec::new();
    for (label, addr) in asm.label_addresses() {
        if label == "_start" || label.starts_with("rt_") {
            syms.push(Symbol { addr, name: label });
        } else if let Some(n) = label.strip_prefix('f').and_then(|n| n.parse::<usize>().ok()) {
            if let Some(f) = p.funs.get(n) {
                let name =
                    if f.name.is_empty() { format!("f{n}") } else { format!("{}#{n}", f.name) };
                syms.push(Symbol { addr, name });
            }
        }
    }
    SymbolTable::new(syms)
}

fn fun_label(f: FunId) -> String {
    format!("f{}", f.0)
}

impl Gen {
    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}_{}", self.labels - 1)
    }

    fn li(&mut self, r: Reg, v: u32) {
        self.asm.li(r, v);
    }

    fn mov(&mut self, dst: Reg, src: Reg) {
        self.asm.normal(Func::Add, dst, Ri::Reg(src), Ri::Imm(0));
    }

    fn jmp(&mut self, label: &str) {
        self.asm.jmp(label, S1, S2);
    }

    fn call(&mut self, label: &str) {
        self.asm.call(label, S1, LINK);
    }

    fn ret(&mut self) {
        self.asm.instr(Instr::Jump { func: Func::Snd, w: S0, a: Ri::Reg(LINK) });
    }

    /// Loads an atom into `dst`; clobbers only `dst` and S2.
    fn load_atom(&mut self, dst: Reg, a: Atom) {
        match a {
            Atom::Var(v) => {
                let off = self.slot_off(v);
                self.li(S2, off);
                self.asm.normal(Func::Add, S2, Ri::Reg(SP), Ri::Reg(S2));
                self.asm.instr(Instr::LoadMem { w: dst, a: Ri::Reg(S2) });
            }
            Atom::Str(id) => self.asm.la(dst, format!("s{}", id.0)),
            other => self.li(dst, atom_imm(other).expect("immediate")),
        }
    }

    fn store_slot(&mut self, v: VarId, src: Reg) {
        let off = self.slot_off(v);
        self.li(S2, off);
        self.asm.normal(Func::Add, S2, Ri::Reg(SP), Ri::Reg(S2));
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(src), b: Ri::Reg(S2) });
    }

    fn slot_off(&mut self, v: VarId) -> u32 {
        let next = self.slots.len() as u32;
        4 + 4 * *self.slots.entry(v).or_insert(next)
    }

    /// Allocation of `size` bytes (header included, already 4-aligned);
    /// returns the block pointer in `ptr`. Goes through `rt_alloc`, which
    /// bump-allocates and — when the collector is enabled — performs a
    /// Cheney collection on exhaustion before giving up with OOM.
    fn alloc_const(&mut self, ptr: Reg, size: u32) {
        self.li(R9, size);
        self.call("rt_alloc");
        if ptr != R1 {
            self.mov(ptr, R1);
        }
    }

    /// Makes a block of `fields` atoms with the given tag; result in R1.
    /// Clobbers R3, R4, scratch.
    fn make_block(&mut self, tag_bits: u32, fields: &[Atom]) {
        self.alloc_const(R4, 4 + 4 * fields.len() as u32);
        self.li(S0, header(tag_bits, fields.len() as u32));
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(S0), b: Ri::Reg(R4) });
        for (i, f) in fields.iter().enumerate() {
            self.load_atom(R3, *f);
            self.li(S0, 4 + 4 * i as u32);
            self.asm.normal(Func::Add, S0, Ri::Reg(R4), Ri::Reg(S0));
            self.asm.instr(Instr::StoreMem { a: Ri::Reg(R3), b: Ri::Reg(S0) });
        }
        self.mov(R1, R4);
    }

    // ---- program scaffolding ----

    fn emit_start(&mut self, main: FunId) {
        self.asm.label("_start");
        self.li(SP, self.layout.stack_top);
        self.li(HP, self.layout.heap_base);
        let initial_limit =
            if self.cfg.gc { self.layout.heap_mid() } else { self.layout.heap_end };
        self.li(HL, initial_limit);
        self.li(ENV, 1);
        self.call(&fun_label(main));
        self.li(R1, 1); // exit code 0, tagged
        self.jmp("rt_exit");
    }

    fn collect_slots(e: &FExpr, out: &mut Vec<VarId>) {
        match e {
            FExpr::Ret(_) | FExpr::Crash(_) => {}
            FExpr::Let { dst, rhs, body } => {
                out.push(*dst);
                if let FRhs::Sub(s) = rhs {
                    Self::collect_slots(s, out);
                }
                Self::collect_slots(body, out);
            }
            FExpr::If { then_, else_, .. } => {
                Self::collect_slots(then_, out);
                Self::collect_slots(else_, out);
            }
        }
    }

    fn emit_fun(&mut self, id: FunId, f: &crate::clos::FlatFun) {
        // Assign slots: params, env, then every let destination.
        self.slots.clear();
        for p in &f.params {
            let n = self.slots.len() as u32;
            self.slots.insert(*p, n);
        }
        let n = self.slots.len() as u32;
        self.slots.insert(f.env_var, n);
        let mut dsts = Vec::new();
        Self::collect_slots(&f.body, &mut dsts);
        for d in dsts {
            let n = self.slots.len() as u32;
            self.slots.entry(d).or_insert(n);
        }
        self.frame_bytes = 4 + 4 * self.slots.len() as u32;

        self.asm.label(fun_label(id));
        // Prologue: stack check, push frame, save link/args/env.
        self.li(S0, self.frame_bytes);
        self.asm.normal(Func::Sub, S0, Ri::Reg(SP), Ri::Reg(S0));
        self.li(S1, self.layout.stack_floor);
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(S0), Ri::Reg(S1), "rt_oom", S2);
        self.mov(SP, S0);
        if self.cfg.gc {
            // Zero the frame so the collector never scans stale words.
            let zl = self.fresh_label("zero");
            self.li(S0, 0);
            self.asm.normal(Func::Add, S1, Ri::Reg(SP), Ri::Imm(4));
            self.li(S2, self.frame_bytes);
            self.asm.normal(Func::Add, S2, Ri::Reg(SP), Ri::Reg(S2));
            self.asm.label(zl.clone());
            self.asm.branch_zero_sub(Ri::Reg(S1), Ri::Reg(S2), format!("{zl}_d"), R31);
            self.asm.instr(Instr::StoreMem { a: Ri::Reg(S0), b: Ri::Reg(S1) });
            self.asm.normal(Func::Add, S1, Ri::Reg(S1), Ri::Imm(4));
            self.asm.branch_zero(Func::Snd, Ri::Imm(0), Ri::Imm(0), zl.clone(), R31);
            self.asm.label(format!("{zl}_d"));
        }
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(LINK), b: Ri::Reg(SP) });
        let params = f.params.clone();
        for (i, p) in params.iter().enumerate() {
            self.store_slot(*p, Reg::new(1 + i as u8));
        }
        self.store_slot(f.env_var, ENV);

        self.gen_expr(&f.body, None);
    }

    /// Epilogue: restore the caller's link register and stack pointer.
    /// Clobbers S0 only.
    fn emit_epilogue_restore(&mut self) {
        self.asm.instr(Instr::LoadMem { w: LINK, a: Ri::Reg(SP) });
        self.li(S0, self.frame_bytes);
        self.asm.normal(Func::Add, SP, Ri::Reg(SP), Ri::Reg(S0));
    }

    /// Generates an expression. `end` is `None` in tail position
    /// (terminate by returning) or `Some(label)` for a nested
    /// computation that jumps to `label` with its value in R1.
    fn gen_expr(&mut self, e: &FExpr, end: Option<&str>) {
        match e {
            FExpr::Ret(a) => {
                self.load_atom(R1, *a);
                match end {
                    None => {
                        self.emit_epilogue_restore();
                        self.ret();
                    }
                    Some(l) => self.jmp(l),
                }
            }
            FExpr::Crash(c) => {
                self.li(R1, tag_imm(i64::from(*c)));
                self.jmp("rt_exit");
            }
            FExpr::If { cond, then_, else_ } => {
                let else_l = self.fresh_label("else");
                self.load_atom(R2, *cond);
                // false = 1, true = 3.
                self.asm.branch_nonzero_sub(Ri::Reg(R2), Ri::Imm(3), else_l.clone(), S0);
                self.gen_expr(then_, end);
                self.asm.label(else_l);
                self.gen_expr(else_, end);
            }
            FExpr::Let { dst, rhs, body } => {
                // Tail-call recognition.
                if self.cfg.tail_calls && end.is_none() {
                    if let FExpr::Ret(Atom::Var(v)) = **body {
                        if v == *dst {
                            match rhs {
                                FRhs::CallDirect { fun, args, env } => {
                                    let (fun, args, env) = (*fun, args.clone(), *env);
                                    self.gen_tail_call_direct(fun, &args, env);
                                    return;
                                }
                                FRhs::Apply { f, arg } => {
                                    let (f, arg) = (*f, *arg);
                                    self.gen_tail_apply(f, arg);
                                    return;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                self.gen_rhs(rhs);
                self.store_slot(*dst, R1);
                self.gen_expr(body, end);
            }
        }
    }

    fn gen_tail_call_direct(&mut self, fun: FunId, args: &[Atom], env: Atom) {
        for (i, a) in args.iter().enumerate() {
            self.load_atom(Reg::new(1 + i as u8), *a);
        }
        self.load_atom(ENV, env);
        self.emit_epilogue_restore();
        self.jmp(&fun_label(fun));
    }

    fn gen_tail_apply(&mut self, f: Atom, arg: Atom) {
        self.load_atom(R2, f);
        self.load_atom(R1, arg);
        // env := f[1]; code := f[0].
        self.asm.normal(Func::Add, S0, Ri::Reg(R2), Ri::Imm(8));
        self.asm.instr(Instr::LoadMem { w: ENV, a: Ri::Reg(S0) });
        self.asm.normal(Func::Add, S0, Ri::Reg(R2), Ri::Imm(4));
        self.asm.instr(Instr::LoadMem { w: R2, a: Ri::Reg(S0) });
        self.emit_epilogue_restore();
        self.asm.instr(Instr::Jump { func: Func::Snd, w: S0, a: Ri::Reg(R2) });
    }

    fn gen_rhs(&mut self, rhs: &FRhs) {
        match rhs {
            FRhs::Atom(a) => self.load_atom(R1, *a),
            FRhs::Tuple(fields) => self.make_block(tag::TUPLE, fields),
            FRhs::Con { tag: t, arg } => match arg {
                None => self.li(R1, tag_imm(i64::from(*t))),
                Some(a) => {
                    assert!(*t <= tag::MAX_CON, "constructor tag overflow");
                    self.make_block(*t, std::slice::from_ref(a));
                }
            },
            FRhs::Proj { index, of } => {
                self.load_atom(R2, *of);
                self.li(S0, 4 + 4 * *index as u32);
                self.asm.normal(Func::Add, S0, Ri::Reg(R2), Ri::Reg(S0));
                self.asm.instr(Instr::LoadMem { w: R1, a: Ri::Reg(S0) });
            }
            FRhs::TagOf(a) => {
                self.load_atom(R2, *a);
                let imm_l = self.fresh_label("tag_imm");
                let end_l = self.fresh_label("tag_end");
                self.asm.normal(Func::And, R3, Ri::Reg(R2), Ri::Imm(1));
                self.asm.branch_nonzero(Func::Snd, Ri::Imm(0), Ri::Reg(R3), imm_l.clone(), S0);
                // Block: tagged tag = ((hdr >> 1) & 0x7E) | 1.
                self.asm.instr(Instr::LoadMem { w: R1, a: Ri::Reg(R2) });
                self.asm.shift(Shift::Lr, R1, Ri::Reg(R1), Ri::Imm(1));
                self.li(R3, 0x7E);
                self.asm.normal(Func::And, R1, Ri::Reg(R1), Ri::Reg(R3));
                self.asm.normal(Func::Or, R1, Ri::Reg(R1), Ri::Imm(1));
                self.jmp(&end_l);
                self.asm.label(imm_l);
                self.mov(R1, R2);
                self.asm.label(end_l);
            }
            FRhs::MakeClosure { fun, env } => {
                self.alloc_const(R4, 12);
                self.li(S0, header(tag::CLOSURE, 2));
                self.asm.instr(Instr::StoreMem { a: Ri::Reg(S0), b: Ri::Reg(R4) });
                self.asm.la(R3, fun_label(*fun));
                self.asm.normal(Func::Add, S0, Ri::Reg(R4), Ri::Imm(4));
                self.asm.instr(Instr::StoreMem { a: Ri::Reg(R3), b: Ri::Reg(S0) });
                self.load_atom(R3, *env);
                self.asm.normal(Func::Add, S0, Ri::Reg(R4), Ri::Imm(8));
                self.asm.instr(Instr::StoreMem { a: Ri::Reg(R3), b: Ri::Reg(S0) });
                self.mov(R1, R4);
            }
            FRhs::Apply { f, arg } => {
                self.load_atom(R2, *f);
                self.load_atom(R1, *arg);
                self.asm.normal(Func::Add, S0, Ri::Reg(R2), Ri::Imm(8));
                self.asm.instr(Instr::LoadMem { w: ENV, a: Ri::Reg(S0) });
                self.asm.normal(Func::Add, S0, Ri::Reg(R2), Ri::Imm(4));
                self.asm.instr(Instr::LoadMem { w: R2, a: Ri::Reg(S0) });
                self.asm.instr(Instr::Jump { func: Func::Snd, w: LINK, a: Ri::Reg(R2) });
            }
            FRhs::CallDirect { fun, args, env } => {
                for (i, a) in args.iter().enumerate() {
                    self.load_atom(Reg::new(1 + i as u8), *a);
                }
                self.load_atom(ENV, *env);
                self.call(&fun_label(*fun));
            }
            FRhs::Sub(sub) => {
                let end = self.fresh_label("sub");
                self.gen_expr(sub, Some(&end));
                self.asm.label(end);
            }
            FRhs::Prim(p, args) => self.gen_prim(p, args),
        }
    }

    fn retag_bool(&mut self) {
        // R1 in {0,1} → {1,3}.
        self.asm.shift(Shift::Ll, R1, Ri::Reg(R1), Ri::Imm(1));
        self.asm.normal(Func::Or, R1, Ri::Reg(R1), Ri::Imm(1));
    }

    fn untag(&mut self, r: Reg) {
        self.asm.shift(Shift::Ar, r, Ri::Reg(r), Ri::Imm(1));
    }

    fn load2(&mut self, args: &[Atom]) {
        self.load_atom(R2, args[0]);
        self.load_atom(R3, args[1]);
    }

    /// Loads the byte length of a string/bytes block at `block` into `len`.
    fn load_len(&mut self, len: Reg, block: Reg) {
        self.asm.instr(Instr::LoadMem { w: len, a: Ri::Reg(block) });
        self.asm.shift(Shift::Lr, len, Ri::Reg(len), Ri::Imm(8));
    }

    #[allow(clippy::too_many_lines)]
    fn gen_prim(&mut self, p: &Prim, args: &[Atom]) {
        match p {
            Prim::Add => {
                self.load2(args);
                self.asm.normal(Func::Add, R1, Ri::Reg(R2), Ri::Reg(R3));
                self.asm.normal(Func::Dec, R1, Ri::Imm(0), Ri::Reg(R1));
            }
            Prim::Sub => {
                self.load2(args);
                self.asm.normal(Func::Sub, R1, Ri::Reg(R2), Ri::Reg(R3));
                self.asm.normal(Func::Inc, R1, Ri::Imm(0), Ri::Reg(R1));
            }
            Prim::Mul => {
                self.load2(args);
                self.untag(R2);
                self.untag(R3);
                self.asm.normal(Func::Mul, R1, Ri::Reg(R2), Ri::Reg(R3));
                self.asm.shift(Shift::Ll, R1, Ri::Reg(R1), Ri::Imm(1));
                self.asm.normal(Func::Or, R1, Ri::Reg(R1), Ri::Imm(1));
            }
            Prim::Div | Prim::Mod => {
                self.load_atom(R1, args[0]);
                self.load_atom(R2, args[1]);
                self.untag(R1);
                self.untag(R2);
                self.call(if matches!(p, Prim::Div) { "rt_div" } else { "rt_mod" });
                self.asm.shift(Shift::Ll, R1, Ri::Reg(R1), Ri::Imm(1));
                self.asm.normal(Func::Or, R1, Ri::Reg(R1), Ri::Imm(1));
            }
            Prim::Lt => {
                self.load2(args);
                self.asm.normal(Func::Less, R1, Ri::Reg(R2), Ri::Reg(R3));
                self.retag_bool();
            }
            Prim::Gt => {
                self.load2(args);
                self.asm.normal(Func::Less, R1, Ri::Reg(R3), Ri::Reg(R2));
                self.retag_bool();
            }
            Prim::Le => {
                self.load2(args);
                self.asm.normal(Func::Less, R1, Ri::Reg(R3), Ri::Reg(R2));
                self.asm.normal(Func::Xor, R1, Ri::Reg(R1), Ri::Imm(1));
                self.retag_bool();
            }
            Prim::Ge => {
                self.load2(args);
                self.asm.normal(Func::Less, R1, Ri::Reg(R2), Ri::Reg(R3));
                self.asm.normal(Func::Xor, R1, Ri::Reg(R1), Ri::Imm(1));
                self.retag_bool();
            }
            Prim::Eq => {
                self.load2(args);
                self.asm.normal(Func::Equal, R1, Ri::Reg(R2), Ri::Reg(R3));
                self.retag_bool();
            }
            Prim::EqStr => {
                self.load_atom(R1, args[0]);
                self.load_atom(R2, args[1]);
                self.call("rt_streq");
                self.retag_bool();
            }
            Prim::Ne => unreachable!("removed by elaboration"),
            Prim::Not => {
                self.load_atom(R1, args[0]);
                self.asm.normal(Func::Xor, R1, Ri::Reg(R1), Ri::Imm(2));
            }
            Prim::Concat => {
                self.load_atom(R1, args[0]);
                self.load_atom(R2, args[1]);
                self.call("rt_concat");
            }
            Prim::StrSize | Prim::BytesLen => {
                self.load_atom(R2, args[0]);
                self.load_len(R1, R2);
                self.retag_bool(); // same transformation: (n << 1) | 1
            }
            Prim::StrSub | Prim::BytesGet => {
                self.load2(args);
                self.untag(R3);
                self.load_len(R1, R2);
                // index >= len (unsigned, catches negatives) → subscript.
                self.asm.branch_zero(
                    Func::Lower,
                    Ri::Reg(R3),
                    Ri::Reg(R1),
                    "rt_subscript",
                    S0,
                );
                self.asm.normal(Func::Add, R3, Ri::Reg(R3), Ri::Imm(4));
                self.asm.normal(Func::Add, R3, Ri::Reg(R3), Ri::Reg(R2));
                self.asm.instr(Instr::LoadMemByte { w: R1, a: Ri::Reg(R3) });
                self.retag_bool();
            }
            Prim::BytesSet => {
                self.load_atom(R2, args[0]);
                self.load_atom(R3, args[1]);
                self.load_atom(R4, args[2]);
                self.untag(R3);
                self.untag(R4);
                self.load_len(R1, R2);
                self.asm.branch_zero(
                    Func::Lower,
                    Ri::Reg(R3),
                    Ri::Reg(R1),
                    "rt_subscript",
                    S0,
                );
                self.asm.normal(Func::Add, R3, Ri::Reg(R3), Ri::Imm(4));
                self.asm.normal(Func::Add, R3, Ri::Reg(R3), Ri::Reg(R2));
                self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R4), b: Ri::Reg(R3) });
                self.li(R1, 1);
            }
            Prim::Ord => self.load_atom(R1, args[0]),
            Prim::Chr => {
                self.load_atom(R1, args[0]);
                self.mov(R3, R1);
                self.untag(R3);
                self.li(R4, 256);
                self.asm.branch_zero(
                    Func::Lower,
                    Ri::Reg(R3),
                    Ri::Reg(R4),
                    "rt_subscript",
                    S0,
                );
            }
            Prim::BytesNew => {
                self.load_atom(R1, args[0]);
                self.load_atom(R2, args[1]);
                self.untag(R1);
                self.untag(R2);
                self.call("rt_bytes_new");
            }
            Prim::BytesToStr | Prim::StrSubstr => {
                self.load_atom(R1, args[0]);
                self.load_atom(R2, args[1]);
                self.load_atom(R3, args[2]);
                self.untag(R2);
                self.untag(R3);
                self.call("rt_substring");
            }
            Prim::StrToBytes => {
                self.load_atom(R1, args[0]);
                self.load_atom(R2, args[1]);
                self.load_atom(R3, args[2]);
                self.untag(R3);
                self.call("rt_copystr");
                self.li(R1, 1);
            }
            Prim::RefNew => self.make_block(tag::REF, std::slice::from_ref(&args[0])),
            Prim::RefGet => {
                self.load_atom(R2, args[0]);
                self.asm.normal(Func::Add, R2, Ri::Reg(R2), Ri::Imm(4));
                self.asm.instr(Instr::LoadMem { w: R1, a: Ri::Reg(R2) });
            }
            Prim::RefSet => {
                self.load2(args);
                self.asm.normal(Func::Add, R2, Ri::Reg(R2), Ri::Imm(4));
                self.asm.instr(Instr::StoreMem { a: Ri::Reg(R3), b: Ri::Reg(R2) });
                self.li(R1, 1);
            }
            Prim::Ffi(name) => {
                let idx = self
                    .ffi_names
                    .iter()
                    .position(|n| n == name)
                    .expect("ffi name collected during lowering") as u32;
                self.load_atom(R1, args[0]);
                self.load_atom(R3, args[1]);
                self.load_len(R2, R1);
                self.asm.normal(Func::Add, R1, Ri::Reg(R1), Ri::Imm(4));
                self.load_len(R4, R3);
                self.asm.normal(Func::Add, R3, Ri::Reg(R3), Ri::Imm(4));
                self.li(S1, self.layout.ffi_entry_addr(idx));
                self.asm.instr(Instr::LoadMem { w: S1, a: Ri::Reg(S1) });
                self.asm.instr(Instr::Jump { func: Func::Snd, w: LINK, a: Ri::Reg(S1) });
                self.li(R1, 1);
            }
            Prim::Exit => {
                self.load_atom(R1, args[0]);
                self.jmp("rt_exit");
            }
        }
    }

    // ---- the runtime ----

    fn emit_runtime(&mut self) {
        self.emit_rt_exit();
        self.emit_rt_alloc();
        if self.cfg.gc {
            self.emit_rt_gc();
        }
        self.emit_rt_divmod();
        self.emit_rt_streq();
        self.emit_rt_concat();
        self.emit_rt_bytes_new();
        self.emit_rt_substring();
        self.emit_rt_copystr();
    }

    fn emit_rt_exit(&mut self) {
        // r1 = tagged exit code; never returns.
        self.asm.label("rt_exit");
        self.untag(R1);
        self.li(R2, 0xFF);
        self.asm.normal(Func::And, R1, Ri::Reg(R1), Ri::Reg(R2));
        self.li(R2, self.layout.exit_code_addr);
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R1), b: Ri::Reg(R2) });
        // Jump to the halt self-loop in the startup region.
        self.li(R2, self.layout.halt_addr);
        self.asm.instr(Instr::Jump { func: Func::Snd, w: S0, a: Ri::Reg(R2) });

        self.asm.label("rt_oom");
        self.li(R1, tag_imm(i64::from(EXIT_OOM)));
        self.jmp("rt_exit");

        self.asm.label("rt_subscript");
        self.li(R1, tag_imm(i64::from(EXIT_SUBSCRIPT)));
        self.jmp("rt_exit");

        self.asm.label("rt_div_zero");
        self.li(R1, tag_imm(i64::from(EXIT_DIV)));
        self.jmp("rt_exit");
    }

    /// Emits the signed-division body (shift-subtract long division).
    /// Inputs r1 = A, r2 = B (untagged); outputs r1 = quotient,
    /// r2 = remainder, truncating semantics. Clobbers r7-r12, scratch.
    fn emit_divmod_body(&mut self, p: &str) {
        self.asm.branch_zero(Func::Snd, Ri::Imm(0), Ri::Reg(R2), "rt_div_zero", S0);
        self.asm.normal(Func::Less, R7, Ri::Reg(R1), Ri::Imm(0));
        self.asm.normal(Func::Less, R8, Ri::Reg(R2), Ri::Imm(0));
        self.asm.branch_zero(Func::Snd, Ri::Imm(0), Ri::Reg(R7), format!("{p}_apos"), S0);
        self.asm.normal(Func::Sub, R1, Ri::Imm(0), Ri::Reg(R1));
        self.asm.label(format!("{p}_apos"));
        self.asm.branch_zero(Func::Snd, Ri::Imm(0), Ri::Reg(R8), format!("{p}_bpos"), S0);
        self.asm.normal(Func::Sub, R2, Ri::Imm(0), Ri::Reg(R2));
        self.asm.label(format!("{p}_bpos"));
        self.li(R9, 0); // quotient
        self.li(R10, 0); // remainder
        self.li(R11, 32); // counter
        self.asm.label(format!("{p}_loop"));
        self.asm.shift(Shift::Ll, R10, Ri::Reg(R10), Ri::Imm(1));
        self.asm.shift(Shift::Lr, R12, Ri::Reg(R1), Ri::Imm(31));
        self.asm.normal(Func::Or, R10, Ri::Reg(R10), Ri::Reg(R12));
        self.asm.shift(Shift::Ll, R1, Ri::Reg(R1), Ri::Imm(1));
        self.asm.shift(Shift::Ll, R9, Ri::Reg(R9), Ri::Imm(1));
        self.asm.branch_nonzero(
            Func::Lower,
            Ri::Reg(R10),
            Ri::Reg(R2),
            format!("{p}_skip"),
            S0,
        );
        self.asm.normal(Func::Sub, R10, Ri::Reg(R10), Ri::Reg(R2));
        self.asm.normal(Func::Or, R9, Ri::Reg(R9), Ri::Imm(1));
        self.asm.label(format!("{p}_skip"));
        self.asm.normal(Func::Dec, R11, Ri::Imm(0), Ri::Reg(R11));
        self.asm.branch_nonzero_sub(Ri::Reg(R11), Ri::Imm(0), format!("{p}_loop"), S0);
        self.asm.normal(Func::Xor, R12, Ri::Reg(R7), Ri::Reg(R8));
        self.asm.branch_zero(Func::Snd, Ri::Imm(0), Ri::Reg(R12), format!("{p}_qpos"), S0);
        self.asm.normal(Func::Sub, R9, Ri::Imm(0), Ri::Reg(R9));
        self.asm.label(format!("{p}_qpos"));
        self.asm.branch_zero(Func::Snd, Ri::Imm(0), Ri::Reg(R7), format!("{p}_rpos"), S0);
        self.asm.normal(Func::Sub, R10, Ri::Imm(0), Ri::Reg(R10));
        self.asm.label(format!("{p}_rpos"));
        self.mov(R1, R9);
        self.mov(R2, R10);
    }

    fn emit_rt_divmod(&mut self) {
        self.asm.label("rt_div");
        self.emit_divmod_body("dv");
        self.ret();
        self.asm.label("rt_mod");
        self.emit_divmod_body("md");
        self.mov(R1, R2);
        self.ret();
    }

    fn emit_rt_streq(&mut self) {
        // r1, r2 = string blocks → r1 ∈ {0, 1}.
        self.asm.label("rt_streq");
        self.load_len(R7, R1);
        self.load_len(R8, R2);
        self.asm.branch_nonzero_sub(Ri::Reg(R7), Ri::Reg(R8), "se_ne", S0);
        self.li(R9, 0);
        self.asm.normal(Func::Add, R10, Ri::Reg(R1), Ri::Imm(4));
        self.asm.normal(Func::Add, R11, Ri::Reg(R2), Ri::Imm(4));
        self.asm.label("se_loop");
        self.asm.branch_zero_sub(Ri::Reg(R9), Ri::Reg(R7), "se_eq", S0);
        self.asm.normal(Func::Add, R8, Ri::Reg(R10), Ri::Reg(R9));
        self.asm.instr(Instr::LoadMemByte { w: R8, a: Ri::Reg(R8) });
        self.asm.normal(Func::Add, R12, Ri::Reg(R11), Ri::Reg(R9));
        self.asm.instr(Instr::LoadMemByte { w: R12, a: Ri::Reg(R12) });
        self.asm.branch_nonzero_sub(Ri::Reg(R8), Ri::Reg(R12), "se_ne", S0);
        self.asm.normal(Func::Inc, R9, Ri::Imm(0), Ri::Reg(R9));
        self.jmp("se_loop");
        self.asm.label("se_eq");
        self.li(R1, 1);
        self.ret();
        self.asm.label("se_ne");
        self.li(R1, 0);
        self.ret();
    }

    /// Allocates a byte block: length in `len_reg`, tag constant; returns
    /// pointer in `ptr`; writes the header. Goes through `rt_alloc` (so a
    /// collection may run): the caller must have spilled any live heap
    /// pointers to the GC root words first, and `len_reg` must be one of
    /// the preserved registers (r2-r8, r10-r12).
    fn emit_alloc_bytes(&mut self, ptr: Reg, len_reg: Reg, tag_bits: u32) {
        debug_assert!(len_reg != R1 && len_reg != R9 && ptr != R9);
        // size = 4 + round4(len) = (len + 7) & ~3.
        self.asm.normal(Func::Add, R9, Ri::Reg(len_reg), Ri::Imm(7));
        self.li(S1, 0xFFFF_FFFC);
        self.asm.normal(Func::And, R9, Ri::Reg(R9), Ri::Reg(S1));
        self.rt_save_link();
        self.call("rt_alloc");
        self.rt_restore_link();
        if ptr != R1 {
            self.mov(ptr, R1);
        }
        // header = (len << 8) | (tag << 2) | 2.
        self.asm.shift(Shift::Ll, S0, Ri::Reg(len_reg), Ri::Imm(8));
        self.li(S1, (tag_bits << 2) | 2);
        self.asm.normal(Func::Or, S0, Ri::Reg(S0), Ri::Reg(S1));
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(S0), b: Ri::Reg(ptr) });
    }

    /// The allocator: `r9` = size in bytes (4-aligned, header included);
    /// returns the block pointer in `r1`. Preserves r2-r8 and r10-r12.
    /// On exhaustion: with the collector enabled, runs a Cheney
    /// collection and retries; otherwise (or if the retry fails) exits
    /// with the out-of-memory code.
    fn emit_rt_alloc(&mut self) {
        self.asm.label("rt_alloc");
        self.asm.normal(Func::Add, R13, Ri::Reg(HP), Ri::Reg(R9));
        self.asm.branch_zero(Func::Lower, Ri::Reg(HL), Ri::Reg(R13), "ra_fit", S0);
        if self.cfg.gc {
            self.asm.call("rt_gc", S1, GC_LINK);
            self.asm.normal(Func::Add, R13, Ri::Reg(HP), Ri::Reg(R9));
            self.asm.branch_zero(Func::Lower, Ri::Reg(HL), Ri::Reg(R13), "ra_fit", S0);
        }
        self.jmp("rt_oom");
        self.asm.label("ra_fit");
        self.mov(R1, HP);
        self.mov(HP, R13);
        self.ret();
    }

    /// The two-space Cheney collector. Roots: every word of the active
    /// stack `[SP, stack_top)` plus the GC root words; values are
    /// identified exactly (immediates have their low bit set, heap
    /// pointers are 4-aligned addresses inside the live from-space;
    /// return addresses and code/static-string pointers fall outside the
    /// from-space range and are left untouched). Forwarding pointers
    /// overwrite block headers and are distinguished by header bit 1.
    /// Uses r13-r31 only, so the allocator's callers keep their state.
    fn emit_rt_gc(&mut self) {
        let mid = self.layout.heap_mid();
        self.asm.label("rt_gc");
        // Which semispace is live? HL == mid means space 0.
        self.li(R19, mid);
        self.asm.branch_nonzero_sub(Ri::Reg(HL), Ri::Reg(R19), "gc_s1", S0);
        self.li(R13, mid); // to_base
        self.li(R28, self.layout.heap_end); // to_end
        self.li(R16, self.layout.heap_base); // from_lo
        self.jmp("gc_init");
        self.asm.label("gc_s1");
        self.li(R13, self.layout.heap_base);
        self.li(R28, mid);
        self.li(R16, mid);
        self.asm.label("gc_init");
        self.mov(R17, HP); // live end of from-space
        self.mov(R14, R13); // free
        self.mov(R15, R13); // scan
        // Roots: the active stack.
        self.mov(R26, SP);
        self.li(R27, self.layout.stack_top);
        self.asm.label("gc_rl1");
        self.asm.branch_zero_sub(Ri::Reg(R26), Ri::Reg(R27), "gc_r2", S0);
        self.mov(R18, R26);
        self.asm.call("rt_fwd", S1, R30);
        self.asm.normal(Func::Add, R26, Ri::Reg(R26), Ri::Imm(4));
        self.jmp("gc_rl1");
        self.asm.label("gc_r2");
        // Roots: the runtime's spill words.
        self.li(R26, self.layout.gc_roots_addr());
        self.li(R27, self.layout.gc_roots_addr() + 4 * TargetLayout::GC_ROOT_WORDS);
        self.asm.label("gc_rl2");
        self.asm.branch_zero_sub(Ri::Reg(R26), Ri::Reg(R27), "gc_scan", S0);
        self.mov(R18, R26);
        self.asm.call("rt_fwd", S1, R30);
        self.asm.normal(Func::Add, R26, Ri::Reg(R26), Ri::Imm(4));
        self.jmp("gc_rl2");
        // Cheney scan of the to-space.
        self.asm.label("gc_scan");
        self.asm.branch_zero_sub(Ri::Reg(R15), Ri::Reg(R14), "gc_done", S0);
        self.asm.instr(Instr::LoadMem { w: R19, a: Ri::Reg(R15) });
        self.asm.shift(Shift::Lr, R27, Ri::Reg(R19), Ri::Imm(8)); // len
        self.asm.shift(Shift::Lr, R19, Ri::Reg(R19), Ri::Imm(2));
        self.li(R26, 0x3F);
        self.asm.normal(Func::And, R19, Ri::Reg(R19), Ri::Reg(R26)); // tag
        self.li(R26, tag::STR);
        self.asm.branch_zero_sub(Ri::Reg(R19), Ri::Reg(R26), "gc_bytes", S0);
        self.li(R26, tag::BYTES);
        self.asm.branch_zero_sub(Ri::Reg(R19), Ri::Reg(R26), "gc_bytes", S0);
        // A pointer block: forward each field.
        self.asm.normal(Func::Add, R18, Ri::Reg(R15), Ri::Imm(4));
        self.asm.shift(Shift::Ll, R27, Ri::Reg(R27), Ri::Imm(2));
        self.asm.normal(Func::Add, R26, Ri::Reg(R18), Ri::Reg(R27));
        self.asm.label("gc_fl");
        self.asm.branch_zero_sub(Ri::Reg(R18), Ri::Reg(R26), "gc_fln", S0);
        self.asm.call("rt_fwd", S1, R30);
        self.asm.normal(Func::Add, R18, Ri::Reg(R18), Ri::Imm(4));
        self.jmp("gc_fl");
        self.asm.label("gc_fln");
        self.mov(R15, R26);
        self.jmp("gc_scan");
        self.asm.label("gc_bytes");
        self.asm.normal(Func::Add, R27, Ri::Reg(R27), Ri::Imm(3));
        self.li(R26, 0xFFFF_FFFC);
        self.asm.normal(Func::And, R27, Ri::Reg(R27), Ri::Reg(R26));
        self.asm.normal(Func::Add, R15, Ri::Reg(R15), Ri::Imm(4));
        self.asm.normal(Func::Add, R15, Ri::Reg(R15), Ri::Reg(R27));
        self.jmp("gc_scan");
        self.asm.label("gc_done");
        self.mov(HP, R14);
        self.mov(HL, R28);
        self.asm.instr(Instr::Jump { func: Func::Snd, w: S0, a: Ri::Reg(GC_LINK) });

        // rt_fwd: forwards the value stored at address r18. Uses r19-r25;
        // preserves the collector's state registers. Link in r30.
        self.asm.label("rt_fwd");
        self.asm.instr(Instr::LoadMem { w: R19, a: Ri::Reg(R18) });
        self.asm.normal(Func::And, R20, Ri::Reg(R19), Ri::Imm(3));
        self.asm.branch_nonzero(Func::Snd, Ri::Imm(0), Ri::Reg(R20), "fwd_ret", S0);
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R19), Ri::Reg(R16), "fwd_ret", S0);
        self.asm.branch_zero(Func::Lower, Ri::Reg(R19), Ri::Reg(R17), "fwd_ret", S0);
        self.asm.instr(Instr::LoadMem { w: R20, a: Ri::Reg(R19) });
        self.asm.normal(Func::And, R21, Ri::Reg(R20), Ri::Imm(2));
        self.asm.branch_nonzero(Func::Snd, Ri::Imm(0), Ri::Reg(R21), "fwd_copy", S0);
        // Already forwarded: the header word is the new address.
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R20), b: Ri::Reg(R18) });
        self.jmp("fwd_ret");
        self.asm.label("fwd_copy");
        self.asm.shift(Shift::Lr, R21, Ri::Reg(R20), Ri::Imm(8)); // len
        self.asm.shift(Shift::Lr, R22, Ri::Reg(R20), Ri::Imm(2));
        self.li(R23, 0x3F);
        self.asm.normal(Func::And, R22, Ri::Reg(R22), Ri::Reg(R23)); // tag
        self.li(R23, tag::STR);
        self.asm.branch_zero_sub(Ri::Reg(R22), Ri::Reg(R23), "fwd_b", S0);
        self.li(R23, tag::BYTES);
        self.asm.branch_zero_sub(Ri::Reg(R22), Ri::Reg(R23), "fwd_b", S0);
        self.asm.shift(Shift::Ll, R21, Ri::Reg(R21), Ri::Imm(2)); // words → bytes
        self.jmp("fwd_sz");
        self.asm.label("fwd_b");
        self.asm.normal(Func::Add, R21, Ri::Reg(R21), Ri::Imm(3));
        self.li(R23, 0xFFFF_FFFC);
        self.asm.normal(Func::And, R21, Ri::Reg(R21), Ri::Reg(R23));
        self.asm.label("fwd_sz");
        self.asm.normal(Func::Add, R21, Ri::Reg(R21), Ri::Imm(4)); // + header
        // Word-copy the block to the free pointer.
        self.mov(R22, R19);
        self.mov(R23, R14);
        self.asm.normal(Func::Add, R24, Ri::Reg(R19), Ri::Reg(R21));
        self.asm.label("fwd_cp");
        self.asm.branch_zero_sub(Ri::Reg(R22), Ri::Reg(R24), "fwd_cpd", S0);
        self.asm.instr(Instr::LoadMem { w: R25, a: Ri::Reg(R22) });
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R25), b: Ri::Reg(R23) });
        self.asm.normal(Func::Add, R22, Ri::Reg(R22), Ri::Imm(4));
        self.asm.normal(Func::Add, R23, Ri::Reg(R23), Ri::Imm(4));
        self.jmp("fwd_cp");
        self.asm.label("fwd_cpd");
        // Install the forwarding pointer and update the slot.
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R14), b: Ri::Reg(R19) });
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R14), b: Ri::Reg(R18) });
        self.asm.normal(Func::Add, R14, Ri::Reg(R14), Ri::Reg(R21));
        self.asm.label("fwd_ret");
        self.asm.instr(Instr::Jump { func: Func::Snd, w: R29, a: Ri::Reg(R30) });
    }

    /// Emits a byte-copy loop: bytes from `src` until `end` go to `dst`
    /// (`src`/`dst` are advanced; `R31` is the byte temporary).
    fn emit_copy_loop(&mut self, label: &str, src: Reg, dst: Reg, end: Reg) {
        self.asm.label(label.to_string());
        self.asm.branch_zero_sub(Ri::Reg(src), Ri::Reg(end), format!("{label}_done"), S0);
        self.asm.instr(Instr::LoadMemByte { w: R31, a: Ri::Reg(src) });
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R31), b: Ri::Reg(dst) });
        self.asm.normal(Func::Inc, src, Ri::Imm(0), Ri::Reg(src));
        self.asm.normal(Func::Inc, dst, Ri::Imm(0), Ri::Reg(dst));
        self.jmp(label);
        self.asm.label(format!("{label}_done"));
    }

    /// Saves/restores the link register around runtime-internal calls
    /// (the runtime has no stack frames of its own).
    fn rt_save_link(&mut self) {
        self.li(S1, self.layout.rt_link_save_addr());
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(LINK), b: Ri::Reg(S1) });
    }

    fn rt_restore_link(&mut self) {
        self.li(S1, self.layout.rt_link_save_addr());
        self.asm.instr(Instr::LoadMem { w: LINK, a: Ri::Reg(S1) });
    }

    /// Spills a heap-pointer register to a GC root word, so a collection
    /// triggered by the next allocation can relocate it.
    fn spill_root(&mut self, slot: u32, r: Reg) {
        self.li(S1, self.layout.gc_roots_addr() + 4 * slot);
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(r), b: Ri::Reg(S1) });
    }

    fn reload_root(&mut self, slot: u32, r: Reg) {
        self.li(S1, self.layout.gc_roots_addr() + 4 * slot);
        self.asm.instr(Instr::LoadMem { w: r, a: Ri::Reg(S1) });
    }

    fn clear_root(&mut self, slot: u32) {
        self.li(S0, 0);
        self.li(S1, self.layout.gc_roots_addr() + 4 * slot);
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(S0), b: Ri::Reg(S1) });
    }

    fn emit_rt_concat(&mut self) {
        // r1, r2 = strings → r1 = new string. The operands are heap
        // pointers, so they are spilled to GC roots around the
        // allocation (a collection may move them).
        self.asm.label("rt_concat");
        self.spill_root(0, R1);
        self.spill_root(1, R2);
        self.load_len(R7, R1);
        self.load_len(R8, R2);
        self.asm.normal(Func::Add, R10, Ri::Reg(R7), Ri::Reg(R8));
        self.emit_alloc_bytes(R11, R10, tag::STR);
        self.reload_root(0, R1);
        self.reload_root(1, R2);
        self.clear_root(0);
        self.clear_root(1);
        // Copy s1 then s2.
        self.asm.normal(Func::Add, R10, Ri::Reg(R1), Ri::Imm(4));
        self.asm.normal(Func::Add, R9, Ri::Reg(R10), Ri::Reg(R7));
        self.asm.normal(Func::Add, R12, Ri::Reg(R11), Ri::Imm(4));
        self.emit_copy_loop("cc1", R10, R12, R9);
        self.asm.normal(Func::Add, R10, Ri::Reg(R2), Ri::Imm(4));
        self.asm.normal(Func::Add, R9, Ri::Reg(R10), Ri::Reg(R8));
        self.emit_copy_loop("cc2", R10, R12, R9);
        self.mov(R1, R11);
        self.ret();
    }

    fn emit_rt_bytes_new(&mut self) {
        // r1 = n (untagged), r2 = fill byte → r1 = byte array.
        self.asm.label("rt_bytes_new");
        self.li(R7, 1 << 24);
        self.asm.branch_zero(Func::Lower, Ri::Reg(R1), Ri::Reg(R7), "rt_subscript", S0);
        self.mov(R8, R1);
        self.emit_alloc_bytes(R10, R8, tag::BYTES);
        self.asm.normal(Func::Add, R11, Ri::Reg(R10), Ri::Imm(4));
        self.asm.normal(Func::Add, R12, Ri::Reg(R11), Ri::Reg(R8));
        self.asm.label("bn_loop");
        self.asm.branch_zero_sub(Ri::Reg(R11), Ri::Reg(R12), "bn_done", S0);
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R2), b: Ri::Reg(R11) });
        self.asm.normal(Func::Inc, R11, Ri::Imm(0), Ri::Reg(R11));
        self.jmp("bn_loop");
        self.asm.label("bn_done");
        self.mov(R1, R10);
        self.ret();
    }

    fn emit_rt_substring(&mut self) {
        // r1 = str/bytes block, r2 = off, r3 = len → r1 = new string.
        self.asm.label("rt_substring");
        self.spill_root(0, R1);
        self.load_len(R7, R1);
        self.asm.normal(Func::Add, R8, Ri::Reg(R2), Ri::Reg(R3));
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R8), Ri::Reg(R2), "rt_subscript", S0);
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R7), Ri::Reg(R8), "rt_subscript", S0);
        self.emit_alloc_bytes(R10, R3, tag::STR);
        self.reload_root(0, R1);
        self.clear_root(0);
        self.asm.normal(Func::Add, R11, Ri::Reg(R1), Ri::Imm(4));
        self.asm.normal(Func::Add, R11, Ri::Reg(R11), Ri::Reg(R2));
        self.asm.normal(Func::Add, R12, Ri::Reg(R11), Ri::Reg(R3));
        self.asm.normal(Func::Add, R8, Ri::Reg(R10), Ri::Imm(4));
        self.emit_copy_loop("ss", R11, R8, R12);
        self.mov(R1, R10);
        self.ret();
    }

    fn emit_rt_copystr(&mut self) {
        // r1 = string, r2 = byte array, r3 = off (untagged).
        self.asm.label("rt_copystr");
        self.load_len(R7, R1);
        self.load_len(R8, R2);
        self.asm.normal(Func::Add, R9, Ri::Reg(R3), Ri::Reg(R7));
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R9), Ri::Reg(R3), "rt_subscript", S0);
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R8), Ri::Reg(R9), "rt_subscript", S0);
        self.asm.normal(Func::Add, R10, Ri::Reg(R1), Ri::Imm(4));
        self.asm.normal(Func::Add, R11, Ri::Reg(R10), Ri::Reg(R7));
        self.asm.normal(Func::Add, R12, Ri::Reg(R2), Ri::Imm(4));
        self.asm.normal(Func::Add, R12, Ri::Reg(R12), Ri::Reg(R3));
        self.mov(R8, R12);
        self.emit_copy_loop("cs", R10, R8, R11);
        self.li(R1, 1);
        self.ret();
    }

    fn emit_strings(&mut self, strings: &[String]) {
        for (i, s) in strings.iter().enumerate() {
            self.asm.align(4);
            self.asm.label(format!("s{i}"));
            self.asm.word(header(tag::STR, s.len() as u32));
            self.asm.bytes(s.as_bytes().to_vec());
        }
        self.asm.align(4);
    }
}
