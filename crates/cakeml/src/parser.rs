//! Recursive-descent parser, plus the resolution pass that turns
//! saturated references to built-in operations into [`Prim`] nodes
//! (eta-expanding partial applications).

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, Kw, LexError, Sym, Token};

/// A parse error, with the token index it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Index into the token stream (roughly: how far parsing got).
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { at: 0, message: e.to_string() }
    }
}

/// Parses a whole program from source text.
///
/// # Errors
///
/// Lexing or parsing failure.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut decls = Vec::new();
    while !p.at_end() {
        decls.push(p.decl()?);
        p.eat_sym(Sym::Semi);
    }
    let mut prog = Program { decls };
    resolve_program(&mut prog);
    Ok(prog)
}

/// Parses a single expression (useful in tests and the REPL example).
///
/// # Errors
///
/// Lexing or parsing failure, or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut e = p.expr()?;
    if !p.at_end() {
        return Err(p.err("trailing tokens after expression"));
    }
    resolve_expr(&mut e);
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, m: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: m.into() }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == Some(&Token::Sym(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == Some(&Token::Kw(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {k:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- declarations ----

    fn decl(&mut self) -> Result<Decl, ParseError> {
        if self.eat_kw(Kw::Val) {
            let pat = self.pat()?;
            self.expect_sym(Sym::Eq)?;
            let e = self.expr()?;
            Ok(Decl::Val(pat, e))
        } else if self.eat_kw(Kw::Fun) {
            Ok(Decl::Fun(self.fun_binds()?))
        } else if self.eat_kw(Kw::Datatype) {
            let name = self.ident()?;
            self.expect_sym(Sym::Eq)?;
            let mut cons = vec![self.con_def()?];
            while self.eat_sym(Sym::Bar) {
                cons.push(self.con_def()?);
            }
            Ok(Decl::Datatype(name, cons))
        } else {
            Err(self.err(format!("expected declaration, found {:?}", self.peek())))
        }
    }

    fn fun_binds(&mut self) -> Result<Vec<FunBind>, ParseError> {
        let mut binds = vec![self.fun_bind()?];
        while self.eat_kw(Kw::And) {
            binds.push(self.fun_bind()?);
        }
        Ok(binds)
    }

    fn fun_bind(&mut self) -> Result<FunBind, ParseError> {
        let name = self.ident()?;
        let mut params = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(s)) => {
                    params.push(s.clone());
                    self.pos += 1;
                }
                Some(Token::Sym(Sym::Underscore)) => {
                    params.push(format!("_unused{}", params.len()));
                    self.pos += 1;
                }
                // `()` as a unit parameter.
                Some(Token::Sym(Sym::LParen))
                    if self.peek2() == Some(&Token::Sym(Sym::RParen)) =>
                {
                    params.push(format!("_unit{}", params.len()));
                    self.pos += 2;
                }
                _ => break,
            }
        }
        if params.is_empty() {
            return Err(self.err("function binding needs at least one parameter"));
        }
        self.expect_sym(Sym::Eq)?;
        let body = self.expr()?;
        Ok(FunBind { name, params, body })
    }

    fn con_def(&mut self) -> Result<ConDef, ParseError> {
        let name = self.ident()?;
        let arg = if self.eat_kw(Kw::Of) { Some(self.ty()?) } else { None };
        Ok(ConDef { name, arg })
    }

    // ---- types (datatype declarations only) ----

    fn ty(&mut self) -> Result<TyExpr, ParseError> {
        let lhs = self.ty_prod()?;
        if self.eat_sym(Sym::Arrow) {
            let rhs = self.ty()?;
            Ok(TyExpr::Fun(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> Result<TyExpr, ParseError> {
        let mut parts = vec![self.ty_post()?];
        while self.eat_sym(Sym::Star) {
            parts.push(self.ty_post()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("nonempty"))
        } else {
            Ok(TyExpr::Tuple(parts))
        }
    }

    fn ty_post(&mut self) -> Result<TyExpr, ParseError> {
        let mut t = self.ty_atom()?;
        loop {
            match self.peek() {
                Some(Token::Ident(s)) if s == "list" => {
                    self.pos += 1;
                    t = TyExpr::List(Box::new(t));
                }
                Some(Token::Kw(Kw::Ref)) => {
                    self.pos += 1;
                    t = TyExpr::Ref(Box::new(t));
                }
                _ => break,
            }
        }
        Ok(t)
    }

    fn ty_atom(&mut self) -> Result<TyExpr, ParseError> {
        if self.eat_sym(Sym::LParen) {
            let t = self.ty()?;
            self.expect_sym(Sym::RParen)?;
            Ok(t)
        } else {
            Ok(TyExpr::Name(self.ident()?))
        }
    }

    // ---- patterns ----

    fn pat(&mut self) -> Result<Pat, ParseError> {
        let head = self.pat_app()?;
        if self.eat_sym(Sym::ColonColon) {
            let tail = self.pat()?;
            Ok(Pat::Cons(Box::new(head), Box::new(tail)))
        } else {
            Ok(head)
        }
    }

    fn pat_app(&mut self) -> Result<Pat, ParseError> {
        let head = self.pat_atom()?;
        // Constructor pattern with an argument.
        if let Pat::Con(name, None) = &head {
            if self.starts_pat_atom() {
                let arg = self.pat_atom()?;
                return Ok(Pat::Con(name.clone(), Some(Box::new(arg))));
            }
        }
        Ok(head)
    }

    fn starts_pat_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Int(_)
                    | Token::Char(_)
                    | Token::Str(_)
                    | Token::Ident(_)
                    | Token::Kw(Kw::True | Kw::False)
                    | Token::Sym(Sym::LParen | Sym::LBracket | Sym::Underscore | Sym::Tilde)
            )
        )
    }

    fn pat_atom(&mut self) -> Result<Pat, ParseError> {
        match self.next() {
            Some(Token::Sym(Sym::Underscore)) => Ok(Pat::Wild),
            Some(Token::Int(v)) => Ok(Pat::Lit(Lit::Int(v))),
            Some(Token::Sym(Sym::Tilde)) => match self.next() {
                Some(Token::Int(v)) => Ok(Pat::Lit(Lit::Int(-v))),
                other => Err(self.err(format!("expected integer after `~`, found {other:?}"))),
            },
            Some(Token::Char(c)) => Ok(Pat::Lit(Lit::Char(c))),
            Some(Token::Str(s)) => Ok(Pat::Lit(Lit::Str(s))),
            Some(Token::Kw(Kw::True)) => Ok(Pat::Lit(Lit::Bool(true))),
            Some(Token::Kw(Kw::False)) => Ok(Pat::Lit(Lit::Bool(false))),
            Some(Token::Ident(name)) => {
                if name.chars().next().is_some_and(char::is_uppercase) && !name.contains('.') {
                    Ok(Pat::Con(name, None))
                } else {
                    Ok(Pat::Var(name))
                }
            }
            Some(Token::Sym(Sym::LParen)) => {
                if self.eat_sym(Sym::RParen) {
                    return Ok(Pat::Lit(Lit::Unit));
                }
                let mut parts = vec![self.pat()?];
                while self.eat_sym(Sym::Comma) {
                    parts.push(self.pat()?);
                }
                self.expect_sym(Sym::RParen)?;
                if parts.len() == 1 {
                    Ok(parts.pop().expect("nonempty"))
                } else {
                    Ok(Pat::Tuple(parts))
                }
            }
            Some(Token::Sym(Sym::LBracket)) => {
                if self.eat_sym(Sym::RBracket) {
                    return Ok(Pat::ListNil);
                }
                let mut parts = vec![self.pat()?];
                while self.eat_sym(Sym::Comma) {
                    parts.push(self.pat()?);
                }
                self.expect_sym(Sym::RBracket)?;
                let mut acc = Pat::ListNil;
                for p in parts.into_iter().rev() {
                    acc = Pat::Cons(Box::new(p), Box::new(acc));
                }
                Ok(acc)
            }
            other => Err(self.err(format!("expected pattern, found {other:?}"))),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        // Open-ended forms first.
        match self.peek() {
            Some(Token::Kw(Kw::Fn)) => {
                self.pos += 1;
                let param = match self.next() {
                    Some(Token::Ident(s)) => s,
                    Some(Token::Sym(Sym::Underscore)) => "_unused".to_string(),
                    other => return Err(self.err(format!("expected parameter, got {other:?}"))),
                };
                self.expect_sym(Sym::DArrow)?;
                let body = self.expr()?;
                return Ok(Expr::Fn(param, Box::new(body)));
            }
            Some(Token::Kw(Kw::If)) => {
                self.pos += 1;
                let c = self.expr()?;
                self.expect_kw(Kw::Then)?;
                let t = self.expr()?;
                self.expect_kw(Kw::Else)?;
                let e = self.expr()?;
                return Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)));
            }
            Some(Token::Kw(Kw::Case)) => {
                self.pos += 1;
                let scrut = self.expr()?;
                self.expect_kw(Kw::Of)?;
                self.eat_sym(Sym::Bar);
                let mut arms = vec![self.case_arm()?];
                while self.eat_sym(Sym::Bar) {
                    arms.push(self.case_arm()?);
                }
                return Ok(Expr::Case(Box::new(scrut), arms));
            }
            _ => {}
        }
        self.exp_assign()
    }

    fn case_arm(&mut self) -> Result<(Pat, Expr), ParseError> {
        let p = self.pat()?;
        self.expect_sym(Sym::DArrow)?;
        let e = self.expr()?;
        Ok((p, e))
    }

    fn exp_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.exp_orelse()?;
        if self.eat_sym(Sym::Assign) {
            let rhs = self.expr()?;
            Ok(Expr::Prim(Prim::RefSet, vec![lhs, rhs]))
        } else {
            Ok(lhs)
        }
    }

    fn exp_orelse(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.exp_andalso()?;
        while self.eat_kw(Kw::Orelse) {
            let rhs = self.exp_andalso()?;
            e = Expr::OrElse(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn exp_andalso(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.exp_cmp()?;
        while self.eat_kw(Kw::Andalso) {
            let rhs = self.exp_cmp()?;
            e = Expr::AndAlso(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn exp_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.exp_cons()?;
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => Some(Prim::Eq),
            Some(Token::Sym(Sym::NotEq)) => Some(Prim::Ne),
            Some(Token::Sym(Sym::Lt)) => Some(Prim::Lt),
            Some(Token::Sym(Sym::Le)) => Some(Prim::Le),
            Some(Token::Sym(Sym::Gt)) => Some(Prim::Gt),
            Some(Token::Sym(Sym::Ge)) => Some(Prim::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.exp_cons()?;
            Ok(Expr::Prim(op, vec![lhs, rhs]))
        } else {
            Ok(lhs)
        }
    }

    fn exp_cons(&mut self) -> Result<Expr, ParseError> {
        let head = self.exp_add()?;
        if self.eat_sym(Sym::ColonColon) {
            let tail = self.exp_cons()?;
            Ok(Expr::Con(
                "::".to_string(),
                Some(Box::new(Expr::Tuple(vec![head, tail]))),
            ))
        } else {
            Ok(head)
        }
    }

    fn exp_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.exp_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => Prim::Add,
                Some(Token::Sym(Sym::Minus)) => Prim::Sub,
                Some(Token::Sym(Sym::Caret)) => Prim::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.exp_mul()?;
            e = Expr::Prim(op, vec![e, rhs]);
        }
        Ok(e)
    }

    fn exp_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.exp_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => Prim::Mul,
                Some(Token::Kw(Kw::Div)) => Prim::Div,
                Some(Token::Kw(Kw::Mod)) => Prim::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.exp_unary()?;
            e = Expr::Prim(op, vec![e, rhs]);
        }
        Ok(e)
    }

    fn exp_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym(Sym::Bang) {
            let e = self.exp_unary()?;
            Ok(Expr::Prim(Prim::RefGet, vec![e]))
        } else if self.eat_sym(Sym::Tilde) {
            if let Some(Token::Int(v)) = self.peek() {
                let v = *v;
                self.pos += 1;
                return Ok(Expr::Lit(Lit::Int(-v)));
            }
            let e = self.exp_unary()?;
            Ok(Expr::Prim(Prim::Sub, vec![Expr::Lit(Lit::Int(0)), e]))
        } else {
            self.exp_app()
        }
    }

    fn starts_atom(&self) -> bool {
        match self.peek() {
            Some(
                Token::Int(_)
                | Token::Char(_)
                | Token::Str(_)
                | Token::Ident(_)
                | Token::FfiName(_)
                | Token::Kw(Kw::True | Kw::False | Kw::Let | Kw::Not | Kw::Ref)
                | Token::Sym(Sym::LParen | Sym::LBracket),
            ) => true,
            // A negative literal (`f ~1`) is an atom; general `~e`
            // arguments require parentheses, as in ML.
            Some(Token::Sym(Sym::Tilde)) => matches!(self.peek2(), Some(Token::Int(_))),
            _ => false,
        }
    }

    fn exp_app(&mut self) -> Result<Expr, ParseError> {
        let head = self.atom()?;
        let mut args = Vec::new();
        while self.starts_atom() {
            args.push(self.atom()?);
        }
        // Constructor saturation: `C`, `C e`.
        if let Expr::Var(name) = &head {
            if name.chars().next().is_some_and(char::is_uppercase) && !name.contains('.') {
                return match args.len() {
                    0 => Ok(Expr::Con(name.clone(), None)),
                    1 => Ok(Expr::Con(name.clone(), Some(Box::new(args.remove(0))))),
                    _ => Err(self.err(format!(
                        "constructor `{name}` applied to {} arguments",
                        args.len()
                    ))),
                };
            }
        }
        let mut e = head;
        for a in args {
            e = Expr::App(Box::new(e), Box::new(a));
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Lit(Lit::Int(v))),
            Some(Token::Sym(Sym::Tilde)) => match self.next() {
                Some(Token::Int(v)) => Ok(Expr::Lit(Lit::Int(-v))),
                other => Err(self.err(format!("expected integer after `~`, found {other:?}"))),
            },
            Some(Token::Char(c)) => Ok(Expr::Lit(Lit::Char(c))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Lit::Str(s))),
            Some(Token::Kw(Kw::True)) => Ok(Expr::Lit(Lit::Bool(true))),
            Some(Token::Kw(Kw::False)) => Ok(Expr::Lit(Lit::Bool(false))),
            Some(Token::Kw(Kw::Not)) => Ok(Expr::Var("__not".to_string())),
            Some(Token::Kw(Kw::Ref)) => Ok(Expr::Var("__ref".to_string())),
            Some(Token::Ident(name)) => Ok(Expr::Var(name)),
            Some(Token::FfiName(name)) => Ok(Expr::Var(format!("$ffi:{name}"))),
            Some(Token::Kw(Kw::Let)) => {
                let mut binds = Vec::new();
                while !matches!(self.peek(), Some(Token::Kw(Kw::In))) {
                    if self.eat_kw(Kw::Val) {
                        let p = self.pat()?;
                        self.expect_sym(Sym::Eq)?;
                        let e = self.expr()?;
                        binds.push((Some(p), None, e));
                    } else if self.eat_kw(Kw::Fun) {
                        let fs = self.fun_binds()?;
                        binds.push((None, Some(fs), Expr::Lit(Lit::Unit)));
                    } else {
                        return Err(self.err("expected `val`, `fun` or `in` in let"));
                    }
                    self.eat_sym(Sym::Semi);
                }
                self.expect_kw(Kw::In)?;
                let mut body = self.expr()?;
                while self.eat_sym(Sym::Semi) {
                    let rhs = self.expr()?;
                    body = Expr::Seq(Box::new(body), Box::new(rhs));
                }
                self.expect_kw(Kw::End)?;
                for (pat, funs, rhs) in binds.into_iter().rev() {
                    body = match (pat, funs) {
                        (Some(p), None) => Expr::Let(p, Box::new(rhs), Box::new(body)),
                        (None, Some(fs)) => Expr::LetFun(fs, Box::new(body)),
                        _ => unreachable!(),
                    };
                }
                Ok(body)
            }
            Some(Token::Sym(Sym::LParen)) => {
                if self.eat_sym(Sym::RParen) {
                    return Ok(Expr::Lit(Lit::Unit));
                }
                let mut e = self.expr()?;
                if self.eat_sym(Sym::Comma) {
                    let mut parts = vec![e];
                    loop {
                        parts.push(self.expr()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Tuple(parts));
                }
                while self.eat_sym(Sym::Semi) {
                    let rhs = self.expr()?;
                    e = Expr::Seq(Box::new(e), Box::new(rhs));
                }
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Sym(Sym::LBracket)) => {
                if self.eat_sym(Sym::RBracket) {
                    return Ok(Expr::Con("[]".to_string(), None));
                }
                let mut parts = vec![self.expr()?];
                while self.eat_sym(Sym::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect_sym(Sym::RBracket)?;
                let mut acc = Expr::Con("[]".to_string(), None);
                for p in parts.into_iter().rev() {
                    acc = Expr::Con(
                        "::".to_string(),
                        Some(Box::new(Expr::Tuple(vec![p, acc]))),
                    );
                }
                Ok(acc)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

// ---- primitive resolution ----

fn prim_of_name(name: &str) -> Option<Prim> {
    if let Some(ffi) = name.strip_prefix("$ffi:") {
        return Some(Prim::Ffi(ffi.to_string()));
    }
    Some(match name {
        "String.size" => Prim::StrSize,
        "String.sub" => Prim::StrSub,
        "String.substring" => Prim::StrSubstr,
        "Char.ord" => Prim::Ord,
        "Char.chr" => Prim::Chr,
        "Word8Array.array" => Prim::BytesNew,
        "Word8Array.length" => Prim::BytesLen,
        "Word8Array.sub" => Prim::BytesGet,
        "Word8Array.update" => Prim::BytesSet,
        "Word8Array.substring" => Prim::BytesToStr,
        "Word8Array.copyStr" => Prim::StrToBytes,
        "Runtime.exit" => Prim::Exit,
        "__not" => Prim::Not,
        "__ref" => Prim::RefNew,
        _ => return None,
    })
}

fn resolve_program(prog: &mut Program) {
    for d in &mut prog.decls {
        match d {
            Decl::Val(_, e) => resolve_expr(e),
            Decl::Fun(binds) => {
                for b in binds {
                    resolve_expr(&mut b.body);
                }
            }
            Decl::Datatype(..) => {}
        }
    }
}

/// Rewrites saturated built-in applications into [`Expr::Prim`] and
/// eta-expands under-applied built-ins.
fn resolve_expr(e: &mut Expr) {
    // Handle prim-headed application spines before recursing, so the head
    // variable is not eta-expanded on its own first.
    let head_prim = {
        let mut head = &*e;
        while let Expr::App(f, _) = head {
            head = f;
        }
        match head {
            Expr::Var(name) => prim_of_name(name),
            _ => None,
        }
    };
    if let Some(prim) = head_prim {
        let owned = std::mem::replace(e, Expr::Lit(Lit::Unit));
        let mut spine = Vec::new();
        let mut head = owned;
        while let Expr::App(f, a) = head {
            spine.push(*a);
            head = *f;
        }
        spine.reverse();
        for a in &mut spine {
            resolve_expr(a);
        }
        let arity = prim.arity();
        *e = if spine.len() >= arity {
            let rest = spine.split_off(arity);
            let mut out = Expr::Prim(prim, spine);
            for r in rest {
                out = Expr::App(Box::new(out), Box::new(r));
            }
            out
        } else {
            let missing = arity - spine.len();
            let names: Vec<String> = (0..missing).map(|i| format!("%eta{i}")).collect();
            let mut args = spine;
            args.extend(names.iter().map(|n| Expr::Var(n.clone())));
            let mut out = Expr::Prim(prim, args);
            for n in names.into_iter().rev() {
                out = Expr::Fn(n, Box::new(out));
            }
            out
        };
        return;
    }
    // Recurse into children.
    match e {
        Expr::Lit(_) | Expr::Var(_) => {}
        Expr::Con(_, arg) => {
            if let Some(a) = arg {
                resolve_expr(a);
            }
        }
        Expr::Tuple(parts) => parts.iter_mut().for_each(resolve_expr),
        Expr::Prim(_, args) => args.iter_mut().for_each(resolve_expr),
        Expr::App(f, a) => {
            resolve_expr(f);
            resolve_expr(a);
        }
        Expr::Fn(_, b) => resolve_expr(b),
        Expr::Let(_, rhs, body) => {
            resolve_expr(rhs);
            resolve_expr(body);
        }
        Expr::LetFun(binds, body) => {
            for b in binds.iter_mut() {
                resolve_expr(&mut b.body);
            }
            resolve_expr(body);
        }
        Expr::If(c, t, f) => {
            resolve_expr(c);
            resolve_expr(t);
            resolve_expr(f);
        }
        Expr::Case(s, arms) => {
            resolve_expr(s);
            arms.iter_mut().for_each(|(_, e)| resolve_expr(e));
        }
        Expr::AndAlso(a, b) | Expr::OrElse(a, b) | Expr::Seq(a, b) => {
            resolve_expr(a);
            resolve_expr(b);
        }
    }
    // A constructor used as a bare value (e.g. as a function argument).
    if let Expr::Var(name) = e {
        if name.chars().next().is_some_and(char::is_uppercase) && !name.contains('.') {
            *e = Expr::Con(name.clone(), None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        parse_expr(src).expect("parses")
    }

    #[test]
    fn precedence() {
        assert_eq!(
            p("1 + 2 * 3"),
            Expr::Prim(
                Prim::Add,
                vec![
                    Expr::Lit(Lit::Int(1)),
                    Expr::Prim(Prim::Mul, vec![Expr::Lit(Lit::Int(2)), Expr::Lit(Lit::Int(3))]),
                ]
            )
        );
        // Comparison binds looser than arithmetic.
        match p("1 + 2 < 3 * 4") {
            Expr::Prim(Prim::Lt, _) => {}
            other => panic!("expected Lt at top, got {other:?}"),
        }
    }

    #[test]
    fn application_is_left_associative_and_tight() {
        match p("f x y + 1") {
            Expr::Prim(Prim::Add, args) => match &args[0] {
                Expr::App(fx, _) => assert!(matches!(**fx, Expr::App(..))),
                other => panic!("expected nested app, got {other:?}"),
            },
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn list_sugar_builds_cons_chain() {
        match p("[1, 2]") {
            Expr::Con(c, Some(arg)) => {
                assert_eq!(c, "::");
                match *arg {
                    Expr::Tuple(parts) => {
                        assert!(matches!(parts[1], Expr::Con(ref c2, Some(_)) if c2 == "::"));
                    }
                    other => panic!("expected tuple, got {other:?}"),
                }
            }
            other => panic!("expected cons, got {other:?}"),
        }
    }

    #[test]
    fn prims_resolve_saturated() {
        assert_eq!(
            p("String.size s"),
            Expr::Prim(Prim::StrSize, vec![Expr::Var("s".into())])
        );
        // Partial application eta-expands.
        match p("String.sub") {
            Expr::Fn(a, body) => {
                assert_eq!(a, "%eta0");
                assert!(matches!(*body, Expr::Fn(..)));
            }
            other => panic!("expected eta-expansion, got {other:?}"),
        }
    }

    #[test]
    fn ffi_call_resolves() {
        assert_eq!(
            p("#(write) conf arr"),
            Expr::Prim(
                Prim::Ffi("write".into()),
                vec![Expr::Var("conf".into()), Expr::Var("arr".into())]
            )
        );
    }

    #[test]
    fn ref_ops() {
        assert_eq!(p("!r"), Expr::Prim(Prim::RefGet, vec![Expr::Var("r".into())]));
        assert_eq!(
            p("r := 1"),
            Expr::Prim(Prim::RefSet, vec![Expr::Var("r".into()), Expr::Lit(Lit::Int(1))])
        );
        assert_eq!(p("ref 0"), Expr::Prim(Prim::RefNew, vec![Expr::Lit(Lit::Int(0))]));
    }

    #[test]
    fn let_val_fun_and_seq() {
        let e = p("let val x = 1 fun f y = y + x in f 2; f 3 end");
        match e {
            Expr::Let(Pat::Var(x), _, body) => {
                assert_eq!(x, "x");
                match *body {
                    Expr::LetFun(fs, inner) => {
                        assert_eq!(fs[0].name, "f");
                        assert!(matches!(*inner, Expr::Seq(..)));
                    }
                    other => panic!("expected LetFun, got {other:?}"),
                }
            }
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn case_with_constructor_patterns() {
        let e = p("case xs of [] => 0 | x :: rest => x");
        match e {
            Expr::Case(_, arms) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].0, Pat::ListNil);
                assert!(matches!(arms[1].0, Pat::Cons(..)));
            }
            other => panic!("expected Case, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals() {
        assert_eq!(p("~5"), Expr::Lit(Lit::Int(-5)));
        match p("~x") {
            Expr::Prim(Prim::Sub, args) => assert_eq!(args[0], Expr::Lit(Lit::Int(0))),
            other => panic!("expected 0-x, got {other:?}"),
        }
    }

    #[test]
    fn declarations_parse() {
        let prog = parse_program(
            "datatype tree = Leaf | Node of tree * int * tree;\n\
             fun depth t = case t of Leaf => 0 | Node (l, _, r) => 1 + depth l;\n\
             val ten = 10;",
        )
        .unwrap();
        assert_eq!(prog.decls.len(), 3);
        assert!(matches!(prog.decls[0], Decl::Datatype(..)));
        assert!(matches!(prog.decls[1], Decl::Fun(_)));
    }

    #[test]
    fn fun_with_unit_parameter() {
        let prog = parse_program("fun f () = 42;").unwrap();
        match &prog.decls[0] {
            Decl::Fun(binds) => assert_eq!(binds[0].params.len(), 1),
            other => panic!("expected Fun, got {other:?}"),
        }
    }

    #[test]
    fn andalso_orelse_shortcut_forms() {
        assert!(matches!(p("a andalso b orelse c"), Expr::OrElse(..)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr("val").is_err());
        assert!(parse_program("fun = 3").is_err());
        assert!(parse_expr("(1, 2").is_err());
    }
}
