//! Lexer for the source language.

use std::fmt;

/// Tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Character literal `#"c"`.
    Char(u8),
    /// String literal.
    Str(String),
    /// Identifier (possibly dotted, e.g. `String.size`).
    Ident(String),
    /// FFI name `#(name)`.
    FfiName(String),
    /// A keyword.
    Kw(Kw),
    /// A symbolic token.
    Sym(Sym),
}

/// Keywords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kw {
    Val,
    Fun,
    And,
    In,
    Let,
    End,
    If,
    Then,
    Else,
    Case,
    Of,
    Fn,
    Datatype,
    Andalso,
    Orelse,
    Div,
    Mod,
    Not,
    Ref,
    True,
    False,
}

/// Symbolic tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sym {
    Plus,
    Minus,
    Star,
    Caret,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    ColonColon,
    Assign,
    Bang,
    Tilde,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Bar,
    Underscore,
    DArrow,
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Char(c) => write!(f, "#\"{}\"", *c as char),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::FfiName(s) => write!(f, "#({s})"),
            Token::Kw(k) => write!(f, "{k:?}"),
            Token::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

/// A lexing error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "val" => Kw::Val,
        "fun" => Kw::Fun,
        "and" => Kw::And,
        "in" => Kw::In,
        "let" => Kw::Let,
        "end" => Kw::End,
        "if" => Kw::If,
        "then" => Kw::Then,
        "else" => Kw::Else,
        "case" => Kw::Case,
        "of" => Kw::Of,
        "fn" => Kw::Fn,
        "datatype" => Kw::Datatype,
        "andalso" => Kw::Andalso,
        "orelse" => Kw::Orelse,
        "div" => Kw::Div,
        "mod" => Kw::Mod,
        "not" => Kw::Not,
        "ref" => Kw::Ref,
        "true" => Kw::True,
        "false" => Kw::False,
        _ => return None,
    })
}

/// Tokenises a source string.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed input (unterminated strings or
/// comments, bad escapes, stray characters).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err = |i: usize, m: &str| LexError { offset: i, message: m.to_string() };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' if b.get(i + 1) == Some(&b'*') => {
                // Nested comments.
                let mut depth = 1;
                let start = i;
                i += 2;
                while depth > 0 {
                    if i + 1 >= b.len() {
                        return Err(err(start, "unterminated comment"));
                    }
                    if b[i] == b'(' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b[i + 1] == b')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 =
                    text.parse().map_err(|_| err(start, "integer literal out of range"))?;
                out.push(Token::Int(v));
            }
            b'"' => {
                i += 1;
                let start = i;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return Err(err(start, "unterminated string")),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = b.get(i + 1).ok_or_else(|| err(i, "bad escape"))?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'\\' => '\\',
                                b'"' => '"',
                                _ => return Err(err(i, "unknown escape")),
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'#' => match b.get(i + 1) {
                Some(b'"') => {
                    // Character literal #"c" (with escapes).
                    let (ch, len) = match b.get(i + 2) {
                        Some(b'\\') => {
                            let esc = b.get(i + 3).ok_or_else(|| err(i, "bad char escape"))?;
                            let ch = match esc {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'r' => b'\r',
                                b'\\' => b'\\',
                                b'"' => b'"',
                                _ => return Err(err(i, "unknown char escape")),
                            };
                            (ch, 5)
                        }
                        Some(&ch) => (ch, 4),
                        None => return Err(err(i, "unterminated char literal")),
                    };
                    if b.get(i + len - 1) != Some(&b'"') {
                        return Err(err(i, "unterminated char literal"));
                    }
                    out.push(Token::Char(ch));
                    i += len;
                }
                Some(b'(') => {
                    // FFI name #(name).
                    let start = i + 2;
                    let mut j = start;
                    while j < b.len() && b[j] != b')' {
                        j += 1;
                    }
                    if j == b.len() {
                        return Err(err(i, "unterminated #( ffi name"));
                    }
                    out.push(Token::FfiName(src[start..j].to_string()));
                    i = j + 1;
                }
                _ => return Err(err(i, "stray `#`")),
            },
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'\'')
                {
                    i += 1;
                }
                // Dotted identifiers: Module.name.
                while i < b.len()
                    && b[i] == b'.'
                    && b.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic())
                {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if text == "_" {
                    out.push(Token::Sym(Sym::Underscore));
                } else if let Some(k) = keyword(text) {
                    out.push(Token::Kw(k));
                } else {
                    out.push(Token::Ident(text.to_string()));
                }
            }
            _ => {
                // Symbolic tokens, longest first.
                let rest = &src[i..];
                let table: &[(&str, Sym)] = &[
                    ("=>", Sym::DArrow),
                    ("->", Sym::Arrow),
                    ("::", Sym::ColonColon),
                    (":=", Sym::Assign),
                    ("<>", Sym::NotEq),
                    ("<=", Sym::Le),
                    (">=", Sym::Ge),
                    ("+", Sym::Plus),
                    ("-", Sym::Minus),
                    ("*", Sym::Star),
                    ("^", Sym::Caret),
                    ("=", Sym::Eq),
                    ("<", Sym::Lt),
                    (">", Sym::Gt),
                    ("!", Sym::Bang),
                    ("~", Sym::Tilde),
                    ("(", Sym::LParen),
                    (")", Sym::RParen),
                    ("[", Sym::LBracket),
                    ("]", Sym::RBracket),
                    (",", Sym::Comma),
                    (";", Sym::Semi),
                    ("|", Sym::Bar),
                ];
                let mut matched = false;
                for (text, sym) in table {
                    if rest.starts_with(text) {
                        out.push(Token::Sym(*sym));
                        i += text.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    return Err(err(i, &format!("unexpected character `{}`", c as char)));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declaration() {
        let toks = lex("val x = 42;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Kw(Kw::Val),
                Token::Ident("x".into()),
                Token::Sym(Sym::Eq),
                Token::Int(42),
                Token::Sym(Sym::Semi),
            ]
        );
    }

    #[test]
    fn lexes_strings_and_chars() {
        let toks = lex(r#" "a\nb" #"z" #"\n" "#).unwrap();
        assert_eq!(
            toks,
            vec![Token::Str("a\nb".into()), Token::Char(b'z'), Token::Char(b'\n')]
        );
    }

    #[test]
    fn lexes_ffi_name() {
        assert_eq!(lex("#(write)").unwrap(), vec![Token::FfiName("write".into())]);
    }

    #[test]
    fn lexes_dotted_identifiers() {
        assert_eq!(
            lex("String.sub Word8Array.array").unwrap(),
            vec![Token::Ident("String.sub".into()), Token::Ident("Word8Array.array".into())]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(lex("1 (* a (* b *) c *) 2").unwrap(), vec![Token::Int(1), Token::Int(2)]);
        assert!(lex("(* unterminated").is_err());
    }

    #[test]
    fn symbols_longest_match() {
        let toks = lex("=> -> :: := <> <= >= < >").unwrap();
        use Sym::*;
        assert_eq!(
            toks,
            [DArrow, Arrow, ColonColon, Assign, NotEq, Le, Ge, Lt, Gt]
                .map(|s| Token::Sym(s))
                .to_vec()
        );
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(lex("x' foo'bar").unwrap().len(), 2);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("val x = $").is_err());
    }
}
