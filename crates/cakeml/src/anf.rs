//! Lowering to A-normal form.
//!
//! This pass resolves variables to numeric ids, compiles pattern matches
//! into explicit tag tests and projections, collects string literals into
//! a pool, uncurries function definitions (up to the ABI arity), and
//! names every intermediate value — the first half of the optimising
//! backend, corresponding to CakeML's early intermediate languages.

use std::collections::HashMap;

use crate::ast::{self, Decl, Expr, FunBind, Lit, Pat, Prim, Program, EXIT_MATCH};
use crate::types::DataEnv;

/// A variable id, unique across the whole program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// An index into the program's string pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

/// Atomic values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Atom {
    /// A variable.
    Var(VarId),
    /// An integer (31-bit range).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A character.
    Char(u8),
    /// Unit.
    Unit,
    /// A pooled string literal.
    Str(StrId),
}

/// Right-hand sides of `let`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rhs {
    /// Copy an atom.
    Atom(Atom),
    /// A primitive with atomic arguments.
    Prim(Prim, Vec<Atom>),
    /// Allocate a tuple.
    Tuple(Vec<Atom>),
    /// A constructor value. Nullary constructors are represented as
    /// immediates; unary ones allocate a tagged block.
    Con {
        /// Numeric constructor tag.
        tag: u32,
        /// Payload, if the constructor has one.
        arg: Option<Atom>,
    },
    /// Project a field of a tuple (or the payload of a constructor,
    /// field 0).
    Proj {
        /// Field index (0-based).
        index: usize,
        /// The block.
        of: Atom,
    },
    /// The constructor tag of a value, as an integer.
    TagOf(Atom),
    /// An anonymous function (lifted by closure conversion).
    Lam(Lam),
    /// Generic application of a closure to one argument.
    App {
        /// The closure.
        f: Atom,
        /// The argument.
        arg: Atom,
    },
    /// Saturated call of a statically-known function variable.
    CallKnown {
        /// The function variable (bound by a `fun` group).
        f: VarId,
        /// Exactly the function's arity of arguments.
        args: Vec<Atom>,
    },
    /// A nested computation with control flow inside.
    Sub(Box<Anf>),
}

/// A lambda: uncurried parameters (at most [`MAX_ARITY`]) and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lam {
    /// Parameters.
    pub params: Vec<VarId>,
    /// Body.
    pub body: Box<Anf>,
}

/// ANF expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Anf {
    /// Return an atom.
    Ret(Atom),
    /// `let dst = rhs in body`.
    Let {
        /// Destination variable.
        dst: VarId,
        /// Right-hand side.
        rhs: Rhs,
        /// Continuation.
        body: Box<Anf>,
    },
    /// Conditional on a boolean atom.
    If {
        /// Condition.
        cond: Atom,
        /// Then branch.
        then_: Box<Anf>,
        /// Else branch.
        else_: Box<Anf>,
    },
    /// Recursive function group.
    LetRec {
        /// `(variable, lambda)` bindings, mutually recursive.
        binds: Vec<(VarId, Lam)>,
        /// Continuation.
        body: Box<Anf>,
    },
    /// Terminate with an exit code (match failure etc.).
    Crash(u8),
}

/// Maximum direct-call arity; extra parameters become a nested lambda.
pub const MAX_ARITY: usize = 5;

/// The lowered program: one big ANF term plus the pools.
#[derive(Clone, Debug)]
pub struct AnfProgram {
    /// The whole program as one expression (declarations sequenced).
    pub main: Anf,
    /// String literal pool.
    pub strings: Vec<String>,
    /// FFI names in first-use order; the image builder lays out the
    /// system-call table in this order.
    pub ffi_names: Vec<String>,
    /// Number of variable ids allocated (fresh ids continue from here).
    pub var_count: u32,
    /// Arities of `fun`-bound variables (used by closure conversion).
    pub arities: HashMap<VarId, usize>,
}

type Scope = HashMap<String, VarId>;
type Binds = Vec<(VarId, Rhs)>;

struct Lower<'d> {
    data: &'d DataEnv,
    next_var: u32,
    strings: Vec<String>,
    string_ids: HashMap<String, StrId>,
    ffi_names: Vec<String>,
    arities: HashMap<VarId, usize>,
    direct_calls: bool,
}

/// Lowers a type-checked program to ANF (direct calls enabled).
#[must_use]
pub fn lower_program(prog: &Program, data: &DataEnv) -> AnfProgram {
    lower_program_with(prog, data, true)
}

/// Lowers a type-checked program to ANF. With `direct_calls` disabled,
/// every call goes through the generic one-argument apply path — the
/// known-call ablation measured by the benchmark harness.
#[must_use]
pub fn lower_program_with(prog: &Program, data: &DataEnv, direct_calls: bool) -> AnfProgram {
    let mut lo = Lower {
        data,
        next_var: 0,
        strings: Vec::new(),
        string_ids: HashMap::new(),
        ffi_names: Vec::new(),
        arities: HashMap::new(),
        direct_calls,
    };
    let main = lo.lower_decls(&Scope::new(), &prog.decls);
    AnfProgram {
        main,
        strings: lo.strings,
        ffi_names: lo.ffi_names,
        var_count: lo.next_var,
        arities: lo.arities,
    }
}

fn wrap(binds: Binds, tail: Anf) -> Anf {
    let mut out = tail;
    for (dst, rhs) in binds.into_iter().rev() {
        out = Anf::Let { dst, rhs, body: Box::new(out) };
    }
    out
}

impl Lower<'_> {
    fn fresh(&mut self) -> VarId {
        self.next_var += 1;
        VarId(self.next_var - 1)
    }

    fn str_id(&mut self, s: &str) -> StrId {
        if let Some(id) = self.string_ids.get(s) {
            return *id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    fn con_tag(&self, name: &str) -> u32 {
        self.data
            .constructors
            .get(name)
            .map(|(tag, _, _)| *tag)
            .unwrap_or_else(|| panic!("unknown constructor `{name}` after type checking"))
    }

    fn lower_decls(&mut self, scope: &Scope, decls: &[Decl]) -> Anf {
        let Some((first, rest)) = decls.split_first() else {
            return Anf::Ret(Atom::Unit);
        };
        match first {
            Decl::Datatype(..) => self.lower_decls(scope, rest),
            Decl::Fun(fbinds) => {
                let (binds, inner) = self.lower_fun_group(scope, fbinds);
                let body = self.lower_decls(&inner, rest);
                Anf::LetRec { binds, body: Box::new(body) }
            }
            Decl::Val(pat, e) => {
                let mut binds = Binds::new();
                let atom = self.atomize(scope, e, &mut binds);
                let tail = match pat {
                    Pat::Var(x) => {
                        let mut inner = scope.clone();
                        let v = self.materialize(atom, &mut binds);
                        inner.insert(x.clone(), v);
                        self.lower_decls(&inner, rest)
                    }
                    Pat::Wild | Pat::Lit(Lit::Unit) => self.lower_decls(scope, rest),
                    _ => {
                        let rest = rest.to_vec();
                        self.compile_case_with(scope, atom, std::slice::from_ref(pat), |me, inner| {
                            me.lower_decls(inner, &rest)
                        })
                    }
                };
                wrap(binds, tail)
            }
        }
    }

    fn materialize(&mut self, atom: Atom, binds: &mut Binds) -> VarId {
        match atom {
            Atom::Var(v) => v,
            other => {
                let dst = self.fresh();
                binds.push((dst, Rhs::Atom(other)));
                dst
            }
        }
    }

    fn lower_fun_group(
        &mut self,
        scope: &Scope,
        fbinds: &[FunBind],
    ) -> (Vec<(VarId, Lam)>, Scope) {
        let mut inner = scope.clone();
        let mut vars = Vec::new();
        for fb in fbinds {
            let v = self.fresh();
            if self.direct_calls {
                self.arities.insert(v, fb.params.len().min(MAX_ARITY));
            }
            inner.insert(fb.name.clone(), v);
            vars.push(v);
        }
        let mut out = Vec::new();
        for (fb, v) in fbinds.iter().zip(&vars) {
            let lam = self.lower_lambda(&inner, &fb.params, &fb.body);
            out.push((*v, lam));
        }
        (out, inner)
    }

    fn lower_lambda(&mut self, scope: &Scope, params: &[String], body: &Expr) -> Lam {
        let take = params.len().min(MAX_ARITY);
        let mut inner = scope.clone();
        let mut ids = Vec::new();
        for p in &params[..take] {
            let v = self.fresh();
            inner.insert(p.clone(), v);
            ids.push(v);
        }
        let body_anf = if params.len() > take {
            // Overflow parameters become a nested lambda.
            let lam = self.lower_lambda(&inner, &params[take..], body);
            let dst = self.fresh();
            Anf::Let { dst, rhs: Rhs::Lam(lam), body: Box::new(Anf::Ret(Atom::Var(dst))) }
        } else {
            self.lower_full(&inner, body)
        };
        Lam { params: ids, body: Box::new(body_anf) }
    }

    /// Lowers an expression in tail position.
    fn lower_full(&mut self, scope: &Scope, e: &Expr) -> Anf {
        match e {
            Expr::If(c, t, f) => {
                let mut binds = Binds::new();
                let cond = self.atomize(scope, c, &mut binds);
                let then_ = self.lower_full(scope, t);
                let else_ = self.lower_full(scope, f);
                wrap(
                    binds,
                    Anf::If { cond, then_: Box::new(then_), else_: Box::new(else_) },
                )
            }
            Expr::Case(scrut, arms) => {
                let mut binds = Binds::new();
                let s = self.atomize(scope, scrut, &mut binds);
                let pats: Vec<Pat> = arms.iter().map(|(p, _)| p.clone()).collect();
                let bodies: Vec<Expr> = arms.iter().map(|(_, b)| b.clone()).collect();
                let tail = self.compile_case_multi(scope, s, &pats, &bodies);
                wrap(binds, tail)
            }
            Expr::Let(pat, rhs, body) => {
                let mut binds = Binds::new();
                let atom = self.atomize(scope, rhs, &mut binds);
                let tail = match pat {
                    Pat::Var(x) => {
                        let v = self.materialize(atom, &mut binds);
                        let mut inner = scope.clone();
                        inner.insert(x.clone(), v);
                        self.lower_full(&inner, body)
                    }
                    Pat::Wild | Pat::Lit(Lit::Unit) => self.lower_full(scope, body),
                    _ => {
                        let body = (**body).clone();
                        self.compile_case_with(scope, atom, std::slice::from_ref(pat), |me, inner| {
                            me.lower_full(inner, &body)
                        })
                    }
                };
                wrap(binds, tail)
            }
            Expr::LetFun(fbinds, body) => {
                let (binds, inner) = self.lower_fun_group(scope, fbinds);
                let tail = self.lower_full(&inner, body);
                Anf::LetRec { binds, body: Box::new(tail) }
            }
            Expr::Seq(a, b) => {
                let mut binds = Binds::new();
                let _ = self.atomize(scope, a, &mut binds);
                let tail = self.lower_full(scope, b);
                wrap(binds, tail)
            }
            _ => {
                let mut binds = Binds::new();
                let atom = self.atomize(scope, e, &mut binds);
                wrap(binds, Anf::Ret(atom))
            }
        }
    }

    /// Lowers `e` to an atom, appending bindings to `binds`.
    fn atomize(&mut self, scope: &Scope, e: &Expr, binds: &mut Binds) -> Atom {
        match e {
            Expr::Lit(l) => match l {
                Lit::Int(v) => Atom::Int(ast::wrap_int(*v)),
                Lit::Bool(b) => Atom::Bool(*b),
                Lit::Char(c) => Atom::Char(*c),
                Lit::Unit => Atom::Unit,
                Lit::Str(s) => Atom::Str(self.str_id(s)),
            },
            Expr::Var(x) => Atom::Var(
                *scope.get(x).unwrap_or_else(|| panic!("unbound `{x}` after checking")),
            ),
            Expr::Con(name, arg) => {
                let tag = self.con_tag(name);
                let arg = arg.as_ref().map(|a| self.atomize(scope, a, binds));
                let dst = self.fresh();
                binds.push((dst, Rhs::Con { tag, arg }));
                Atom::Var(dst)
            }
            Expr::Tuple(parts) => {
                let atoms: Vec<Atom> =
                    parts.iter().map(|p| self.atomize(scope, p, binds)).collect();
                let dst = self.fresh();
                binds.push((dst, Rhs::Tuple(atoms)));
                Atom::Var(dst)
            }
            Expr::Prim(p, args) => {
                if let Prim::Ffi(name) = p {
                    if !self.ffi_names.iter().any(|n| n == name) {
                        self.ffi_names.push(name.clone());
                    }
                }
                let atoms: Vec<Atom> =
                    args.iter().map(|a| self.atomize(scope, a, binds)).collect();
                let dst = self.fresh();
                binds.push((dst, Rhs::Prim(p.clone(), atoms)));
                Atom::Var(dst)
            }
            Expr::App(..) => {
                let mut spine = Vec::new();
                let mut head = e;
                while let Expr::App(f, a) = head {
                    spine.push(a.as_ref());
                    head = f;
                }
                spine.reverse();
                // Saturated call of a known `fun`-bound function?
                if let Expr::Var(name) = head {
                    if let Some(&v) = scope.get(name) {
                        if let Some(&arity) = self.arities.get(&v).filter(|&&k| spine.len() >= k)
                        {
                            let args: Vec<Atom> = spine[..arity]
                                .iter()
                                .map(|a| self.atomize(scope, a, binds))
                                .collect();
                            let dst = self.fresh();
                            binds.push((dst, Rhs::CallKnown { f: v, args }));
                            let mut acc = Atom::Var(dst);
                            for extra in &spine[arity..] {
                                let arg = self.atomize(scope, extra, binds);
                                let dst = self.fresh();
                                binds.push((dst, Rhs::App { f: acc, arg }));
                                acc = Atom::Var(dst);
                            }
                            return acc;
                        }
                    }
                }
                let mut acc = self.atomize(scope, head, binds);
                for a in spine {
                    let arg = self.atomize(scope, a, binds);
                    let dst = self.fresh();
                    binds.push((dst, Rhs::App { f: acc, arg }));
                    acc = Atom::Var(dst);
                }
                acc
            }
            Expr::Fn(..) => {
                // Uncurry nested fn-chains.
                let mut params = Vec::new();
                let mut body = e;
                while let Expr::Fn(p, b) = body {
                    if params.len() == MAX_ARITY {
                        break;
                    }
                    params.push(p.clone());
                    body = b;
                }
                let lam = self.lower_lambda(scope, &params, body);
                let dst = self.fresh();
                binds.push((dst, Rhs::Lam(lam)));
                Atom::Var(dst)
            }
            Expr::AndAlso(a, b) => {
                let ca = self.atomize(scope, a, binds);
                let rhs = self.lower_full(scope, b);
                let dst = self.fresh();
                binds.push((
                    dst,
                    Rhs::Sub(Box::new(Anf::If {
                        cond: ca,
                        then_: Box::new(rhs),
                        else_: Box::new(Anf::Ret(Atom::Bool(false))),
                    })),
                ));
                Atom::Var(dst)
            }
            Expr::OrElse(a, b) => {
                let ca = self.atomize(scope, a, binds);
                let rhs = self.lower_full(scope, b);
                let dst = self.fresh();
                binds.push((
                    dst,
                    Rhs::Sub(Box::new(Anf::If {
                        cond: ca,
                        then_: Box::new(Anf::Ret(Atom::Bool(true))),
                        else_: Box::new(rhs),
                    })),
                ));
                Atom::Var(dst)
            }
            Expr::If(..) | Expr::Case(..) | Expr::Let(..) | Expr::LetFun(..) | Expr::Seq(..) => {
                let sub = self.lower_full(scope, e);
                let dst = self.fresh();
                binds.push((dst, Rhs::Sub(Box::new(sub))));
                Atom::Var(dst)
            }
        }
    }

    // ---- pattern compilation ----

    fn compile_case_multi(
        &mut self,
        scope: &Scope,
        scrut: Atom,
        pats: &[Pat],
        bodies: &[Expr],
    ) -> Anf {
        let mut result = Anf::Crash(EXIT_MATCH);
        for (pat, body) in pats.iter().zip(bodies).rev() {
            let mut ops = Vec::new();
            let mut namebinds = Vec::new();
            self.plan_pat(scrut, pat, &mut ops, &mut namebinds);
            let mut inner = scope.clone();
            for (name, v) in namebinds {
                inner.insert(name, v);
            }
            let success = self.lower_full(&inner, body);
            result = self.emit_ops(&ops, success, &result);
        }
        result
    }

    /// Single-pattern variant whose success continuation is supplied by
    /// the caller (used for `val`/`let` pattern bindings).
    fn compile_case_with(
        &mut self,
        scope: &Scope,
        scrut: Atom,
        pats: &[Pat],
        success: impl FnOnce(&mut Self, &Scope) -> Anf,
    ) -> Anf {
        let mut ops = Vec::new();
        let mut namebinds = Vec::new();
        self.plan_pat(scrut, &pats[0], &mut ops, &mut namebinds);
        let mut inner = scope.clone();
        for (name, v) in namebinds {
            inner.insert(name, v);
        }
        let body = success(self, &inner);
        self.emit_ops(&ops, body, &Anf::Crash(EXIT_MATCH))
    }

    fn plan_pat(
        &mut self,
        scrut: Atom,
        pat: &Pat,
        ops: &mut Vec<POp>,
        binds: &mut Vec<(String, VarId)>,
    ) {
        match pat {
            Pat::Wild | Pat::Lit(Lit::Unit) => {}
            Pat::Var(x) => {
                let dst = self.fresh();
                ops.push(POp::Let(dst, Rhs::Atom(scrut)));
                binds.push((x.clone(), dst));
            }
            Pat::Lit(Lit::Int(v)) => {
                ops.push(POp::Check(Rhs::Prim(
                    Prim::Eq,
                    vec![scrut, Atom::Int(ast::wrap_int(*v))],
                )));
            }
            Pat::Lit(Lit::Bool(b)) => {
                ops.push(POp::Check(Rhs::Prim(Prim::Eq, vec![scrut, Atom::Bool(*b)])));
            }
            Pat::Lit(Lit::Char(c)) => {
                ops.push(POp::Check(Rhs::Prim(Prim::Eq, vec![scrut, Atom::Char(*c)])));
            }
            Pat::Lit(Lit::Str(s)) => {
                let id = self.str_id(s);
                ops.push(POp::Check(Rhs::Prim(Prim::EqStr, vec![scrut, Atom::Str(id)])));
            }
            Pat::Tuple(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if matches!(p, Pat::Wild) {
                        continue;
                    }
                    let f = self.fresh();
                    ops.push(POp::Let(f, Rhs::Proj { index: i, of: scrut }));
                    self.plan_pat(Atom::Var(f), p, ops, binds);
                }
            }
            Pat::ListNil => {
                let t = self.fresh();
                ops.push(POp::Let(t, Rhs::TagOf(scrut)));
                ops.push(POp::Check(Rhs::Prim(Prim::Eq, vec![Atom::Var(t), Atom::Int(0)])));
            }
            Pat::Cons(h, tl) => {
                let t = self.fresh();
                ops.push(POp::Let(t, Rhs::TagOf(scrut)));
                ops.push(POp::Check(Rhs::Prim(Prim::Eq, vec![Atom::Var(t), Atom::Int(1)])));
                let payload = self.fresh();
                ops.push(POp::Let(payload, Rhs::Proj { index: 0, of: scrut }));
                if !matches!(**h, Pat::Wild) {
                    let hf = self.fresh();
                    ops.push(POp::Let(hf, Rhs::Proj { index: 0, of: Atom::Var(payload) }));
                    self.plan_pat(Atom::Var(hf), h, ops, binds);
                }
                if !matches!(**tl, Pat::Wild) {
                    let tf = self.fresh();
                    ops.push(POp::Let(tf, Rhs::Proj { index: 1, of: Atom::Var(payload) }));
                    self.plan_pat(Atom::Var(tf), tl, ops, binds);
                }
            }
            Pat::Con(name, arg) => {
                let tag = self.con_tag(name);
                let t = self.fresh();
                ops.push(POp::Let(t, Rhs::TagOf(scrut)));
                ops.push(POp::Check(Rhs::Prim(
                    Prim::Eq,
                    vec![Atom::Var(t), Atom::Int(i64::from(tag))],
                )));
                if let Some(p) = arg {
                    if !matches!(**p, Pat::Wild) {
                        let f = self.fresh();
                        ops.push(POp::Let(f, Rhs::Proj { index: 0, of: scrut }));
                        self.plan_pat(Atom::Var(f), p, ops, binds);
                    }
                }
            }
        }
    }

    fn emit_ops(&mut self, ops: &[POp], success: Anf, fail: &Anf) -> Anf {
        match ops.split_first() {
            None => success,
            Some((POp::Let(dst, rhs), rest)) => {
                let body = self.emit_ops(rest, success, fail);
                Anf::Let { dst: *dst, rhs: rhs.clone(), body: Box::new(body) }
            }
            Some((POp::Check(rhs), rest)) => {
                let cond = self.fresh();
                let body = self.emit_ops(rest, success, fail);
                Anf::Let {
                    dst: cond,
                    rhs: rhs.clone(),
                    body: Box::new(Anf::If {
                        cond: Atom::Var(cond),
                        then_: Box::new(body),
                        else_: Box::new(fail.clone()),
                    }),
                }
            }
        }
    }
}

enum POp {
    Let(VarId, Rhs),
    Check(Rhs),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::types::check_program;

    fn lower(src: &str) -> AnfProgram {
        let mut prog = parse_program(src).expect("parses");
        let data = check_program(&mut prog).expect("typechecks");
        lower_program(&prog, &data)
    }

    fn count_rhs(anf: &Anf, pred: &dyn Fn(&Rhs) -> bool) -> usize {
        fn go(a: &Anf, pred: &dyn Fn(&Rhs) -> bool, n: &mut usize) {
            match a {
                Anf::Ret(_) | Anf::Crash(_) => {}
                Anf::Let { rhs, body, .. } => {
                    if pred(rhs) {
                        *n += 1;
                    }
                    match rhs {
                        Rhs::Lam(l) => go(&l.body, pred, n),
                        Rhs::Sub(s) => go(s, pred, n),
                        _ => {}
                    }
                    go(body, pred, n);
                }
                Anf::If { then_, else_, .. } => {
                    go(then_, pred, n);
                    go(else_, pred, n);
                }
                Anf::LetRec { binds, body } => {
                    for (_, l) in binds {
                        go(&l.body, pred, n);
                    }
                    go(body, pred, n);
                }
            }
        }
        let mut n = 0;
        go(anf, pred, &mut n);
        n
    }

    #[test]
    fn known_calls_are_direct() {
        let p = lower("fun add a b = a + b; val x = add 1 2;");
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::CallKnown { .. })), 1);
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::App { .. })), 0);
    }

    #[test]
    fn partial_application_falls_back_to_apply() {
        let p = lower("fun add a b = a + b; val inc = add 1; val x = inc 2;");
        // `add 1` under-applies (one Apply); `inc 2` applies the result.
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::App { .. })), 2);
    }

    #[test]
    fn over_application_applies_the_rest() {
        let p = lower("fun const a = fn b => a; val x = const 1 2;");
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::CallKnown { .. })), 1);
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::App { .. })), 1);
    }

    #[test]
    fn string_pool_dedups() {
        let p = lower("val a = \"x\"; val b = \"x\"; val c = \"y\";");
        assert_eq!(p.strings, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn ffi_names_collected_in_order() {
        let p = lower(
            "val buf = Word8Array.array 8 #\"a\";
             val _ = #(write) \"\" buf;
             val _ = #(read) \"\" buf;
             val _ = #(write) \"\" buf;",
        );
        assert_eq!(p.ffi_names, vec!["write".to_string(), "read".to_string()]);
    }

    #[test]
    fn case_compiles_to_tag_tests() {
        let p = lower(
            "fun len xs = case xs of [] => 0 | _ :: t => 1 + len t;
             val n = len [1, 2];",
        );
        assert!(count_rhs(&p.main, &|r| matches!(r, Rhs::TagOf(_))) >= 2);
        assert!(count_rhs(&p.main, &|r| matches!(r, Rhs::Proj { .. })) >= 2);
    }

    #[test]
    fn arity_capped_with_nested_lambda() {
        let p = lower("fun six a b c d e f = a + b + c + d + e + f; val x = six 1 2 3 4 5 6;");
        // The known call passes MAX_ARITY args, then applies the rest.
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::CallKnown { args, .. } if args.len() == MAX_ARITY)), 1);
        assert_eq!(count_rhs(&p.main, &|r| matches!(r, Rhs::App { .. })), 1);
    }

    #[test]
    fn letrec_groups_stay_together() {
        let p = lower(
            "fun even n = if n = 0 then true else odd (n - 1)
             and odd n = if n = 0 then false else even (n - 1);
             val t = even 4;",
        );
        match &p.main {
            Anf::LetRec { binds, .. } => assert_eq!(binds.len(), 2),
            other => panic!("expected LetRec, got {other:?}"),
        }
    }
}
