//! The source-level semantics (`cakeml_sem` in the paper's theorems).
//!
//! A fuel-bounded big-step interpreter. The paper's theorem (1) relates a
//! program's `cakeml_sem` behaviour to its specification; here the
//! interpreter *is* the executable specification that the compiled
//! machine code is differentially tested against (theorem (2)'s analog in
//! the `silver-stack` crate).
//!
//! Foreign functions are provided by an [`FfiHost`] — the `basis` crate's
//! `basis_ffi` oracle implements it over a model filesystem and command
//! line, exactly the role `basis_ffi cl fs` plays in §5.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::*;

/// Runtime values.
#[derive(Clone, Debug)]
pub enum Value {
    /// 31-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Character (a byte).
    Char(u8),
    /// Immutable string — a *byte* string, as on the machine (bytes
    /// above 127 are ordinary characters, not Unicode).
    Str(Rc<Vec<u8>>),
    /// Unit.
    Unit,
    /// Tuple.
    Tuple(Rc<Vec<Value>>),
    /// Constructor application (`[]`/`::` encode lists).
    Con(Rc<str>, Option<Rc<Value>>),
    /// A function closure.
    Closure(Rc<ClosureVal>),
    /// A mutable reference cell.
    Ref(Rc<RefCell<Value>>),
    /// A mutable byte array.
    Bytes(Rc<RefCell<Vec<u8>>>),
}

/// A closure: parameter, body, captured environment, and — for recursive
/// bindings — the function-group names that should resolve to the group's
/// closures at call time.
#[derive(Debug)]
pub struct ClosureVal {
    param: String,
    body: Expr,
    env: Env,
    rec_group: RefCell<Vec<(String, Value)>>,
}

type Env = HashMap<String, Value>;

/// Why evaluation stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stop {
    /// Program terminated with an exit code (0 = success; crash codes in
    /// [`crate::ast`]).
    Exit(u8),
    /// Fuel exhausted — undecided, like a timeout.
    OutOfFuel,
    /// The FFI host reported `FFI_failed` (the `Fail` behaviour the
    /// compiler theorem excludes).
    FfiFailed(String),
    /// Internal error — a well-typed program never hits this.
    Bug(String),
}

impl fmt::Display for Stop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stop::Exit(c) => write!(f, "exit({c})"),
            Stop::OutOfFuel => write!(f, "out of fuel"),
            Stop::FfiFailed(n) => write!(f, "FFI `{n}` failed"),
            Stop::Bug(m) => write!(f, "interpreter bug: {m}"),
        }
    }
}

/// Host for foreign functions (system calls).
pub trait FfiHost {
    /// Performs the call, mutating `bytes` in place (the shared array of
    /// §5). `Err` models `FFI_failed`.
    ///
    /// # Errors
    ///
    /// An error message when the call is unknown or refused.
    fn call(&mut self, name: &str, conf: &[u8], bytes: &mut [u8]) -> Result<(), String>;
}

/// An [`FfiHost`] that refuses every call; for pure programs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFfi;

impl FfiHost for NoFfi {
    fn call(&mut self, name: &str, _conf: &[u8], _bytes: &mut [u8]) -> Result<(), String> {
        Err(format!("no FFI available (call to `{name}`)"))
    }
}

/// Result of running a program to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Exit code: 0 for falling off the end or `exit 0`.
    pub exit_code: u8,
    /// Evaluation steps consumed (a machine-independent cost measure).
    pub steps: u64,
}

struct Interp<'h, H: FfiHost> {
    host: &'h mut H,
    fuel: u64,
    steps: u64,
}

/// Runs a program under the given FFI host with a fuel bound.
///
/// # Errors
///
/// [`Stop::OutOfFuel`], [`Stop::FfiFailed`] or [`Stop::Bug`]; normal and
/// crash terminations are `Ok` with the documented exit code.
pub fn run_program<H: FfiHost>(
    prog: &Program,
    host: &mut H,
    fuel: u64,
) -> Result<RunOutcome, Stop> {
    let mut interp = Interp { host, fuel, steps: 0 };
    let mut env: Env = Env::new();
    for decl in &prog.decls {
        match decl {
            Decl::Datatype(..) => {}
            Decl::Val(pat, e) => {
                let v = match interp.eval(&env, e) {
                    Ok(v) => v,
                    Err(Stop::Exit(c)) => {
                        return Ok(RunOutcome { exit_code: c, steps: interp.steps })
                    }
                    Err(stop) => return Err(stop),
                };
                if !bind_pat(&mut env, pat, &v) {
                    return Ok(RunOutcome { exit_code: EXIT_MATCH, steps: interp.steps });
                }
            }
            Decl::Fun(binds) => define_funs(&mut env, binds),
        }
    }
    Ok(RunOutcome { exit_code: 0, steps: interp.steps })
}

/// Evaluates a closed expression (tests and the REPL example).
///
/// # Errors
///
/// Any [`Stop`], including `Exit` for crashes.
pub fn eval_expr<H: FfiHost>(e: &Expr, host: &mut H, fuel: u64) -> Result<Value, Stop> {
    let mut interp = Interp { host, fuel, steps: 0 };
    interp.eval(&Env::new(), e)
}

fn define_funs(env: &mut Env, binds: &[FunBind]) {
    let mut closures = Vec::new();
    for b in binds {
        // Curry: fun f x y = e  ==>  f = fn x => fn y => e.
        let mut body = b.body.clone();
        for p in b.params.iter().skip(1).rev() {
            body = Expr::Fn(p.clone(), Box::new(body));
        }
        let clos = Value::Closure(Rc::new(ClosureVal {
            param: b.params[0].clone(),
            body,
            env: env.clone(),
            rec_group: RefCell::new(Vec::new()),
        }));
        closures.push((b.name.clone(), clos));
    }
    // Tie the recursive knot: each closure sees the whole group.
    for (_, c) in &closures {
        if let Value::Closure(c) = c {
            *c.rec_group.borrow_mut() = closures.clone();
        }
    }
    for (name, c) in closures {
        env.insert(name, c);
    }
}

fn bind_pat(env: &mut Env, pat: &Pat, v: &Value) -> bool {
    match (pat, v) {
        (Pat::Wild, _) => true,
        (Pat::Var(x), _) => {
            env.insert(x.clone(), v.clone());
            true
        }
        (Pat::Lit(Lit::Int(a)), Value::Int(b)) => wrap_int(*a) == *b,
        (Pat::Lit(Lit::Bool(a)), Value::Bool(b)) => a == b,
        (Pat::Lit(Lit::Char(a)), Value::Char(b)) => a == b,
        (Pat::Lit(Lit::Str(a)), Value::Str(b)) => a.as_bytes() == b.as_slice(),
        (Pat::Lit(Lit::Unit), Value::Unit) => true,
        (Pat::Tuple(ps), Value::Tuple(vs)) if ps.len() == vs.len() => {
            ps.iter().zip(vs.iter()).all(|(p, v)| bind_pat(env, p, v))
        }
        (Pat::ListNil, Value::Con(c, None)) => &**c == "[]",
        (Pat::Cons(hp, tp), Value::Con(c, Some(arg))) if &**c == "::" => match &**arg {
            Value::Tuple(parts) if parts.len() == 2 => {
                bind_pat(env, hp, &parts[0]) && bind_pat(env, tp, &parts[1])
            }
            _ => false,
        },
        (Pat::Con(name, parg), Value::Con(c, varg)) if name.as_str() == &**c => {
            match (parg, varg) {
                (None, None) => true,
                (Some(p), Some(v)) => bind_pat(env, p, v),
                _ => false,
            }
        }
        _ => false,
    }
}

impl<H: FfiHost> Interp<'_, H> {
    fn tick(&mut self) -> Result<(), Stop> {
        if self.steps >= self.fuel {
            return Err(Stop::OutOfFuel);
        }
        self.steps += 1;
        Ok(())
    }

    fn eval(&mut self, env: &Env, e: &Expr) -> Result<Value, Stop> {
        self.tick()?;
        match e {
            Expr::Lit(l) => Ok(match l {
                Lit::Int(v) => Value::Int(wrap_int(*v)),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Char(c) => Value::Char(*c),
                Lit::Str(s) => Value::Str(Rc::new(s.clone().into_bytes())),
                Lit::Unit => Value::Unit,
            }),
            Expr::Var(x) => env
                .get(x)
                .cloned()
                .ok_or_else(|| Stop::Bug(format!("unbound variable `{x}`"))),
            Expr::Con(name, arg) => {
                let v = arg.as_ref().map(|a| self.eval(env, a)).transpose()?;
                Ok(Value::Con(Rc::from(name.as_str()), v.map(Rc::new)))
            }
            Expr::Tuple(parts) => {
                let vs = parts
                    .iter()
                    .map(|p| self.eval(env, p))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Tuple(Rc::new(vs)))
            }
            Expr::Prim(p, args) => {
                let vs = args
                    .iter()
                    .map(|a| self.eval(env, a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.prim(p, vs)
            }
            Expr::App(f, a) => {
                let fv = self.eval(env, f)?;
                let av = self.eval(env, a)?;
                self.apply(fv, av)
            }
            Expr::Fn(x, body) => Ok(Value::Closure(Rc::new(ClosureVal {
                param: x.clone(),
                body: (**body).clone(),
                env: env.clone(),
                rec_group: RefCell::new(Vec::new()),
            }))),
            Expr::Let(pat, rhs, body) => {
                let v = self.eval(env, rhs)?;
                let mut inner = env.clone();
                if !bind_pat(&mut inner, pat, &v) {
                    return Err(Stop::Exit(EXIT_MATCH));
                }
                self.eval(&inner, body)
            }
            Expr::LetFun(binds, body) => {
                let mut inner = env.clone();
                define_funs(&mut inner, binds);
                self.eval(&inner, body)
            }
            Expr::If(c, t, f) => match self.eval(env, c)? {
                Value::Bool(true) => self.eval(env, t),
                Value::Bool(false) => self.eval(env, f),
                other => Err(Stop::Bug(format!("if on non-bool {other:?}"))),
            },
            Expr::Case(scrut, arms) => {
                let v = self.eval(env, scrut)?;
                for (p, body) in arms {
                    let mut inner = env.clone();
                    if bind_pat(&mut inner, p, &v) {
                        return self.eval(&inner, body);
                    }
                }
                Err(Stop::Exit(EXIT_MATCH))
            }
            Expr::AndAlso(a, b) => match self.eval(env, a)? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) => self.eval(env, b),
                other => Err(Stop::Bug(format!("andalso on {other:?}"))),
            },
            Expr::OrElse(a, b) => match self.eval(env, a)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                Value::Bool(false) => self.eval(env, b),
                other => Err(Stop::Bug(format!("orelse on {other:?}"))),
            },
            Expr::Seq(a, b) => {
                let _ = self.eval(env, a)?;
                self.eval(env, b)
            }
        }
    }

    fn apply(&mut self, f: Value, a: Value) -> Result<Value, Stop> {
        self.tick()?;
        match f {
            Value::Closure(c) => {
                let mut env = c.env.clone();
                for (name, v) in c.rec_group.borrow().iter() {
                    env.insert(name.clone(), v.clone());
                }
                env.insert(c.param.clone(), a);
                self.eval(&env, &c.body)
            }
            other => Err(Stop::Bug(format!("applied non-function {other:?}"))),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn prim(&mut self, p: &Prim, mut vs: Vec<Value>) -> Result<Value, Stop> {
        use Value as V;
        let int = |v: &Value| -> Result<i64, Stop> {
            match v {
                V::Int(i) => Ok(*i),
                other => Err(Stop::Bug(format!("expected int, got {other:?}"))),
            }
        };
        Ok(match p {
            Prim::Add => V::Int(wrap_int(int(&vs[0])? + int(&vs[1])?)),
            Prim::Sub => V::Int(wrap_int(int(&vs[0])? - int(&vs[1])?)),
            Prim::Mul => V::Int(wrap_int(int(&vs[0])? * int(&vs[1])?)),
            Prim::Div => {
                let b = int(&vs[1])?;
                if b == 0 {
                    return Err(Stop::Exit(EXIT_DIV));
                }
                V::Int(wrap_int(int(&vs[0])?.wrapping_div(b)))
            }
            Prim::Mod => {
                let b = int(&vs[1])?;
                if b == 0 {
                    return Err(Stop::Exit(EXIT_DIV));
                }
                V::Int(wrap_int(int(&vs[0])?.wrapping_rem(b)))
            }
            Prim::Lt => V::Bool(int(&vs[0])? < int(&vs[1])?),
            Prim::Le => V::Bool(int(&vs[0])? <= int(&vs[1])?),
            Prim::Gt => V::Bool(int(&vs[0])? > int(&vs[1])?),
            Prim::Ge => V::Bool(int(&vs[0])? >= int(&vs[1])?),
            Prim::Eq => match (&vs[0], &vs[1]) {
                (V::Int(a), V::Int(b)) => V::Bool(a == b),
                (V::Bool(a), V::Bool(b)) => V::Bool(a == b),
                (V::Char(a), V::Char(b)) => V::Bool(a == b),
                (V::Unit, V::Unit) => V::Bool(true),
                (a, b) => return Err(Stop::Bug(format!("word equality on {a:?}/{b:?}"))),
            },
            Prim::EqStr => match (&vs[0], &vs[1]) {
                (V::Str(a), V::Str(b)) => V::Bool(a == b),
                (a, b) => return Err(Stop::Bug(format!("string equality on {a:?}/{b:?}"))),
            },
            Prim::Ne => return Err(Stop::Bug("Ne survived elaboration".into())),
            Prim::Not => match &vs[0] {
                V::Bool(b) => V::Bool(!b),
                other => return Err(Stop::Bug(format!("not on {other:?}"))),
            },
            Prim::Concat => match (&vs[0], &vs[1]) {
                (V::Str(a), V::Str(b)) => {
                    let mut out = Vec::with_capacity(a.len() + b.len());
                    out.extend_from_slice(a);
                    out.extend_from_slice(b);
                    V::Str(Rc::new(out))
                }
                (a, b) => return Err(Stop::Bug(format!("^ on {a:?}/{b:?}"))),
            },
            Prim::StrSize => match &vs[0] {
                V::Str(s) => V::Int(s.len() as i64),
                other => return Err(Stop::Bug(format!("size on {other:?}"))),
            },
            Prim::StrSub => match (&vs[0], int(&vs[1])?) {
                (V::Str(s), i) => {
                    let Some(&b) = usize::try_from(i).ok().and_then(|i| s.get(i))
                    else {
                        return Err(Stop::Exit(EXIT_SUBSCRIPT));
                    };
                    V::Char(b)
                }
                (other, _) => return Err(Stop::Bug(format!("sub on {other:?}"))),
            },
            Prim::StrSubstr => {
                let off = int(&vs[1])?;
                let len = int(&vs[2])?;
                match &vs[0] {
                    V::Str(s) => {
                        let (Ok(off), Ok(len)) = (usize::try_from(off), usize::try_from(len))
                        else {
                            return Err(Stop::Exit(EXIT_SUBSCRIPT));
                        };
                        match s.get(off..off.saturating_add(len)) {
                            Some(slice) => V::Str(Rc::new(slice.to_vec())),
                            None => return Err(Stop::Exit(EXIT_SUBSCRIPT)),
                        }
                    }
                    other => return Err(Stop::Bug(format!("substring on {other:?}"))),
                }
            }
            Prim::Ord => match &vs[0] {
                V::Char(c) => V::Int(i64::from(*c)),
                other => return Err(Stop::Bug(format!("ord on {other:?}"))),
            },
            Prim::Chr => {
                let i = int(&vs[0])?;
                if !(0..=255).contains(&i) {
                    return Err(Stop::Exit(EXIT_SUBSCRIPT));
                }
                V::Char(i as u8)
            }
            Prim::BytesNew => {
                let n = int(&vs[0])?;
                let V::Char(c) = vs[1] else {
                    return Err(Stop::Bug("array fill must be char".into()));
                };
                let Ok(n) = usize::try_from(n) else {
                    return Err(Stop::Exit(EXIT_SUBSCRIPT));
                };
                V::Bytes(Rc::new(RefCell::new(vec![c; n])))
            }
            Prim::BytesLen => match &vs[0] {
                V::Bytes(b) => V::Int(b.borrow().len() as i64),
                other => return Err(Stop::Bug(format!("length on {other:?}"))),
            },
            Prim::BytesGet => match (&vs[0], int(&vs[1])?) {
                (V::Bytes(b), i) => {
                    let borrowed = b.borrow();
                    match usize::try_from(i).ok().and_then(|i| borrowed.get(i)) {
                        Some(&byte) => V::Char(byte),
                        None => return Err(Stop::Exit(EXIT_SUBSCRIPT)),
                    }
                }
                (other, _) => return Err(Stop::Bug(format!("sub on {other:?}"))),
            },
            Prim::BytesSet => {
                let i = int(&vs[1])?;
                let V::Char(c) = vs[2] else {
                    return Err(Stop::Bug("update needs char".into()));
                };
                match &vs[0] {
                    V::Bytes(b) => {
                        let mut borrowed = b.borrow_mut();
                        match usize::try_from(i).ok().and_then(|i| borrowed.get_mut(i)) {
                            Some(slot) => *slot = c,
                            None => return Err(Stop::Exit(EXIT_SUBSCRIPT)),
                        }
                    }
                    other => return Err(Stop::Bug(format!("update on {other:?}"))),
                }
                V::Unit
            }
            Prim::BytesToStr => {
                let off = int(&vs[1])?;
                let len = int(&vs[2])?;
                match &vs[0] {
                    V::Bytes(b) => {
                        let borrowed = b.borrow();
                        let (Ok(off), Ok(len)) = (usize::try_from(off), usize::try_from(len))
                        else {
                            return Err(Stop::Exit(EXIT_SUBSCRIPT));
                        };
                        match borrowed.get(off..off.saturating_add(len)) {
                            Some(slice) => V::Str(Rc::new(slice.to_vec())),
                            None => return Err(Stop::Exit(EXIT_SUBSCRIPT)),
                        }
                    }
                    other => return Err(Stop::Bug(format!("substring on {other:?}"))),
                }
            }
            Prim::StrToBytes => {
                let off = int(&vs[2])?;
                match (&vs[0], &vs[1]) {
                    (V::Str(s), V::Bytes(b)) => {
                        let mut borrowed = b.borrow_mut();
                        let Ok(off) = usize::try_from(off) else {
                            return Err(Stop::Exit(EXIT_SUBSCRIPT));
                        };
                        if off.saturating_add(s.len()) > borrowed.len() {
                            return Err(Stop::Exit(EXIT_SUBSCRIPT));
                        }
                        borrowed[off..off + s.len()].copy_from_slice(s);
                        V::Unit
                    }
                    (a, b) => return Err(Stop::Bug(format!("copyStr on {a:?}/{b:?}"))),
                }
            }
            Prim::RefNew => V::Ref(Rc::new(RefCell::new(vs.remove(0)))),
            Prim::RefGet => match &vs[0] {
                V::Ref(r) => r.borrow().clone(),
                other => return Err(Stop::Bug(format!("! on {other:?}"))),
            },
            Prim::RefSet => {
                let v = vs.remove(1);
                match &vs[0] {
                    V::Ref(r) => *r.borrow_mut() = v,
                    other => return Err(Stop::Bug(format!(":= on {other:?}"))),
                }
                V::Unit
            }
            Prim::Ffi(name) => {
                let (conf, arr) = (&vs[0], &vs[1]);
                let V::Str(conf) = conf else {
                    return Err(Stop::Bug("ffi conf must be string".into()));
                };
                let V::Bytes(bytes) = arr else {
                    return Err(Stop::Bug("ffi arg must be byte array".into()));
                };
                let mut borrowed = bytes.borrow_mut();
                self.host.call(name, conf, &mut borrowed).map_err(Stop::FfiFailed)?;
                V::Unit
            }
            Prim::Exit => {
                let code = int(&vs[0])?;
                return Err(Stop::Exit(code as u8));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};
    use crate::types::check_program;

    fn run(src: &str) -> RunOutcome {
        let mut prog = parse_program(src).expect("parses");
        check_program(&mut prog).expect("typechecks");
        run_program(&prog, &mut NoFfi, 1_000_000).expect("runs")
    }

    fn eval(src: &str) -> Value {
        let e = parse_expr(src).expect("parses");
        eval_expr(&e, &mut NoFfi, 1_000_000).expect("evaluates")
    }

    #[test]
    fn arithmetic_wraps_at_31_bits() {
        match eval("1073741823 + 1") {
            Value::Int(v) => assert_eq!(v, -(1i64 << 30)),
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn division_semantics() {
        assert!(matches!(eval("7 div 2"), Value::Int(3)));
        assert!(matches!(eval("~7 div 2"), Value::Int(-3)), "truncating");
        assert!(matches!(eval("~7 mod 2"), Value::Int(-1)));
        let e = parse_expr("1 div 0").unwrap();
        assert!(matches!(eval_expr(&e, &mut NoFfi, 1000), Err(Stop::Exit(EXIT_DIV))));
    }

    #[test]
    fn closures_and_currying() {
        assert!(matches!(eval("(fn x => fn y => x + y) 3 4"), Value::Int(7)));
    }

    #[test]
    fn recursion_via_letfun() {
        assert!(matches!(
            eval("let fun fact n = if n = 0 then 1 else n * fact (n - 1) in fact 10 end"),
            Value::Int(3_628_800)
        ));
    }

    #[test]
    fn mutual_recursion() {
        let out = run(
            "fun even n = if n = 0 then true else odd (n - 1)
             and odd n = if n = 0 then false else even (n - 1);
             val r = if even 100 then 0 else Runtime.exit 9;",
        );
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn list_operations() {
        assert!(matches!(
            eval(
                "let fun len xs = case xs of [] => 0 | _ :: t => 1 + len t
                 in len [1, 2, 3, 4] end"
            ),
            Value::Int(4)
        ));
    }

    #[test]
    fn string_primitives() {
        assert!(matches!(eval("String.size (\"ab\" ^ \"cde\")"), Value::Int(5)));
        assert!(matches!(eval("Char.ord (String.sub \"abc\" 1)"), Value::Int(98)));
        let e = parse_expr("String.sub \"abc\" 9").unwrap();
        assert!(matches!(eval_expr(&e, &mut NoFfi, 1000), Err(Stop::Exit(EXIT_SUBSCRIPT))));
    }

    #[test]
    fn refs_are_mutable() {
        assert!(matches!(
            eval("let val r = ref 10 in (r := !r + 5; !r) end"),
            Value::Int(15)
        ));
    }

    #[test]
    fn byte_arrays() {
        assert!(matches!(
            eval(
                "let val a = Word8Array.array 4 #\"x\"
                 in (Word8Array.update a 1 #\"y\";
                     Char.ord (Word8Array.sub a 1)) end"
            ),
            Value::Int(121)
        ));
        assert!(matches!(
            eval(
                "let val a = Word8Array.array 5 #\"-\"
                 in (Word8Array.copyStr \"ab\" a 1; Word8Array.substring a 0 4) end"
            ),
            Value::Str(s) if s.as_slice() == b"-ab-"
        ));
    }

    #[test]
    fn case_match_failure_exits() {
        let mut prog = parse_program("val x = case 3 of 1 => 10 | 2 => 20;").unwrap();
        check_program(&mut prog).unwrap();
        let out = run_program(&prog, &mut NoFfi, 1000).unwrap();
        assert_eq!(out.exit_code, EXIT_MATCH);
    }

    #[test]
    fn exit_stops_program() {
        let out = run("val a = 1; val _ = Runtime.exit 7; val b = Runtime.exit 9;");
        assert_eq!(out.exit_code, 7);
    }

    #[test]
    fn fuel_limits_divergence() {
        let mut prog = parse_program("fun loop x = loop x; val _ = loop 0;").unwrap();
        check_program(&mut prog).unwrap();
        assert_eq!(run_program(&prog, &mut NoFfi, 2_000), Err(Stop::OutOfFuel));
    }

    #[test]
    fn ffi_reaches_host() {
        struct Recorder(Vec<(String, Vec<u8>)>);
        impl FfiHost for Recorder {
            fn call(
                &mut self,
                name: &str,
                conf: &[u8],
                bytes: &mut [u8],
            ) -> Result<(), String> {
                self.0.push((name.to_string(), conf.to_vec()));
                if let Some(b) = bytes.first_mut() {
                    *b = 42;
                }
                Ok(())
            }
        }
        let mut prog = parse_program(
            "val buf = Word8Array.array 4 #\"\\\\\";
             val _ = #(hello) \"cfg\" buf;
             val r = if Char.ord (Word8Array.sub buf 0) = 42 then 0 else Runtime.exit 1;",
        )
        .unwrap();
        check_program(&mut prog).unwrap();
        let mut host = Recorder(Vec::new());
        let out = run_program(&prog, &mut host, 100_000).unwrap();
        assert_eq!(out.exit_code, 0);
        assert_eq!(host.0, vec![("hello".to_string(), b"cfg".to_vec())]);
    }

    #[test]
    fn datatype_values_roundtrip() {
        let out = run(
            "datatype shape = Circle of int | Square of int | Point;
             fun area s = case s of
                 Circle r => 3 * r * r
               | Square w => w * w
               | Point => 0;
             val ok = if area (Circle 2) = 12 andalso area (Square 3) = 9
                         andalso area Point = 0
                      then 0 else Runtime.exit 1;",
        );
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn string_patterns() {
        let out = run(
            "fun greet s = case s of \"hi\" => 1 | \"bye\" => 2 | _ => 3;
             val ok = if greet \"hi\" = 1 andalso greet \"bye\" = 2 andalso greet \"x\" = 3
                      then 0 else Runtime.exit 1;",
        );
        assert_eq!(out.exit_code, 0);
    }
}
