//! The basis library, written in the source language itself.
//!
//! This plays the role of CakeML's standard basis (§5): list, string and
//! integer utilities, plus the I/O functions that implement the
//! byte-level FFI protocols over `#(write)`, `#(read)`,
//! `#(get_arg_count)`, `#(get_arg_length)` and `#(get_arg)`. The exact
//! byte protocols are documented in the `basis` crate, which provides the
//! matching oracle and the verified-by-testing machine code.

/// The prelude source, prepended to every program compiled with
/// [`CompilerConfig::prelude`](crate::codegen::CompilerConfig::prelude).
pub const PRELUDE: &str = r#"
(* ---- basis library (silver-stack prelude) ---- *)

fun id x = x;
fun fst p = case p of (a, _) => a;
fun snd p = case p of (_, b) => b;

fun length xs = let fun go n ys = case ys of [] => n | _ :: t => go (n + 1) t in go 0 xs end;
fun rev xs = let fun go acc ys = case ys of [] => acc | h :: t => go (h :: acc) t in go [] xs end;
fun append xs ys = case xs of [] => ys | h :: t => h :: append t ys;
fun map f xs = case xs of [] => [] | h :: t => f h :: map f t;
fun filter p xs =
  case xs of
    [] => []
  | h :: t => if p h then h :: filter p t else filter p t;
fun foldl f acc xs = case xs of [] => acc | h :: t => foldl f (f acc h) t;
fun exists p xs = case xs of [] => false | h :: t => p h orelse exists p t;
fun all p xs = case xs of [] => true | h :: t => p h andalso all p t;
fun nth xs n = case xs of [] => Runtime.exit 3 | h :: t => if n = 0 then h else nth t (n - 1);

fun char_to_string c =
  let val a = Word8Array.array 1 c in Word8Array.substring a 0 1 end;

fun nat_to_string n =
  if n < 10 then char_to_string (Char.chr (n + 48))
  else nat_to_string (n div 10) ^ char_to_string (Char.chr ((n mod 10) + 48));

fun int_to_string n = if n < 0 then "~" ^ nat_to_string (0 - n) else nat_to_string n;

fun explode s =
  let fun go i acc = if i < 0 then acc else go (i - 1) (String.sub s i :: acc)
  in go (String.size s - 1) [] end;

fun implode cs =
  let val n = length cs
      val a = Word8Array.array n (Char.chr 32)
      fun go i xs = case xs of [] => () | c :: t => (Word8Array.update a i c; go (i + 1) t)
  in (go 0 cs; Word8Array.substring a 0 n) end;

fun concat_strings ss = case ss of [] => "" | s :: t => s ^ concat_strings t;

fun string_lt a b =
  let val la = String.size a
      val lb = String.size b
      fun go i =
        if i >= la then i < lb
        else if i >= lb then false
        else
          let val ca = Char.ord (String.sub a i)
              val cb = Char.ord (String.sub b i)
          in if ca < cb then true else if cb < ca then false else go (i + 1) end
  in go 0 end;

fun split_lines s =
  let val n = String.size s
      fun go start i acc =
        if i >= n then
          rev (if i > start then String.substring s start (i - start) :: acc else acc)
        else if Char.ord (String.sub s i) = 10 then
          go (i + 1) (i + 1) (String.substring s start (i - start) :: acc)
        else go start (i + 1) acc
  in go 0 0 [] end;

fun join_lines ls = concat_strings (map (fn l => l ^ "\n") ls);

fun msplit xs =
  case xs of
    [] => ([], [])
  | [x] => ([x], [])
  | a :: b :: t => (case msplit t of (l, r) => (a :: l, b :: r));

fun merge lt xs ys =
  case (xs, ys) of
    ([], _) => ys
  | (_, []) => xs
  | (a :: t1, b :: t2) =>
      if lt b a then b :: merge lt xs t2 else a :: merge lt t1 ys;

fun merge_sort lt xs =
  case xs of
    [] => []
  | [x] => xs
  | _ => (case msplit xs of (l, r) => merge lt (merge_sort lt l) (merge_sort lt r));

(* ---- I/O over the basis FFI ---- *)

fun output fd s =
  let val n = String.size s
  in
    if n > 60000 then
      (output fd (String.substring s 0 60000);
       output fd (String.substring s 60000 (n - 60000)))
    else
      let val buf = Word8Array.array (n + 3) (Char.chr 0)
          val _ = Word8Array.update buf 1 (Char.chr (n div 256))
          val _ = Word8Array.update buf 2 (Char.chr (n mod 256))
          val _ = Word8Array.copyStr s buf 3
      in #(write) fd buf end
  end;

fun print s = output "1" s;
fun print_err s = output "2" s;

fun read_chunk fd n =
  let val buf = Word8Array.array (n + 3) (Char.chr 0)
      val _ = Word8Array.update buf 0 (Char.chr (n div 256))
      val _ = Word8Array.update buf 1 (Char.chr (n mod 256))
      val _ = #(read) fd buf
      val st = Char.ord (Word8Array.sub buf 0)
      val cnt = Char.ord (Word8Array.sub buf 1) * 256 + Char.ord (Word8Array.sub buf 2)
  in if st = 0 then Word8Array.substring buf 3 cnt else "" end;

fun read_all_from fd =
  let fun go acc =
        let val chunk = read_chunk fd 16000
        in if String.size chunk = 0 then concat_strings (rev acc) else go (chunk :: acc) end
  in go [] end;

fun read_all u = read_all_from "0";

fun arg_count u =
  let val buf = Word8Array.array 2 (Char.chr 0)
      val _ = #(get_arg_count) "" buf
  in Char.ord (Word8Array.sub buf 0) * 256 + Char.ord (Word8Array.sub buf 1) end;

fun arg_length i =
  let val buf = Word8Array.array 2 (Char.chr 0)
      val _ = Word8Array.update buf 0 (Char.chr (i div 256))
      val _ = Word8Array.update buf 1 (Char.chr (i mod 256))
      val _ = #(get_arg_length) "" buf
  in Char.ord (Word8Array.sub buf 0) * 256 + Char.ord (Word8Array.sub buf 1) end;

fun get_arg i =
  let val len = arg_length i
      val buf = Word8Array.array (len + 2) (Char.chr 0)
      val _ = Word8Array.update buf 0 (Char.chr (i div 256))
      val _ = Word8Array.update buf 1 (Char.chr (i mod 256))
      val _ = #(get_arg) "" buf
  in Word8Array.substring buf 2 len end;

fun arguments u =
  let val n = arg_count ()
      fun go i = if i >= n then [] else get_arg i :: go (i + 1)
  in go 0 end;

fun exit n = Runtime.exit n;

(* ---- end of prelude ---- *)
"#;
