//! The compiler-correctness property (theorem (2)): for randomly
//! generated programs, the machine-level behaviour of the compiled code
//! equals the source semantics — including the *crash* behaviours
//! (division by zero, subscript, match failure), which must terminate
//! with identical exit codes at both levels.
//!
//! Programs are generated as typed expression trees (ints and bools with
//! let-bound variables, arithmetic including div/mod, comparisons,
//! conditionals, short-circuit operators, tuples, and list folds), then
//! pretty-printed to source. The interpreter is the specification; the
//! compiled Silver machine code is the implementation under test.

use cakeml::{compile_source, run_program, CompilerConfig, NoFfi, Stop, TargetLayout};
use proptest::prelude::*;

/// A generated integer expression with the variables in scope.
#[derive(Clone, Debug)]
enum IExp {
    Lit(i64),
    Var(usize),
    Add(Box<IExp>, Box<IExp>),
    Sub(Box<IExp>, Box<IExp>),
    Mul(Box<IExp>, Box<IExp>),
    Div(Box<IExp>, Box<IExp>),
    Mod(Box<IExp>, Box<IExp>),
    If(Box<BExp>, Box<IExp>, Box<IExp>),
    Let(Box<IExp>, Box<IExp>),
}

#[derive(Clone, Debug)]
enum BExp {
    Lit(bool),
    Lt(Box<IExp>, Box<IExp>),
    Le(Box<IExp>, Box<IExp>),
    Eq(Box<IExp>, Box<IExp>),
    And(Box<BExp>, Box<BExp>),
    Or(Box<BExp>, Box<BExp>),
    Not(Box<BExp>),
}

fn show_i(e: &IExp, depth: usize) -> String {
    match e {
        IExp::Lit(v) if *v < 0 => format!("~{}", -v),
        IExp::Lit(v) => v.to_string(),
        IExp::Var(i) => format!("v{}", i % depth.max(1)),
        IExp::Add(a, b) => format!("({} + {})", show_i(a, depth), show_i(b, depth)),
        IExp::Sub(a, b) => format!("({} - {})", show_i(a, depth), show_i(b, depth)),
        IExp::Mul(a, b) => format!("({} * {})", show_i(a, depth), show_i(b, depth)),
        IExp::Div(a, b) => format!("({} div {})", show_i(a, depth), show_i(b, depth)),
        IExp::Mod(a, b) => format!("({} mod {})", show_i(a, depth), show_i(b, depth)),
        IExp::If(c, t, f) => format!(
            "(if {} then {} else {})",
            show_b(c, depth),
            show_i(t, depth),
            show_i(f, depth)
        ),
        IExp::Let(rhs, body) => format!(
            "(let val v{} = {} in {} end)",
            depth,
            show_i(rhs, depth),
            show_i(body, depth + 1)
        ),
    }
}

fn show_b(e: &BExp, depth: usize) -> String {
    match e {
        BExp::Lit(b) => b.to_string(),
        BExp::Lt(a, b) => format!("({} < {})", show_i(a, depth), show_i(b, depth)),
        BExp::Le(a, b) => format!("({} <= {})", show_i(a, depth), show_i(b, depth)),
        BExp::Eq(a, b) => format!("({} = {})", show_i(a, depth), show_i(b, depth)),
        BExp::And(a, b) => format!("({} andalso {})", show_b(a, depth), show_b(b, depth)),
        BExp::Or(a, b) => format!("({} orelse {})", show_b(a, depth), show_b(b, depth)),
        BExp::Not(a) => format!("(not {})", show_b(a, depth)),
    }
}

fn arb_iexp() -> impl Strategy<Value = IExp> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(IExp::Lit),
        any::<usize>().prop_map(IExp::Var),
        Just(IExp::Lit(0)),
        Just(IExp::Lit(1 << 30)), // boundary of the 31-bit range
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        let b = arb_bexp_with(inner.clone());
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, c)| IExp::Add(a.into(), c.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| IExp::Sub(a.into(), c.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| IExp::Mul(a.into(), c.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| IExp::Div(a.into(), c.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| IExp::Mod(a.into(), c.into())),
            (b, inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| IExp::If(c.into(), t.into(), f.into())),
            (inner.clone(), inner).prop_map(|(r, body)| IExp::Let(r.into(), body.into())),
        ]
    })
}

fn arb_bexp_with(i: BoxedStrategy<IExp>) -> BoxedStrategy<BExp> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(BExp::Lit),
        (i.clone(), i.clone()).prop_map(|(a, b)| BExp::Lt(a.into(), b.into())),
        (i.clone(), i.clone()).prop_map(|(a, b)| BExp::Le(a.into(), b.into())),
        (i.clone(), i).prop_map(|(a, b)| BExp::Eq(a.into(), b.into())),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BExp::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExp::Or(a.into(), b.into())),
            inner.prop_map(|a| BExp::Not(a.into())),
        ]
    })
    .boxed()
}

/// Interpreter outcome of `val _ = exit (expr);` programs.
fn spec_exit_code(prog: &Program) -> u8 {
    match run_program(&prog.ast, &mut NoFfi, 50_000_000) {
        Ok(out) => out.exit_code,
        Err(Stop::Exit(c)) => c,
        Err(other) => panic!("interpreter failed: {other}"),
    }
}

struct Program {
    src: String,
    ast: cakeml::Program,
}

fn make_program(e: &IExp) -> Program {
    // `v0` is always in scope so Var leaves are total.
    let src = format!("val v0 = 17;\nval _ = Runtime.exit ({});", show_i(e, 1));
    let cfg = CompilerConfig { prelude: false, ..CompilerConfig::default() };
    let (ast, _) = cakeml::frontend(&src, &cfg).expect("generated program type-checks");
    Program { src, ast }
}

fn machine_exit_code(src: &str, gc: bool) -> u8 {
    let layout = TargetLayout::default();
    let cfg = CompilerConfig { prelude: false, gc, ..CompilerConfig::default() };
    let compiled = compile_source(src, layout, &cfg).expect("compiles");
    let mut s = ag32::State::new();
    s.mem.write_bytes(layout.code_base, &compiled.code);
    s.mem.write_word(
        layout.halt_addr,
        ag32::encode(ag32::Instr::Jump {
            func: ag32::Func::Add,
            w: ag32::Reg::new(0),
            a: ag32::Ri::Imm(0),
        }),
    );
    s.pc = layout.code_base;
    s.run(100_000_000);
    assert!(s.is_halted(), "compiled program must halt: {src}");
    s.mem.read_word(layout.exit_code_addr) as u8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem (2): machine behaviour equals source behaviour, crash
    /// codes included.
    #[test]
    fn compiled_code_agrees_with_interpreter(e in arb_iexp()) {
        let p = make_program(&e);
        let spec = spec_exit_code(&p);
        let got = machine_exit_code(&p.src, false);
        prop_assert_eq!(got, spec, "program:\n{}", p.src);
    }

    /// The collector does not change behaviour either.
    #[test]
    fn gc_mode_agrees_with_interpreter(e in arb_iexp()) {
        let p = make_program(&e);
        let spec = spec_exit_code(&p);
        let got = machine_exit_code(&p.src, true);
        prop_assert_eq!(got, spec, "program:\n{}", p.src);
    }
}

// ---- second generator: lists and strings through the prelude ----

#[derive(Clone, Debug)]
enum LExp {
    Lit(Vec<i8>),
    Cons(i8, Box<LExp>),
    Append(Box<LExp>, Box<LExp>),
    Rev(Box<LExp>),
    Filter(Box<LExp>),
    Map(Box<LExp>),
    Sort(Box<LExp>),
}

fn show_l(e: &LExp) -> String {
    match e {
        LExp::Lit(xs) => {
            let parts: Vec<String> = xs
                .iter()
                .map(|v| if *v < 0 { format!("~{}", -i32::from(*v)) } else { v.to_string() })
                .collect();
            format!("[{}]", parts.join(", "))
        }
        LExp::Cons(h, t) => {
            let hs = if *h < 0 { format!("~{}", -i32::from(*h)) } else { h.to_string() };
            format!("({hs} :: {})", show_l(t))
        }
        LExp::Append(a, b) => format!("(append {} {})", show_l(a), show_l(b)),
        LExp::Rev(a) => format!("(rev {})", show_l(a)),
        LExp::Filter(a) => format!("(filter (fn x => x mod 2 = 0) {})", show_l(a)),
        LExp::Map(a) => format!("(map (fn x => x * 3 - 1) {})", show_l(a)),
        LExp::Sort(a) => format!("(merge_sort (fn a => fn b => a < b) {})", show_l(a)),
    }
}

fn arb_lexp() -> impl Strategy<Value = LExp> {
    let leaf = proptest::collection::vec(any::<i8>(), 0..6).prop_map(LExp::Lit);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (any::<i8>(), inner.clone()).prop_map(|(h, t)| LExp::Cons(h, t.into())),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| LExp::Append(a.into(), b.into())),
            inner.clone().prop_map(|a| LExp::Rev(a.into())),
            inner.clone().prop_map(|a| LExp::Filter(a.into())),
            inner.clone().prop_map(|a| LExp::Map(a.into())),
            inner.prop_map(|a| LExp::Sort(a.into())),
        ]
    })
}

#[derive(Clone, Debug)]
enum SExp {
    Lit(String),
    Concat(Box<SExp>, Box<SExp>),
    OfInt(i16),
    SubstrHalf(Box<SExp>),
    Implode(LExp),
}

fn show_s(e: &SExp) -> String {
    match e {
        SExp::Lit(s) => format!("{s:?}"),
        SExp::Concat(a, b) => format!("({} ^ {})", show_s(a), show_s(b)),
        SExp::OfInt(v) => {
            if *v < 0 {
                format!("(int_to_string ~{})", -i32::from(*v))
            } else {
                format!("(int_to_string {v})")
            }
        }
        SExp::SubstrHalf(a) => format!(
            "(let val t = {} in String.substring t 0 (String.size t div 2) end)",
            show_s(a)
        ),
        SExp::Implode(l) => format!(
            "(implode (map (fn x => Char.chr ((x + 128) mod 256)) {}))",
            show_l(l)
        ),
    }
}

fn arb_sexp() -> impl Strategy<Value = SExp> {
    let leaf = prop_oneof![
        "[a-z ]{0,6}".prop_map(SExp::Lit),
        any::<i16>().prop_map(SExp::OfInt),
        arb_lexp().prop_map(SExp::Implode),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SExp::Concat(a.into(), b.into())),
            inner.prop_map(|a| SExp::SubstrHalf(a.into())),
        ]
    })
}

fn check_with_prelude(src: &str) {
    let cfg = CompilerConfig::default();
    let (ast, _) = cakeml::frontend(src, &cfg).expect("type-checks");
    let spec = match run_program(&ast, &mut NoFfi, 100_000_000) {
        Ok(out) => out.exit_code,
        Err(Stop::Exit(c)) => c,
        Err(other) => panic!("interpreter failed: {other}"),
    };
    let layout = TargetLayout::default();
    for (gc, const_fold) in [(false, true), (true, true), (false, false)] {
        let cfg = CompilerConfig { gc, const_fold, ..CompilerConfig::default() };
        let compiled = compile_source(src, layout, &cfg).expect("compiles");
        let mut s = ag32::State::new();
        s.mem.write_bytes(layout.code_base, &compiled.code);
        s.mem.write_word(
            layout.halt_addr,
            ag32::encode(ag32::Instr::Jump {
                func: ag32::Func::Add,
                w: ag32::Reg::new(0),
                a: ag32::Ri::Imm(0),
            }),
        );
        s.pc = layout.code_base;
        s.run(500_000_000);
        assert!(s.is_halted(), "compiled program must halt (gc={gc}, fold={const_fold}): {src}");
        let got = s.mem.read_word(layout.exit_code_addr) as u8;
        assert_eq!(got, spec, "gc={gc}, fold={const_fold}, program:\n{src}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// List programs through the prelude: observe a structure-sensitive
    /// checksum so ordering bugs are caught.
    #[test]
    fn list_programs_agree(e in arb_lexp()) {
        let src = format!(
            "val xs = {};\n\
             val sum = foldl (fn a => fn b => (a * 31 + b) mod 65521) 7 xs;\n\
             val _ = exit ((sum + length xs) mod 251);",
            show_l(&e)
        );
        check_with_prelude(&src);
    }

    /// String programs through the prelude (concat, substring,
    /// int_to_string, implode), observed via a rolling hash.
    #[test]
    fn string_programs_agree(e in arb_sexp()) {
        let src = format!(
            "val s = {};\n\
             fun hash i acc =\n\
               if i >= String.size s then acc\n\
               else hash (i + 1) ((acc * 33 + Char.ord (String.sub s i)) mod 65521);\n\
             val _ = exit (hash 0 5381 mod 251);",
            show_s(&e)
        );
        check_with_prelude(&src);
    }
}
