//! The compiler-correctness property (theorem (2)): for randomly
//! generated programs, the machine-level behaviour of the compiled code
//! equals the source semantics — including the *crash* behaviours
//! (division by zero, subscript, match failure), which must terminate
//! with identical exit codes at both levels.
//!
//! Programs are generated as typed expression trees (ints and bools with
//! let-bound variables, arithmetic including div/mod, comparisons,
//! conditionals, short-circuit operators, tuples, and list folds), then
//! pretty-printed to source. The interpreter is the specification; the
//! compiled Silver machine code is the implementation under test.
//!
//! Generation runs on the hermetic `testkit` harness: shrinking is
//! integrated (a failing tree shrinks to a minimal failing tree), the
//! failing seed is persisted to `compiler_correctness.testkit-regressions`,
//! and the failure prints a one-line `TESTKIT_CASE_SEED=…` reproduction
//! command. Historical proptest counterexamples live as named unit tests
//! in `tests/regressions.rs`.

use cakeml::{compile_source, run_program, CompilerConfig, NoFfi, Stop, TargetLayout};
use testkit::prop::Ctx;

/// A generated integer expression with the variables in scope.
#[derive(Clone, Debug)]
enum IExp {
    Lit(i64),
    Var(usize),
    Add(Box<IExp>, Box<IExp>),
    Sub(Box<IExp>, Box<IExp>),
    Mul(Box<IExp>, Box<IExp>),
    Div(Box<IExp>, Box<IExp>),
    Mod(Box<IExp>, Box<IExp>),
    If(Box<BExp>, Box<IExp>, Box<IExp>),
    Let(Box<IExp>, Box<IExp>),
}

#[derive(Clone, Debug)]
enum BExp {
    Lit(bool),
    Lt(Box<IExp>, Box<IExp>),
    Le(Box<IExp>, Box<IExp>),
    Eq(Box<IExp>, Box<IExp>),
    And(Box<BExp>, Box<BExp>),
    Or(Box<BExp>, Box<BExp>),
    Not(Box<BExp>),
}

fn show_i(e: &IExp, depth: usize) -> String {
    match e {
        IExp::Lit(v) if *v < 0 => format!("~{}", -v),
        IExp::Lit(v) => v.to_string(),
        IExp::Var(i) => format!("v{}", i % depth.max(1)),
        IExp::Add(a, b) => format!("({} + {})", show_i(a, depth), show_i(b, depth)),
        IExp::Sub(a, b) => format!("({} - {})", show_i(a, depth), show_i(b, depth)),
        IExp::Mul(a, b) => format!("({} * {})", show_i(a, depth), show_i(b, depth)),
        IExp::Div(a, b) => format!("({} div {})", show_i(a, depth), show_i(b, depth)),
        IExp::Mod(a, b) => format!("({} mod {})", show_i(a, depth), show_i(b, depth)),
        IExp::If(c, t, f) => format!(
            "(if {} then {} else {})",
            show_b(c, depth),
            show_i(t, depth),
            show_i(f, depth)
        ),
        IExp::Let(rhs, body) => format!(
            "(let val v{} = {} in {} end)",
            depth,
            show_i(rhs, depth),
            show_i(body, depth + 1)
        ),
    }
}

fn show_b(e: &BExp, depth: usize) -> String {
    match e {
        BExp::Lit(b) => b.to_string(),
        BExp::Lt(a, b) => format!("({} < {})", show_i(a, depth), show_i(b, depth)),
        BExp::Le(a, b) => format!("({} <= {})", show_i(a, depth), show_i(b, depth)),
        BExp::Eq(a, b) => format!("({} = {})", show_i(a, depth), show_i(b, depth)),
        BExp::And(a, b) => format!("({} andalso {})", show_b(a, depth), show_b(b, depth)),
        BExp::Or(a, b) => format!("({} orelse {})", show_b(a, depth), show_b(b, depth)),
        BExp::Not(a) => format!("(not {})", show_b(a, depth)),
    }
}

fn arb_iexp_leaf(c: &mut Ctx) -> IExp {
    match c.choose(4) {
        0 => IExp::Lit(i64::from(c.gen_range(-1000i16..1000))),
        1 => IExp::Lit(0),
        2 => IExp::Lit(1 << 30), // boundary of the 31-bit range
        _ => IExp::Var(c.gen_range(0usize..=usize::MAX)),
    }
}

fn arb_iexp_at(c: &mut Ctx, depth: u32) -> IExp {
    if depth == 0 || c.choose(3) == 0 {
        return arb_iexp_leaf(c);
    }
    let d = depth - 1;
    match c.choose(7) {
        0 => IExp::Add(arb_iexp_at(c, d).into(), arb_iexp_at(c, d).into()),
        1 => IExp::Sub(arb_iexp_at(c, d).into(), arb_iexp_at(c, d).into()),
        2 => IExp::Mul(arb_iexp_at(c, d).into(), arb_iexp_at(c, d).into()),
        3 => IExp::Div(arb_iexp_at(c, d).into(), arb_iexp_at(c, d).into()),
        4 => IExp::Mod(arb_iexp_at(c, d).into(), arb_iexp_at(c, d).into()),
        5 => IExp::If(
            arb_bexp_at(c, 3.min(d), d).into(),
            arb_iexp_at(c, d).into(),
            arb_iexp_at(c, d).into(),
        ),
        _ => IExp::Let(arb_iexp_at(c, d).into(), arb_iexp_at(c, d).into()),
    }
}

fn arb_bexp_at(c: &mut Ctx, depth: u32, idepth: u32) -> BExp {
    if depth == 0 || c.choose(3) == 0 {
        return match c.choose(4) {
            0 => BExp::Lit(c.any_bool()),
            1 => BExp::Lt(arb_iexp_at(c, idepth).into(), arb_iexp_at(c, idepth).into()),
            2 => BExp::Le(arb_iexp_at(c, idepth).into(), arb_iexp_at(c, idepth).into()),
            _ => BExp::Eq(arb_iexp_at(c, idepth).into(), arb_iexp_at(c, idepth).into()),
        };
    }
    let d = depth - 1;
    match c.choose(3) {
        0 => BExp::And(arb_bexp_at(c, d, idepth).into(), arb_bexp_at(c, d, idepth).into()),
        1 => BExp::Or(arb_bexp_at(c, d, idepth).into(), arb_bexp_at(c, d, idepth).into()),
        _ => BExp::Not(arb_bexp_at(c, d, idepth).into()),
    }
}

fn arb_iexp(c: &mut Ctx) -> IExp {
    arb_iexp_at(c, 5)
}

/// Interpreter outcome of `val _ = exit (expr);` programs.
fn spec_exit_code(prog: &Program) -> u8 {
    match run_program(&prog.ast, &mut NoFfi, 50_000_000) {
        Ok(out) => out.exit_code,
        Err(Stop::Exit(c)) => c,
        Err(other) => panic!("interpreter failed: {other}"),
    }
}

struct Program {
    src: String,
    ast: cakeml::Program,
}

fn make_program(e: &IExp) -> Program {
    // `v0` is always in scope so Var leaves are total.
    let src = format!("val v0 = 17;\nval _ = Runtime.exit ({});", show_i(e, 1));
    let cfg = CompilerConfig { prelude: false, ..CompilerConfig::default() };
    let (ast, _) = cakeml::frontend(&src, &cfg).expect("generated program type-checks");
    Program { src, ast }
}

fn machine_exit_code(src: &str, gc: bool) -> u8 {
    let layout = TargetLayout::default();
    let cfg = CompilerConfig { prelude: false, gc, ..CompilerConfig::default() };
    let compiled = compile_source(src, layout, &cfg).expect("compiles");
    let mut s = ag32::State::new();
    s.mem.write_bytes(layout.code_base, &compiled.code);
    s.mem.write_word(
        layout.halt_addr,
        ag32::encode(ag32::Instr::Jump {
            func: ag32::Func::Add,
            w: ag32::Reg::new(0),
            a: ag32::Ri::Imm(0),
        }),
    );
    s.pc = layout.code_base;
    s.run(100_000_000);
    assert!(s.is_halted(), "compiled program must halt: {src}");
    s.mem.read_word(layout.exit_code_addr) as u8
}

testkit::props! {
    #![cases = 96]

    /// Theorem (2): machine behaviour equals source behaviour, crash
    /// codes included.
    fn compiled_code_agrees_with_interpreter(ctx) {
        let e = arb_iexp(ctx);
        let p = make_program(&e);
        let spec = spec_exit_code(&p);
        let got = machine_exit_code(&p.src, false);
        assert_eq!(got, spec, "program:\n{}", p.src);
    }

    /// The collector does not change behaviour either.
    fn gc_mode_agrees_with_interpreter(ctx) {
        let e = arb_iexp(ctx);
        let p = make_program(&e);
        let spec = spec_exit_code(&p);
        let got = machine_exit_code(&p.src, true);
        assert_eq!(got, spec, "program:\n{}", p.src);
    }
}

// ---- second generator: lists and strings through the prelude ----

#[derive(Clone, Debug)]
enum LExp {
    Lit(Vec<i8>),
    Cons(i8, Box<LExp>),
    Append(Box<LExp>, Box<LExp>),
    Rev(Box<LExp>),
    Filter(Box<LExp>),
    Map(Box<LExp>),
    Sort(Box<LExp>),
}

fn show_l(e: &LExp) -> String {
    match e {
        LExp::Lit(xs) => {
            let parts: Vec<String> = xs
                .iter()
                .map(|v| if *v < 0 { format!("~{}", -i32::from(*v)) } else { v.to_string() })
                .collect();
            format!("[{}]", parts.join(", "))
        }
        LExp::Cons(h, t) => {
            let hs = if *h < 0 { format!("~{}", -i32::from(*h)) } else { h.to_string() };
            format!("({hs} :: {})", show_l(t))
        }
        LExp::Append(a, b) => format!("(append {} {})", show_l(a), show_l(b)),
        LExp::Rev(a) => format!("(rev {})", show_l(a)),
        LExp::Filter(a) => format!("(filter (fn x => x mod 2 = 0) {})", show_l(a)),
        LExp::Map(a) => format!("(map (fn x => x * 3 - 1) {})", show_l(a)),
        LExp::Sort(a) => format!("(merge_sort (fn a => fn b => a < b) {})", show_l(a)),
    }
}

fn arb_lexp_at(c: &mut Ctx, depth: u32) -> LExp {
    if depth == 0 || c.choose(3) == 0 {
        return LExp::Lit(c.vec_of(0usize..6, |c| c.any::<i8>()));
    }
    let d = depth - 1;
    match c.choose(6) {
        0 => LExp::Cons(c.any::<i8>(), arb_lexp_at(c, d).into()),
        1 => LExp::Append(arb_lexp_at(c, d).into(), arb_lexp_at(c, d).into()),
        2 => LExp::Rev(arb_lexp_at(c, d).into()),
        3 => LExp::Filter(arb_lexp_at(c, d).into()),
        4 => LExp::Map(arb_lexp_at(c, d).into()),
        _ => LExp::Sort(arb_lexp_at(c, d).into()),
    }
}

fn arb_lexp(c: &mut Ctx) -> LExp {
    arb_lexp_at(c, 4)
}

#[derive(Clone, Debug)]
enum SExp {
    Lit(String),
    Concat(Box<SExp>, Box<SExp>),
    OfInt(i16),
    SubstrHalf(Box<SExp>),
    Implode(LExp),
}

fn show_s(e: &SExp) -> String {
    match e {
        SExp::Lit(s) => format!("{s:?}"),
        SExp::Concat(a, b) => format!("({} ^ {})", show_s(a), show_s(b)),
        SExp::OfInt(v) => {
            if *v < 0 {
                format!("(int_to_string ~{})", -i32::from(*v))
            } else {
                format!("(int_to_string {v})")
            }
        }
        SExp::SubstrHalf(a) => format!(
            "(let val t = {} in String.substring t 0 (String.size t div 2) end)",
            show_s(a)
        ),
        SExp::Implode(l) => format!(
            "(implode (map (fn x => Char.chr ((x + 128) mod 256)) {}))",
            show_l(l)
        ),
    }
}

fn arb_sexp_at(c: &mut Ctx, depth: u32) -> SExp {
    if depth == 0 || c.choose(3) == 0 {
        return match c.choose(3) {
            0 => SExp::Lit(c.string_of("abcdefghijklmnopqrstuvwxyz ", 0usize..=6)),
            1 => SExp::OfInt(c.any::<i16>()),
            _ => SExp::Implode(arb_lexp_at(c, 2.min(depth))),
        };
    }
    let d = depth - 1;
    match c.choose(2) {
        0 => SExp::Concat(arb_sexp_at(c, d).into(), arb_sexp_at(c, d).into()),
        _ => SExp::SubstrHalf(arb_sexp_at(c, d).into()),
    }
}

fn arb_sexp(c: &mut Ctx) -> SExp {
    arb_sexp_at(c, 3)
}

fn check_with_prelude(src: &str) {
    let cfg = CompilerConfig::default();
    let (ast, _) = cakeml::frontend(src, &cfg).expect("type-checks");
    let spec = match run_program(&ast, &mut NoFfi, 100_000_000) {
        Ok(out) => out.exit_code,
        Err(Stop::Exit(c)) => c,
        Err(other) => panic!("interpreter failed: {other}"),
    };
    let layout = TargetLayout::default();
    for (gc, const_fold) in [(false, true), (true, true), (false, false)] {
        let cfg = CompilerConfig { gc, const_fold, ..CompilerConfig::default() };
        let compiled = compile_source(src, layout, &cfg).expect("compiles");
        let mut s = ag32::State::new();
        s.mem.write_bytes(layout.code_base, &compiled.code);
        s.mem.write_word(
            layout.halt_addr,
            ag32::encode(ag32::Instr::Jump {
                func: ag32::Func::Add,
                w: ag32::Reg::new(0),
                a: ag32::Ri::Imm(0),
            }),
        );
        s.pc = layout.code_base;
        s.run(500_000_000);
        assert!(s.is_halted(), "compiled program must halt (gc={gc}, fold={const_fold}): {src}");
        let got = s.mem.read_word(layout.exit_code_addr) as u8;
        assert_eq!(got, spec, "gc={gc}, fold={const_fold}, program:\n{src}");
    }
}

testkit::props! {
    #![cases = 24]

    /// List programs through the prelude: observe a structure-sensitive
    /// checksum so ordering bugs are caught.
    fn list_programs_agree(ctx) {
        let e = arb_lexp(ctx);
        let src = format!(
            "val xs = {};\n\
             val sum = foldl (fn a => fn b => (a * 31 + b) mod 65521) 7 xs;\n\
             val _ = exit ((sum + length xs) mod 251);",
            show_l(&e)
        );
        check_with_prelude(&src);
    }

    /// String programs through the prelude (concat, substring,
    /// int_to_string, implode), observed via a rolling hash.
    fn string_programs_agree(ctx) {
        let e = arb_sexp(ctx);
        let src = format!(
            "val s = {};\n\
             fun hash i acc =\n\
               if i >= String.size s then acc\n\
               else hash (i + 1) ((acc * 33 + Char.ord (String.sub s i)) mod 65521);\n\
             val _ = exit (hash 0 5381 mod 251);",
            show_s(&e)
        );
        check_with_prelude(&src);
    }
}
