//! Historical counterexamples, pinned as named unit tests.
//!
//! The proptest era of `compiler_correctness.rs` persisted one shrunk
//! counterexample in `compiler_correctness.proptest-regressions`:
//!
//! ```text
//! e = Add(If(Not(And(Le(Lit(0), Sub(Lit(0), Var(1))),
//!                    Or(Lit(false), Lt(Lit(108), Sub(Lit(335), Lit(1073741824)))))),
//!            Mul(Lit(-139), Lit(0)),
//!            Lit(1073741824)),
//!        Mod(Lit(-439), Mod(Div(Lit(300), Lit(0)), Var(8284607985058737001))))
//! ```
//!
//! That file is deleted (the hermetic `testkit` harness uses
//! `*.testkit-regressions` seed files instead); the case lives on here,
//! both verbatim and decomposed into the individual hazards it packs
//! together: division by zero, `mod` with negative operands, the
//! `1 << 30` boundary of the 31-bit tagged-integer range, multiply by
//! zero with a negative operand, short-circuit evaluation guarding a
//! crash, and out-of-range `Var` indices wrapping onto the one variable
//! in scope (`Var(8284607985058737001) % 1 == v0`).
//!
//! Each test checks theorem (2) concretely: the compiled Silver machine
//! code's exit code — crash codes included — equals the interpreter's,
//! with and without the garbage collector.

use cakeml::{compile_source, run_program, CompilerConfig, NoFfi, Stop, TargetLayout};

/// Wraps `expr` in the same harness the property tests use (`v0` bound
/// to 17, result passed to `Runtime.exit`) and asserts interpreter and
/// machine agree on the exit code in both GC modes.
fn check_exit_expr(expr: &str) {
    let src = format!("val v0 = 17;\nval _ = Runtime.exit ({expr});");
    let cfg = CompilerConfig { prelude: false, ..CompilerConfig::default() };
    let (ast, _) = cakeml::frontend(&src, &cfg).expect("regression program type-checks");
    let spec = match run_program(&ast, &mut NoFfi, 50_000_000) {
        Ok(out) => out.exit_code,
        Err(Stop::Exit(c)) => c,
        Err(other) => panic!("interpreter failed: {other}"),
    };
    let layout = TargetLayout::default();
    for gc in [false, true] {
        let cfg = CompilerConfig { prelude: false, gc, ..CompilerConfig::default() };
        let compiled = compile_source(&src, layout, &cfg).expect("compiles");
        let mut s = ag32::State::new();
        s.mem.write_bytes(layout.code_base, &compiled.code);
        s.mem.write_word(
            layout.halt_addr,
            ag32::encode(ag32::Instr::Jump {
                func: ag32::Func::Add,
                w: ag32::Reg::new(0),
                a: ag32::Ri::Imm(0),
            }),
        );
        s.pc = layout.code_base;
        s.run(100_000_000);
        assert!(s.is_halted(), "compiled program must halt (gc={gc}): {src}");
        let got = s.mem.read_word(layout.exit_code_addr) as u8;
        assert_eq!(got, spec, "gc={gc}, program:\n{src}");
    }
}

/// The full historical counterexample, rendered exactly as the old
/// generator's pretty-printer did at depth 1 (both `Var`s reduce to
/// `v0`).
#[test]
fn historical_proptest_counterexample() {
    check_exit_expr(
        "((if (not ((0 <= (0 - v0)) andalso (false orelse (108 < (335 - 1073741824))))) \
          then (~139 * 0) else 1073741824) \
          + (~439 mod ((300 div 0) mod v0)))",
    );
}

/// Division by zero must produce the same crash exit code at both
/// levels.
#[test]
fn div_by_zero_crash_code() {
    check_exit_expr("(300 div 0)");
}

/// `mod` by zero likewise.
#[test]
fn mod_by_zero_crash_code() {
    check_exit_expr("(300 mod 0)");
}

/// A crash inside a nested operand must propagate identically — the
/// compiler must not reorder or constant-fold past it.
#[test]
fn crash_propagates_through_nested_mod() {
    check_exit_expr("(~439 mod ((300 div 0) mod v0))");
}

/// `mod` with negative operands: SML `mod` has sign-of-divisor
/// semantics, which differs from the machine's remainder.
#[test]
fn mod_with_negative_operands() {
    check_exit_expr("((~439 mod 7) + (439 mod ~7) + 100)");
}

/// The `1 << 30` literal sits at the boundary of the 31-bit
/// tagged-integer range; subtraction across it must not wrap
/// differently in compiled code.
#[test]
fn int_boundary_at_two_pow_thirty() {
    check_exit_expr("(if (108 < (335 - 1073741824)) then 1 else 2)");
}

/// Multiply by zero with a negative operand — the shrunk `then` branch.
/// Constant folding must preserve the sign-of-zero-free result.
#[test]
fn negative_times_zero() {
    check_exit_expr("((~139 * 0) + 55)");
}

/// Short-circuit `andalso`/`orelse` must guard a crashing operand: the
/// division by zero on the untaken side must never execute.
#[test]
fn short_circuit_guards_crash() {
    check_exit_expr("(if (false andalso ((1 div 0) = 0)) then 1 else 2)");
    check_exit_expr("(if (true orelse ((1 div 0) = 0)) then 3 else 4)");
}
