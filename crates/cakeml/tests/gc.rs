//! Tests for the two-space copying collector (`CompilerConfig::gc`) —
//! the paper's CakeML runtime has a GC; this is the reproduction's
//! implementation of that "missing" piece, on a deliberately tiny heap
//! so collections happen constantly.

use cakeml::ast::EXIT_OOM;
use cakeml::{compile_source, CompilerConfig, TargetLayout};

/// A layout with a 128 KiB heap (two 64 KiB semispaces).
fn tiny_heap() -> TargetLayout {
    TargetLayout {
        heap_end: TargetLayout::default().heap_base + 128 * 1024,
        code_base: TargetLayout::default().heap_base + 128 * 1024,
        ..TargetLayout::default()
    }
}

fn run(src: &str, layout: TargetLayout, gc: bool) -> (u8, u64) {
    let cfg = CompilerConfig { gc, ..CompilerConfig::default() };
    let compiled = compile_source(src, layout, &cfg).expect("compiles");
    let mut s = ag32::State::new();
    s.mem.write_bytes(layout.code_base, &compiled.code);
    s.mem.write_word(
        layout.halt_addr,
        ag32::encode(ag32::Instr::Jump {
            func: ag32::Func::Add,
            w: ag32::Reg::new(0),
            a: ag32::Ri::Imm(0),
        }),
    );
    s.pc = layout.code_base;
    let steps = s.run(2_000_000_000);
    assert!(s.is_halted(), "program must halt");
    (s.mem.read_word(layout.exit_code_addr) as u8, steps)
}

/// Allocation churn with a tiny live set: builds and discards a 50-cons
/// list 2000 times (~2.5 MB total allocation against a 64 KiB semispace).
const CHURN: &str = "
fun build n = if n = 0 then [] else n :: build (n - 1);
fun sum xs = case xs of [] => 0 | h :: t => h + sum t;
fun iterate k acc =
  if k = 0 then acc
  else iterate (k - 1) ((acc + sum (build 50)) mod 1000003);
val _ = exit (iterate 2000 0 mod 97);
";

#[test]
fn churn_oom_without_gc() {
    let (code, _) = run(CHURN, tiny_heap(), false);
    assert_eq!(code, EXIT_OOM, "bump allocation must exhaust the tiny heap");
}

#[test]
fn churn_survives_with_gc() {
    // The same program completes under the collector, with the same
    // answer the big-heap bump run produces.
    let (reference, _) = run(CHURN, TargetLayout::default(), false);
    let (code, steps) = run(CHURN, tiny_heap(), true);
    assert_eq!(code, reference, "collector must not change the answer");
    assert!(steps > 100_000, "the run really did work through collections");
}

#[test]
fn string_churn_with_gc() {
    // Exercises the runtime's GC-root spill protocol: rt_concat and
    // rt_substring allocate while holding heap pointers in registers.
    let src = "
fun churn k acc =
  if k = 0 then acc
  else
    let val s = int_to_string k ^ \"-\" ^ int_to_string (k * 7)
        val t = String.substring s 0 (String.size s - 1)
    in churn (k - 1) ((acc + String.size t) mod 1000003) end;
val _ = exit (churn 1500 0 mod 97);
";
    let (reference, _) = run(src, TargetLayout::default(), false);
    let (code, _) = run(src, tiny_heap(), true);
    assert_eq!(code, reference);
}

#[test]
fn closures_and_refs_survive_collections() {
    let src = "
val counter = ref 0;
fun bump u = (counter := !counter + 1; !counter);
fun spin k f =
  if k = 0 then f ()
  else
    let val junk = [k, k + 1, k + 2]
        val g = fn u => f () + length junk - 3
    in spin (k - 1) g end;
val _ = exit (spin 300 bump mod 256 + !counter - 1);
";
    let (reference, _) = run(src, TargetLayout::default(), false);
    let (code, _) = run(src, tiny_heap(), true);
    assert_eq!(code, reference);
}

#[test]
fn live_data_overflow_still_ooms_under_gc() {
    // A genuinely growing live structure must still end in the clean
    // out-of-memory exit (extend_with_oom behaviour), GC or not.
    let src = "fun grow xs = grow (0 :: xs); val _ = grow []; val _ = exit 0;";
    let (code, _) = run(src, tiny_heap(), true);
    assert_eq!(code, EXIT_OOM);
}

#[test]
fn datatype_payloads_traced_correctly() {
    let src = "
datatype tree = Leaf | Node of tree * int * tree;
fun insert t v =
  case t of
    Leaf => Node (Leaf, v, Leaf)
  | Node (l, x, r) => if v < x then Node (insert l v, x, r) else Node (l, x, insert r v);
fun total t = case t of Leaf => 0 | Node (l, x, r) => total l + x + total r;
fun rounds k acc =
  if k = 0 then acc
  else
    let val t = insert (insert (insert (insert Leaf k) (k * 3)) (k - 7)) 11
    in rounds (k - 1) ((acc + total t) mod 1000003) end;
val _ = exit (rounds 800 0 mod 97);
";
    let (reference, _) = run(src, TargetLayout::default(), false);
    let (code, _) = run(src, tiny_heap(), true);
    assert_eq!(code, reference);
}

#[test]
fn gc_mode_passes_the_bump_suite_smoke() {
    // A cross-section of the compile.rs suite, re-run under the
    // collector with the default (large) heap: behaviour is unchanged.
    let cases: &[(&str, u8)] = &[
        ("val _ = exit (40 + 2);", 42),
        (
            "fun fact n = if n = 0 then 1 else n * fact (n - 1);
             val _ = exit (fact 10 mod 251);",
            (3_628_800u64 % 251) as u8,
        ),
        (
            "val s = \"foo\" ^ \"bar\";
             val _ = exit (if s = \"foobar\" then 0 else 1);",
            0,
        ),
        (
            "val sorted = merge_sort (fn a => fn b => a < b) [5, 3, 9, 1];
             val _ = exit (case sorted of a :: _ => a | [] => 99);",
            1,
        ),
    ];
    let gc_layout = TargetLayout::default();
    for (src, want) in cases {
        let (code, _) = run(src, gc_layout, true);
        assert_eq!(code, *want, "under GC: {src}");
    }
}
