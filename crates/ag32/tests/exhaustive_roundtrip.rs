//! Exhaustive (non-random) encode/decode/disassemble roundtrip.
//!
//! The property suite (`tests/props.rs`) samples the instruction space;
//! this test *enumerates* it: every instruction class crossed with a
//! boundary set of operands — registers {0, 1, 63}, immediates
//! {-32, -1, 0, 1, 31}, every `Func`, every `Shift`, and the edge
//! immediates of the two load-constant forms ({0, 1, 2^23 - 1} and
//! {0, 1, 511}). For each instruction we check:
//!
//! 1. `decode(encode(i)) == i` (roundtrip),
//! 2. no two distinct instructions share an encoding (injectivity,
//!    via a collision map over the full enumeration),
//! 3. `disassemble` recovers the instruction from memory.
//!
//! The enumeration is deterministic and needs no seed, complementing
//! the seeded property tests with a fixed floor of coverage.

use std::collections::HashMap;

use ag32::{decode, encode, disassemble, Func, Instr, Memory, Reg, Ri, Shift};

fn boundary_regs() -> Vec<Reg> {
    [0u8, 1, 63].iter().map(|&i| Reg::new(i)).collect()
}

fn boundary_ris() -> Vec<Ri> {
    let mut out: Vec<Ri> = boundary_regs().into_iter().map(Ri::Reg).collect();
    for imm in [-32i8, -1, 0, 1, 31] {
        out.push(Ri::Imm(imm));
    }
    out
}

/// Every instruction in the boundary enumeration.
fn enumerate() -> Vec<Instr> {
    let regs = boundary_regs();
    let ris = boundary_ris();
    let mut out = Vec::new();

    for &func in &Func::ALL {
        for &w in &regs {
            for &a in &ris {
                for &b in &ris {
                    out.push(Instr::Normal { func, w, a, b });
                    out.push(Instr::Out { func, w, a, b });
                }
                out.push(Instr::Jump { func, w, a });
            }
        }
        for &w in &ris {
            for &a in &ris {
                for &b in &ris {
                    out.push(Instr::JumpIfZero { func, w, a, b });
                    out.push(Instr::JumpIfNotZero { func, w, a, b });
                }
            }
        }
    }

    for &kind in &Shift::ALL {
        for &w in &regs {
            for &a in &ris {
                for &b in &ris {
                    out.push(Instr::Shift { kind, w, a, b });
                }
            }
        }
    }

    for &a in &ris {
        for &b in &ris {
            out.push(Instr::StoreMem { a, b });
            out.push(Instr::StoreMemByte { a, b });
        }
    }

    for &w in &regs {
        for &a in &ris {
            out.push(Instr::LoadMem { w, a });
            out.push(Instr::LoadMemByte { w, a });
            out.push(Instr::Accelerator { w, a });
        }
        out.push(Instr::In { w });
        for negate in [false, true] {
            for imm in [0u32, 1, (1 << 23) - 1] {
                out.push(Instr::LoadConstant { w, negate, imm });
            }
        }
        for imm in [0u16, 1, (1 << 9) - 1] {
            out.push(Instr::LoadUpperConstant { w, imm });
        }
    }

    out.push(Instr::Interrupt);
    out.push(Instr::Reserved);
    out
}

#[test]
fn exhaustive_encode_decode_roundtrip() {
    let all = enumerate();
    // The enumeration is substantial — make sure nothing collapsed it.
    assert!(all.len() > 20_000, "enumeration too small: {}", all.len());
    for &i in &all {
        assert_eq!(decode(encode(i)), i, "roundtrip failed for {i:?}");
    }
}

#[test]
fn exhaustive_encoding_injective() {
    let mut seen: HashMap<u32, Instr> = HashMap::new();
    for i in enumerate() {
        let w = encode(i);
        if let Some(prev) = seen.insert(w, i) {
            assert_eq!(prev, i, "{prev:?} and {i:?} both encode to {w:#010x}");
        }
    }
}

#[test]
fn exhaustive_disassemble_recovers_instructions() {
    // Write the whole enumeration into memory as one long program and
    // disassemble it back in a single pass.
    let all = enumerate();
    let mut mem = Memory::new();
    for (idx, &i) in all.iter().enumerate() {
        mem.write_word(idx as u32 * 4, encode(i));
    }
    let listing = disassemble(&mem, 0, all.len() as u32);
    assert_eq!(listing.len(), all.len());
    for ((addr, got), (idx, &want)) in listing.iter().zip(all.iter().enumerate()) {
        assert_eq!(*addr, idx as u32 * 4);
        assert_eq!(*got, want, "disassembly diverged at {addr:#x}");
    }
}

#[test]
fn every_opcode_retires_and_is_counted() {
    // A straight-line program that executes each instruction class
    // once (twice for `Jump`: the `jmp` and the final halt), then
    // checks the per-opcode retire counters: every class except the
    // never-retiring `Reserved` must be nonzero, and the counters must
    // sum to `instructions_retired`.
    use ag32::asm::Assembler;
    use ag32::{Opcode, State};

    let mut a = Assembler::new(0x100);
    a.normal(Func::Add, Reg::new(1), Ri::Imm(1), Ri::Imm(2)); // Normal
    a.shift(Shift::Ll, Reg::new(2), Ri::Reg(Reg::new(1)), Ri::Imm(1)); // Shift
    a.li(Reg::new(3), 0x2000); // LoadConstant
    a.instr(Instr::LoadUpperConstant { w: Reg::new(3), imm: 0 }); // LoadUpperConstant
    a.li(Reg::new(3), 0x2000); // (rebuild the address the line above clobbered)
    a.instr(Instr::StoreMem { a: Ri::Reg(Reg::new(1)), b: Ri::Reg(Reg::new(3)) });
    a.instr(Instr::StoreMemByte { a: Ri::Reg(Reg::new(2)), b: Ri::Reg(Reg::new(3)) });
    a.instr(Instr::LoadMem { w: Reg::new(4), a: Ri::Reg(Reg::new(3)) });
    a.instr(Instr::LoadMemByte { w: Reg::new(5), a: Ri::Reg(Reg::new(3)) });
    a.instr(Instr::In { w: Reg::new(6) }); // In
    a.instr(Instr::Out {
        func: Func::Add,
        w: Reg::new(7),
        a: Ri::Reg(Reg::new(1)),
        b: Ri::Imm(1),
    }); // Out
    a.instr(Instr::Accelerator { w: Reg::new(8), a: Ri::Reg(Reg::new(1)) });
    a.instr(Instr::Interrupt); // Interrupt (records an I/O event)
    a.jmp("fwd", Reg::new(9), Reg::new(10)); // Jump
    a.label("fwd");
    // One taken and one fall-through conditional each way.
    a.branch_zero_sub(Ri::Imm(0), Ri::Imm(0), "z", Reg::new(9)); // JumpIfZero
    a.label("z");
    a.branch_nonzero_sub(Ri::Imm(1), Ri::Imm(0), "nz", Reg::new(9)); // JumpIfNotZero
    a.label("nz");
    a.halt(Reg::new(11)); // Jump (Add, Imm 0)

    let bytes = a.assemble().expect("assembles");
    let mut s = State::new();
    s.pc = 0x100;
    s.mem.write_bytes(0x100, &bytes);
    let retired = s.run(1_000);
    assert!(s.is_halted(), "program did not halt after {retired} instructions");

    for &op in &Opcode::ALL {
        if op == Opcode::Reserved {
            assert_eq!(s.stats.count(op), 0, "Reserved must never retire");
        } else {
            assert!(
                s.stats.count(op) > 0,
                "opcode {} never retired (counters: {:?})",
                op.name(),
                s.stats.opcode_retired,
            );
        }
    }
    assert_eq!(s.stats.total(), s.instructions_retired);
    assert_eq!(s.stats.opcodes_exercised(), Opcode::COUNT - 1);
    assert_eq!(s.io_events.len(), 1, "the Interrupt step records its event");
}
