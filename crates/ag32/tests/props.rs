//! Property-based tests for the ag32 ISA: encoding totality/injectivity
//! and algebraic laws of the execution semantics.

use ag32::{decode, encode, Func, Instr, Memory, Reg, Ri, Shift, State};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(Reg::new)
}

fn arb_ri() -> impl Strategy<Value = Ri> {
    prop_oneof![arb_reg().prop_map(Ri::Reg), (-32i8..=31).prop_map(Ri::Imm)]
}

fn arb_func() -> impl Strategy<Value = Func> {
    (0u32..16).prop_map(Func::from_bits)
}

fn arb_shift() -> impl Strategy<Value = Shift> {
    (0u32..4).prop_map(Shift::from_bits)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_func(), arb_reg(), arb_ri(), arb_ri())
            .prop_map(|(func, w, a, b)| Instr::Normal { func, w, a, b }),
        (arb_shift(), arb_reg(), arb_ri(), arb_ri())
            .prop_map(|(kind, w, a, b)| Instr::Shift { kind, w, a, b }),
        (arb_ri(), arb_ri()).prop_map(|(a, b)| Instr::StoreMem { a, b }),
        (arb_ri(), arb_ri()).prop_map(|(a, b)| Instr::StoreMemByte { a, b }),
        (arb_reg(), arb_ri()).prop_map(|(w, a)| Instr::LoadMem { w, a }),
        (arb_reg(), arb_ri()).prop_map(|(w, a)| Instr::LoadMemByte { w, a }),
        arb_reg().prop_map(|w| Instr::In { w }),
        (arb_func(), arb_reg(), arb_ri(), arb_ri())
            .prop_map(|(func, w, a, b)| Instr::Out { func, w, a, b }),
        (arb_reg(), arb_ri()).prop_map(|(w, a)| Instr::Accelerator { w, a }),
        (arb_func(), arb_reg(), arb_ri()).prop_map(|(func, w, a)| Instr::Jump { func, w, a }),
        (arb_func(), arb_ri(), arb_ri(), arb_ri())
            .prop_map(|(func, w, a, b)| Instr::JumpIfZero { func, w, a, b }),
        (arb_func(), arb_ri(), arb_ri(), arb_ri())
            .prop_map(|(func, w, a, b)| Instr::JumpIfNotZero { func, w, a, b }),
        (arb_reg(), any::<bool>(), 0u32..(1 << 23))
            .prop_map(|(w, negate, imm)| Instr::LoadConstant { w, negate, imm }),
        (arb_reg(), 0u16..(1 << 9)).prop_map(|(w, imm)| Instr::LoadUpperConstant { w, imm }),
        Just(Instr::Interrupt),
        Just(Instr::Reserved),
    ]
}

proptest! {
    /// `decode ∘ encode = id` on canonical instructions.
    #[test]
    fn encode_decode_roundtrip(i in arb_instr()) {
        prop_assert_eq!(decode(encode(i)), i);
    }

    /// Decode is total — no word panics.
    #[test]
    fn decode_total(w in any::<u32>()) {
        let _ = decode(w);
    }

    /// Encoding is injective on canonical instructions.
    #[test]
    fn encode_injective(a in arb_instr(), b in arb_instr()) {
        if a != b {
            prop_assert_ne!(encode(a), encode(b));
        }
    }

    /// Memory read-after-write returns the written byte and leaves
    /// other addresses untouched.
    #[test]
    fn memory_raw(addr in any::<u32>(), v in any::<u8>(), other in any::<u32>()) {
        let mut m = Memory::new();
        m.write_byte(addr, v);
        prop_assert_eq!(m.read_byte(addr), v);
        if other != addr {
            prop_assert_eq!(m.read_byte(other), 0);
        }
    }

    /// A `Normal` instruction is deterministic and only changes the
    /// destination register, the flags and the PC.
    #[test]
    fn normal_frame_condition(
        func in arb_func(),
        w in arb_reg(),
        a in arb_ri(),
        b in arb_ri(),
        regs in proptest::array::uniform32(any::<u32>()),
    ) {
        let mut s = State::new();
        for (i, r) in regs.iter().enumerate() {
            s.regs[i] = *r;
        }
        s.mem.write_word(0, encode(Instr::Normal { func, w, a, b }));
        let before = s.clone();
        s.next();
        prop_assert_eq!(s.pc, 4);
        prop_assert_eq!(&s.mem, &before.mem);
        prop_assert_eq!(&s.io_events, &before.io_events);
        for i in 0..64 {
            if i != w.index() {
                prop_assert_eq!(s.regs[i], before.regs[i], "register {} changed", i);
            }
        }
    }

    /// Executing the same state twice gives identical results
    /// (the semantics is a function).
    #[test]
    fn next_is_deterministic(words in proptest::collection::vec(any::<u32>(), 1..32)) {
        let mut s1 = State::new();
        for (i, w) in words.iter().enumerate() {
            s1.mem.write_word(i as u32 * 4, *w);
        }
        let mut s2 = s1.clone();
        s1.run(words.len() as u64);
        s2.run(words.len() as u64);
        prop_assert!(s1.isa_visible_eq(&s2));
    }

    /// Shift-left then shift-right by the same in-range amount masks the
    /// top bits only.
    #[test]
    fn shift_inverse(v in any::<u32>(), amt in 0u32..32) {
        use ag32::Shift::*;
        let ll = {
            let mut s = State::new();
            s.regs[1] = v;
            s.regs[2] = amt;
            s.mem.write_word(0, encode(Instr::Shift {
                kind: Ll, w: Reg::new(3), a: Ri::Reg(Reg::new(1)), b: Ri::Reg(Reg::new(2)),
            }));
            s.next();
            s.regs[3]
        };
        prop_assert_eq!(ll, v << amt);
        let ror = {
            let mut s = State::new();
            s.regs[1] = v;
            s.regs[2] = amt;
            s.mem.write_word(0, encode(Instr::Shift {
                kind: Ror, w: Reg::new(3), a: Ri::Reg(Reg::new(1)), b: Ri::Reg(Reg::new(2)),
            }));
            s.next();
            s.regs[3]
        };
        prop_assert_eq!(ror.rotate_left(amt), v);
    }

    /// The halt state really is a fixpoint of `Next` after one lap.
    #[test]
    fn halt_fixpoint(pc_words in 1u32..100) {
        let pc = pc_words * 4;
        let mut s = State::new();
        s.pc = pc;
        s.mem.write_word(pc, encode(Instr::Jump {
            func: Func::Add, w: Reg::new(1), a: Ri::Imm(0),
        }));
        prop_assert!(s.is_halted());
        s.next();
        let fix = s.clone();
        for _ in 0..3 {
            s.next();
            prop_assert!(s.isa_visible_eq(&fix));
        }
    }
}
