//! Property-based tests for the ag32 ISA: encoding totality/injectivity
//! and algebraic laws of the execution semantics, on the hermetic
//! `testkit` harness (seed with `TESTKIT_SEED`, replay failures with
//! the printed `TESTKIT_CASE_SEED` command).

use ag32::{decode, encode, Func, Instr, Memory, Reg, Ri, Shift, State};
use testkit::prop::Ctx;

fn arb_reg(c: &mut Ctx) -> Reg {
    Reg::new(c.gen_range(0u8..64))
}

fn arb_ri(c: &mut Ctx) -> Ri {
    if c.choose(2) == 0 {
        Ri::Reg(arb_reg(c))
    } else {
        Ri::Imm(c.gen_range(-32i8..=31))
    }
}

fn arb_func(c: &mut Ctx) -> Func {
    Func::from_bits(c.gen_range(0u32..16))
}

fn arb_shift(c: &mut Ctx) -> Shift {
    Shift::from_bits(c.gen_range(0u32..4))
}

fn arb_instr(c: &mut Ctx) -> Instr {
    match c.choose(16) {
        0 => Instr::Normal { func: arb_func(c), w: arb_reg(c), a: arb_ri(c), b: arb_ri(c) },
        1 => Instr::Shift { kind: arb_shift(c), w: arb_reg(c), a: arb_ri(c), b: arb_ri(c) },
        2 => Instr::StoreMem { a: arb_ri(c), b: arb_ri(c) },
        3 => Instr::StoreMemByte { a: arb_ri(c), b: arb_ri(c) },
        4 => Instr::LoadMem { w: arb_reg(c), a: arb_ri(c) },
        5 => Instr::LoadMemByte { w: arb_reg(c), a: arb_ri(c) },
        6 => Instr::In { w: arb_reg(c) },
        7 => Instr::Out { func: arb_func(c), w: arb_reg(c), a: arb_ri(c), b: arb_ri(c) },
        8 => Instr::Accelerator { w: arb_reg(c), a: arb_ri(c) },
        9 => Instr::Jump { func: arb_func(c), w: arb_reg(c), a: arb_ri(c) },
        10 => Instr::JumpIfZero { func: arb_func(c), w: arb_ri(c), a: arb_ri(c), b: arb_ri(c) },
        11 => {
            Instr::JumpIfNotZero { func: arb_func(c), w: arb_ri(c), a: arb_ri(c), b: arb_ri(c) }
        }
        12 => Instr::LoadConstant {
            w: arb_reg(c),
            negate: c.any_bool(),
            imm: c.gen_range(0u32..(1 << 23)),
        },
        13 => Instr::LoadUpperConstant { w: arb_reg(c), imm: c.gen_range(0u16..(1 << 9)) },
        14 => Instr::Interrupt,
        _ => Instr::Reserved,
    }
}

testkit::props! {
    /// `decode ∘ encode = id` on canonical instructions.
    fn encode_decode_roundtrip(ctx) {
        let i = arb_instr(ctx);
        assert_eq!(decode(encode(i)), i);
    }

    /// Decode is total — no word panics.
    fn decode_total(ctx) {
        let w = ctx.any::<u32>();
        let _ = decode(w);
    }

    /// Encoding is injective on canonical instructions.
    fn encode_injective(ctx) {
        let a = arb_instr(ctx);
        let b = arb_instr(ctx);
        if a != b {
            assert_ne!(encode(a), encode(b), "{a:?} and {b:?} collide");
        }
    }

    /// Memory read-after-write returns the written byte and leaves
    /// other addresses untouched.
    fn memory_raw(ctx) {
        let addr = ctx.any::<u32>();
        let v = ctx.any::<u8>();
        let other = ctx.any::<u32>();
        let mut m = Memory::new();
        m.write_byte(addr, v);
        assert_eq!(m.read_byte(addr), v);
        if other != addr {
            assert_eq!(m.read_byte(other), 0);
        }
    }

    /// A `Normal` instruction is deterministic and only changes the
    /// destination register, the flags and the PC.
    fn normal_frame_condition(ctx) {
        let func = arb_func(ctx);
        let w = arb_reg(ctx);
        let a = arb_ri(ctx);
        let b = arb_ri(ctx);
        let mut s = State::new();
        for i in 0..32 {
            s.regs[i] = ctx.any::<u32>();
        }
        s.mem.write_word(0, encode(Instr::Normal { func, w, a, b }));
        let before = s.clone();
        s.next();
        assert_eq!(s.pc, 4);
        assert_eq!(&s.mem, &before.mem);
        assert_eq!(&s.io_events, &before.io_events);
        for i in 0..64 {
            if i != w.index() {
                assert_eq!(s.regs[i], before.regs[i], "register {i} changed");
            }
        }
    }

    /// Executing the same state twice gives identical results
    /// (the semantics is a function).
    fn next_is_deterministic(ctx) {
        let words = ctx.vec_of(1usize..32, |c| c.any::<u32>());
        let mut s1 = State::new();
        for (i, w) in words.iter().enumerate() {
            s1.mem.write_word(i as u32 * 4, *w);
        }
        let mut s2 = s1.clone();
        s1.run(words.len() as u64);
        s2.run(words.len() as u64);
        assert!(s1.isa_visible_eq(&s2));
    }

    /// Shift-left then shift-right by the same in-range amount masks the
    /// top bits only.
    fn shift_inverse(ctx) {
        use ag32::Shift::{Ll, Ror};
        let v = ctx.any::<u32>();
        let amt = ctx.gen_range(0u32..32);
        let ll = {
            let mut s = State::new();
            s.regs[1] = v;
            s.regs[2] = amt;
            s.mem.write_word(0, encode(Instr::Shift {
                kind: Ll, w: Reg::new(3), a: Ri::Reg(Reg::new(1)), b: Ri::Reg(Reg::new(2)),
            }));
            s.next();
            s.regs[3]
        };
        assert_eq!(ll, v << amt);
        let ror = {
            let mut s = State::new();
            s.regs[1] = v;
            s.regs[2] = amt;
            s.mem.write_word(0, encode(Instr::Shift {
                kind: Ror, w: Reg::new(3), a: Ri::Reg(Reg::new(1)), b: Ri::Reg(Reg::new(2)),
            }));
            s.next();
            s.regs[3]
        };
        assert_eq!(ror.rotate_left(amt), v);
    }

    /// The halt state really is a fixpoint of `Next` after one lap.
    fn halt_fixpoint(ctx) {
        let pc_words = ctx.gen_range(1u32..100);
        let pc = pc_words * 4;
        let mut s = State::new();
        s.pc = pc;
        s.mem.write_word(pc, encode(Instr::Jump {
            func: Func::Add, w: Reg::new(1), a: Ri::Imm(0),
        }));
        assert!(s.is_halted());
        s.next();
        let fix = s.clone();
        for _ in 0..3 {
            s.next();
            assert!(s.isa_visible_eq(&fix));
        }
    }
}

/// Reference byte-wise word read: what `read_word` must agree with.
fn read_word_bytewise(m: &Memory, addr: u32) -> u32 {
    u32::from_le_bytes([
        m.read_byte(addr),
        m.read_byte(addr.wrapping_add(1)),
        m.read_byte(addr.wrapping_add(2)),
        m.read_byte(addr.wrapping_add(3)),
    ])
}

/// Addresses biased toward the interesting cases of the single-page
/// fast path: word-aligned interior, page boundaries (crossing and
/// not), and the 4 GiB wrap.
fn arb_word_addr(c: &mut Ctx) -> u32 {
    let page = (c.gen_range(0u32..1 << 20)) << Memory::PAGE_SHIFT as u32;
    match c.choose(4) {
        // Aligned interior: always the fast path.
        0 => page | (c.gen_range(0u32..1024) << 2),
        // Within 4 bytes of a page end: straddles iff misaligned.
        1 => page
            .wrapping_add(Memory::PAGE_SIZE as u32)
            .wrapping_sub(c.gen_range(1u32..=7)),
        // Within 4 bytes of the 4 GiB boundary: wraps.
        2 => u32::MAX - c.gen_range(0u32..=6),
        // Anywhere, any alignment.
        _ => c.any::<u32>(),
    }
}

testkit::props! {
    /// The single-page fast path of `read_word` agrees with the
    /// byte-wise path at every address class, including page-crossing
    /// and 4 GiB-wrap addresses.
    fn read_word_fast_path_equiv(ctx) {
        let mut m = Memory::new();
        for _ in 0..ctx.gen_range(1usize..8) {
            m.write_byte(arb_word_addr(ctx), ctx.any::<u8>());
        }
        let addr = arb_word_addr(ctx);
        assert_eq!(m.read_word(addr), read_word_bytewise(&m, addr), "addr {addr:#x}");
    }

    /// The single-page fast path of `write_word` leaves memory in
    /// exactly the state four byte writes would, at every address class.
    fn write_word_fast_path_equiv(ctx) {
        let mut seed = Memory::new();
        for _ in 0..ctx.gen_range(0usize..4) {
            seed.write_byte(arb_word_addr(ctx), ctx.any::<u8>());
        }
        let addr = arb_word_addr(ctx);
        let v = ctx.any::<u32>();

        let mut fast = seed.clone();
        fast.write_word(addr, v);

        let mut slow = seed;
        for (i, b) in v.to_le_bytes().into_iter().enumerate() {
            slow.write_byte(addr.wrapping_add(i as u32), b);
        }
        assert_eq!(fast, slow, "addr {addr:#x} value {v:#x}");
        assert_eq!(fast.read_word(addr), read_word_bytewise(&slow, addr));
    }

    /// Word round-trip through the fast path at aligned addresses
    /// (the only class the executing machine ever issues).
    fn write_then_read_word_aligned(ctx) {
        let addr = arb_word_addr(ctx) & !3;
        let v = ctx.any::<u32>();
        let mut m = Memory::new();
        m.write_word(addr, v);
        assert_eq!(m.read_word(addr), v);
        assert_eq!(read_word_bytewise(&m, addr), v);
    }
}
