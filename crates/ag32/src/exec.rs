//! Execution semantics for each instruction (§4.1.1).

use crate::insn::{Func, Instr, Shift};
use crate::state::{IoEvent, State};
use crate::WORD_BYTES;

/// Result of an ALU evaluation: the value plus the flag outputs, when the
/// function drives them. Only `Add`, `AddWithCarry` and `Sub` update flags.
pub struct AluOut {
    /// The computed word.
    pub value: u32,
    /// New carry flag, when this function drives it.
    pub carry: Option<bool>,
    /// New overflow flag, when this function drives it.
    pub overflow: Option<bool>,
}

/// The ALU. Pure: takes the current flags, returns new ones when driven.
///
/// Public so alternative execution engines (the `jet` translation-cache
/// engine) share the *same* arithmetic as `Next` by construction rather
/// than by re-implementation.
#[must_use]
#[inline]
pub fn alu(func: Func, a: u32, b: u32, carry_in: bool, overflow_in: bool) -> AluOut {
    let mut carry = None;
    let mut overflow = None;
    let value = match func {
        Func::Add => {
            let wide = u64::from(a) + u64::from(b);
            carry = Some(wide >> 32 != 0);
            let (v, ov) = (a as i32).overflowing_add(b as i32);
            overflow = Some(ov);
            v as u32
        }
        Func::AddWithCarry => {
            let wide = u64::from(a) + u64::from(b) + u64::from(carry_in);
            carry = Some(wide >> 32 != 0);
            // Signed overflow of the full three-operand sum.
            let exact = i64::from(a as i32) + i64::from(b as i32) + i64::from(carry_in);
            overflow = Some(exact != i64::from(wide as u32 as i32));
            wide as u32
        }
        Func::Sub => {
            // Carry is the "no borrow" convention: set when a >= b.
            carry = Some(a >= b);
            let (v, ov) = (a as i32).overflowing_sub(b as i32);
            overflow = Some(ov);
            v as u32
        }
        Func::Carry => u32::from(carry_in),
        Func::Overflow => u32::from(overflow_in),
        Func::Inc => b.wrapping_add(1),
        Func::Dec => b.wrapping_sub(1),
        Func::Mul => (u64::from(a) * u64::from(b)) as u32,
        Func::MulHi => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        Func::And => a & b,
        Func::Or => a | b,
        Func::Xor => a ^ b,
        Func::Equal => u32::from(a == b),
        Func::Less => u32::from((a as i32) < (b as i32)),
        Func::Lower => u32::from(a < b),
        Func::Snd => b,
    };
    AluOut { value, carry, overflow }
}

/// Shifter. The shift amount is taken modulo 32, for every kind.
/// Public for the same reason as [`alu`].
#[must_use]
#[inline]
pub fn shifter(kind: Shift, a: u32, b: u32) -> u32 {
    let amount = b & 31;
    match kind {
        Shift::Ll => a << amount,
        Shift::Lr => a >> amount,
        Shift::Ar => ((a as i32) >> amount) as u32,
        Shift::Ror => a.rotate_right(amount),
    }
}

fn alu_step(s: &mut State, func: Func, a: u32, b: u32) -> u32 {
    let out = alu(func, a, b, s.carry, s.overflow);
    if let Some(c) = out.carry {
        s.carry = c;
    }
    if let Some(v) = out.overflow {
        s.overflow = v;
    }
    out.value
}

/// Executes one (non-`Reserved`) decoded instruction against the state.
pub(crate) fn execute(s: &mut State, instr: Instr) {
    match instr {
        Instr::Normal { func, w, a, b } => {
            let v = alu_step(s, func, s.ri(a), s.ri(b));
            s.regs[w.index()] = v;
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::Shift { kind, w, a, b } => {
            s.regs[w.index()] = shifter(kind, s.ri(a), s.ri(b));
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::StoreMem { a, b } => {
            let addr = s.ri(b) & !3;
            let value = s.ri(a);
            s.mem.write_word(addr, value);
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::StoreMemByte { a, b } => {
            let addr = s.ri(b);
            let value = s.ri(a) as u8;
            s.mem.write_byte(addr, value);
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::LoadMem { w, a } => {
            let addr = s.ri(a) & !3;
            s.regs[w.index()] = s.mem.read_word(addr);
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::LoadMemByte { w, a } => {
            let addr = s.ri(a);
            s.regs[w.index()] = u32::from(s.mem.read_byte(addr));
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::In { w } => {
            s.regs[w.index()] = s.data_in;
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::Out { func, w, a, b } => {
            let v = alu_step(s, func, s.ri(a), s.ri(b));
            s.regs[w.index()] = v;
            s.data_out = v;
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::Accelerator { w, a } => {
            s.regs[w.index()] = (s.accel)(s.ri(a));
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::Jump { func, w, a } => {
            let target = alu_step(s, func, s.pc, s.ri(a));
            s.regs[w.index()] = s.pc.wrapping_add(WORD_BYTES);
            s.pc = target;
        }
        Instr::JumpIfZero { func, w, a, b } => {
            let v = alu_step(s, func, s.ri(a), s.ri(b));
            let off = if v == 0 { s.ri(w) } else { WORD_BYTES };
            s.pc = s.pc.wrapping_add(off);
        }
        Instr::JumpIfNotZero { func, w, a, b } => {
            let v = alu_step(s, func, s.ri(a), s.ri(b));
            let off = if v != 0 { s.ri(w) } else { WORD_BYTES };
            s.pc = s.pc.wrapping_add(off);
        }
        Instr::LoadConstant { w, negate, imm } => {
            let v = if negate { (imm).wrapping_neg() } else { imm };
            s.regs[w.index()] = v;
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::LoadUpperConstant { w, imm } => {
            let old = s.regs[w.index()];
            s.regs[w.index()] = (u32::from(imm) << 23) | (old & 0x7F_FFFF);
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::Interrupt => {
            let (base, len) = s.io_window;
            let window = s.mem.read_bytes(base, len);
            s.io_events.push(IoEvent { data_out: s.data_out, window });
            s.pc = s.pc.wrapping_add(WORD_BYTES);
        }
        Instr::Reserved => unreachable!("Reserved is filtered by State::next"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Reg, Ri};
    use crate::{decode, encode};

    fn machine_with(instrs: &[Instr]) -> State {
        let mut s = State::new();
        for (i, &ins) in instrs.iter().enumerate() {
            s.mem.write_word(i as u32 * 4, encode(ins));
        }
        s
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let mut s = State::new();
        s.regs[1] = u32::MAX;
        s.regs[2] = 1;
        s.mem.write_word(
            0,
            encode(Instr::Normal {
                func: Func::Add,
                w: Reg::new(3),
                a: Ri::Reg(Reg::new(1)),
                b: Ri::Reg(Reg::new(2)),
            }),
        );
        s.next();
        assert_eq!(s.regs[3], 0);
        assert!(s.carry);
        assert!(!s.overflow, "unsigned wrap is not signed overflow");
        assert_eq!(s.pc, 4);
    }

    #[test]
    fn signed_overflow_detected() {
        let out = alu(Func::Add, i32::MAX as u32, 1, false, false);
        assert_eq!(out.overflow, Some(true));
        assert_eq!(out.carry, Some(false));
        let out = alu(Func::Sub, i32::MIN as u32, 1, false, false);
        assert_eq!(out.overflow, Some(true));
    }

    #[test]
    fn add_with_carry_chains() {
        // 64-bit addition via Add + AddWithCarry.
        let a: u64 = 0xFFFF_FFFF_0000_0001;
        let b: u64 = 0x0000_0001_FFFF_FFFF;
        let lo = alu(Func::Add, a as u32, b as u32, false, false);
        let hi = alu(
            Func::AddWithCarry,
            (a >> 32) as u32,
            (b >> 32) as u32,
            lo.carry.unwrap(),
            false,
        );
        let got = (u64::from(hi.value) << 32) | u64::from(lo.value);
        assert_eq!(got, a.wrapping_add(b));
    }

    #[test]
    fn sub_carry_is_no_borrow() {
        assert_eq!(alu(Func::Sub, 5, 3, false, false).carry, Some(true));
        assert_eq!(alu(Func::Sub, 3, 5, false, false).carry, Some(false));
        assert_eq!(alu(Func::Sub, 3, 3, false, false).carry, Some(true));
    }

    #[test]
    fn carry_and_overflow_readback() {
        let mut s = machine_with(&[
            Instr::Normal { func: Func::Add, w: Reg::new(1), a: Ri::Imm(-1), b: Ri::Imm(-1) },
            Instr::Normal { func: Func::Carry, w: Reg::new(2), a: Ri::Imm(0), b: Ri::Imm(0) },
            Instr::Normal { func: Func::Overflow, w: Reg::new(3), a: Ri::Imm(0), b: Ri::Imm(0) },
        ]);
        s.run(3);
        assert_eq!(s.regs[2], 1, "adding -1 + -1 carries (unsigned wrap)");
        assert_eq!(s.regs[3], 0);
    }

    #[test]
    fn mul_pair_gives_full_product() {
        let a = 0xDEAD_BEEFu32;
        let b = 0xCAFE_BABEu32;
        let lo = alu(Func::Mul, a, b, false, false).value;
        let hi = alu(Func::MulHi, a, b, false, false).value;
        assert_eq!((u64::from(hi) << 32) | u64::from(lo), u64::from(a) * u64::from(b));
    }

    #[test]
    fn comparisons() {
        assert_eq!(alu(Func::Less, (-1i32) as u32, 1, false, false).value, 1);
        assert_eq!(alu(Func::Lower, (-1i32) as u32, 1, false, false).value, 0);
        assert_eq!(alu(Func::Equal, 7, 7, false, false).value, 1);
        assert_eq!(alu(Func::Snd, 1, 99, false, false).value, 99);
    }

    #[test]
    fn shifts() {
        assert_eq!(shifter(Shift::Ll, 1, 31), 1 << 31);
        assert_eq!(shifter(Shift::Lr, 0x8000_0000, 31), 1);
        assert_eq!(shifter(Shift::Ar, 0x8000_0000, 31), u32::MAX);
        assert_eq!(shifter(Shift::Ror, 0x0000_0001, 1), 0x8000_0000);
        assert_eq!(shifter(Shift::Ll, 0xFFFF, 32), 0xFFFF, "amount is mod 32");
    }

    #[test]
    fn load_store_word_aligns_address() {
        let mut s = machine_with(&[
            Instr::StoreMem { a: Ri::Imm(-1), b: Ri::Reg(Reg::new(1)) },
            Instr::LoadMem { w: Reg::new(2), a: Ri::Reg(Reg::new(1)) },
        ]);
        s.regs[1] = 0x1002; // misaligned; hardware drops the low bits
        s.run(2);
        assert_eq!(s.mem.read_word(0x1000), u32::MAX);
        assert_eq!(s.regs[2], u32::MAX);
    }

    #[test]
    fn byte_load_zero_extends() {
        let mut s = machine_with(&[
            Instr::StoreMemByte { a: Ri::Imm(-1), b: Ri::Reg(Reg::new(1)) },
            Instr::LoadMemByte { w: Reg::new(2), a: Ri::Reg(Reg::new(1)) },
        ]);
        s.regs[1] = 0x2001;
        s.run(2);
        assert_eq!(s.regs[2], 0xFF);
        assert_eq!(s.mem.read_word(0x2000), 0xFF00);
    }

    #[test]
    fn jump_links_and_targets() {
        let mut s = machine_with(&[Instr::Jump {
            func: Func::Snd,
            w: Reg::new(5),
            a: Ri::Reg(Reg::new(1)),
        }]);
        s.regs[1] = 0x100;
        s.next();
        assert_eq!(s.pc, 0x100);
        assert_eq!(s.regs[5], 4, "link register holds PC + 4");
    }

    #[test]
    fn conditional_jumps_are_pc_relative() {
        let mut s = machine_with(&[Instr::JumpIfZero {
            func: Func::Sub,
            w: Ri::Imm(16),
            a: Ri::Reg(Reg::new(1)),
            b: Ri::Imm(7),
        }]);
        s.regs[1] = 7;
        s.next();
        assert_eq!(s.pc, 16, "taken: PC += w");
        let mut s2 = machine_with(&[Instr::JumpIfNotZero {
            func: Func::Sub,
            w: Ri::Imm(16),
            a: Ri::Reg(Reg::new(1)),
            b: Ri::Imm(7),
        }]);
        s2.regs[1] = 7;
        s2.next();
        assert_eq!(s2.pc, 4, "not taken: PC += 4");
    }

    #[test]
    fn load_constant_and_upper_compose_full_word() {
        let target = 0xFFC0_1234u32;
        let mut s = machine_with(&[
            Instr::LoadConstant { w: Reg::new(1), negate: false, imm: target & 0x7F_FFFF },
            Instr::LoadUpperConstant { w: Reg::new(1), imm: (target >> 23) as u16 },
        ]);
        s.run(2);
        assert_eq!(s.regs[1], target);
    }

    #[test]
    fn negated_constant() {
        let mut s = machine_with(&[Instr::LoadConstant {
            w: Reg::new(1),
            negate: true,
            imm: 5,
        }]);
        s.next();
        assert_eq!(s.regs[1] as i32, -5);
    }

    #[test]
    fn interrupt_records_io_window() {
        let mut s = machine_with(&[Instr::Interrupt]);
        s.io_window = (0x3000, 4);
        s.mem.write_word(0x3000, 0xAABB_CCDD);
        s.next();
        assert_eq!(s.io_events.len(), 1);
        assert_eq!(s.io_events[0].window, vec![0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn in_out_ports() {
        let mut s = machine_with(&[
            Instr::In { w: Reg::new(1) },
            Instr::Out { func: Func::Add, w: Reg::new(2), a: Ri::Reg(Reg::new(1)), b: Ri::Imm(1) },
        ]);
        s.data_in = 41;
        s.run(2);
        assert_eq!(s.regs[1], 41);
        assert_eq!(s.data_out, 42);
        assert_eq!(s.regs[2], 42);
    }

    #[test]
    fn accelerator_applies_configured_function() {
        let mut s = machine_with(&[Instr::Accelerator { w: Reg::new(1), a: Ri::Imm(21) }]);
        s.accel = |x| x * 2;
        s.next();
        assert_eq!(s.regs[1], 42);
    }

    #[test]
    fn reserved_wedges_machine() {
        let mut s = State::new();
        s.mem.write_word(0, encode(Instr::Reserved));
        let before = s.clone();
        assert_eq!(s.next(), crate::StepOutcome::Wedged);
        assert!(s.isa_visible_eq(&before));
        assert!(s.is_halted());
    }

    #[test]
    fn halt_self_jump_is_quiescent() {
        // Jump Snd with register target equal to PC: the canonical halt.
        let mut s = State::new();
        s.regs[1] = 0;
        s.mem.write_word(
            0,
            encode(Instr::Jump { func: Func::Snd, w: Reg::new(2), a: Ri::Reg(Reg::new(1)) }),
        );
        assert!(s.is_halted());
        s.next();
        assert_eq!(s.pc, 0);
        // After one lap the link write is idempotent: state is a fixpoint.
        let fix = s.clone();
        s.next();
        assert!(s.isa_visible_eq(&fix));
    }

    #[test]
    fn decode_encode_execute_roundtrip_on_fetch() {
        let i = Instr::Normal {
            func: Func::Xor,
            w: Reg::new(1),
            a: Ri::Reg(Reg::new(1)),
            b: Ri::Reg(Reg::new(1)),
        };
        let mut s = machine_with(&[i]);
        assert_eq!(decode(s.mem.read_word(0)), i);
        s.regs[1] = 0x55AA;
        s.next();
        assert_eq!(s.regs[1], 0);
    }
}
