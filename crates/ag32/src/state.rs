//! The Silver machine state and the `Next` function's outer shell.
//!
//! §4.1 of the paper: "The machine state contains memory (a function from
//! addresses to bytes), registers (a function from register indices to
//! words), the current program counter (PC), some flags, and a trace of
//! I/O events."

use crate::coverage::{Coverage, ExecStats, NoCoverage, Opcode};
use crate::exec;
use crate::insn::{Func, Instr, Ri};
use crate::mem::Memory;
use crate::trace::{MemOp, NoTrace, RetireEvent, Tracer};
use crate::NUM_REGS;

/// One entry in the machine's I/O-event trace.
///
/// In the paper's ISA semantics, `Interrupt` "silently records the current
/// state of memory by pushing it onto the trace of I/O events". Recording
/// all of memory per event is impractical in an executable model, so an
/// event records the bytes of the configured
/// [I/O window](State::io_window) — the output-buffer region that the
/// board-side interrupt handler actually reads (a documented substitution,
/// see `DESIGN.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoEvent {
    /// Value of the output port when the event was recorded.
    pub data_out: u32,
    /// Snapshot of the I/O window at the time of the interrupt.
    pub window: Vec<u8>,
}

/// What a single `Next` step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction was fetched, decoded and executed.
    Retired(Instr),
    /// The fetched instruction was `Reserved`; the machine is wedged and
    /// the state (including the PC) did not change.
    Wedged,
}

/// The complete ISA-level machine state.
///
/// Fields are public: this is a passive record, exactly like the HOL
/// record in the paper, and every simulation/equality relation in the
/// test-suite analogue of the paper's theorems inspects it freely.
/// Equality of whole states is expressed via
/// [`State::isa_visible_eq`], which ignores the accelerator function
/// pointer and retired-instruction bookkeeping.
#[derive(Clone, Debug)]
pub struct State {
    /// Program counter.
    pub pc: u32,
    /// The 64 general-purpose registers.
    pub regs: [u32; NUM_REGS],
    /// Carry flag, updated by `Add`, `AddWithCarry` and `Sub`.
    pub carry: bool,
    /// Overflow flag, updated by `Add`, `AddWithCarry` and `Sub`.
    pub overflow: bool,
    /// Memory.
    pub mem: Memory,
    /// Value presented on the input port, read by `In`.
    pub data_in: u32,
    /// Value last driven on the output port by `Out`.
    pub data_out: u32,
    /// Trace of I/O events recorded by `Interrupt`.
    pub io_events: Vec<IoEvent>,
    /// `(base, len)` of the region snapshotted into each [`IoEvent`].
    pub io_window: (u32, u32),
    /// The accelerator function backing [`Instr::Accelerator`].
    pub accel: fn(u32) -> u32,
    /// Count of retired instructions (not part of the ISA state proper;
    /// used by the benchmark harness).
    pub instructions_retired: u64,
    /// Per-opcode retire counters (not part of the ISA state proper;
    /// the basis of `silverc --stats` and campaign opcode coverage).
    pub stats: ExecStats,
}

fn identity_accel(x: u32) -> u32 {
    x
}

impl Default for State {
    fn default() -> Self {
        State::new()
    }
}

impl State {
    /// A machine with zeroed registers, PC 0 and empty memory.
    #[must_use]
    pub fn new() -> Self {
        State {
            pc: 0,
            regs: [0; NUM_REGS],
            carry: false,
            overflow: false,
            mem: Memory::new(),
            data_in: 0,
            data_out: 0,
            io_events: Vec::new(),
            io_window: (0, 0),
            accel: identity_accel,
            instructions_retired: 0,
            stats: ExecStats::new(),
        }
    }

    /// Reads an [`Ri`] operand against this state.
    #[must_use]
    pub fn ri(&self, ri: Ri) -> u32 {
        match ri {
            Ri::Reg(r) => self.regs[r.index()],
            Ri::Imm(v) => v as i32 as u32,
        }
    }

    /// The instruction the PC currently points at. Fetch is word-granular:
    /// the low two PC bits are ignored, exactly as the hardware bus
    /// fetches (the compiler always keeps the PC aligned).
    #[must_use]
    pub fn current_instr(&self) -> Instr {
        crate::decode(self.mem.read_word(self.pc & !3))
    }

    /// `Next`: fetch, decode and execute one instruction (§4.1).
    pub fn next(&mut self) -> StepOutcome {
        self.next_with(&mut NoCoverage)
    }

    /// [`State::next`] with a [`Coverage`] sink observing the retire.
    ///
    /// With [`NoCoverage`] this monomorphises to exactly the plain
    /// fetch–decode–execute step; campaigns pass an
    /// [`EdgeSet`](crate::EdgeSet) to collect PC-edge coverage.
    pub fn next_with<C: Coverage>(&mut self, cov: &mut C) -> StepOutcome {
        self.next_traced(cov, &mut NoTrace)
    }

    /// The destination register and (for stores) the complete memory
    /// operation of `instr` against the pre-execution state. Loads get a
    /// placeholder value patched after execution, when the loaded word is
    /// sitting in the destination register.
    fn trace_capture(&self, instr: &Instr) -> (Option<u8>, Option<MemOp>) {
        match *instr {
            Instr::Normal { w, .. }
            | Instr::Shift { w, .. }
            | Instr::In { w }
            | Instr::Out { w, .. }
            | Instr::Accelerator { w, .. }
            | Instr::Jump { w, .. }
            | Instr::LoadConstant { w, .. }
            | Instr::LoadUpperConstant { w, .. } => (Some(w.index() as u8), None),
            Instr::LoadMem { w, a } => (
                Some(w.index() as u8),
                Some(MemOp { write: false, byte: false, addr: self.ri(a) & !3, value: 0 }),
            ),
            Instr::LoadMemByte { w, a } => (
                Some(w.index() as u8),
                Some(MemOp { write: false, byte: true, addr: self.ri(a), value: 0 }),
            ),
            Instr::StoreMem { a, b } => (
                None,
                Some(MemOp { write: true, byte: false, addr: self.ri(b) & !3, value: self.ri(a) }),
            ),
            Instr::StoreMemByte { a, b } => (
                None,
                Some(MemOp {
                    write: true,
                    byte: true,
                    addr: self.ri(b),
                    value: u32::from(self.ri(a) as u8),
                }),
            ),
            Instr::JumpIfZero { .. }
            | Instr::JumpIfNotZero { .. }
            | Instr::Interrupt
            | Instr::Reserved => (None, None),
        }
    }

    /// [`State::next_with`] plus a [`Tracer`] observing the decoded
    /// retire event.
    ///
    /// All event capture is guarded by [`Tracer::ACTIVE`], so with
    /// [`NoTrace`] this compiles to exactly [`State::next_with`] — the
    /// untraced hot path pays nothing (see the `trace_overhead` bench).
    pub fn next_traced<C: Coverage, T: Tracer>(&mut self, cov: &mut C, tracer: &mut T) -> StepOutcome {
        let instr = self.current_instr();
        if instr == Instr::Reserved {
            return StepOutcome::Wedged;
        }
        let pc_before = self.pc;
        let (dst, mem_pre) = if T::ACTIVE { self.trace_capture(&instr) } else { (None, None) };
        exec::execute(self, instr);
        self.instructions_retired += 1;
        let op = Opcode::of(&instr);
        self.stats.opcode_retired[op as usize] += 1;
        cov.retire(op, pc_before, self.pc);
        if T::ACTIVE {
            let reg_write = dst.map(|r| (r, self.regs[usize::from(r)]));
            let mem = mem_pre.map(|mut m| {
                if !m.write {
                    // The loaded value is now in the destination register.
                    m.value = reg_write.map_or(0, |(_, v)| v);
                }
                m
            });
            tracer.retire(&RetireEvent {
                seq: self.instructions_retired - 1,
                pc: pc_before,
                next_pc: self.pc,
                instr,
                reg_write,
                mem,
            });
        }
        StepOutcome::Retired(instr)
    }

    /// Runs up to `fuel` instructions, stopping early when
    /// [halted](State::is_halted) or wedged. Returns instructions retired.
    pub fn run(&mut self, fuel: u64) -> u64 {
        self.run_with(fuel, &mut NoCoverage)
    }

    /// [`State::run`] with a [`Coverage`] sink observing every retire.
    pub fn run_with<C: Coverage>(&mut self, fuel: u64, cov: &mut C) -> u64 {
        self.run_traced(fuel, cov, &mut NoTrace)
    }

    /// [`State::run_with`] plus a [`Tracer`] observing every retire.
    pub fn run_traced<C: Coverage, T: Tracer>(
        &mut self,
        fuel: u64,
        cov: &mut C,
        tracer: &mut T,
    ) -> u64 {
        let mut n = 0;
        while n < fuel {
            if self.is_halted() {
                break;
            }
            match self.next_traced(cov, tracer) {
                StepOutcome::Retired(_) => n += 1,
                StepOutcome::Wedged => break,
            }
        }
        n
    }

    /// `is_halted` (§2.4): the machine sits at "a program-specific location
    /// where the machine remains for any further steps". Concretely: the
    /// current instruction is an absolute self-jump (`Jump Snd` whose
    /// target equals the PC), a relative self-jump (`Jump Add` with a zero
    /// offset — the canonical halt emitted by the assembler), or a wedging
    /// `Reserved` instruction.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        match self.current_instr() {
            Instr::Jump { func: Func::Snd, a, .. } => self.ri(a) == self.pc,
            Instr::Jump { func: Func::Add, a, .. } => self.ri(a) == 0,
            Instr::Reserved => true,
            _ => false,
        }
    }

    /// The ISA-visible components compared by the paper's family of
    /// state-equality relations (`ag32_eq_*`): PC, registers, flags,
    /// memory, ports and the I/O trace — everything except bookkeeping.
    #[must_use]
    pub fn isa_visible_eq(&self, other: &State) -> bool {
        self.pc == other.pc
            && self.regs == other.regs
            && self.carry == other.carry
            && self.overflow == other.overflow
            && self.data_out == other.data_out
            && self.io_events == other.io_events
            && self.mem == other.mem
    }
}
