//! Execution coverage instrumentation for the Silver ISA.
//!
//! The differential-testing campaigns (the `campaign` crate) steer
//! random program generation toward *unexplored machine behaviour*. The
//! signal they steer on comes from here:
//!
//! * [`ExecStats`] — per-opcode retire counters, carried on every
//!   [`State`](crate::State) and updated unconditionally (one array add
//!   per retired instruction — cheap enough to leave always-on, and the
//!   basis of `silverc --stats` and the exhaustive encode↔exec coverage
//!   closure test);
//! * [`Coverage`] — a sink trait observing `(opcode, pc → pc')` retire
//!   edges. `State::next`/`State::run` use the zero-sized [`NoCoverage`]
//!   sink, which monomorphises to nothing, so the hot path pays for edge
//!   hashing only when a campaign actually asks for it via
//!   [`State::run_with`](crate::State::run_with);
//! * [`EdgeSet`] — an AFL-style fixed-size edge bitmap [`Coverage`]
//!   implementation: each retired `(pc, pc')` pair hashes to one bit,
//!   and a case is "interesting" when it sets a bit no earlier case set.

use crate::insn::Instr;

/// The instruction classes of §4.1.1, as dense indices for counters.
///
/// One variant per [`Instr`] constructor, in declaration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// ALU register/immediate operation.
    Normal = 0,
    /// Shift or rotation.
    Shift = 1,
    /// Word store.
    StoreMem = 2,
    /// Byte store.
    StoreMemByte = 3,
    /// Word load.
    LoadMem = 4,
    /// Byte load.
    LoadMemByte = 5,
    /// Input port read.
    In = 6,
    /// ALU operation driving the output port.
    Out = 7,
    /// Accelerator call.
    Accelerator = 8,
    /// Unconditional (computed) jump.
    Jump = 9,
    /// Conditional jump on zero.
    JumpIfZero = 10,
    /// Conditional jump on nonzero.
    JumpIfNotZero = 11,
    /// 23-bit constant load.
    LoadConstant = 12,
    /// Upper-bits constant load.
    LoadUpperConstant = 13,
    /// I/O-event interrupt.
    Interrupt = 14,
    /// Illegal instruction (never retires; counts stay zero).
    Reserved = 15,
}

impl Opcode {
    /// Number of instruction classes.
    pub const COUNT: usize = 16;

    /// All opcodes, in index order.
    pub const ALL: [Opcode; Opcode::COUNT] = [
        Opcode::Normal,
        Opcode::Shift,
        Opcode::StoreMem,
        Opcode::StoreMemByte,
        Opcode::LoadMem,
        Opcode::LoadMemByte,
        Opcode::In,
        Opcode::Out,
        Opcode::Accelerator,
        Opcode::Jump,
        Opcode::JumpIfZero,
        Opcode::JumpIfNotZero,
        Opcode::LoadConstant,
        Opcode::LoadUpperConstant,
        Opcode::Interrupt,
        Opcode::Reserved,
    ];

    /// The class of an instruction.
    #[must_use]
    pub fn of(instr: &Instr) -> Opcode {
        match instr {
            Instr::Normal { .. } => Opcode::Normal,
            Instr::Shift { .. } => Opcode::Shift,
            Instr::StoreMem { .. } => Opcode::StoreMem,
            Instr::StoreMemByte { .. } => Opcode::StoreMemByte,
            Instr::LoadMem { .. } => Opcode::LoadMem,
            Instr::LoadMemByte { .. } => Opcode::LoadMemByte,
            Instr::In { .. } => Opcode::In,
            Instr::Out { .. } => Opcode::Out,
            Instr::Accelerator { .. } => Opcode::Accelerator,
            Instr::Jump { .. } => Opcode::Jump,
            Instr::JumpIfZero { .. } => Opcode::JumpIfZero,
            Instr::JumpIfNotZero { .. } => Opcode::JumpIfNotZero,
            Instr::LoadConstant { .. } => Opcode::LoadConstant,
            Instr::LoadUpperConstant { .. } => Opcode::LoadUpperConstant,
            Instr::Interrupt => Opcode::Interrupt,
            Instr::Reserved => Opcode::Reserved,
        }
    }

    /// A short stable name (used by `silverc --stats` and campaign
    /// reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Normal => "Normal",
            Opcode::Shift => "Shift",
            Opcode::StoreMem => "StoreMEM",
            Opcode::StoreMemByte => "StoreMEMByte",
            Opcode::LoadMem => "LoadMEM",
            Opcode::LoadMemByte => "LoadMEMByte",
            Opcode::In => "In",
            Opcode::Out => "Out",
            Opcode::Accelerator => "Accelerator",
            Opcode::Jump => "Jump",
            Opcode::JumpIfZero => "JumpIfZero",
            Opcode::JumpIfNotZero => "JumpIfNotZero",
            Opcode::LoadConstant => "LoadConstant",
            Opcode::LoadUpperConstant => "LoadUpperConstant",
            Opcode::Interrupt => "Interrupt",
            Opcode::Reserved => "Reserved",
        }
    }
}

/// Per-opcode retire counters, carried on every [`State`](crate::State).
///
/// Not part of the ISA-visible state (ignored by
/// [`State::isa_visible_eq`](crate::State::isa_visible_eq), like
/// `instructions_retired`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired, indexed by `Opcode as usize`.
    pub opcode_retired: [u64; Opcode::COUNT],
}

impl ExecStats {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Retired count for one opcode.
    #[must_use]
    pub fn count(&self, op: Opcode) -> u64 {
        self.opcode_retired[op as usize]
    }

    /// Total instructions retired.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.opcode_retired.iter().sum()
    }

    /// How many distinct opcodes have retired at least once.
    #[must_use]
    pub fn opcodes_exercised(&self) -> usize {
        self.opcode_retired.iter().filter(|&&c| c > 0).count()
    }

    /// Nonzero `(opcode, count)` pairs, most-retired first (count ties
    /// broken by opcode index, so the ordering is deterministic).
    #[must_use]
    pub fn histogram(&self) -> Vec<(Opcode, u64)> {
        let mut rows: Vec<(Opcode, u64)> = Opcode::ALL
            .iter()
            .map(|&op| (op, self.count(op)))
            .filter(|&(_, c)| c > 0)
            .collect();
        rows.sort_by_key(|&(op, c)| (std::cmp::Reverse(c), op as u8));
        rows
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        for (a, b) in self.opcode_retired.iter_mut().zip(other.opcode_retired.iter()) {
            *a += b;
        }
    }
}

/// A sink observing every retired instruction.
///
/// Implementations receive the instruction class and the PC edge
/// `(pc, pc')` the retire took. The default sink, [`NoCoverage`], is a
/// zero-sized no-op: `State::run` monomorphises it away, so the
/// fetch–decode–execute loop stays exactly as fast as before when no
/// campaign is listening.
pub trait Coverage {
    /// Called after each retired instruction.
    fn retire(&mut self, op: Opcode, pc: u32, next_pc: u32);
}

/// The no-op sink used by plain `State::next` / `State::run`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCoverage;

impl Coverage for NoCoverage {
    #[inline(always)]
    fn retire(&mut self, _op: Opcode, _pc: u32, _next_pc: u32) {}
}

/// Number of bits in an [`EdgeSet`] bitmap (2 KiB of backing store —
/// small enough to allocate per fuzz case, large enough that the Silver
/// programs the campaigns generate collide rarely).
pub const EDGE_BITS: usize = 1 << 14;

/// AFL-style PC-edge bitmap: each retired `(pc, pc')` pair hashes to one
/// of [`EDGE_BITS`] bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeSet {
    bits: Box<[u64; EDGE_BITS / 64]>,
}

impl Default for EdgeSet {
    fn default() -> Self {
        EdgeSet::new()
    }
}

impl EdgeSet {
    /// An empty edge set.
    #[must_use]
    pub fn new() -> Self {
        EdgeSet { bits: Box::new([0u64; EDGE_BITS / 64]) }
    }

    #[inline]
    fn slot(pc: u32, next_pc: u32) -> usize {
        // SplitMix-style avalanche over the packed edge; cheap and well
        // mixed for word-aligned PCs.
        let mut z = (u64::from(pc) << 32) | u64::from(next_pc);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % EDGE_BITS
    }

    /// Records an edge; returns `true` if its bit was not set before.
    pub fn insert(&mut self, pc: u32, next_pc: u32) -> bool {
        let slot = Self::slot(pc, next_pc);
        let (word, bit) = (slot / 64, slot % 64);
        let fresh = self.bits[word] & (1 << bit) == 0;
        self.bits[word] |= 1 << bit;
        fresh
    }

    /// Number of distinct edge bits set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `other` has any bit this set does not.
    #[must_use]
    pub fn has_new_bits(&self, other: &EdgeSet) -> bool {
        self.bits.iter().zip(other.bits.iter()).any(|(mine, theirs)| theirs & !mine != 0)
    }

    /// ORs `other` into this set; returns how many bits were new.
    pub fn merge(&mut self, other: &EdgeSet) -> usize {
        let mut new = 0;
        for (mine, theirs) in self.bits.iter_mut().zip(other.bits.iter()) {
            new += (theirs & !*mine).count_ones() as usize;
            *mine |= theirs;
        }
        new
    }
}

impl Coverage for EdgeSet {
    #[inline]
    fn retire(&mut self, _op: Opcode, pc: u32, next_pc: u32) {
        self.insert(pc, next_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Func, Reg, Ri};

    #[test]
    fn opcode_of_covers_every_class() {
        let r = Reg::new(1);
        let cases = [
            (Instr::Normal { func: Func::Add, w: r, a: Ri::Imm(0), b: Ri::Imm(0) }, Opcode::Normal),
            (Instr::Interrupt, Opcode::Interrupt),
            (Instr::Reserved, Opcode::Reserved),
            (Instr::In { w: r }, Opcode::In),
        ];
        for (i, op) in cases {
            assert_eq!(Opcode::of(&i), op);
        }
        // Indices are dense and in declaration order.
        for (idx, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(*op as usize, idx);
        }
    }

    #[test]
    fn stats_histogram_sorts_and_filters() {
        let mut st = ExecStats::new();
        st.opcode_retired[Opcode::Normal as usize] = 5;
        st.opcode_retired[Opcode::Jump as usize] = 9;
        st.opcode_retired[Opcode::In as usize] = 5;
        let h = st.histogram();
        assert_eq!(h[0], (Opcode::Jump, 9));
        // Tie between Normal and In broken by opcode index.
        assert_eq!(h[1], (Opcode::Normal, 5));
        assert_eq!(h[2], (Opcode::In, 5));
        assert_eq!(st.total(), 19);
        assert_eq!(st.opcodes_exercised(), 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats::new();
        let mut b = ExecStats::new();
        a.opcode_retired[0] = 1;
        b.opcode_retired[0] = 2;
        b.opcode_retired[3] = 7;
        a.merge(&b);
        assert_eq!(a.opcode_retired[0], 3);
        assert_eq!(a.opcode_retired[3], 7);
    }

    #[test]
    fn edge_set_insert_merge_new_bits() {
        let mut a = EdgeSet::new();
        assert!(a.insert(0, 4));
        assert!(!a.insert(0, 4), "second insert of same edge is stale");
        assert!(a.insert(4, 8));
        assert_eq!(a.count(), 2);

        let mut b = EdgeSet::new();
        b.insert(0, 4);
        assert!(!a.has_new_bits(&b), "subset adds nothing");
        b.insert(100, 104);
        assert!(a.has_new_bits(&b));
        let added = a.merge(&b);
        assert_eq!(added, 1);
        assert!(!a.has_new_bits(&b));
    }

    #[test]
    fn edge_slots_spread() {
        // Distinct word-aligned edges should not all collide.
        let mut set = EdgeSet::new();
        for pc in 0..200u32 {
            set.insert(pc * 4, pc * 4 + 4);
        }
        assert!(set.count() > 190, "edge hash collapsed: {}", set.count());
    }
}
