//! Instruction set data types (§4.1.1 of the paper).

use std::fmt;

/// A register index. Silver has 64 general-purpose registers, so indices
/// occupy six bits in the encoding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 64, "register index out of range (0..64)");
        Reg(index)
    }

    /// The numeric index of the register.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The raw 6-bit field value.
    #[must_use]
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register-or-immediate operand.
///
/// Immediates are six-bit *signed* values (−32..=31), sign-extended to a
/// full word when the instruction executes. Larger constants are built with
/// [`Instr::LoadConstant`] / [`Instr::LoadUpperConstant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ri {
    /// Read the operand from a register.
    Reg(Reg),
    /// A small signed immediate in −32..=31.
    Imm(i8),
}

impl Ri {
    /// Whether `v` is representable as an [`Ri::Imm`].
    #[must_use]
    pub fn fits_imm(v: i64) -> bool {
        (-32..=31).contains(&v)
    }
}

impl From<Reg> for Ri {
    fn from(r: Reg) -> Self {
        Ri::Reg(r)
    }
}

/// ALU functions (§4.1.1 "ALU operations").
///
/// The paper lists: add, add-with-carry, subtract, increment, decrement,
/// multiplication *with 64-bit output*, and, or, xor, equality, unsigned
/// less-than, signed less-than, read-carry, read-overflow, and
/// return-second-operand. The 64-bit product is exposed as the pair
/// [`Func::Mul`] (low word) / [`Func::MulHi`] (high word), which rounds the
/// function count to sixteen — exactly a four-bit field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Func {
    /// `a + b`; updates carry and overflow.
    Add = 0,
    /// `a + b + carry`; updates carry and overflow.
    AddWithCarry = 1,
    /// `a - b`; updates carry (no-borrow) and overflow.
    Sub = 2,
    /// The current carry flag as `0` or `1`.
    Carry = 3,
    /// The current overflow flag as `0` or `1`.
    Overflow = 4,
    /// `b + 1`.
    Inc = 5,
    /// `b - 1`.
    Dec = 6,
    /// Low word of the unsigned 64-bit product `a * b`.
    Mul = 7,
    /// High word of the unsigned 64-bit product `a * b`.
    MulHi = 8,
    /// Bitwise `a & b`.
    And = 9,
    /// Bitwise `a | b`.
    Or = 10,
    /// Bitwise `a ^ b`.
    Xor = 11,
    /// `1` if `a == b` else `0`.
    Equal = 12,
    /// Signed `a < b` as `0`/`1`.
    Less = 13,
    /// Unsigned `a < b` as `0`/`1`.
    Lower = 14,
    /// The second operand `b`, unchanged.
    Snd = 15,
}

impl Func {
    /// All sixteen ALU functions, in encoding order.
    pub const ALL: [Func; 16] = [
        Func::Add,
        Func::AddWithCarry,
        Func::Sub,
        Func::Carry,
        Func::Overflow,
        Func::Inc,
        Func::Dec,
        Func::Mul,
        Func::MulHi,
        Func::And,
        Func::Or,
        Func::Xor,
        Func::Equal,
        Func::Less,
        Func::Lower,
        Func::Snd,
    ];

    /// Decode a four-bit field.
    #[must_use]
    pub fn from_bits(bits: u32) -> Func {
        Func::ALL[(bits & 0xF) as usize]
    }

    /// The four-bit field value.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }
}

/// Shift and rotation kinds (§4.1.1 "Shifts and rotations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Shift {
    /// Logical shift left.
    Ll = 0,
    /// Logical shift right.
    Lr = 1,
    /// Arithmetic shift right.
    Ar = 2,
    /// Rotate right.
    Ror = 3,
}

impl Shift {
    /// All four shift kinds, in encoding order.
    pub const ALL: [Shift; 4] = [Shift::Ll, Shift::Lr, Shift::Ar, Shift::Ror];

    /// Decode a two-bit field.
    #[must_use]
    pub fn from_bits(bits: u32) -> Shift {
        Shift::ALL[(bits & 3) as usize]
    }

    /// The two-bit field value.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }
}

/// A Silver instruction (§4.1.1).
///
/// Every instruction is 32 bits long and operates over 32-bit words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `R[w] := alu(func, a, b)`.
    Normal { func: Func, w: Reg, a: Ri, b: Ri },
    /// `R[w] := shift(kind, a, b mod 32)`.
    Shift { kind: Shift, w: Reg, a: Ri, b: Ri },
    /// `mem[align4(b)] := a` (whole word, little-endian).
    StoreMem { a: Ri, b: Ri },
    /// `mem[b] := low byte of a`.
    StoreMemByte { a: Ri, b: Ri },
    /// `R[w] := mem[align4(a)]` (whole word).
    LoadMem { w: Reg, a: Ri },
    /// `R[w] := zero-extended mem[a]` (single byte).
    LoadMemByte { w: Reg, a: Ri },
    /// `R[w] := data_in` (input port).
    In { w: Reg },
    /// `v := alu(func, a, b); R[w] := v; data_out := v` (output port).
    Out { func: Func, w: Reg, a: Ri, b: Ri },
    /// `R[w] := accel(a)` — the configurable accelerator function.
    Accelerator { w: Reg, a: Ri },
    /// `R[w] := PC + 4; PC := alu(func, PC, a)`.
    ///
    /// With `func = Snd` this is an absolute jump; with `func = Add` a
    /// PC-relative one; with a register operand the target is computed,
    /// which is how closures are tail-called and functions return.
    Jump { func: Func, w: Reg, a: Ri },
    /// `if alu(func, a, b) == 0 { PC += w } else { PC += 4 }`.
    JumpIfZero { func: Func, w: Ri, a: Ri, b: Ri },
    /// `if alu(func, a, b) != 0 { PC += w } else { PC += 4 }`.
    JumpIfNotZero { func: Func, w: Ri, a: Ri, b: Ri },
    /// Load a 23-bit immediate (or its negation) into a register:
    /// `R[w] := if negate { -imm } else { imm }`.
    LoadConstant { w: Reg, negate: bool, imm: u32 },
    /// Load a 9-bit immediate into the upper bits of a register:
    /// `R[w] := (imm << 23) | (R[w] & 0x7F_FFFF)`.
    LoadUpperConstant { w: Reg, imm: u16 },
    /// Notify external hardware of an observable event. In the ISA
    /// semantics this pushes a snapshot of the I/O window onto the trace of
    /// I/O events (§4.1.1 "Interrupt").
    Interrupt,
    /// An illegal instruction; executing it wedges the machine
    /// (the PC no longer advances).
    Reserved,
}

impl Instr {
    /// Whether this instruction is well-formed for encoding: immediate
    /// fields within range. [`encode`](crate::encode) panics otherwise.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        match *self {
            Instr::LoadConstant { imm, .. } => imm < (1 << 23),
            Instr::LoadUpperConstant { imm, .. } => imm < (1 << 9),
            _ => true,
        }
    }
}

impl fmt::Display for Ri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ri::Reg(r) => write!(f, "{r}"),
            Ri::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl fmt::Display for Instr {
    /// Disassembly in the L3-flavoured syntax the paper uses
    /// (`LoadConstant`, `Normal fAdd`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Normal { func, w, a, b } => write!(f, "Normal f{func:?} {w}, {a}, {b}"),
            Instr::Shift { kind, w, a, b } => write!(f, "Shift {kind:?} {w}, {a}, {b}"),
            Instr::StoreMem { a, b } => write!(f, "StoreMEM {a}, [{b}]"),
            Instr::StoreMemByte { a, b } => write!(f, "StoreMEMByte {a}, [{b}]"),
            Instr::LoadMem { w, a } => write!(f, "LoadMEM {w}, [{a}]"),
            Instr::LoadMemByte { w, a } => write!(f, "LoadMEMByte {w}, [{a}]"),
            Instr::In { w } => write!(f, "In {w}"),
            Instr::Out { func, w, a, b } => write!(f, "Out f{func:?} {w}, {a}, {b}"),
            Instr::Accelerator { w, a } => write!(f, "Accelerator {w}, {a}"),
            Instr::Jump { func, w, a } => write!(f, "Jump f{func:?} {w}, {a}"),
            Instr::JumpIfZero { func, w, a, b } => {
                write!(f, "JumpIfZero f{func:?} {w}, {a}, {b}")
            }
            Instr::JumpIfNotZero { func, w, a, b } => {
                write!(f, "JumpIfNotZero f{func:?} {w}, {a}, {b}")
            }
            Instr::LoadConstant { w, negate, imm } => {
                write!(f, "LoadConstant {w}, {}{imm}", if *negate { "-" } else { "" })
            }
            Instr::LoadUpperConstant { w, imm } => write!(f, "LoadUpperConstant {w}, {imm}"),
            Instr::Interrupt => write!(f, "Interrupt"),
            Instr::Reserved => write!(f, "ReservedInstr"),
        }
    }
}
