//! Sparse byte-addressed memory covering the full 4 GiB address space.
//!
//! The ISA models memory as a total function from 32-bit addresses to
//! bytes; unwritten locations read as zero. Storage is allocated in 4 KiB
//! pages on first write so that realistic memory images (Figure 2 of the
//! paper places code low and lets the heap grow upward) stay cheap.

use std::collections::HashMap;

pub(crate) const PAGE_SHIFT: u32 = 12;
pub(crate) const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse 4 GiB memory. Words are little-endian.
#[derive(Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Allocation granularity in bytes (4 KiB pages).
    pub const PAGE_SIZE: usize = PAGE_SIZE;

    /// `log2` of [`Memory::PAGE_SIZE`].
    pub const PAGE_SHIFT: u32 = PAGE_SHIFT;

    /// An empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Reads one byte; unwritten addresses read as zero.
    #[must_use]
    pub fn read_byte(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the containing page if needed.
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian word. `addr` is used as given (callers align).
    /// Wraps around the 4 GiB boundary like the hardware bus does.
    ///
    /// Fast path: when all four bytes land in the same page (offset
    /// ≤ `PAGE_SIZE - 4`, which every word-aligned access satisfies)
    /// this is a single page lookup instead of four.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => {
                    u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes in page"))
                }
                None => 0,
            };
        }
        // Page-crossing (necessarily misaligned) access: byte-wise, with
        // 4 GiB wraparound.
        u32::from_le_bytes([
            self.read_byte(addr),
            self.read_byte(addr.wrapping_add(1)),
            self.read_byte(addr.wrapping_add(2)),
            self.read_byte(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian word. Same single-page fast path as
    /// [`Memory::read_word`]: one page lookup for non-crossing accesses.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len).map(|i| self.read_byte(addr.wrapping_add(i))).collect()
    }

    /// Number of resident (allocated) pages — a proxy for footprint.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page indices (address `>> PAGE_SHIFT`) of every resident
    /// page, sorted ascending. Alternative execution engines (the `jet`
    /// translation-cache engine) use this to plan a flat resident
    /// mirror of the image region.
    #[must_use]
    pub fn resident_page_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pages.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The page indices of every resident page whose contents are not
    /// all-zero, sorted ascending. This is the canonical page order for
    /// serialisation: all-zero pages are semantically identical to
    /// absent pages (see the [`PartialEq`] impl), so a writer that
    /// iterates this list produces the same bytes regardless of which
    /// zero pages allocation history happened to materialise.
    #[must_use]
    pub fn nonzero_resident_page_ids(&self) -> Vec<u32> {
        let zero = [0u8; PAGE_SIZE];
        let mut ids: Vec<u32> = self
            .pages
            .iter()
            .filter(|(_, p)| p[..] != zero[..])
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Borrows one resident page's bytes (`None` when the page was
    /// never allocated, i.e. reads as all zero).
    #[must_use]
    pub fn page(&self, id: u32) -> Option<&[u8; Memory::PAGE_SIZE]> {
        self.pages.get(&id).map(|p| &**p)
    }

    /// Installs a whole page at once — the serialisation restore path,
    /// one allocation per page instead of 4096 byte writes.
    pub fn write_page(&mut self, id: u32, bytes: &[u8; Memory::PAGE_SIZE]) {
        self.pages.insert(id, Box::new(*bytes));
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("resident_pages", &self.pages.len()).finish()
    }
}

impl PartialEq for Memory {
    /// Semantic equality: two memories are equal when every address reads
    /// the same byte (all-zero pages are identified with absent pages).
    fn eq(&self, other: &Self) -> bool {
        let zero = [0u8; PAGE_SIZE];
        let check = |a: &Memory, b: &Memory| {
            a.pages.iter().all(|(k, p)| match b.pages.get(k) {
                Some(q) => p[..] == q[..],
                None => p[..] == zero[..],
            })
        };
        check(self, other) && check(other, self)
    }
}

impl Eq for Memory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let m = Memory::new();
        assert_eq!(m.read_byte(0), 0);
        assert_eq!(m.read_word(u32::MAX), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn word_roundtrip_little_endian() {
        let mut m = Memory::new();
        m.write_word(0x1000, 0x1234_5678);
        assert_eq!(m.read_byte(0x1000), 0x78);
        assert_eq!(m.read_byte(0x1003), 0x12);
        assert_eq!(m.read_word(0x1000), 0x1234_5678);
    }

    #[test]
    fn wraps_at_address_space_end() {
        let mut m = Memory::new();
        m.write_word(u32::MAX - 1, 0xAABB_CCDD);
        assert_eq!(m.read_byte(u32::MAX - 1), 0xDD);
        assert_eq!(m.read_byte(0), 0xBB);
        assert_eq!(m.read_word(u32::MAX - 1), 0xAABB_CCDD);
    }

    #[test]
    fn semantic_equality_ignores_zero_pages() {
        let mut a = Memory::new();
        let b = Memory::new();
        a.write_byte(123, 0); // allocates a page full of zeros
        assert_eq!(a, b);
        a.write_byte(123, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn nonzero_page_ids_sorted_and_skip_zero_pages() {
        let mut m = Memory::new();
        m.write_byte(0x9000, 1); // page 9
        m.write_byte(0x1000, 2); // page 1
        m.write_byte(0x5000, 0); // page 5, allocated but all-zero
        assert_eq!(m.resident_pages(), 3);
        assert_eq!(m.nonzero_resident_page_ids(), vec![1, 9]);
    }

    #[test]
    fn page_roundtrip_via_write_page() {
        let mut m = Memory::new();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        m.write_page(3, &buf);
        assert_eq!(m.read_byte(3 << PAGE_SHIFT), 0xAB);
        assert_eq!(m.page(3), Some(&buf));
        assert_eq!(m.page(4), None);
    }

    #[test]
    fn write_bytes_spans_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(4096 - 100, &data);
        assert_eq!(m.read_bytes(4096 - 100, 256), data);
        assert_eq!(m.resident_pages(), 2);
    }
}
