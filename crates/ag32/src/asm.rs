//! A small two-pass assembler for Silver machine code.
//!
//! The compiler backend (`cakeml` crate) and the hand-written system-call
//! code (`basis` crate) both emit code through this assembler. It supports
//! labels, data emission and a few fixed-size pseudo-instructions
//! (full-word constant loads, absolute jumps/calls and label-relative
//! conditional branches) so that label addresses can be resolved in a
//! second pass without iterating to a fixpoint.
//!
//! # Example
//!
//! ```
//! use ag32::asm::Assembler;
//! use ag32::{Func, Reg, Ri, State};
//!
//! let mut a = Assembler::new(0x100);
//! a.li(Reg::new(1), 0xDEAD_BEEF);
//! a.halt(Reg::new(2));
//! let bytes = a.assemble()?;
//!
//! let mut s = State::new();
//! s.pc = 0x100;
//! s.mem.write_bytes(0x100, &bytes);
//! s.run(10);
//! assert!(s.is_halted());
//! assert_eq!(s.regs[1], 0xDEAD_BEEF);
//! # Ok::<(), ag32::asm::AsmError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::insn::{Func, Instr, Reg, Ri};
use crate::{encode, WORD_BYTES};

/// Errors produced by [`Assembler::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            AsmError::UndefinedLabel(l) => write!(f, "label `{l}` referenced but never defined"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Clone, Debug)]
enum Item {
    Instr(Instr),
    Word(u32),
    Bytes(Vec<u8>),
    Align(u32),
    /// `R[w] := address_of(label) + offset` — always two words.
    LaAbs { w: Reg, label: String, offset: i32 },
    /// Label-relative conditional branch — always three words
    /// (constant load pair into `scratch`, then `JumpIf(Not)Zero`).
    BranchRel { on_nonzero: bool, func: Func, a: Ri, b: Ri, label: String, scratch: Reg },
    /// Absolute jump-and-link to a label — always three words.
    JmpAbs { label: String, scratch: Reg, link: Reg },
    /// A data word holding the absolute address of a label.
    WordLabel(String),
}

impl Item {
    fn size(&self, addr: u32) -> u32 {
        match self {
            Item::Instr(_) | Item::Word(_) | Item::WordLabel(_) => WORD_BYTES,
            Item::Bytes(b) => b.len() as u32,
            Item::Align(n) => (n - (addr % n)) % n,
            Item::LaAbs { .. } => 2 * WORD_BYTES,
            Item::BranchRel { .. } | Item::JmpAbs { .. } => 3 * WORD_BYTES,
        }
    }
}

/// Two-pass assembler producing a flat byte image based at a fixed address.
#[derive(Clone, Debug, Default)]
pub struct Assembler {
    base: u32,
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    duplicate: Option<String>,
}

/// Emits the two-instruction sequence loading an arbitrary 32-bit value.
fn load_full_word(w: Reg, value: u32) -> [Instr; 2] {
    [
        Instr::LoadConstant { w, negate: false, imm: value & 0x7F_FFFF },
        Instr::LoadUpperConstant { w, imm: (value >> 23) as u16 },
    ]
}

impl Assembler {
    /// A fresh assembler whose first byte will land at address `base`.
    #[must_use]
    pub fn new(base: u32) -> Self {
        Assembler { base, items: Vec::new(), labels: HashMap::new(), duplicate: None }
    }

    /// The base address given to [`Assembler::new`].
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The address of the next emitted item (all items are fixed-size, so
    /// this is exact even before assembly).
    #[must_use]
    pub fn here(&self) -> u32 {
        let mut addr = self.base;
        for item in &self.items {
            addr += item.size(addr);
        }
        addr
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.items.len()).is_some() {
            self.duplicate.get_or_insert(name);
        }
    }

    /// Emits a raw instruction.
    pub fn instr(&mut self, i: Instr) {
        self.items.push(Item::Instr(i));
    }

    /// Emits `Normal { func, w, a, b }`.
    pub fn normal(&mut self, func: Func, w: Reg, a: Ri, b: Ri) {
        self.instr(Instr::Normal { func, w, a, b });
    }

    /// Emits a shift instruction.
    pub fn shift(&mut self, kind: crate::Shift, w: Reg, a: Ri, b: Ri) {
        self.instr(Instr::Shift { kind, w, a, b });
    }

    /// Emits a data word.
    pub fn word(&mut self, value: u32) {
        self.items.push(Item::Word(value));
    }

    /// Emits a data word that will hold the absolute address of `label`.
    pub fn word_label(&mut self, label: impl Into<String>) {
        self.items.push(Item::WordLabel(label.into()));
    }

    /// Emits raw data bytes.
    pub fn bytes(&mut self, data: impl Into<Vec<u8>>) {
        self.items.push(Item::Bytes(data.into()));
    }

    /// Pads with zero bytes to the next multiple of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn align(&mut self, n: u32) {
        assert!(n > 0, "alignment must be positive");
        self.items.push(Item::Align(n));
    }

    /// Loads a full 32-bit constant into `w`, using the shortest sequence:
    /// one `LoadConstant` (possibly negated) when the value fits 23 bits,
    /// otherwise a `LoadConstant`/`LoadUpperConstant` pair.
    pub fn li(&mut self, w: Reg, value: u32) {
        if value < (1 << 23) {
            self.instr(Instr::LoadConstant { w, negate: false, imm: value });
        } else if value.wrapping_neg() < (1 << 23) {
            self.instr(Instr::LoadConstant { w, negate: true, imm: value.wrapping_neg() });
        } else {
            for i in load_full_word(w, value) {
                self.instr(i);
            }
        }
    }

    /// Loads the absolute address of `label` into `w` (two words).
    pub fn la(&mut self, w: Reg, label: impl Into<String>) {
        self.items.push(Item::LaAbs { w, label: label.into(), offset: 0 });
    }

    /// Loads `address_of(label) + offset` into `w` (two words).
    pub fn la_off(&mut self, w: Reg, label: impl Into<String>, offset: i32) {
        self.items.push(Item::LaAbs { w, label: label.into(), offset });
    }

    /// Unconditional jump to `label`, clobbering `scratch` with the target
    /// address and `link` with the return address (three words).
    pub fn jmp(&mut self, label: impl Into<String>, scratch: Reg, link: Reg) {
        self.items.push(Item::JmpAbs { label: label.into(), scratch, link });
    }

    /// Call `label`: as [`Assembler::jmp`], but named for intent — `link`
    /// receives the return address.
    pub fn call(&mut self, label: impl Into<String>, scratch: Reg, link: Reg) {
        self.jmp(label, scratch, link);
    }

    /// Returns through the address in `target` (one word):
    /// `Jump Snd` with a computed target, the paper's function-return idiom.
    pub fn ret(&mut self, target: Reg, link_clobber: Reg) {
        self.instr(Instr::Jump { func: Func::Snd, w: link_clobber, a: Ri::Reg(target) });
    }

    /// Branch to `label` when `alu(func, a, b) == 0` (three words,
    /// clobbers `scratch` with the PC offset).
    pub fn branch_zero(&mut self, func: Func, a: Ri, b: Ri, label: impl Into<String>, scratch: Reg) {
        self.items.push(Item::BranchRel {
            on_nonzero: false,
            func,
            a,
            b,
            label: label.into(),
            scratch,
        });
    }

    /// Branch to `label` when `alu(func, a, b) != 0`.
    pub fn branch_nonzero(
        &mut self,
        func: Func,
        a: Ri,
        b: Ri,
        label: impl Into<String>,
        scratch: Reg,
    ) {
        self.items.push(Item::BranchRel {
            on_nonzero: true,
            func,
            a,
            b,
            label: label.into(),
            scratch,
        });
    }

    /// Branch to `label` when `a == b` (compares by subtraction, so the
    /// carry/overflow flags are updated, as on the real machine).
    pub fn branch_zero_sub(&mut self, a: Ri, b: Ri, label: impl Into<String>, scratch: Reg) {
        self.branch_zero(Func::Sub, a, b, label, scratch);
    }

    /// Branch to `label` when `a != b` (flag-updating subtraction compare).
    pub fn branch_nonzero_sub(&mut self, a: Ri, b: Ri, label: impl Into<String>, scratch: Reg) {
        self.branch_nonzero(Func::Sub, a, b, label, scratch);
    }

    /// The canonical halt: a PC-relative self-jump (`Jump Add, Imm 0`).
    /// `link_clobber` receives `PC + 4` on every (idempotent) lap.
    pub fn halt(&mut self, link_clobber: Reg) {
        self.instr(Instr::Jump { func: Func::Add, w: link_clobber, a: Ri::Imm(0) });
    }

    /// Pass 1 of assembly: the address of every item, plus the end
    /// address.
    fn item_addresses(&self) -> (Vec<u32>, u32) {
        let mut addrs = Vec::with_capacity(self.items.len());
        let mut addr = self.base;
        for item in &self.items {
            addrs.push(addr);
            addr += item.size(addr);
        }
        (addrs, addr)
    }

    /// Every defined label with its resolved absolute address, sorted by
    /// address (ties by name). This is the raw material for symbol
    /// tables: profilers attribute PCs to the enclosing label.
    #[must_use]
    pub fn label_addresses(&self) -> Vec<(String, u32)> {
        let (addrs, end) = self.item_addresses();
        let mut out: Vec<(String, u32)> = self
            .labels
            .iter()
            .map(|(name, &idx)| {
                (name.clone(), if idx == self.items.len() { end } else { addrs[idx] })
            })
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Resolves labels and produces the byte image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on duplicate or undefined labels.
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        if let Some(l) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(l.clone()));
        }
        // Pass 1: addresses of every item, then label addresses.
        let (addrs, end) = self.item_addresses();
        let lookup = |label: &str| -> Result<u32, AsmError> {
            match self.labels.get(label) {
                Some(&idx) => Ok(if idx == self.items.len() { end } else { addrs[idx] }),
                None => Err(AsmError::UndefinedLabel(label.to_string())),
            }
        };
        // Pass 2: emit.
        let mut out = Vec::new();
        let push_instr = |out: &mut Vec<u8>, i: Instr| {
            out.extend_from_slice(&encode(i).to_le_bytes());
        };
        for (item, &at) in self.items.iter().zip(&addrs) {
            match item {
                Item::Instr(i) => push_instr(&mut out, *i),
                Item::Word(w) => out.extend_from_slice(&w.to_le_bytes()),
                Item::WordLabel(l) => out.extend_from_slice(&lookup(l)?.to_le_bytes()),
                Item::Bytes(b) => out.extend_from_slice(b),
                Item::Align(_) => out.resize(out.len() + item.size(at) as usize, 0),
                Item::LaAbs { w, label, offset } => {
                    let value = lookup(label)?.wrapping_add(*offset as u32);
                    for i in load_full_word(*w, value) {
                        push_instr(&mut out, i);
                    }
                }
                Item::BranchRel { on_nonzero, func, a, b, label, scratch } => {
                    // Offset is relative to the branch instruction itself,
                    // which is the third word of the sequence.
                    let branch_at = at + 2 * WORD_BYTES;
                    let off = lookup(label)?.wrapping_sub(branch_at);
                    for i in load_full_word(*scratch, off) {
                        push_instr(&mut out, i);
                    }
                    let w = Ri::Reg(*scratch);
                    let i = if *on_nonzero {
                        Instr::JumpIfNotZero { func: *func, w, a: *a, b: *b }
                    } else {
                        Instr::JumpIfZero { func: *func, w, a: *a, b: *b }
                    };
                    push_instr(&mut out, i);
                }
                Item::JmpAbs { label, scratch, link } => {
                    for i in load_full_word(*scratch, lookup(label)?) {
                        push_instr(&mut out, i);
                    }
                    push_instr(
                        &mut out,
                        Instr::Jump { func: Func::Snd, w: *link, a: Ri::Reg(*scratch) },
                    );
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::State;

    fn run_at(base: u32, a: &Assembler, fuel: u64) -> State {
        let bytes = a.assemble().expect("assembles");
        let mut s = State::new();
        s.pc = base;
        s.mem.write_bytes(base, &bytes);
        s.run(fuel);
        s
    }

    #[test]
    fn li_picks_shortest_form() {
        for (v, words) in [(5u32, 1usize), ((-5i32) as u32, 1), (0x7F_FFFF, 1), (0x80_0000, 2)] {
            let mut a = Assembler::new(0);
            a.li(Reg::new(1), v);
            assert_eq!(a.assemble().unwrap().len(), words * 4, "value {v:#x}");
            let mut a2 = Assembler::new(0);
            a2.li(Reg::new(1), v);
            a2.halt(Reg::new(2));
            let s = run_at(0, &a2, 10);
            assert_eq!(s.regs[1], v, "value {v:#x}");
        }
    }

    #[test]
    fn forward_and_backward_branches() {
        // Sum 1..=5 with a backward branch, then skip over a trap with a
        // forward branch.
        let mut a = Assembler::new(0x40);
        let sum = Reg::new(1);
        let i = Reg::new(2);
        let scratch = Reg::new(60);
        a.li(sum, 0);
        a.li(i, 5);
        a.label("loop");
        a.normal(Func::Add, sum, Ri::Reg(sum), Ri::Reg(i));
        a.normal(Func::Dec, i, Ri::Imm(0), Ri::Reg(i));
        a.branch_nonzero_sub(Ri::Reg(i), Ri::Imm(0), "loop", scratch);
        a.branch_zero_sub(Ri::Imm(0), Ri::Imm(0), "done", scratch);
        a.li(sum, 999); // must be skipped
        a.label("done");
        a.halt(Reg::new(61));
        let s = run_at(0x40, &a, 1000);
        assert!(s.is_halted());
        assert_eq!(s.regs[1], 15);
    }

    #[test]
    fn call_and_ret() {
        let link = Reg::new(62);
        let scratch = Reg::new(60);
        let mut a = Assembler::new(0);
        a.call("double", scratch, link);
        a.halt(Reg::new(61));
        a.label("double");
        a.normal(Func::Add, Reg::new(1), Ri::Reg(Reg::new(1)), Ri::Reg(Reg::new(1)));
        a.ret(link, Reg::new(59));
        let bytes = a.assemble().unwrap();
        let mut s = State::new();
        s.regs[1] = 21;
        s.mem.write_bytes(0, &bytes);
        s.run(100);
        assert!(s.is_halted());
        assert_eq!(s.regs[1], 42);
    }

    #[test]
    fn la_and_data_words() {
        let mut a = Assembler::new(0x1000);
        a.la(Reg::new(1), "data");
        a.instr(Instr::LoadMem { w: Reg::new(2), a: Ri::Reg(Reg::new(1)) });
        a.halt(Reg::new(3));
        a.align(4);
        a.label("data");
        a.word(0xCAFE_F00D);
        a.word_label("data");
        let s = run_at(0x1000, &a, 10);
        assert_eq!(s.regs[2], 0xCAFE_F00D);
        let data_addr = s.regs[1];
        assert_eq!(s.mem.read_word(data_addr + 4), data_addr);
    }

    #[test]
    fn align_pads_to_boundary() {
        let mut a = Assembler::new(0);
        a.bytes(vec![1, 2, 3]);
        a.align(8);
        a.label("aligned");
        a.word(7);
        let bytes = a.assemble().unwrap();
        assert_eq!(bytes.len(), 12);
        assert_eq!(&bytes[8..12], &7u32.to_le_bytes());
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.label("x");
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Assembler::new(0);
        a.jmp("nowhere", Reg::new(1), Reg::new(2));
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn label_at_end_resolves_to_end_address() {
        let mut a = Assembler::new(0);
        a.word(0);
        a.label("end");
        let mut b = a.clone();
        b.word_label("end");
        // "end" is at offset 4.
        let bytes = b.assemble().unwrap();
        assert_eq!(&bytes[4..8], &4u32.to_le_bytes());
    }

    #[test]
    fn here_tracks_addresses() {
        let mut a = Assembler::new(0x100);
        assert_eq!(a.here(), 0x100);
        a.li(Reg::new(1), 0x1234_5678); // two words
        assert_eq!(a.here(), 0x108);
        a.bytes(vec![0; 3]);
        a.align(4);
        assert_eq!(a.here(), 0x10C, "3 bytes padded to 4");
    }
}
