//! Disassembly helpers: turning memory back into readable Silver
//! assembly, in the L3-flavoured syntax the paper uses.

use crate::{decode, Instr, Memory};

/// Disassembles `count` instructions starting at `addr` (word-aligned),
/// as `(address, instruction)` pairs.
#[must_use]
pub fn disassemble(mem: &Memory, addr: u32, count: u32) -> Vec<(u32, Instr)> {
    (0..count)
        .map(|i| {
            let at = (addr & !3).wrapping_add(4 * i);
            (at, decode(mem.read_word(at)))
        })
        .collect()
}

/// Renders a disassembly as text, one instruction per line.
#[must_use]
pub fn dump(mem: &Memory, addr: u32, count: u32) -> String {
    disassemble(mem, addr, count)
        .into_iter()
        .map(|(at, i)| format!("{at:#010x}:  {i}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::{Func, Reg, Ri};

    #[test]
    fn dump_roundtrips_through_the_assembler() {
        let mut a = Assembler::new(0x100);
        a.li(Reg::new(1), 5);
        a.normal(Func::Add, Reg::new(2), Ri::Reg(Reg::new(1)), Ri::Imm(-3));
        a.halt(Reg::new(3));
        let mut mem = Memory::new();
        mem.write_bytes(0x100, &a.assemble().unwrap());

        let text = dump(&mem, 0x100, 3);
        assert!(text.contains("0x00000100:  LoadConstant r1, 5"));
        assert!(text.contains("Normal fAdd r2, r1, #-3"));
        assert!(text.contains("Jump fAdd r3, #0"));
    }

    #[test]
    fn disassemble_aligns_addresses() {
        let mem = Memory::new();
        let out = disassemble(&mem, 0x103, 2);
        assert_eq!(out[0].0, 0x100);
        assert_eq!(out[1].0, 0x104);
    }

    #[test]
    fn display_covers_every_instruction_shape() {
        use crate::{decode, encode};
        // Every canonical instruction prints something non-empty and
        // distinct from Reserved.
        let samples = [
            encode(crate::Instr::Interrupt),
            encode(crate::Instr::In { w: Reg::new(7) }),
            encode(crate::Instr::StoreMem { a: Ri::Imm(1), b: Ri::Reg(Reg::new(2)) }),
            encode(crate::Instr::LoadUpperConstant { w: Reg::new(1), imm: 3 }),
        ];
        for w in samples {
            let text = decode(w).to_string();
            assert!(!text.is_empty());
            assert_ne!(text, "ReservedInstr");
        }
    }
}
