//! Execution tracing for the Silver ISA: retire events and retire-log
//! ring buffers.
//!
//! Sibling of [`coverage`](crate::coverage): where [`Coverage`] sinks
//! observe `(opcode, pc → pc')` edges for fuzzing feedback, a [`Tracer`]
//! observes fully decoded [`RetireEvent`]s — the program counter, the
//! instruction, the register write and the memory operation of every
//! retired instruction. This is the substrate for `silverc --trace`,
//! divergence forensics and the cycle profiler.
//!
//! Like `NoCoverage`, the default [`NoTrace`] sink monomorphises to
//! nothing: [`Tracer::ACTIVE`] is an associated `const`, and the
//! event-capture code in `State::next_traced` is guarded by
//! `if T::ACTIVE`, so untraced execution compiles to exactly the plain
//! fetch–decode–execute step (verified by the `trace_overhead` bench).

use crate::coverage::Coverage;
use crate::insn::Instr;

/// A memory access performed by a retired instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// `true` for stores, `false` for loads.
    pub write: bool,
    /// `true` for byte accesses, `false` for word accesses.
    pub byte: bool,
    /// The effective (aligned, for word accesses) address.
    pub addr: u32,
    /// The value stored or loaded (zero-extended for bytes).
    pub value: u32,
}

/// One retired instruction, fully decoded for human consumption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetireEvent {
    /// Zero-based retire index (the value of `instructions_retired`
    /// *before* this instruction executed).
    pub seq: u64,
    /// PC the instruction was fetched from.
    pub pc: u32,
    /// PC after the instruction (reveals taken branches).
    pub next_pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// `(register index, value written)` when the instruction wrote a
    /// register.
    pub reg_write: Option<(u8, u32)>,
    /// The memory access, when the instruction performed one.
    pub mem: Option<MemOp>,
}

impl RetireEvent {
    /// One-line rendering: retire index, pc, disassembly, effects.
    ///
    /// ```text
    /// #12  0x00000010  Add r1 <- r1, 1            r1=0x0000000b
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut line = format!("#{:<6} {:#010x}  {:<34}", self.seq, self.pc, self.instr.to_string());
        if let Some((r, v)) = self.reg_write {
            line.push_str(&format!(" r{r}={v:#010x}"));
        }
        if let Some(m) = self.mem {
            let dir = if m.write { "W" } else { "R" };
            let sz = if m.byte { "b" } else { "w" };
            line.push_str(&format!(" mem{dir}{sz}[{:#010x}]={:#010x}", m.addr, m.value));
        }
        if self.next_pc != self.pc.wrapping_add(crate::WORD_BYTES) {
            line.push_str(&format!(" -> {:#010x}", self.next_pc));
        }
        line
    }
}

/// A sink observing every retired instruction as a [`RetireEvent`].
///
/// The [`ACTIVE`](Tracer::ACTIVE) const gates event capture in the
/// interpreter: implementations that do nothing (i.e. [`NoTrace`]) set
/// it to `false` and the capture code is compiled away entirely.
pub trait Tracer {
    /// Whether the interpreter should build [`RetireEvent`]s at all.
    const ACTIVE: bool = true;

    /// Called after each retired instruction.
    fn retire(&mut self, ev: &RetireEvent);
}

/// The no-op sink used by plain `State::next` / `State::run`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTrace;

impl Tracer for NoTrace {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn retire(&mut self, _ev: &RetireEvent) {}
}

impl<T: Tracer> Tracer for &mut T {
    const ACTIVE: bool = T::ACTIVE;
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        (**self).retire(ev);
    }
}

/// Fan-out to two sinks.
impl<A: Tracer, B: Tracer> Tracer for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        self.0.retire(ev);
        self.1.retire(ev);
    }
}

/// A [`Coverage`] sink viewed as a tracer (pc-edge information only).
#[derive(Debug, Default)]
pub struct CoverageTracer<C: Coverage>(pub C);

impl<C: Coverage> Tracer for CoverageTracer<C> {
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        self.0.retire(crate::Opcode::of(&ev.instr), ev.pc, ev.next_pc);
    }
}

/// A bounded retire log: keeps the last `capacity` [`RetireEvent`]s and
/// a running total.
///
/// Capacity 0 is legal and keeps the total only — useful when a caller
/// wants instruction counting through the tracing interface without
/// paying for storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetireRing {
    capacity: usize,
    /// Events in ring order; once full, `head` marks the oldest slot.
    buf: Vec<RetireEvent>,
    /// Next slot to overwrite (only meaningful once `buf.len() == capacity`).
    head: usize,
    total: u64,
}

impl RetireRing {
    /// An empty ring retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RetireRing { capacity, buf: Vec::with_capacity(capacity.min(4096)), head: 0, total: 0 }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (≥ [`len`](RetireRing::len)).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records an event, evicting the oldest when full.
    pub fn push(&mut self, ev: RetireEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RetireEvent> {
        let (newer, older) = self.buf.split_at(self.head.min(self.buf.len()));
        older.iter().chain(newer.iter())
    }

    /// Retained events, oldest first, as an owned vector.
    #[must_use]
    pub fn events(&self) -> Vec<RetireEvent> {
        self.iter().copied().collect()
    }

    /// Appends all of `other`'s retained events (oldest first) into this
    /// ring, as if they had been pushed here; totals add.
    ///
    /// The merged ring keeps this ring's capacity, so only the newest
    /// `capacity` of the combined sequence survive.
    pub fn merge(&mut self, other: &RetireRing) {
        // `push` bumps `total` once per event; account for the events
        // `other` saw but did not retain as well.
        let untracked = other.total - other.len() as u64;
        for ev in other.iter() {
            self.push(*ev);
        }
        self.total += untracked;
    }

    /// Rendered retained events, oldest first, one line each.
    #[must_use]
    pub fn render(&self) -> Vec<String> {
        self.iter().map(RetireEvent::render).collect()
    }
}

impl Tracer for RetireRing {
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        self.push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Func, Reg, Ri};

    fn ev(seq: u64) -> RetireEvent {
        RetireEvent {
            seq,
            pc: (seq as u32) * 4,
            next_pc: (seq as u32) * 4 + 4,
            instr: Instr::Normal {
                func: Func::Add,
                w: Reg::new(1),
                a: Ri::Reg(Reg::new(1)),
                b: Ri::Imm(1),
            },
            reg_write: Some((1, seq as u32)),
            mem: None,
        }
    }

    #[test]
    fn ring_keeps_last_capacity_events() {
        let mut ring = RetireRing::new(3);
        for i in 0..7 {
            ring.push(ev(i));
        }
        assert_eq!(ring.total(), 7);
        assert_eq!(ring.len(), 3);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "oldest-first, last three retained");
    }

    #[test]
    fn ring_wraparound_is_exact_at_boundary() {
        let mut ring = RetireRing::new(2);
        ring.push(ev(0));
        assert_eq!(ring.events().iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0]);
        ring.push(ev(1));
        assert_eq!(ring.events().iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        ring.push(ev(2));
        assert_eq!(ring.events().iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn capacity_zero_counts_without_storing() {
        let mut ring = RetireRing::new(0);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.len(), 0);
        assert!(ring.is_empty());
        assert!(ring.events().is_empty());
    }

    #[test]
    fn merge_concatenates_and_respects_capacity() {
        let mut a = RetireRing::new(4);
        a.push(ev(0));
        a.push(ev(1));
        let mut b = RetireRing::new(4);
        for i in 10..13 {
            b.push(ev(i));
        }
        a.merge(&b);
        assert_eq!(a.total(), 5);
        let seqs: Vec<u64> = a.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 10, 11, 12][1..].to_vec(), "capacity 4 keeps newest 4");
    }

    #[test]
    fn merge_counts_events_the_source_dropped() {
        let mut a = RetireRing::new(8);
        let mut b = RetireRing::new(2);
        for i in 0..5 {
            b.push(ev(i));
        }
        a.merge(&b);
        assert_eq!(a.total(), 5, "3 dropped + 2 retained");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn render_mentions_pc_and_write() {
        let line = ev(3).render();
        assert!(line.contains("0x0000000c"), "{line}");
        assert!(line.contains("r1=0x00000003"), "{line}");
    }
}
