//! # ag32 — the Silver instruction set architecture
//!
//! This crate is an executable rendition of the Silver ISA from
//! *Verified Compilation on a Verified Processor* (PLDI 2019, §4.1).
//! Silver (ag32) is a simple general-purpose 32-bit RISC ISA designed as a
//! compilation target for CakeML; it has its roots in Thacker's Tiny 3
//! computer.
//!
//! The crate provides, mirroring the paper's layer (2) of Figure 1:
//!
//! * [`Instr`] — the instruction set of §4.1.1 (constant loads, ALU
//!   operations, shifts/rotations, byte/word memory access, jumps, `In`/
//!   `Out` ports, `Interrupt`, `Accelerator`),
//! * [`encode`]/[`decode`] — a documented 32-bit binary encoding
//!   (the paper does not publish ag32's encoding; ours is described in
//!   the [`mod@encode`] module docs),
//! * [`State`] and [`State::next`] — the fetch–decode–execute next-state
//!   function `Next` used throughout the paper's theorems,
//! * [`Memory`] — a sparse byte-addressed 4 GiB memory,
//! * [`asm`] — a small two-pass assembler with labels and pseudo-
//!   instructions, used by the compiler backend and the system-call code.
//!
//! # Example
//!
//! Count to ten and halt:
//!
//! ```
//! use ag32::{asm::Assembler, Func, Reg, Ri, State};
//!
//! let mut a = Assembler::new(0);
//! let r1 = Reg::new(1);
//! a.li(r1, 0);
//! a.label("loop");
//! a.normal(Func::Add, r1, Ri::Reg(r1), Ri::Imm(1));
//! a.li(Reg::new(2), 10);
//! a.branch_nonzero_sub(Ri::Reg(r1), Ri::Reg(Reg::new(2)), "loop", Reg::new(60));
//! a.halt(Reg::new(61));
//! let code = a.assemble().unwrap();
//!
//! let mut s = State::new();
//! s.mem.write_bytes(0, &code);
//! while !s.is_halted() { s.next(); }
//! assert_eq!(s.regs[1], 10);
//! ```

pub mod asm;
pub mod coverage;
pub mod disasm;
pub mod encode;
mod exec;
mod insn;
mod mem;
mod state;
pub mod trace;

pub use coverage::{Coverage, EdgeSet, ExecStats, NoCoverage, Opcode};
pub use disasm::{disassemble, dump};
pub use encode::{decode, encode};
pub use exec::{alu, shifter, AluOut};
pub use insn::{Func, Instr, Reg, Ri, Shift};
pub use mem::Memory;
pub use state::{IoEvent, State, StepOutcome};
pub use trace::{MemOp, NoTrace, RetireEvent, RetireRing, Tracer};

/// Machine word size in bytes; every instruction is one word long.
pub const WORD_BYTES: u32 = 4;

/// Number of general-purpose registers (§4.1: register indices are 6 bits).
pub const NUM_REGS: usize = 64;
