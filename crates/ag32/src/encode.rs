//! Binary instruction encoding.
//!
//! The paper does not publish ag32's bit-level encoding, so this crate
//! defines one (a documented substitution, see `DESIGN.md`). Every
//! instruction is a 32-bit little-endian word:
//!
//! ```text
//! bit 31 = 1                LoadConstant
//!   [30:25] w  [24] negate  [23] 0  [22:0] imm23
//!
//! bits 31:30 = 01           LoadUpperConstant
//!   [29:24] w  [23:9] 0  [8:0] imm9
//!
//! bits 31:30 = 00           general form
//!   [29:25] opcode  [24:21] func  [20:14] w  [13:7] a  [6:0] b
//! ```
//!
//! A seven-bit operand field encodes an [`Ri`]: bit 6 set means a six-bit
//! sign-extended immediate in the low bits, clear means a register index.
//! Destination-register fields (`w` in most instructions) must have bit 6
//! clear; a set bit decodes as [`Instr::Reserved`].
//!
//! General opcodes:
//!
//! | op | instruction    | op | instruction     |
//! |----|----------------|----|-----------------|
//! | 0  | Normal         | 7  | Out             |
//! | 1  | Shift          | 8  | Accelerator     |
//! | 2  | StoreMem       | 9  | Jump            |
//! | 3  | StoreMemByte   | 10 | JumpIfZero      |
//! | 4  | LoadMem        | 11 | JumpIfNotZero   |
//! | 5  | LoadMemByte    | 12 | Interrupt       |
//! | 6  | In             | —  | others Reserved |
//!
//! For `Shift` the two low bits of the func field select the shift kind.
//! Unused fields are ignored on decode and emitted as zero by [`encode`],
//! so `decode(encode(i)) == i` for every canonical instruction, and decode
//! is total: every 32-bit word decodes to *some* instruction (possibly
//! [`Instr::Reserved`]), exactly as the ISA's instruction decoder must be.

use crate::insn::{Func, Instr, Reg, Ri, Shift};

const OP_NORMAL: u32 = 0;
const OP_SHIFT: u32 = 1;
const OP_STORE: u32 = 2;
const OP_STORE_BYTE: u32 = 3;
const OP_LOAD: u32 = 4;
const OP_LOAD_BYTE: u32 = 5;
const OP_IN: u32 = 6;
const OP_OUT: u32 = 7;
const OP_ACCEL: u32 = 8;
const OP_JUMP: u32 = 9;
const OP_JUMP_IF_ZERO: u32 = 10;
const OP_JUMP_IF_NOT_ZERO: u32 = 11;
const OP_INTERRUPT: u32 = 12;

fn ri_bits(ri: Ri) -> u32 {
    match ri {
        Ri::Reg(r) => r.bits(),
        Ri::Imm(v) => {
            debug_assert!((-32..=31).contains(&v));
            0x40 | (v as u32 & 0x3F)
        }
    }
}

fn ri_from_bits(bits: u32) -> Ri {
    let low = (bits & 0x3F) as u8;
    if bits & 0x40 != 0 {
        // Sign-extend the six-bit immediate.
        let v = ((low << 2) as i8) >> 2;
        Ri::Imm(v)
    } else {
        Ri::Reg(Reg::new(low))
    }
}

/// Decodes a destination-register field; `None` when bit 6 is set.
fn reg_from_bits(bits: u32) -> Option<Reg> {
    if bits & 0x40 != 0 {
        None
    } else {
        Some(Reg::new((bits & 0x3F) as u8))
    }
}

fn general(op: u32, func: u32, w: u32, a: u32, b: u32) -> u32 {
    debug_assert!(op < 32 && func < 16 && w < 128 && a < 128 && b < 128);
    (op << 25) | (func << 21) | (w << 14) | (a << 7) | b
}

/// Encodes an instruction to its 32-bit word.
///
/// # Panics
///
/// Panics if the instruction is not [canonical](Instr::is_canonical)
/// (immediate out of range).
#[must_use]
pub fn encode(instr: Instr) -> u32 {
    assert!(instr.is_canonical(), "non-canonical instruction {instr:?}");
    match instr {
        Instr::LoadConstant { w, negate, imm } => {
            (1 << 31) | (w.bits() << 25) | (u32::from(negate) << 24) | imm
        }
        Instr::LoadUpperConstant { w, imm } => {
            (0b01 << 30) | (w.bits() << 24) | u32::from(imm)
        }
        Instr::Normal { func, w, a, b } => {
            general(OP_NORMAL, func.bits(), w.bits(), ri_bits(a), ri_bits(b))
        }
        Instr::Shift { kind, w, a, b } => {
            general(OP_SHIFT, kind.bits(), w.bits(), ri_bits(a), ri_bits(b))
        }
        Instr::StoreMem { a, b } => general(OP_STORE, 0, 0, ri_bits(a), ri_bits(b)),
        Instr::StoreMemByte { a, b } => general(OP_STORE_BYTE, 0, 0, ri_bits(a), ri_bits(b)),
        Instr::LoadMem { w, a } => general(OP_LOAD, 0, w.bits(), ri_bits(a), 0),
        Instr::LoadMemByte { w, a } => general(OP_LOAD_BYTE, 0, w.bits(), ri_bits(a), 0),
        Instr::In { w } => general(OP_IN, 0, w.bits(), 0, 0),
        Instr::Out { func, w, a, b } => {
            general(OP_OUT, func.bits(), w.bits(), ri_bits(a), ri_bits(b))
        }
        Instr::Accelerator { w, a } => general(OP_ACCEL, 0, w.bits(), ri_bits(a), 0),
        Instr::Jump { func, w, a } => general(OP_JUMP, func.bits(), w.bits(), ri_bits(a), 0),
        Instr::JumpIfZero { func, w, a, b } => {
            general(OP_JUMP_IF_ZERO, func.bits(), ri_bits(w), ri_bits(a), ri_bits(b))
        }
        Instr::JumpIfNotZero { func, w, a, b } => {
            general(OP_JUMP_IF_NOT_ZERO, func.bits(), ri_bits(w), ri_bits(a), ri_bits(b))
        }
        Instr::Interrupt => general(OP_INTERRUPT, 0, 0, 0, 0),
        Instr::Reserved => general(31, 0, 0, 0, 0),
    }
}

/// Decodes a 32-bit word into an instruction. Total: unknown opcodes and
/// malformed destination fields decode to [`Instr::Reserved`].
#[must_use]
pub fn decode(word: u32) -> Instr {
    if word >> 31 == 1 {
        return Instr::LoadConstant {
            w: Reg::new(((word >> 25) & 0x3F) as u8),
            negate: (word >> 24) & 1 == 1,
            imm: word & 0x7F_FFFF,
        };
    }
    if word >> 30 == 0b01 {
        return Instr::LoadUpperConstant {
            w: Reg::new(((word >> 24) & 0x3F) as u8),
            imm: (word & 0x1FF) as u16,
        };
    }
    let op = (word >> 25) & 0x1F;
    let func = Func::from_bits((word >> 21) & 0xF);
    let wf = (word >> 14) & 0x7F;
    let af = (word >> 7) & 0x7F;
    let bf = word & 0x7F;
    let a = ri_from_bits(af);
    let b = ri_from_bits(bf);
    let reg_w = reg_from_bits(wf);
    match (op, reg_w) {
        (OP_NORMAL, Some(w)) => Instr::Normal { func, w, a, b },
        (OP_SHIFT, Some(w)) => Instr::Shift { kind: Shift::from_bits(func.bits()), w, a, b },
        (OP_STORE, _) => Instr::StoreMem { a, b },
        (OP_STORE_BYTE, _) => Instr::StoreMemByte { a, b },
        (OP_LOAD, Some(w)) => Instr::LoadMem { w, a },
        (OP_LOAD_BYTE, Some(w)) => Instr::LoadMemByte { w, a },
        (OP_IN, Some(w)) => Instr::In { w },
        (OP_OUT, Some(w)) => Instr::Out { func, w, a, b },
        (OP_ACCEL, Some(w)) => Instr::Accelerator { w, a },
        (OP_JUMP, Some(w)) => Instr::Jump { func, w, a },
        (OP_JUMP_IF_ZERO, _) => Instr::JumpIfZero { func, w: ri_from_bits(wf), a, b },
        (OP_JUMP_IF_NOT_ZERO, _) => Instr::JumpIfNotZero { func, w: ri_from_bits(wf), a, b },
        (OP_INTERRUPT, _) => Instr::Interrupt,
        _ => Instr::Reserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let cases = [
            Instr::Normal {
                func: Func::Add,
                w: Reg::new(5),
                a: Ri::Reg(Reg::new(6)),
                b: Ri::Imm(-7),
            },
            Instr::Shift {
                kind: Shift::Ror,
                w: Reg::new(63),
                a: Ri::Imm(31),
                b: Ri::Imm(-32),
            },
            Instr::StoreMem { a: Ri::Reg(Reg::new(0)), b: Ri::Reg(Reg::new(63)) },
            Instr::LoadConstant { w: Reg::new(9), negate: true, imm: 0x7F_FFFF },
            Instr::LoadUpperConstant { w: Reg::new(9), imm: 0x1FF },
            Instr::Jump { func: Func::Snd, w: Reg::new(1), a: Ri::Imm(0) },
            Instr::JumpIfZero {
                func: Func::Sub,
                w: Ri::Imm(8),
                a: Ri::Reg(Reg::new(2)),
                b: Ri::Imm(0),
            },
            Instr::Interrupt,
            Instr::Reserved,
        ];
        for c in cases {
            assert_eq!(decode(encode(c)), c, "case {c:?}");
        }
    }

    #[test]
    fn decode_is_total() {
        // Any word decodes without panicking; spot-check a spread.
        for i in 0..10_000u32 {
            let w = i.wrapping_mul(0x9E37_79B9) ^ 0xDEAD_BEEF;
            let _ = decode(w);
        }
    }

    #[test]
    #[should_panic(expected = "non-canonical")]
    fn oversized_constant_panics() {
        let _ = encode(Instr::LoadConstant { w: Reg::new(0), negate: false, imm: 1 << 23 });
    }
}
