//! §6 differential obligations (theorems (11)–(13) analogs): for every
//! program, three executions agree —
//!
//! 1. the source interpreter with the `basis_ffi` oracle (`cakeml_sem`),
//! 2. compiled code under `machine_sem` (FFI steps serviced by the
//!    interference oracle),
//! 3. compiled code under pure `Next` steps through the real system-call
//!    machine code, with output recovered from `Interrupt` events.
//!
//! Agreement of (2) and (3) is exactly the paper's claim that the
//! concrete system-call code implements the oracle; agreement with (1)
//! is the compiler-correctness theorem (2) exercised end to end.

use basis::{build_image, run_to_halt, run_with_oracle, BasisHost, ExitStatus, FsState};
use cakeml::{compile_source, frontend, run_program, CompilerConfig, TargetLayout};

struct Agreement {
    exit_code: u8,
    stdout: String,
    stderr: String,
    machine_instructions: u64,
}

/// Runs `src` all three ways with the given command line and stdin, and
/// asserts pairwise agreement.
fn check_agreement(src: &str, args: &[&str], stdin: &[u8]) -> Agreement {
    let layout = TargetLayout::default();
    let cfg = CompilerConfig::default();

    // 1. Interpreter + oracle.
    let (prog, _) = frontend(src, &cfg).expect("frontend");
    let mut host = BasisHost::new(FsState::stdin_only(args, stdin));
    let interp = run_program(&prog, &mut host, 2_000_000_000).expect("interpreter terminates");

    // 2. machine_sem with the interference oracle.
    let compiled = compile_source(src, layout, &cfg).expect("compiles");
    let image = build_image(&compiled, args, stdin).expect("image");
    let oracle_run = run_with_oracle(
        image.clone(),
        &layout,
        &compiled.ffi_names,
        FsState::stdin_only(args, stdin),
        2_000_000_000,
    );

    // 3. Pure Next through the real system-call code.
    let machine_run = run_to_halt(image, &layout, 2_000_000_000);

    let (interp_out, interp_err) = (host.fs.stdout_utf8(), host.fs.stderr_utf8());
    assert_eq!(
        oracle_run.exit,
        ExitStatus::Exited(interp.exit_code),
        "oracle-mode exit differs from interpreter"
    );
    assert_eq!(
        machine_run.exit,
        ExitStatus::Exited(interp.exit_code),
        "machine exit differs from interpreter"
    );
    assert_eq!(oracle_run.stdout_utf8(), interp_out, "oracle stdout");
    assert_eq!(machine_run.stdout_utf8(), interp_out, "machine stdout");
    assert_eq!(oracle_run.stderr_utf8(), interp_err, "oracle stderr");
    assert_eq!(machine_run.stderr_utf8(), interp_err, "machine stderr");
    Agreement {
        exit_code: interp.exit_code,
        stdout: interp_out,
        stderr: interp_err,
        machine_instructions: machine_run.instructions,
    }
}

#[test]
fn hello_world_agrees() {
    let a = check_agreement("val _ = print \"hello world\\n\";", &["hello"], b"");
    assert_eq!(a.stdout, "hello world\n");
    assert_eq!(a.exit_code, 0);
}

#[test]
fn stderr_stream_is_separate() {
    let a = check_agreement(
        "val _ = print \"to out\";
         val _ = print_err \"to err\";
         val _ = print \"!\";",
        &["p"],
        b"",
    );
    assert_eq!(a.stdout, "to out!");
    assert_eq!(a.stderr, "to err");
}

#[test]
fn echo_stdin_to_stdout() {
    let input = b"line one\nline two\nand a third";
    let a = check_agreement("val _ = print (read_all ());", &["cat"], input);
    assert_eq!(a.stdout.as_bytes(), input);
}

#[test]
fn reads_cross_chunk_boundaries() {
    // Bigger than the 16000-byte read chunk in the prelude.
    let input: Vec<u8> = (0..40_000u32).map(|i| b'a' + (i % 26) as u8).collect();
    let a = check_agreement("val _ = print (read_all ());", &["cat"], &input);
    assert_eq!(a.stdout.as_bytes(), &input[..]);
}

#[test]
fn command_line_arguments_agree() {
    let a = check_agreement(
        "val _ = print (int_to_string (length (arguments ())));
         val _ = map (fn s => print (\" \" ^ s)) (arguments ());",
        &["prog", "first", "second", "third-arg"],
        b"",
    );
    assert_eq!(a.stdout, "4 prog first second third-arg");
}

#[test]
fn exit_codes_propagate() {
    let a = check_agreement(
        "val _ = print \"before\";
         val _ = exit 42;
         val _ = print \"after\";",
        &["p"],
        b"",
    );
    assert_eq!(a.exit_code, 42);
    assert_eq!(a.stdout, "before");
}

#[test]
fn crash_exit_codes_agree() {
    // Division by zero must exit with the same documented code at every
    // level (the interpreter returns it; the compiled code traps to it).
    let layout = TargetLayout::default();
    let cfg = CompilerConfig::default();
    let src = "val _ = print \"pre\"; val x = 1 div 0; val _ = print \"post\";";
    let (prog, _) = frontend(src, &cfg).unwrap();
    let mut host = BasisHost::new(FsState::stdin_only(&["p"], b""));
    let interp = run_program(&prog, &mut host, 1_000_000).unwrap();
    assert_eq!(interp.exit_code, cakeml::ast::EXIT_DIV);

    let compiled = compile_source(src, layout, &cfg).unwrap();
    let image = build_image(&compiled, &["p"], b"").unwrap();
    let run = run_to_halt(image, &layout, 100_000_000);
    assert_eq!(run.exit, ExitStatus::Exited(cakeml::ast::EXIT_DIV));
    assert_eq!(run.stdout_utf8(), "pre");
}

#[test]
fn open_in_fails_on_fileless_machine() {
    // The bare-metal environment has streams only; open_in reports
    // failure through the protocol at every level (fsin has no files).
    let a = check_agreement(
        "val buf = Word8Array.array 3 (Char.chr 0);
         val _ = #(open_in) \"data.txt\" buf;
         val _ = print (if Char.ord (Word8Array.sub buf 0) = 1
                        then \"no file\" else \"opened\");",
        &["p"],
        b"",
    );
    assert_eq!(a.stdout, "no file");
}

#[test]
fn interleaved_reads_and_writes() {
    let a = check_agreement(
        "fun go n =
           if n = 0 then ()
           else
             let val chunk = read_chunk \"0\" 5
             in (print (\"[\" ^ chunk ^ \"]\"); go (n - 1)) end;
         val _ = go 4;",
        &["p"],
        b"aaaaabbbbbcccccddddd",
    );
    assert_eq!(a.stdout, "[aaaaa][bbbbb][ccccc][ddddd]");
}

#[test]
fn large_output_chunks_correctly() {
    // Larger than the 60000-byte write chunk in the prelude.
    let a = check_agreement(
        "fun rep n s = if n = 0 then \"\" else s ^ rep (n - 1) s;
         val block = rep 100 \"0123456789\"; (* 1000 bytes *)
         fun out n = if n = 0 then () else (print block; out (n - 1));
         val _ = out 70;",
        &["p"],
        b"",
    );
    assert_eq!(a.stdout.len(), 70_000);
    assert!(a.stdout.starts_with("0123456789"));
}

#[test]
fn wc_style_pipeline_agrees() {
    // A miniature of the paper's running example: count words on stdin.
    let a = check_agreement(
        "fun is_space c = c = #\" \" orelse c = #\"\\n\" orelse c = #\"\\t\";
         fun count i in_word n =
           let val s = read_all () in
           let val len = String.size s
               fun go i in_word n =
                 if i >= len then n
                 else if is_space (String.sub s i) then go (i + 1) false n
                 else go (i + 1) true (if in_word then n else n + 1)
           in go 0 false 0 end end;
         val _ = print (int_to_string (count 0 false 0) ^ \"\\n\");",
        &["wc"],
        b"the quick  brown\n fox jumps\tover the lazy dog\n",
    );
    assert_eq!(a.stdout, "9\n");
}

#[test]
fn machine_overhead_is_bounded() {
    // Sanity on the cost model: the machine-level run retires a finite,
    // plausible instruction count for a small program.
    let a = check_agreement("val _ = print \"x\";", &["p"], b"");
    assert!(a.machine_instructions > 100, "runs real code");
    assert!(a.machine_instructions < 5_000_000, "but not absurdly much");
}
