//! Property tests for the basis file-system model (the `FsState`
//! behind the FFI oracle), on the hermetic `testkit` harness.

use basis::FsState;

testkit::props! {
    /// Reading stdin in arbitrary chunk sizes reassembles the input
    /// exactly — the oracle never duplicates or drops bytes.
    fn stdin_chunked_reads_reassemble(ctx) {
        let input = ctx.vec_of(0usize..64, |c| c.any::<u8>());
        let mut fs = FsState::stdin_only(&["t"], &input);
        let mut got = Vec::new();
        loop {
            let chunk = ctx.gen_range(1usize..=16);
            match fs.read(0, chunk) {
                Some(bytes) if bytes.is_empty() => break,
                Some(bytes) => {
                    assert!(bytes.len() <= chunk, "read returned more than asked");
                    got.extend_from_slice(&bytes);
                }
                None => break,
            }
            if got.len() > input.len() {
                panic!("read past end of stdin");
            }
        }
        assert_eq!(got, input);
    }

    /// Writes to stdout accumulate in order, and stderr stays separate.
    fn stdout_accumulates_in_order(ctx) {
        let chunks = ctx.vec_of(0usize..8, |c| c.vec_of(0usize..16, |c| c.gen_range(32u8..127)));
        let mut fs = FsState::stdin_only(&["t"], b"");
        let mut expect = Vec::new();
        for chunk in &chunks {
            let n = fs.write(1, chunk).expect("stdout accepts writes");
            assert_eq!(n, chunk.len(), "stdout must not short-write");
            expect.extend_from_slice(chunk);
        }
        assert_eq!(fs.stdout_utf8().as_bytes(), expect);
        assert_eq!(fs.stderr_utf8(), "", "stderr untouched");
    }

    /// Reads from a closed or never-opened descriptor fail rather than
    /// aliasing another stream.
    fn bogus_descriptors_fail(ctx) {
        let fd = ctx.gen_range(3u64..1000);
        let mut fs = FsState::stdin_only(&["t"], b"payload");
        assert!(fs.read(fd, 8).is_none(), "fd {fd} should be invalid");
        assert!(fs.write(fd, b"x").is_none(), "fd {fd} should be invalid");
    }
}
