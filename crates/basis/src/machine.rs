//! Machine-level execution and the `machine_sem` oracle mode.
//!
//! Two ways to run a loaded image:
//!
//! * [`run_to_halt`] — pure `Next` steps; system calls execute their real
//!   machine code; output is recovered from the `Interrupt` I/O events
//!   (what the lab setup's ARM core would print). This is the theorem-(6)
//!   level of the paper.
//! * [`run_with_oracle`] — the paper's `machine_sem`: ordinary steps use
//!   `Next`, but when the PC reaches an FFI entry point the *interference
//!   oracle* (`basis_ffi`) services the call directly on the model
//!   filesystem and execution resumes at the return address. This is the
//!   theorem-(4) level.
//!
//! The `ffi_equiv` test-suite checks the two agree — the §6 obligation
//! (theorems (11)–(13)) that lets the paper replace `installedAg` by
//! `initAg`.

use ag32::{IoEvent, State};
use cakeml::TargetLayout;

use crate::fs::FsState;
use crate::image::EXIT_UNSET;
use crate::oracle::{call_ffi, FfiOutcome};

/// How a machine-level run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// Program stored an exit code and halted.
    Exited(u8),
    /// Machine halted without ever storing an exit code (or wedged on a
    /// `Reserved` instruction).
    Wedged,
    /// Fuel ran out before halting.
    OutOfFuel,
    /// (Oracle mode only) an FFI call failed — the `Fail` behaviour.
    FfiFailed(String),
}

/// Result of a machine-level run.
#[derive(Clone, Debug)]
pub struct MachineResult {
    /// Exit classification.
    pub exit: ExitStatus,
    /// Bytes written to standard output.
    pub stdout: Vec<u8>,
    /// Bytes written to standard error.
    pub stderr: Vec<u8>,
    /// Instructions retired.
    pub instructions: u64,
    /// Final machine state.
    pub state: State,
}

impl MachineResult {
    /// Standard output as a string (lossy).
    #[must_use]
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Standard error as a string (lossy).
    #[must_use]
    pub fn stderr_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }
}

/// Recovers the `(stdout, stderr)` streams from `Interrupt` I/O events —
/// exactly what the board-side handler does with each output-buffer
/// snapshot (`id | length | contents`).
#[must_use]
pub fn extract_streams(events: &[IoEvent]) -> (Vec<u8>, Vec<u8>) {
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    for e in events {
        if e.window.len() < 8 {
            continue;
        }
        let id = u32::from_le_bytes(e.window[0..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(e.window[4..8].try_into().expect("4 bytes")) as usize;
        let data = e.window.get(8..8 + len).unwrap_or(&[]);
        match id {
            1 => stdout.extend_from_slice(data),
            2 => stderr.extend_from_slice(data),
            _ => {}
        }
    }
    (stdout, stderr)
}

fn classify(state: &State, layout: &TargetLayout, fuel_left: bool) -> ExitStatus {
    if !fuel_left && !state.is_halted() {
        return ExitStatus::OutOfFuel;
    }
    let code = state.mem.read_word(layout.exit_code_addr);
    if state.pc == layout.halt_addr && code != EXIT_UNSET {
        ExitStatus::Exited(code as u8)
    } else {
        ExitStatus::Wedged
    }
}

/// Runs a loaded image under pure `Next` steps until it halts.
#[must_use]
pub fn run_to_halt(state: State, layout: &TargetLayout, fuel: u64) -> MachineResult {
    run_to_halt_with(state, layout, fuel, &mut ag32::NoCoverage)
}

/// [`run_to_halt`] with a [`Coverage`](ag32::Coverage) sink observing
/// every retired instruction — the campaign engine passes an
/// [`EdgeSet`](ag32::EdgeSet) here to collect PC-edge coverage.
#[must_use]
pub fn run_to_halt_with<C: ag32::Coverage>(
    mut state: State,
    layout: &TargetLayout,
    fuel: u64,
    cov: &mut C,
) -> MachineResult {
    let instructions = state.run_with(fuel, cov);
    let exit = classify(&state, layout, instructions < fuel);
    let (stdout, stderr) = extract_streams(&state.io_events);
    MachineResult { exit, stdout, stderr, instructions, state }
}

/// Runs a loaded image under `machine_sem`: FFI entry points are serviced
/// by the `basis_ffi` oracle over `fs` instead of executing the
/// system-call machine code.
#[must_use]
pub fn run_with_oracle(
    mut state: State,
    layout: &TargetLayout,
    ffi_names: &[String],
    mut fs: FsState,
    fuel: u64,
) -> MachineResult {
    // Entry addresses from the jump table (the image builder wrote them).
    let entries: Vec<(u32, String)> = ffi_names
        .iter()
        .enumerate()
        .map(|(i, n)| (state.mem.read_word(layout.ffi_entry_addr(i as u32)), n.clone()))
        .collect();
    let mut instructions = 0u64;
    let exit = loop {
        if instructions >= fuel {
            break classify(&state, layout, false);
        }
        if state.is_halted() {
            break classify(&state, layout, true);
        }
        if let Some((_, name)) = entries.iter().find(|(a, _)| *a == state.pc) {
            // The interference-oracle step: read the call's arguments
            // from the machine state (conf in r1/r2, array in r3/r4),
            // apply the oracle, write back, return to the caller.
            let conf = state.mem.read_bytes(state.regs[1], state.regs[2]);
            let mut bytes = state.mem.read_bytes(state.regs[3], state.regs[4]);
            match call_ffi(&mut fs, name, &conf, &mut bytes) {
                FfiOutcome::Return => {
                    state.mem.write_bytes(state.regs[3], &bytes);
                    state.pc = state.regs[62];
                }
                FfiOutcome::Exit(c) => {
                    state.mem.write_word(layout.exit_code_addr, u32::from(c));
                    state.pc = layout.halt_addr;
                    break ExitStatus::Exited(c);
                }
                FfiOutcome::Failed => break ExitStatus::FfiFailed(name.clone()),
            }
            continue;
        }
        state.next();
        instructions += 1;
    };
    MachineResult {
        exit,
        stdout: fs.stdout.clone(),
        stderr: fs.stderr.clone(),
        instructions,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_extraction_parses_windows() {
        let mk = |id: u32, data: &[u8]| {
            let mut w = Vec::new();
            w.extend_from_slice(&id.to_le_bytes());
            w.extend_from_slice(&(data.len() as u32).to_le_bytes());
            w.extend_from_slice(data);
            w.resize(32, 0);
            IoEvent { data_out: 0, window: w }
        };
        let events = vec![mk(1, b"out1 "), mk(2, b"err"), mk(1, b"out2"), mk(9, b"ignored")];
        let (o, e) = extract_streams(&events);
        assert_eq!(o, b"out1 out2");
        assert_eq!(e, b"err");
    }
}
