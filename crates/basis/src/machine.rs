//! Machine-level execution and the `machine_sem` oracle mode.
//!
//! Two ways to run a loaded image:
//!
//! * [`run_to_halt`] — pure `Next` steps; system calls execute their real
//!   machine code; output is recovered from the `Interrupt` I/O events
//!   (what the lab setup's ARM core would print). This is the theorem-(6)
//!   level of the paper.
//! * [`run_with_oracle`] — the paper's `machine_sem`: ordinary steps use
//!   `Next`, but when the PC reaches an FFI entry point the *interference
//!   oracle* (`basis_ffi`) services the call directly on the model
//!   filesystem and execution resumes at the return address. This is the
//!   theorem-(4) level.
//!
//! The `ffi_equiv` test-suite checks the two agree — the §6 obligation
//! (theorems (11)–(13)) that lets the paper replace `installedAg` by
//! `initAg`.

use ag32::{IoEvent, State};
use cakeml::TargetLayout;

use crate::fs::FsState;
use crate::image::EXIT_UNSET;
use crate::oracle::{call_ffi, FfiOutcome};
use crate::trace::SyscallTrace;

/// How a machine-level run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// Program stored an exit code and halted.
    Exited(u8),
    /// Machine halted without ever storing an exit code (or wedged on a
    /// `Reserved` instruction).
    Wedged,
    /// Fuel ran out before halting.
    OutOfFuel,
    /// (Oracle mode only) an FFI call failed — the `Fail` behaviour.
    FfiFailed(String),
}

/// Result of a machine-level run.
#[derive(Clone, Debug)]
pub struct MachineResult {
    /// Exit classification.
    pub exit: ExitStatus,
    /// Bytes written to standard output.
    pub stdout: Vec<u8>,
    /// Bytes written to standard error.
    pub stderr: Vec<u8>,
    /// Instructions retired.
    pub instructions: u64,
    /// Final machine state.
    pub state: State,
}

impl MachineResult {
    /// Standard output as a string (lossy).
    #[must_use]
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Standard error as a string (lossy).
    #[must_use]
    pub fn stderr_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }
}

/// Recovers the `(stdout, stderr)` streams from `Interrupt` I/O events —
/// exactly what the board-side handler does with each output-buffer
/// snapshot (`id | length | contents`).
#[must_use]
pub fn extract_streams(events: &[IoEvent]) -> (Vec<u8>, Vec<u8>) {
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    for e in events {
        if e.window.len() < 8 {
            continue;
        }
        let id = u32::from_le_bytes(e.window[0..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(e.window[4..8].try_into().expect("4 bytes")) as usize;
        let data = e.window.get(8..8 + len).unwrap_or(&[]);
        match id {
            1 => stdout.extend_from_slice(data),
            2 => stderr.extend_from_slice(data),
            _ => {}
        }
    }
    (stdout, stderr)
}

/// Exit classification shared by every ISA-engine runner — the plain
/// and observed `run_to_halt` variants here, the jet path in
/// `silver-stack`, and snapshot resume. `fuel_left` says whether the
/// run stopped with budget remaining; a non-halted state with no fuel
/// left is [`ExitStatus::OutOfFuel`]. Keeping this in one place is what
/// makes a resumed run classify exactly like an uninterrupted one.
#[must_use]
pub fn classify_exit(state: &State, layout: &TargetLayout, fuel_left: bool) -> ExitStatus {
    classify(state, layout, fuel_left)
}

fn classify(state: &State, layout: &TargetLayout, fuel_left: bool) -> ExitStatus {
    if !fuel_left && !state.is_halted() {
        return ExitStatus::OutOfFuel;
    }
    let code = state.mem.read_word(layout.exit_code_addr);
    if state.pc == layout.halt_addr && code != EXIT_UNSET {
        ExitStatus::Exited(code as u8)
    } else {
        ExitStatus::Wedged
    }
}

/// Runs a loaded image under pure `Next` steps until it halts.
#[must_use]
pub fn run_to_halt(state: State, layout: &TargetLayout, fuel: u64) -> MachineResult {
    run_to_halt_with(state, layout, fuel, &mut ag32::NoCoverage)
}

/// [`run_to_halt`] with a [`Coverage`](ag32::Coverage) sink observing
/// every retired instruction — the campaign engine passes an
/// [`EdgeSet`](ag32::EdgeSet) here to collect PC-edge coverage.
#[must_use]
pub fn run_to_halt_with<C: ag32::Coverage>(
    mut state: State,
    layout: &TargetLayout,
    fuel: u64,
    cov: &mut C,
) -> MachineResult {
    let instructions = state.run_with(fuel, cov);
    let exit = classify(&state, layout, instructions < fuel);
    let (stdout, stderr) = extract_streams(&state.io_events);
    MachineResult { exit, stdout, stderr, instructions, state }
}

/// [`run_to_halt_with`] plus an [`ag32::Tracer`] observing every retired
/// instruction — `silverc --trace`/`--profile` pass a retire ring or a
/// cycle profiler here. With [`ag32::NoTrace`] this compiles down to
/// [`run_to_halt_with`].
#[must_use]
pub fn run_to_halt_observed<C: ag32::Coverage, T: ag32::Tracer>(
    mut state: State,
    layout: &TargetLayout,
    fuel: u64,
    cov: &mut C,
    tracer: &mut T,
) -> MachineResult {
    let instructions = state.run_traced(fuel, cov, tracer);
    let exit = classify(&state, layout, instructions < fuel);
    let (stdout, stderr) = extract_streams(&state.io_events);
    MachineResult { exit, stdout, stderr, instructions, state }
}

/// The in-memory device state, summarised the way
/// [`fd_summary`](crate::trace::fd_summary) summarises an [`FsState`]:
/// machine-level runs realise only the standard streams, whose cursor
/// lives in the stdin region (`length | cursor | contents`).
fn device_summary(state: &State, layout: &TargetLayout) -> String {
    let len = state.mem.read_word(layout.stdin_base);
    let pos = state.mem.read_word(layout.stdin_base + 4);
    format!("stdin@{}/{len}", pos.min(len))
}

/// [`run_to_halt`] with system-call tracing: execution still goes
/// through the *real* system-call machine code (pure `Next` steps), but
/// whenever the PC reaches an FFI entry point the call's name and
/// arguments are captured from the machine state, and when control
/// returns to the saved link address the protocol status byte and the
/// device state are recorded. The `exit` call never returns; its event
/// is finalised when the machine halts.
#[must_use]
pub fn run_to_halt_traced(
    mut state: State,
    layout: &TargetLayout,
    ffi_names: &[String],
    fuel: u64,
    trace: &mut SyscallTrace,
) -> MachineResult {
    let entries: Vec<(u32, String)> = ffi_names
        .iter()
        .enumerate()
        .map(|(i, n)| (state.mem.read_word(layout.ffi_entry_addr(i as u32)), n.clone()))
        .collect();
    let mut instructions = 0u64;
    // An FFI call in flight: (return address, bytes pointer, event index).
    let mut pending: Option<(u32, u32, usize)> = None;
    while instructions < fuel && !state.is_halted() {
        if let Some((ret, bytes_ptr, idx)) = pending {
            if state.pc == ret {
                let status = state.mem.read_bytes(bytes_ptr, 1).first().copied();
                let ev = &mut trace.events[idx];
                if ev.bytes_len > 0 {
                    ev.status = status;
                }
                ev.fds = device_summary(&state, layout);
                pending = None;
            }
        }
        if pending.is_none() {
            if let Some((_, name)) = entries.iter().find(|(a, _)| *a == state.pc) {
                let conf = state.mem.read_bytes(state.regs[1], state.regs[2]);
                trace.events.push(crate::trace::SyscallEvent {
                    seq: trace.events.len() as u64,
                    pc: state.pc,
                    name: name.clone(),
                    conf: String::from_utf8_lossy(&conf).into_owned(),
                    bytes_len: state.regs[4] as usize,
                    status: None,
                    outcome: "machine".to_string(),
                    fds: String::new(),
                });
                pending = Some((state.regs[62], state.regs[3], trace.events.len() - 1));
            }
        }
        state.next();
        instructions += 1;
    }
    if let Some((_, bytes_ptr, idx)) = pending {
        // `exit` (or a wedge) never came back; finalise from the final state.
        let status = state.mem.read_bytes(bytes_ptr, 1).first().copied();
        let ev = &mut trace.events[idx];
        if ev.bytes_len > 0 {
            ev.status = status;
        }
        ev.fds = device_summary(&state, layout);
    }
    let exit = classify(&state, layout, instructions < fuel);
    let (stdout, stderr) = extract_streams(&state.io_events);
    MachineResult { exit, stdout, stderr, instructions, state }
}

/// Runs a loaded image under `machine_sem`: FFI entry points are serviced
/// by the `basis_ffi` oracle over `fs` instead of executing the
/// system-call machine code.
#[must_use]
pub fn run_with_oracle(
    state: State,
    layout: &TargetLayout,
    ffi_names: &[String],
    fs: FsState,
    fuel: u64,
) -> MachineResult {
    run_with_oracle_traced(state, layout, ffi_names, fs, fuel, None)
}

/// [`run_with_oracle`] with optional system-call tracing: when `trace`
/// is `Some`, every serviced FFI call appends a
/// [`SyscallEvent`](crate::trace::SyscallEvent). With `None` no event is
/// ever constructed — the untraced path stays allocation-free.
#[must_use]
pub fn run_with_oracle_traced(
    mut state: State,
    layout: &TargetLayout,
    ffi_names: &[String],
    mut fs: FsState,
    fuel: u64,
    mut trace: Option<&mut SyscallTrace>,
) -> MachineResult {
    // Entry addresses from the jump table (the image builder wrote them).
    let entries: Vec<(u32, String)> = ffi_names
        .iter()
        .enumerate()
        .map(|(i, n)| (state.mem.read_word(layout.ffi_entry_addr(i as u32)), n.clone()))
        .collect();
    let mut instructions = 0u64;
    let exit = loop {
        if instructions >= fuel {
            break classify(&state, layout, false);
        }
        if state.is_halted() {
            break classify(&state, layout, true);
        }
        if let Some((_, name)) = entries.iter().find(|(a, _)| *a == state.pc) {
            // The interference-oracle step: read the call's arguments
            // from the machine state (conf in r1/r2, array in r3/r4),
            // apply the oracle, write back, return to the caller.
            let conf = state.mem.read_bytes(state.regs[1], state.regs[2]);
            let mut bytes = state.mem.read_bytes(state.regs[3], state.regs[4]);
            let outcome = match trace.as_deref_mut() {
                Some(t) => {
                    crate::trace::call_ffi_traced(&mut fs, name, &conf, &mut bytes, state.pc, t)
                }
                None => call_ffi(&mut fs, name, &conf, &mut bytes),
            };
            match outcome {
                FfiOutcome::Return => {
                    state.mem.write_bytes(state.regs[3], &bytes);
                    state.pc = state.regs[62];
                }
                FfiOutcome::Exit(c) => {
                    state.mem.write_word(layout.exit_code_addr, u32::from(c));
                    state.pc = layout.halt_addr;
                    break ExitStatus::Exited(c);
                }
                FfiOutcome::Failed => break ExitStatus::FfiFailed(name.clone()),
            }
            continue;
        }
        state.next();
        instructions += 1;
    };
    MachineResult {
        exit,
        stdout: fs.stdout.clone(),
        stderr: fs.stderr.clone(),
        instructions,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_machine_run_matches_untraced_and_records_calls() {
        use cakeml::{compile_source, CompilerConfig, TargetLayout};
        let compiled = compile_source(
            "val _ = print \"traced\\n\";",
            TargetLayout::default(),
            &CompilerConfig::default(),
        )
        .expect("compiles");
        let image = crate::build_image(&compiled, &["prog"], b"").expect("image");
        let plain = run_to_halt(image.clone(), &compiled.layout, 50_000_000);
        let mut trace = SyscallTrace::new();
        let traced = run_to_halt_traced(
            image,
            &compiled.layout,
            &compiled.ffi_names,
            50_000_000,
            &mut trace,
        );
        assert_eq!(traced.exit, plain.exit);
        assert_eq!(traced.stdout, plain.stdout);
        assert_eq!(traced.instructions, plain.instructions, "tracing must not perturb the run");
        assert!(!trace.is_empty(), "print goes through the FFI");
        let text = trace.render();
        assert!(text.contains("write"), "{text}");
        assert!(text.contains("status 0"), "{text}");
        assert!(text.contains("stdin@0/0"), "{text}");
    }

    #[test]
    fn stream_extraction_parses_windows() {
        let mk = |id: u32, data: &[u8]| {
            let mut w = Vec::new();
            w.extend_from_slice(&id.to_le_bytes());
            w.extend_from_slice(&(data.len() as u32).to_le_bytes());
            w.extend_from_slice(data);
            w.resize(32, 0);
            IoEvent { data_out: 0, window: w }
        };
        let events = vec![mk(1, b"out1 "), mk(2, b"err"), mk(1, b"out2"), mk(9, b"ignored")];
        let (o, e) = extract_streams(&events);
        assert_eq!(o, b"out1 out2");
        assert_eq!(e, b"err");
    }
}
