//! The external-world model: command line and filesystem (`basis_ffi cl
//! fs` in §5 of the paper).
//!
//! `fsin input` — the state the paper starts `wc` in — is a filesystem
//! with no files but with `input` on standard input. The model also
//! supports named files for interpreter-level runs; the bare-metal Silver
//! setup realises only the standard streams and the command line as
//! in-memory devices (§2.4), so machine-level runs use file-less states.

use std::collections::HashMap;

/// Open-descriptor state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Descriptor {
    /// File name (`""` for the standard streams).
    pub name: String,
    /// Read cursor.
    pub pos: usize,
    /// Whether the descriptor was opened for writing.
    pub writable: bool,
    /// Whether `close` has been called.
    pub closed: bool,
}

/// The filesystem + command-line model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsState {
    /// Command-line arguments (`cl`), including the program name.
    pub args: Vec<String>,
    /// Standard input contents.
    pub stdin: Vec<u8>,
    /// Standard input read cursor.
    pub stdin_pos: usize,
    /// Bytes written to standard output.
    pub stdout: Vec<u8>,
    /// Bytes written to standard error.
    pub stderr: Vec<u8>,
    /// Named files.
    pub files: HashMap<String, Vec<u8>>,
    /// Descriptors; index + 3 is the descriptor number (0–2 are the
    /// standard streams).
    pub descriptors: Vec<Descriptor>,
}

impl FsState {
    /// `fsin input`: no files, `input` on stdin, the given command line.
    #[must_use]
    pub fn stdin_only(args: &[&str], input: &[u8]) -> FsState {
        FsState {
            args: args.iter().map(ToString::to_string).collect(),
            stdin: input.to_vec(),
            ..FsState::default()
        }
    }

    /// Reads up to `max` bytes from descriptor `fd`. Returns the bytes
    /// read, or `None` if the descriptor cannot be read.
    pub fn read(&mut self, fd: u64, max: usize) -> Option<Vec<u8>> {
        if fd == 0 {
            let avail = &self.stdin[self.stdin_pos.min(self.stdin.len())..];
            let take = avail.len().min(max);
            let out = avail[..take].to_vec();
            self.stdin_pos += take;
            return Some(out);
        }
        let d = self.descriptors.get_mut(fd.checked_sub(3)? as usize)?;
        if d.closed || d.writable {
            return None;
        }
        let contents = self.files.get(&d.name)?;
        let avail = &contents[d.pos.min(contents.len())..];
        let take = avail.len().min(max);
        let out = avail[..take].to_vec();
        d.pos += take;
        Some(out)
    }

    /// Writes `data` to descriptor `fd`. Returns how many bytes were
    /// written, or `None` if the descriptor cannot be written.
    pub fn write(&mut self, fd: u64, data: &[u8]) -> Option<usize> {
        match fd {
            1 => {
                self.stdout.extend_from_slice(data);
                Some(data.len())
            }
            2 => {
                self.stderr.extend_from_slice(data);
                Some(data.len())
            }
            0 => None,
            _ => {
                let d = self.descriptors.get_mut(fd as usize - 3)?;
                if d.closed || !d.writable {
                    return None;
                }
                let name = d.name.clone();
                self.files.entry(name).or_default().extend_from_slice(data);
                Some(data.len())
            }
        }
    }

    /// Opens a file for reading; returns the descriptor number.
    pub fn open_in(&mut self, name: &str) -> Option<u64> {
        if !self.files.contains_key(name) {
            return None;
        }
        self.descriptors.push(Descriptor {
            name: name.to_string(),
            pos: 0,
            writable: false,
            closed: false,
        });
        Some(self.descriptors.len() as u64 + 2)
    }

    /// Opens (creates/truncates) a file for writing.
    pub fn open_out(&mut self, name: &str) -> Option<u64> {
        self.files.insert(name.to_string(), Vec::new());
        self.descriptors.push(Descriptor {
            name: name.to_string(),
            pos: 0,
            writable: true,
            closed: false,
        });
        Some(self.descriptors.len() as u64 + 2)
    }

    /// Closes a descriptor; `false` if unknown or already closed.
    pub fn close(&mut self, fd: u64) -> bool {
        match fd.checked_sub(3).and_then(|i| self.descriptors.get_mut(i as usize)) {
            Some(d) if !d.closed => {
                d.closed = true;
                true
            }
            _ => false,
        }
    }

    /// Standard output as a string (lossy).
    #[must_use]
    pub fn stdout_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Standard error as a string (lossy).
    #[must_use]
    pub fn stderr_utf8(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdin_reads_in_order() {
        let mut fs = FsState::stdin_only(&["prog"], b"hello world");
        assert_eq!(fs.read(0, 5), Some(b"hello".to_vec()));
        assert_eq!(fs.read(0, 100), Some(b" world".to_vec()));
        assert_eq!(fs.read(0, 100), Some(vec![]), "EOF reads empty");
    }

    #[test]
    fn std_streams_collect_writes() {
        let mut fs = FsState::default();
        assert_eq!(fs.write(1, b"out"), Some(3));
        assert_eq!(fs.write(2, b"err"), Some(3));
        assert_eq!(fs.stdout_utf8(), "out");
        assert_eq!(fs.stderr_utf8(), "err");
        assert_eq!(fs.write(0, b"x"), None, "stdin is not writable");
    }

    #[test]
    fn files_roundtrip() {
        let mut fs = FsState::default();
        assert_eq!(fs.open_in("missing"), None);
        let w = fs.open_out("f.txt").unwrap();
        fs.write(w, b"contents").unwrap();
        assert!(fs.close(w));
        assert!(!fs.close(w), "double close fails");
        let r = fs.open_in("f.txt").unwrap();
        assert_eq!(fs.read(r, 4), Some(b"cont".to_vec()));
        assert_eq!(fs.read(r, 100), Some(b"ents".to_vec()));
        assert_eq!(fs.write(r, b"x"), None, "read descriptor is not writable");
    }
}
