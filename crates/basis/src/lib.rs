//! # basis — CakeML's execution environment for bare-metal Silver
//!
//! §5 and §6 of *Verified Compilation on a Verified Processor* (PLDI
//! 2019): the assumptions the compiler correctness theorem makes about
//! its environment, and the code + proofs that discharge them. This
//! crate provides both sides, executable:
//!
//! * [`fs`] — the external-world model (`cl`, `fs`): command line,
//!   standard streams, named files;
//! * [`oracle`] — `basis_ffi`: the byte-protocol specification of every
//!   system call, usable directly as the interpreter's FFI host;
//! * [`syscalls`] — hand-written Silver machine code implementing the
//!   calls over the in-memory devices (standard streams + command line,
//!   exactly the scope of the paper's §2.4);
//! * [`image`] — the Figure-2 memory image builder (`initAg` made
//!   constructive);
//! * [`machine`] — `machine_sem` with the interference oracle, pure-`Next`
//!   execution, and the I/O-event stream extraction the board-side
//!   handler performs.
//!
//! The §6 obligation — that oracle-stepped and machine-code execution
//! agree — is checked differentially in `tests/ffi_equiv.rs`.
//!
//! # Example
//!
//! ```
//! use basis::{build_image, run_to_halt, ExitStatus};
//! use cakeml::{compile_source, CompilerConfig, TargetLayout};
//!
//! let compiled = compile_source(
//!     "val _ = print \"hello, silver\\n\";",
//!     TargetLayout::default(),
//!     &CompilerConfig::default(),
//! )?;
//! let image = build_image(&compiled, &["hello"], b"")?;
//! let result = run_to_halt(image, &compiled.layout, 50_000_000);
//! assert_eq!(result.exit, ExitStatus::Exited(0));
//! assert_eq!(result.stdout_utf8(), "hello, silver\n");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod fs;
pub mod image;
pub mod machine;
pub mod oracle;
pub mod snap;
pub mod syscalls;
pub mod trace;

pub use fs::FsState;
pub use image::{build_image, ImageError};
pub use machine::{
    classify_exit, extract_streams, run_to_halt, run_to_halt_observed, run_to_halt_traced,
    run_to_halt_with, run_with_oracle, run_with_oracle_traced, ExitStatus, MachineResult,
};
pub use oracle::{call_ffi, BasisHost, FfiOutcome};
pub use trace::{call_ffi_traced, fd_summary, SyscallEvent, SyscallTrace};
