//! The `basis_ffi` oracle (§5): the specification each FFI call's machine
//! code must implement.
//!
//! Each call receives a configuration string and the shared byte array
//! and mutates the array in place. The byte protocols (documented
//! substitutions for CakeML's — see `DESIGN.md`):
//!
//! | call | conf | bytes in | bytes out |
//! |------|------|----------|-----------|
//! | `write` | fd as decimal string | `[_, n_hi, n_lo, data…]` | `bytes[0] = 0` ok / `1` fail |
//! | `read` | fd as decimal | `[n_hi, n_lo, …]` | `[0, cnt_hi, cnt_lo, data…]` or `[1, …]` |
//! | `get_arg_count` | — | — | `[cnt_hi, cnt_lo]` |
//! | `get_arg_length` | — | `[i_hi, i_lo]` | `[len_hi, len_lo]` |
//! | `get_arg` | — | `[i_hi, i_lo, …]` | arg bytes from offset 2 |
//! | `open_in` / `open_out` | file name | — | `[0, fd_hi, fd_lo]` or `[1, …]` |
//! | `close` | fd as decimal | — | `[0]` or `[1]` |
//! | `exit` | — | `[code]` | terminates |
//!
//! The oracle is both the [`cakeml::FfiHost`] used when interpreting
//! programs (the `basis_ffi cl fs` of the compiler correctness theorem)
//! and the specification side of the machine-code equivalence tests
//! (theorems (11)–(13)).

use cakeml::FfiHost;

use crate::fs::FsState;

/// Outcome of one oracle call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FfiOutcome {
    /// Call serviced (array mutated).
    Return,
    /// The program requested termination with this exit code.
    Exit(u8),
    /// Unknown FFI name — the `FFI_failed` behaviour.
    Failed,
}

fn parse_fd(conf: &[u8]) -> Option<u64> {
    if conf.is_empty() || conf.len() > 10 {
        return None;
    }
    let mut fd = 0u64;
    for &b in conf {
        if !b.is_ascii_digit() {
            return None;
        }
        fd = fd * 10 + u64::from(b - b'0');
    }
    Some(fd)
}

fn put16(bytes: &mut [u8], at: usize, v: usize) {
    bytes[at] = (v >> 8) as u8;
    bytes[at + 1] = (v & 0xFF) as u8;
}

fn get16(bytes: &[u8], at: usize) -> usize {
    (usize::from(bytes[at]) << 8) | usize::from(bytes[at + 1])
}

/// Services one FFI call against the world state — `basis_ffi_oracle`.
pub fn call_ffi(fs: &mut FsState, name: &str, conf: &[u8], bytes: &mut [u8]) -> FfiOutcome {
    match name {
        "write" => {
            if bytes.len() < 3 {
                return FfiOutcome::Return;
            }
            let n = get16(bytes, 1);
            let ok = parse_fd(conf).and_then(|fd| {
                let data = bytes.get(3..3 + n)?.to_vec();
                fs.write(fd, &data)
            });
            bytes[0] = u8::from(ok.is_none());
            FfiOutcome::Return
        }
        "read" => {
            if bytes.len() < 3 {
                return FfiOutcome::Return;
            }
            let n = get16(bytes, 0).min(bytes.len() - 3);
            match parse_fd(conf).and_then(|fd| fs.read(fd, n)) {
                Some(data) => {
                    bytes[0] = 0;
                    put16(bytes, 1, data.len());
                    bytes[3..3 + data.len()].copy_from_slice(&data);
                }
                None => bytes[0] = 1,
            }
            FfiOutcome::Return
        }
        "get_arg_count" => {
            if bytes.len() >= 2 {
                put16(bytes, 0, fs.args.len());
            }
            FfiOutcome::Return
        }
        "get_arg_length" => {
            if bytes.len() >= 2 {
                let i = get16(bytes, 0);
                let len = fs.args.get(i).map_or(0, String::len);
                put16(bytes, 0, len);
            }
            FfiOutcome::Return
        }
        "get_arg" => {
            if bytes.len() >= 2 {
                let i = get16(bytes, 0);
                if let Some(arg) = fs.args.get(i) {
                    let n = arg.len().min(bytes.len() - 2);
                    bytes[2..2 + n].copy_from_slice(&arg.as_bytes()[..n]);
                }
            }
            FfiOutcome::Return
        }
        "open_in" | "open_out" => {
            let file = String::from_utf8_lossy(conf).into_owned();
            let fd = if bytes.len() < 3 || file.is_empty() {
                None
            } else if name == "open_in" {
                fs.open_in(&file)
            } else {
                fs.open_out(&file)
            };
            match fd {
                Some(fd) => {
                    bytes[0] = 0;
                    put16(bytes, 1, fd as usize);
                }
                None => {
                    if !bytes.is_empty() {
                        bytes[0] = 1;
                    }
                }
            }
            FfiOutcome::Return
        }
        "close" => {
            let ok = parse_fd(conf).is_some_and(|fd| fs.close(fd));
            if !bytes.is_empty() {
                bytes[0] = u8::from(!ok);
            }
            FfiOutcome::Return
        }
        "exit" => FfiOutcome::Exit(bytes.first().copied().unwrap_or(0)),
        _ => FfiOutcome::Failed,
    }
}

/// [`FfiHost`] adapter over [`FsState`] for the interpreter.
#[derive(Clone, Debug, Default)]
pub struct BasisHost {
    /// The world state.
    pub fs: FsState,
    /// Set when the program called the `exit` FFI.
    pub exited: Option<u8>,
}

impl BasisHost {
    /// Wraps a world state.
    #[must_use]
    pub fn new(fs: FsState) -> Self {
        BasisHost { fs, exited: None }
    }
}

impl FfiHost for BasisHost {
    fn call(&mut self, name: &str, conf: &[u8], bytes: &mut [u8]) -> Result<(), String> {
        match call_ffi(&mut self.fs, name, conf, bytes) {
            FfiOutcome::Return => Ok(()),
            FfiOutcome::Exit(c) => {
                self.exited = Some(c);
                Err(format!("exit({c})"))
            }
            FfiOutcome::Failed => Err(format!("unknown FFI `{name}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_protocol() {
        let mut fs = FsState::default();
        let mut bytes = vec![9, 0, 5, b'h', b'e', b'l', b'l', b'o'];
        assert_eq!(call_ffi(&mut fs, "write", b"1", &mut bytes), FfiOutcome::Return);
        assert_eq!(bytes[0], 0);
        assert_eq!(fs.stdout_utf8(), "hello");
        // Bad fd fails.
        let mut bytes = vec![9, 0, 1, b'x'];
        call_ffi(&mut fs, "write", b"junk", &mut bytes);
        assert_eq!(bytes[0], 1);
    }

    #[test]
    fn read_protocol() {
        let mut fs = FsState::stdin_only(&[], b"abcdef");
        let mut bytes = vec![0, 4, 0, 0, 0, 0, 0];
        call_ffi(&mut fs, "read", b"0", &mut bytes);
        assert_eq!(&bytes[..3], &[0, 0, 4]);
        assert_eq!(&bytes[3..7], b"abcd");
        // Second read gets the tail, third hits EOF with count 0.
        let mut bytes = vec![0, 4, 0, 0, 0, 0, 0];
        call_ffi(&mut fs, "read", b"0", &mut bytes);
        assert_eq!(&bytes[..3], &[0, 0, 2]);
        assert_eq!(&bytes[3..5], b"ef");
        let mut bytes = vec![0, 4, 0, 0, 0, 0, 0];
        call_ffi(&mut fs, "read", b"0", &mut bytes);
        assert_eq!(&bytes[..3], &[0, 0, 0]);
    }

    #[test]
    fn command_line_protocol() {
        let mut fs = FsState::stdin_only(&["wc", "-l", "input.txt"], b"");
        let mut bytes = vec![0, 0];
        call_ffi(&mut fs, "get_arg_count", b"", &mut bytes);
        assert_eq!(bytes, vec![0, 3]);
        let mut bytes = vec![0, 2];
        call_ffi(&mut fs, "get_arg_length", b"", &mut bytes);
        assert_eq!(bytes, vec![0, 9], "input.txt has 9 bytes");
        let mut bytes = vec![0, 1, 0, 0];
        call_ffi(&mut fs, "get_arg", b"", &mut bytes);
        assert_eq!(&bytes[2..4], b"-l");
    }

    #[test]
    fn open_close_protocol() {
        let mut fs = FsState::default();
        fs.files.insert("in.txt".into(), b"data".to_vec());
        let mut bytes = vec![0; 3];
        call_ffi(&mut fs, "open_in", b"in.txt", &mut bytes);
        assert_eq!(bytes[0], 0);
        let fd = (u64::from(bytes[1]) << 8) | u64::from(bytes[2]);
        assert_eq!(fd, 3);
        let mut rd = vec![0, 4, 0, 0, 0, 0, 0];
        call_ffi(&mut fs, "read", fd.to_string().as_bytes(), &mut rd);
        assert_eq!(&rd[3..7], b"data");
        let mut cb = vec![9];
        call_ffi(&mut fs, "close", fd.to_string().as_bytes(), &mut cb);
        assert_eq!(cb, vec![0]);
        // Missing file fails.
        let mut bytes = vec![0; 3];
        call_ffi(&mut fs, "open_in", b"missing", &mut bytes);
        assert_eq!(bytes[0], 1);
    }

    #[test]
    fn exit_and_unknown() {
        let mut fs = FsState::default();
        let mut bytes = vec![7];
        assert_eq!(call_ffi(&mut fs, "exit", b"", &mut bytes), FfiOutcome::Exit(7));
        assert_eq!(call_ffi(&mut fs, "nonsense", b"", &mut bytes), FfiOutcome::Failed);
    }
}
