//! Deterministic byte-level serialisation for [`FsState`] — the
//! external-world half of a run checkpoint.
//!
//! `silver::snapshot` owns the container format (magic, version,
//! checksum, section table); this module owns only the payload of the
//! `FS` section, because the field layout of [`FsState`] is this
//! crate's business. The encoding is canonical: all integers are
//! little-endian, every variable-length field is length-prefixed, and
//! the `files` map — the one host-ordered structure in the state — is
//! written sorted by name, so the same filesystem state always encodes
//! to the same bytes regardless of `HashMap` iteration order.
//!
//! Layout (in order):
//!
//! ```text
//! u32 arg count,    then per arg:  u32 len + UTF-8 bytes
//! u32 stdin len + bytes, u64 stdin read cursor
//! u32 stdout len + bytes
//! u32 stderr len + bytes
//! u32 file count,   then per file (sorted by name bytes):
//!                   u32 name len + UTF-8 bytes, u32 data len + bytes
//! u32 descriptor count, then per descriptor:
//!                   u32 name len + UTF-8 bytes, u64 pos, u8 flags
//!                   (bit 0 = writable, bit 1 = closed)
//! ```
//!
//! Errors are returned as human-readable strings; the snapshot layer
//! wraps them in its typed `Corrupt { section: "FS", .. }` error.

use crate::fs::{Descriptor, FsState};

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("blob under 4 GiB"));
    out.extend_from_slice(bytes);
}

/// Encodes `fs` to its canonical byte form (see the module docs).
#[must_use]
pub fn encode_fs(fs: &FsState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, fs.args.len() as u32);
    for arg in &fs.args {
        put_blob(&mut out, arg.as_bytes());
    }
    put_blob(&mut out, &fs.stdin);
    put_u64(&mut out, fs.stdin_pos as u64);
    put_blob(&mut out, &fs.stdout);
    put_blob(&mut out, &fs.stderr);

    let mut names: Vec<&String> = fs.files.keys().collect();
    names.sort_unstable();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        put_blob(&mut out, name.as_bytes());
        put_blob(&mut out, &fs.files[name]);
    }

    put_u32(&mut out, fs.descriptors.len() as u32);
    for d in &fs.descriptors {
        put_blob(&mut out, d.name.as_bytes());
        put_u64(&mut out, d.pos as u64);
        out.push(u8::from(d.writable) | (u8::from(d.closed) << 1));
    }
    out
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated reading {what}"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn blob(&mut self, what: &str) -> Result<&'a [u8], String> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let bytes = self.blob(what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }

    fn cursor_usize(&mut self, what: &str) -> Result<usize, String> {
        usize::try_from(self.u64(what)?).map_err(|_| format!("{what} exceeds usize"))
    }
}

/// Decodes the canonical byte form back into an [`FsState`]. Every
/// malformed input — truncation, non-UTF-8 names, unknown descriptor
/// flag bits, trailing garbage — is a typed error, never a panic.
pub fn decode_fs(bytes: &[u8]) -> Result<FsState, String> {
    let mut r = Rd { buf: bytes, pos: 0 };
    let mut fs = FsState::default();

    let argc = r.u32("arg count")?;
    for _ in 0..argc {
        fs.args.push(r.string("arg")?);
    }
    fs.stdin = r.blob("stdin")?.to_vec();
    fs.stdin_pos = r.cursor_usize("stdin cursor")?;
    fs.stdout = r.blob("stdout")?.to_vec();
    fs.stderr = r.blob("stderr")?.to_vec();

    let file_count = r.u32("file count")?;
    for _ in 0..file_count {
        let name = r.string("file name")?;
        let data = r.blob("file data")?.to_vec();
        if fs.files.insert(name.clone(), data).is_some() {
            return Err(format!("duplicate file entry {name:?}"));
        }
    }

    let desc_count = r.u32("descriptor count")?;
    for _ in 0..desc_count {
        let name = r.string("descriptor name")?;
        let pos = r.cursor_usize("descriptor cursor")?;
        let flags = r.u8("descriptor flags")?;
        if flags & !0b11 != 0 {
            return Err(format!("unknown descriptor flag bits 0x{flags:02x}"));
        }
        fs.descriptors.push(Descriptor {
            name,
            pos,
            writable: flags & 1 != 0,
            closed: flags & 2 != 0,
        });
    }

    if r.pos != bytes.len() {
        return Err(format!("{} trailing bytes after descriptors", bytes.len() - r.pos));
    }
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_fs() -> FsState {
        let mut fs = FsState::stdin_only(&["prog", "arg1"], b"line one\nline two\n");
        fs.read(0, 9).unwrap();
        fs.write(1, b"out bytes").unwrap();
        fs.write(2, b"err bytes").unwrap();
        let w = fs.open_out("b.txt").unwrap();
        fs.write(w, b"bbb").unwrap();
        fs.close(w);
        let w2 = fs.open_out("a.txt").unwrap();
        fs.write(w2, b"aaa").unwrap();
        let r = fs.open_in("a.txt").unwrap();
        fs.read(r, 2);
        fs
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let fs = busy_fs();
        let bytes = encode_fs(&fs);
        let back = decode_fs(&bytes).expect("decodes");
        assert_eq!(back, fs);
    }

    #[test]
    fn encoding_is_deterministic_across_insertion_orders() {
        // Same files inserted in opposite orders — HashMap iteration
        // order differs, encoded bytes must not.
        let mut a = FsState::default();
        a.files.insert("x".into(), b"1".to_vec());
        a.files.insert("y".into(), b"2".to_vec());
        let mut b = FsState::default();
        b.files.insert("y".into(), b"2".to_vec());
        b.files.insert("x".into(), b"1".to_vec());
        assert_eq!(encode_fs(&a), encode_fs(&b));
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let bytes = encode_fs(&busy_fs());
        for cut in 0..bytes.len() {
            decode_fs(&bytes[..cut]).expect_err("every proper prefix must fail");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_fs(&extra).unwrap_err().contains("trailing"));
    }

    #[test]
    fn bad_flags_and_non_utf8_rejected() {
        let mut fs = FsState::default();
        fs.descriptors.push(Descriptor {
            name: "f".into(),
            pos: 0,
            writable: true,
            closed: false,
        });
        let mut bytes = encode_fs(&fs);
        let last = bytes.len() - 1;
        bytes[last] = 0xF0; // unknown flag bits
        assert!(decode_fs(&bytes).unwrap_err().contains("flag"));

        let mut fs2 = FsState::default();
        fs2.args.push("a".into());
        let mut b2 = encode_fs(&fs2);
        b2[8] = 0xFF; // the arg's single byte (after argc + len) becomes invalid UTF-8
        assert!(decode_fs(&b2).unwrap_err().contains("UTF-8"));
    }
}
