//! System-call tracing — the `silverc --trace-syscalls` backend.
//!
//! A [`SyscallTrace`] records one [`SyscallEvent`] per FFI call: the
//! call name, its configuration string, the byte-array size, the
//! post-call status byte, a short result summary, and the descriptor
//! state after the call. Tracing is opt-in at every call site (the
//! untraced entry points never construct events), so the differential
//! harnesses pay nothing for it.

use std::fmt::Write as _;

use crate::fs::FsState;
use crate::oracle::FfiOutcome;

/// One traced FFI call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallEvent {
    /// Zero-based call index.
    pub seq: u64,
    /// PC of the FFI entry point (0 for interpreter/oracle-level runs
    /// that never touch machine code).
    pub pc: u32,
    /// Call name (e.g. `write`, `read`, `exit`).
    pub name: String,
    /// Configuration string (lossy UTF-8).
    pub conf: String,
    /// Shared byte-array size handed to the call.
    pub bytes_len: usize,
    /// `bytes[0]` after the call, when the array is non-empty — the
    /// protocol's status byte (0 = ok, 1 = fail for most calls).
    pub status: Option<u8>,
    /// How the call ended: `return`, `exit(c)`, or `failed`.
    pub outcome: String,
    /// Descriptor state after the call (see [`fd_summary`]).
    pub fds: String,
}

impl SyscallEvent {
    /// One-line rendition:
    /// `#3 write(conf="1", bytes=21) -> return status 0 | stdin@5/11`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "#{} {}(conf={:?}, bytes={})",
            self.seq, self.name, self.conf, self.bytes_len
        );
        let _ = write!(out, " -> {}", self.outcome);
        if let Some(s) = self.status {
            let _ = write!(out, " status {s}");
        }
        if !self.fds.is_empty() {
            let _ = write!(out, " | {}", self.fds);
        }
        out
    }
}

/// An in-order record of every FFI call a run made.
#[derive(Clone, Debug, Default)]
pub struct SyscallTrace {
    /// The events, in call order.
    pub events: Vec<SyscallEvent>,
}

impl SyscallTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        SyscallTrace::default()
    }

    /// Number of recorded calls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no calls were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the whole trace, one line per call.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

/// A compact descriptor-table summary: stdin cursor plus one
/// `fd:mode name[@pos][(closed)]` entry per open file descriptor.
#[must_use]
pub fn fd_summary(fs: &FsState) -> String {
    let mut out = format!("stdin@{}/{}", fs.stdin_pos.min(fs.stdin.len()), fs.stdin.len());
    for (i, d) in fs.descriptors.iter().enumerate() {
        let _ = write!(
            out,
            ", {}:{} {}{}{}",
            i + 3,
            if d.writable { 'w' } else { 'r' },
            d.name,
            if d.writable { String::new() } else { format!("@{}", d.pos) },
            if d.closed { " (closed)" } else { "" },
        );
    }
    out
}

fn outcome_str(o: &FfiOutcome) -> String {
    match o {
        FfiOutcome::Return => "return".to_string(),
        FfiOutcome::Exit(c) => format!("exit({c})"),
        FfiOutcome::Failed => "failed".to_string(),
    }
}

/// [`call_ffi`](crate::oracle::call_ffi) with tracing: services the
/// call, then appends a [`SyscallEvent`] describing it to `trace`.
pub fn call_ffi_traced(
    fs: &mut FsState,
    name: &str,
    conf: &[u8],
    bytes: &mut [u8],
    pc: u32,
    trace: &mut SyscallTrace,
) -> FfiOutcome {
    let outcome = crate::oracle::call_ffi(fs, name, conf, bytes);
    trace.events.push(SyscallEvent {
        seq: trace.events.len() as u64,
        pc,
        name: name.to_string(),
        conf: String::from_utf8_lossy(conf).into_owned(),
        bytes_len: bytes.len(),
        status: bytes.first().copied(),
        outcome: outcome_str(&outcome),
        fds: fd_summary(fs),
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_calls_record_protocol_and_fd_state() {
        let mut fs = FsState::stdin_only(&["prog"], b"hello");
        let mut trace = SyscallTrace::new();
        let mut bytes = vec![9, 0, 3, b'a', b'b', b'c'];
        let out = call_ffi_traced(&mut fs, "write", b"1", &mut bytes, 0x100, &mut trace);
        assert_eq!(out, FfiOutcome::Return);
        let mut rd = vec![0, 2, 0, 0, 0];
        call_ffi_traced(&mut fs, "read", b"0", &mut rd, 0x104, &mut trace);
        assert_eq!(trace.len(), 2);
        let text = trace.render();
        assert!(text.contains("#0 write(conf=\"1\", bytes=6) -> return status 0"), "{text}");
        assert!(text.contains("#1 read"), "{text}");
        assert!(text.contains("stdin@2/5"), "read moved the cursor: {text}");
        assert_eq!(fs.stdout_utf8(), "abc");
    }

    #[test]
    fn fd_summary_lists_descriptors() {
        let mut fs = FsState::default();
        fs.files.insert("in.txt".into(), b"xyz".to_vec());
        let r = fs.open_in("in.txt").unwrap();
        fs.read(r, 2);
        let w = fs.open_out("out.txt").unwrap();
        fs.close(w);
        let s = fd_summary(&fs);
        assert!(s.contains("3:r in.txt@2"), "{s}");
        assert!(s.contains("4:w out.txt (closed)"), "{s}");
    }
}
