//! Building the initial memory image (Figure 2) — the `initAg` predicate
//! made constructive.
//!
//! The paper's theorem (5) assumes only "that the compiled code, system
//! calls code, and input data is in memory"; [`build_image`] is the
//! function that puts them there: startup code, command line, standard
//! input, the output buffer, the system-call region, and the compiled
//! program, each in its Figure-2 region.

use std::fmt;

use ag32::asm::Assembler;
use ag32::{Func, Instr, Reg, Ri, State};
use cakeml::CompiledProgram;

use crate::syscalls::generate_syscalls;

/// Image-construction errors — violations of the assumptions the
/// theorems carry (`|input| ≤ stdin_size`, `cl_ok cl`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// Standard input longer than the stdin device.
    StdinTooLarge {
        /// Given size.
        given: usize,
        /// Device capacity.
        max: u32,
    },
    /// Command line too long (`cl_ok` fails).
    CommandLineTooLarge {
        /// Bytes required.
        given: usize,
        /// Region capacity.
        max: u32,
    },
    /// Compiled code does not fit between `code_base` and 4 GiB.
    CodeTooLarge,
    /// System-call generation failed (a bug).
    Syscalls(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::StdinTooLarge { given, max } => {
                write!(f, "stdin of {given} bytes exceeds the {max}-byte device")
            }
            ImageError::CommandLineTooLarge { given, max } => {
                write!(f, "command line of {given} bytes exceeds the {max}-byte region")
            }
            ImageError::CodeTooLarge => write!(f, "compiled code does not fit"),
            ImageError::Syscalls(e) => write!(f, "system-call generation: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Initial value of the exit-code word: distinguishes "never exited".
///
/// Deliberately outside the `u8` range every exit path stores (the
/// compiler's `rt_exit` masks with `0xFF`, the `exit` system call loads
/// a single byte, the oracle widens a `u8`), so no legitimate exit code
/// can collide with the sentinel. The first fuzzing campaign caught the
/// original in-band value `0xFF`: `exit 255` was reported as wedged.
pub const EXIT_UNSET: u32 = 0x100;

/// Builds the complete initial machine state: memory per Figure 2, PC at
/// the startup code, I/O window over the output buffer.
///
/// # Errors
///
/// [`ImageError`] when an `initAg` assumption is violated.
pub fn build_image(
    compiled: &CompiledProgram,
    args: &[&str],
    stdin: &[u8],
) -> Result<State, ImageError> {
    let layout = compiled.layout;
    if stdin.len() > layout.stdin_size as usize {
        return Err(ImageError::StdinTooLarge { given: stdin.len(), max: layout.stdin_size });
    }
    let cl_bytes: usize = args.iter().map(|a| 4 + a.len().div_ceil(4) * 4).sum();
    if cl_bytes + 4 > layout.cl_size as usize {
        return Err(ImageError::CommandLineTooLarge {
            given: cl_bytes,
            max: layout.cl_size,
        });
    }

    let mut s = State::new();

    // Startup: jump to the compiled `_start`; halt loop; exit-code word.
    let mut boot = Assembler::new(layout.startup_base);
    boot.li(Reg::new(60), layout.code_base);
    boot.instr(Instr::Jump { func: Func::Snd, w: Reg::new(61), a: Ri::Reg(Reg::new(60)) });
    let boot_code = boot.assemble().map_err(|e| ImageError::Syscalls(e.to_string()))?;
    assert!(
        layout.startup_base + (boot_code.len() as u32) <= layout.exit_code_addr,
        "startup code overlaps the exit-code word"
    );
    s.mem.write_bytes(layout.startup_base, &boot_code);
    s.mem.write_word(layout.exit_code_addr, EXIT_UNSET);
    s.mem.write_word(
        layout.halt_addr,
        ag32::encode(Instr::Jump { func: Func::Add, w: Reg::new(0), a: Ri::Imm(0) }),
    );

    // Command line: count, then length-prefixed, 4-padded arguments.
    s.mem.write_word(layout.cl_base, args.len() as u32);
    let mut at = layout.cl_base + 4;
    for a in args {
        s.mem.write_word(at, a.len() as u32);
        s.mem.write_bytes(at + 4, a.as_bytes());
        at += 4 + (a.len() as u32).div_ceil(4) * 4;
    }

    // Standard input: length, cursor, contents.
    s.mem.write_word(layout.stdin_base, stdin.len() as u32);
    s.mem.write_word(layout.stdin_base + 4, 0);
    s.mem.write_bytes(layout.stdin_base + 8, stdin);

    // System calls.
    let sys = generate_syscalls(&layout, &compiled.ffi_names)
        .map_err(|e| ImageError::Syscalls(e.to_string()))?;
    assert!(sys.len() as u32 <= layout.ffi_size, "syscall code exceeds its region");
    s.mem.write_bytes(layout.ffi_base, &sys);

    // Compiled code + data.
    if layout.code_base.checked_add(compiled.code.len() as u32).is_none() {
        return Err(ImageError::CodeTooLarge);
    }
    s.mem.write_bytes(layout.code_base, &compiled.code);

    s.pc = layout.startup_base;
    s.io_window = layout.io_window();
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cakeml::{compile_source, CompilerConfig, TargetLayout};

    fn demo() -> CompiledProgram {
        compile_source(
            "val _ = print \"hi\";",
            TargetLayout::default(),
            &CompilerConfig::default(),
        )
        .expect("compiles")
    }

    #[test]
    fn image_layout_regions_are_populated() {
        let compiled = demo();
        let s = build_image(&compiled, &["demo", "arg1"], b"input text").unwrap();
        let l = compiled.layout;
        assert_eq!(s.pc, l.startup_base);
        assert_eq!(s.mem.read_word(l.cl_base), 2, "argc");
        assert_eq!(s.mem.read_word(l.cl_base + 4), 4, "first arg length");
        assert_eq!(s.mem.read_bytes(l.cl_base + 8, 4), b"demo");
        assert_eq!(s.mem.read_word(l.stdin_base), 10);
        assert_eq!(s.mem.read_bytes(l.stdin_base + 8, 5), b"input");
        assert_eq!(s.mem.read_word(l.exit_code_addr), EXIT_UNSET);
        // Jump-table entry for "write" points inside the FFI region.
        let entry = s.mem.read_word(l.ffi_entry_addr(0));
        assert!(entry > l.ffi_base && entry < l.ffi_base + l.ffi_size);
        // Code region begins with the compiled `_start`.
        assert_eq!(
            s.mem.read_bytes(l.code_base, compiled.code.len().min(16) as u32),
            compiled.code[..compiled.code.len().min(16)]
        );
        assert_eq!(s.io_window, l.io_window());
    }

    #[test]
    fn oversized_stdin_rejected() {
        let compiled = demo();
        let big = vec![0u8; compiled.layout.stdin_size as usize + 1];
        assert!(matches!(
            build_image(&compiled, &[], &big),
            Err(ImageError::StdinTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_command_line_rejected() {
        let compiled = demo();
        let long_arg = "x".repeat(compiled.layout.cl_size as usize);
        assert!(matches!(
            build_image(&compiled, &[&long_arg], b""),
            Err(ImageError::CommandLineTooLarge { .. })
        ));
    }
}
