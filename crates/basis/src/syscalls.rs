//! Hand-written Silver machine code implementing the system calls (§6).
//!
//! "For Silver, we have realised the standard streams std{in,out,err},
//! and the command line, as in-memory devices accessed by Silver machine
//! code that we have verified to implement the system calls required by
//! CakeML." Here the verification is the differential test in
//! `tests/ffi_equiv.rs`: executing this code under pure `Next` steps has
//! exactly the effect the [`oracle`](crate::oracle) specifies.
//!
//! # Calling convention
//!
//! `r1` = configuration-string data pointer, `r2` = its length, `r3` =
//! shared-array data pointer, `r4` = its length, return address in `r62`.
//! The code may clobber `r1`–`r12` and `r59`–`r61`. Every call first
//! records its index in the "called id" word (Figure 2); `write`
//! additionally fills the output buffer and executes `Interrupt` to
//! notify the interrupt handler (the lab setup's ARM core).
//!
//! # Region layout (based at `layout.ffi_base`)
//!
//! `[called id][jump table: one address per FFI name][code...]`

use ag32::asm::{AsmError, Assembler};
use ag32::{Func, Instr, Reg, Ri};
use cakeml::TargetLayout;

const R1: Reg = Reg::new(1);
const R2: Reg = Reg::new(2);
const R3: Reg = Reg::new(3);
const R4: Reg = Reg::new(4);
const R5: Reg = Reg::new(5);
const R7: Reg = Reg::new(7);
const R8: Reg = Reg::new(8);
const R9: Reg = Reg::new(9);
const R10: Reg = Reg::new(10);
const R11: Reg = Reg::new(11);
const R12: Reg = Reg::new(12);
const S0: Reg = Reg::new(59);
const LINK: Reg = Reg::new(62);

struct Sys<'l> {
    asm: Assembler,
    layout: &'l TargetLayout,
}

/// Generates the system-call region for the given FFI names (in
/// jump-table order, as collected by the compiler).
///
/// # Errors
///
/// Assembler errors indicate a bug in this generator.
pub fn generate_syscalls(layout: &TargetLayout, ffi_names: &[String]) -> Result<Vec<u8>, AsmError> {
    let mut s = Sys { asm: Assembler::new(layout.ffi_base), layout };
    // Called-id word, then the jump table.
    s.asm.word(0);
    for name in ffi_names {
        s.asm.word_label(format!("sc_{name}"));
    }
    for (i, name) in ffi_names.iter().enumerate() {
        s.asm.label(format!("sc_{name}"));
        s.store_called_id(i as u32);
        match name.as_str() {
            "write" => s.emit_write(),
            "read" => s.emit_read(),
            "get_arg_count" => s.emit_get_arg_count(),
            "get_arg_length" => s.emit_get_arg_length(),
            "get_arg" => s.emit_get_arg(),
            "exit" => s.emit_exit(),
            // No files exist at the machine level (§2.4: streams and the
            // command line only); open/close report failure, matching an
            // oracle over a file-less filesystem.
            _ => s.emit_fail_only(),
        }
    }
    s.asm.assemble()
}

impl Sys<'_> {
    fn ret(&mut self) {
        self.asm.instr(Instr::Jump { func: Func::Snd, w: S0, a: Ri::Reg(LINK) });
    }

    fn store_called_id(&mut self, id: u32) {
        self.asm.li(R9, id);
        self.asm.li(R10, self.layout.ffi_called_id_addr());
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R9), b: Ri::Reg(R10) });
    }

    /// Parses the decimal fd in the configuration string into `r5`.
    fn emit_parse_fd(&mut self, p: &str) {
        self.asm.li(R5, 0);
        self.asm.normal(Func::Add, R7, Ri::Reg(R1), Ri::Imm(0));
        self.asm.normal(Func::Add, R8, Ri::Reg(R1), Ri::Reg(R2));
        self.asm.label(format!("{p}_fdl"));
        self.asm.branch_zero_sub(Ri::Reg(R7), Ri::Reg(R8), format!("{p}_fdd"), S0);
        self.asm.instr(Instr::LoadMemByte { w: R9, a: Ri::Reg(R7) });
        self.asm.li(R10, 48);
        self.asm.normal(Func::Sub, R9, Ri::Reg(R9), Ri::Reg(R10));
        self.asm.li(R10, 10);
        self.asm.normal(Func::Mul, R5, Ri::Reg(R5), Ri::Reg(R10));
        self.asm.normal(Func::Add, R5, Ri::Reg(R5), Ri::Reg(R9));
        self.asm.normal(Func::Inc, R7, Ri::Imm(0), Ri::Reg(R7));
        self.asm.jmp(format!("{p}_fdl"), Reg::new(60), Reg::new(61));
        self.asm.label(format!("{p}_fdd"));
    }

    /// Byte-copy loop `while src != end { *dst++ = *src++ }` using `R7`
    /// as the byte temporary.
    fn emit_copy(&mut self, p: &str, src: Reg, dst: Reg, end: Reg) {
        self.asm.label(format!("{p}_cp"));
        self.asm.branch_zero_sub(Ri::Reg(src), Ri::Reg(end), format!("{p}_cpd"), S0);
        self.asm.instr(Instr::LoadMemByte { w: R7, a: Ri::Reg(src) });
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R7), b: Ri::Reg(dst) });
        self.asm.normal(Func::Inc, src, Ri::Imm(0), Ri::Reg(src));
        self.asm.normal(Func::Inc, dst, Ri::Imm(0), Ri::Reg(dst));
        self.asm.jmp(format!("{p}_cp"), Reg::new(60), Reg::new(61));
        self.asm.label(format!("{p}_cpd"));
    }

    fn emit_status_and_ret(&mut self, status: u8) {
        self.asm.li(R7, u32::from(status));
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R7), b: Ri::Reg(R3) });
        self.ret();
    }

    fn emit_write(&mut self) {
        self.emit_parse_fd("wr");
        // n = bytes[1] << 8 | bytes[2].
        self.asm.normal(Func::Add, R7, Ri::Reg(R3), Ri::Imm(1));
        self.asm.instr(Instr::LoadMemByte { w: R8, a: Ri::Reg(R7) });
        self.asm.shift(ag32::Shift::Ll, R8, Ri::Reg(R8), Ri::Imm(8));
        self.asm.normal(Func::Add, R7, Ri::Reg(R3), Ri::Imm(2));
        self.asm.instr(Instr::LoadMemByte { w: R9, a: Ri::Reg(R7) });
        self.asm.normal(Func::Or, R8, Ri::Reg(R8), Ri::Reg(R9));
        // Validate: n + 3 <= bytes len, n <= out_size, fd in {1, 2}.
        self.asm.normal(Func::Add, R9, Ri::Reg(R8), Ri::Imm(3));
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R4), Ri::Reg(R9), "wr_fail", S0);
        self.asm.li(R9, self.layout.out_size);
        self.asm.branch_nonzero(Func::Lower, Ri::Reg(R9), Ri::Reg(R8), "wr_fail", S0);
        self.asm.branch_zero_sub(Ri::Reg(R5), Ri::Imm(1), "wr_ok", S0);
        self.asm.branch_zero_sub(Ri::Reg(R5), Ri::Imm(2), "wr_ok", S0);
        self.asm.jmp("wr_fail", Reg::new(60), Reg::new(61));
        self.asm.label("wr_ok");
        // Output buffer: [id][len][contents].
        self.asm.li(R9, self.layout.out_base);
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R5), b: Ri::Reg(R9) });
        self.asm.normal(Func::Add, R10, Ri::Reg(R9), Ri::Imm(4));
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R8), b: Ri::Reg(R10) });
        self.asm.normal(Func::Add, R10, Ri::Reg(R9), Ri::Imm(8));
        self.asm.normal(Func::Add, R11, Ri::Reg(R3), Ri::Imm(3));
        self.asm.normal(Func::Add, R12, Ri::Reg(R11), Ri::Reg(R8));
        self.emit_copy("wr", R11, R10, R12);
        // Notify the interrupt handler (§4.1.1 Interrupt).
        self.asm.instr(Instr::Interrupt);
        self.emit_status_and_ret(0);
        self.asm.label("wr_fail");
        self.emit_status_and_ret(1);
    }

    fn emit_read(&mut self) {
        self.emit_parse_fd("rd");
        // Only stdin (fd 0) exists as an input device.
        self.asm.branch_nonzero_sub(Ri::Reg(R5), Ri::Imm(0), "rd_fail", S0);
        // n = bytes[0] << 8 | bytes[1], clamped to bytes len - 3.
        self.asm.instr(Instr::LoadMemByte { w: R8, a: Ri::Reg(R3) });
        self.asm.shift(ag32::Shift::Ll, R8, Ri::Reg(R8), Ri::Imm(8));
        self.asm.normal(Func::Add, R7, Ri::Reg(R3), Ri::Imm(1));
        self.asm.instr(Instr::LoadMemByte { w: R9, a: Ri::Reg(R7) });
        self.asm.normal(Func::Or, R8, Ri::Reg(R8), Ri::Reg(R9));
        self.asm.normal(Func::Add, R9, Ri::Reg(R8), Ri::Imm(3));
        self.asm.branch_zero(Func::Lower, Ri::Reg(R4), Ri::Reg(R9), "rd_nok", S0);
        self.asm.normal(Func::Sub, R8, Ri::Reg(R4), Ri::Imm(3));
        self.asm.label("rd_nok");
        // avail = stdin len - cursor; take = min(n, avail).
        self.asm.li(R9, self.layout.stdin_base);
        self.asm.instr(Instr::LoadMem { w: R10, a: Ri::Reg(R9) });
        self.asm.normal(Func::Add, R11, Ri::Reg(R9), Ri::Imm(4));
        self.asm.instr(Instr::LoadMem { w: R12, a: Ri::Reg(R11) });
        self.asm.normal(Func::Sub, R10, Ri::Reg(R10), Ri::Reg(R12));
        self.asm.branch_zero(Func::Lower, Ri::Reg(R10), Ri::Reg(R8), "rd_t", S0);
        self.asm.normal(Func::Add, R8, Ri::Reg(R10), Ri::Imm(0));
        self.asm.label("rd_t");
        // Copy take bytes from stdin contents + cursor to bytes[3..].
        self.asm.li(R9, self.layout.stdin_base + 8);
        self.asm.normal(Func::Add, R9, Ri::Reg(R9), Ri::Reg(R12));
        self.asm.normal(Func::Add, R10, Ri::Reg(R3), Ri::Imm(3));
        self.asm.normal(Func::Add, R11, Ri::Reg(R9), Ri::Reg(R8));
        self.emit_copy("rd", R9, R10, R11);
        // cursor += take.
        self.asm.li(R9, self.layout.stdin_base + 4);
        self.asm.instr(Instr::LoadMem { w: R11, a: Ri::Reg(R9) });
        self.asm.normal(Func::Add, R11, Ri::Reg(R11), Ri::Reg(R8));
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R11), b: Ri::Reg(R9) });
        // bytes[0] = 0; bytes[1..2] = take (big-endian).
        self.asm.li(R7, 0);
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R7), b: Ri::Reg(R3) });
        self.asm.shift(ag32::Shift::Lr, R9, Ri::Reg(R8), Ri::Imm(8));
        self.asm.normal(Func::Add, R10, Ri::Reg(R3), Ri::Imm(1));
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R9), b: Ri::Reg(R10) });
        self.asm.normal(Func::Add, R10, Ri::Reg(R3), Ri::Imm(2));
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R8), b: Ri::Reg(R10) });
        self.ret();
        self.asm.label("rd_fail");
        self.emit_status_and_ret(1);
    }

    fn emit_get_arg_count(&mut self) {
        self.asm.li(R7, self.layout.cl_base);
        self.asm.instr(Instr::LoadMem { w: R8, a: Ri::Reg(R7) });
        self.emit_put16_at_r3(R8);
        self.ret();
    }

    /// Stores `val` big-endian into `bytes[0..2]`.
    fn emit_put16_at_r3(&mut self, val: Reg) {
        self.asm.shift(ag32::Shift::Lr, R9, Ri::Reg(val), Ri::Imm(8));
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(R9), b: Ri::Reg(R3) });
        self.asm.normal(Func::Add, R10, Ri::Reg(R3), Ri::Imm(1));
        self.asm.instr(Instr::StoreMemByte { a: Ri::Reg(val), b: Ri::Reg(R10) });
    }

    /// Loads `bytes[0..2]` big-endian into `r5`.
    fn emit_get16_from_r3(&mut self) {
        self.asm.instr(Instr::LoadMemByte { w: R5, a: Ri::Reg(R3) });
        self.asm.shift(ag32::Shift::Ll, R5, Ri::Reg(R5), Ri::Imm(8));
        self.asm.normal(Func::Add, R7, Ri::Reg(R3), Ri::Imm(1));
        self.asm.instr(Instr::LoadMemByte { w: R8, a: Ri::Reg(R7) });
        self.asm.normal(Func::Or, R5, Ri::Reg(R5), Ri::Reg(R8));
    }

    /// Walks the argument list (each entry: length word, bytes padded to
    /// 4) leaving the address of argument `r5`'s length word in `r9`.
    fn emit_arg_walk(&mut self, p: &str) {
        self.asm.li(R9, self.layout.cl_base + 4);
        self.asm.label(format!("{p}_wk"));
        self.asm.branch_zero_sub(Ri::Reg(R5), Ri::Imm(0), format!("{p}_fnd"), S0);
        self.asm.instr(Instr::LoadMem { w: R10, a: Ri::Reg(R9) });
        self.asm.normal(Func::Add, R10, Ri::Reg(R10), Ri::Imm(3));
        self.asm.li(R11, 0xFFFF_FFFC);
        self.asm.normal(Func::And, R10, Ri::Reg(R10), Ri::Reg(R11));
        self.asm.normal(Func::Add, R9, Ri::Reg(R9), Ri::Imm(4));
        self.asm.normal(Func::Add, R9, Ri::Reg(R9), Ri::Reg(R10));
        self.asm.normal(Func::Dec, R5, Ri::Imm(0), Ri::Reg(R5));
        self.asm.jmp(format!("{p}_wk"), Reg::new(60), Reg::new(61));
        self.asm.label(format!("{p}_fnd"));
    }

    fn emit_get_arg_length(&mut self) {
        self.emit_get16_from_r3();
        self.emit_arg_walk("al");
        self.asm.instr(Instr::LoadMem { w: R8, a: Ri::Reg(R9) });
        self.emit_put16_at_r3(R8);
        self.ret();
    }

    fn emit_get_arg(&mut self) {
        self.emit_get16_from_r3();
        self.emit_arg_walk("ga");
        self.asm.instr(Instr::LoadMem { w: R8, a: Ri::Reg(R9) });
        self.asm.normal(Func::Add, R10, Ri::Reg(R9), Ri::Imm(4)); // src
        self.asm.normal(Func::Add, R11, Ri::Reg(R3), Ri::Imm(2)); // dst
        self.asm.normal(Func::Add, R12, Ri::Reg(R10), Ri::Reg(R8)); // end
        self.emit_copy("ga", R10, R11, R12);
        self.ret();
    }

    fn emit_exit(&mut self) {
        self.asm.instr(Instr::LoadMemByte { w: R7, a: Ri::Reg(R3) });
        self.asm.li(R8, self.layout.exit_code_addr);
        self.asm.instr(Instr::StoreMem { a: Ri::Reg(R7), b: Ri::Reg(R8) });
        self.asm.li(R8, self.layout.halt_addr);
        self.asm.instr(Instr::Jump { func: Func::Snd, w: S0, a: Ri::Reg(R8) });
    }

    fn emit_fail_only(&mut self) {
        self.emit_status_and_ret(1);
    }
}
